"""Telemetry layer tests: determinism, non-perturbation, registry, schema.

The observability contract has three legs, each pinned here:

* **Non-perturbation** — enabling the tracer + sampler changes *nothing*
  the determinism harness digests: event counts, event digests and stats
  digests are identical with telemetry on or off, and a CrashTimer
  composes with the telemetry observer instead of being displaced.
* **Determinism** — two identical runs with telemetry enabled export
  byte-identical trace JSON, metrics CSV/JSON and counter snapshots.
* **Fidelity** — the sampled series ends exactly at the final scalar
  statistics, the counter registry reaches every stats field, and the
  exported trace passes the Chrome trace-event schema check CI runs.
"""

from __future__ import annotations

import dataclasses
import json
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
if str(REPO) not in sys.path:
    sys.path.insert(0, str(REPO))

from repro.config import SSDConfig
from repro.experiments.common import (
    ExperimentSetup,
    build_ssd,
    precondition,
    steady_state_workload,
)
from repro.experiments.multi_tenant import (
    build_tenant_host,
    reader_tenant,
    writer_tenant,
)
from repro.ftl.pagemap import PageLevelFTL
from repro.obs import (
    CounterSnapshot,
    MetricsSampler,
    Tracer,
    attach_telemetry,
    device_snapshot,
    snapshot_stats,
)
from repro.obs.__main__ import (
    check_metrics_file,
    check_trace_events,
    check_trace_file,
)
from repro.ssd.ssd import SimulatedSSD, SSDOptions
from repro.ssd.stats import SSDStats
from repro.verify import VERIFY_ARBITER, EventTraceDigest, run_once, verify_scenario

# Scale 0.5 is the smallest verify-scenario scale where background GC
# actually fires (scale 0.25 never dips below the watermark), and the
# acceptance criterion wants a GC-contended trace.
SCALE = 0.5
SEED = 1234


def _traced_run(telemetry_mode="on", crash_timer=False):
    """One verify-scenario run with a digest observer and telemetry."""
    scenario = verify_scenario(seed=SEED, scale=SCALE)
    ssd, host = build_tenant_host(scenario, VERIFY_ARBITER)
    trace = EventTraceDigest()
    ssd.event_observer = trace.observe
    telemetry = attach_telemetry(ssd, telemetry_mode, host=host)
    host.run([reader_tenant(scenario), writer_tenant(scenario)])
    return ssd, host, trace, telemetry


@pytest.fixture(scope="module")
def baseline_report():
    return run_once(seed=SEED, scale=SCALE)


@pytest.fixture(scope="module")
def traced():
    return _traced_run()


class TestNonPerturbation:
    def test_digests_identical_with_telemetry_on(self, baseline_report, traced):
        """The acceptance constraint: telemetry must not move the digests."""
        from repro.verify import stats_digest

        ssd, _host, trace, _telemetry = traced
        assert trace.events_observed == baseline_report.events_observed
        assert trace.hexdigest() == baseline_report.event_digest
        assert stats_digest(ssd.stats.summary()) == baseline_report.stats_digest

    def test_telemetry_off_is_none(self):
        ssd = SimulatedSSD(SSDConfig.tiny(), PageLevelFTL())
        assert ssd.telemetry is None
        assert ssd.scheduler.probe is None
        assert SSDOptions().telemetry == "off"

    def test_options_telemetry_wires_collectors(self):
        ssd = SimulatedSSD(
            SSDConfig.tiny(), PageLevelFTL(), options=SSDOptions(telemetry="on")
        )
        assert ssd.telemetry is not None
        assert ssd.telemetry.tracer is not None
        assert ssd.telemetry.sampler is not None
        assert ssd.scheduler.probe == ssd.telemetry.tracer.nand_op

    def test_trace_mode_installs_tracer_only(self):
        ssd = SimulatedSSD(
            SSDConfig.tiny(), PageLevelFTL(), options=SSDOptions(telemetry="trace")
        )
        assert ssd.telemetry.tracer is not None
        assert ssd.telemetry.sampler is None

    def test_experiment_setup_passthrough(self):
        setup = ExperimentSetup(
            capacity_bytes=16 * 1024 * 1024,
            channels=2,
            dies_per_channel=2,
            pages_per_block=64,
            warmup=False,
            telemetry="metrics",
        )
        ssd = build_ssd("DFTL", setup)
        assert ssd.telemetry is not None
        assert ssd.telemetry.sampler is not None
        assert ssd.telemetry.tracer is None


class TestObserverComposition:
    def test_crash_timer_and_tracer_coexist(self):
        """run_frontend chains observers; a CrashTimer must still fire with
        telemetry enabled, at the same event index as without it."""
        from repro.ssd.recovery import CrashTimer, PowerFailure

        def crash_run(telemetry_mode):
            config = SSDConfig.tiny(capacity_bytes=16 * 1024 * 1024)
            ssd = SimulatedSSD(
                config,
                PageLevelFTL(),
                options=SSDOptions(queue_depth=8, gc_mode="background"),
            )
            telemetry = attach_telemetry(ssd, telemetry_mode)
            trace = EventTraceDigest()
            timer = CrashTimer(after_kind="request_issue", kind_count=200)

            def observer(event):
                trace.observe(event)
                timer(event)

            ssd.event_observer = observer
            requests = [("W", (i * 7) % 2000, 4) for i in range(2000)]
            with pytest.raises(PowerFailure):
                ssd.run(requests)
            return trace, timer, telemetry

        plain_trace, plain_timer, _ = crash_run("off")
        traced_trace, traced_timer, telemetry = crash_run("on")
        assert plain_timer.fired and traced_timer.fired
        # Same crash point, same digested prefix — telemetry was invisible.
        assert traced_trace.events_observed == plain_trace.events_observed
        assert traced_trace.hexdigest() == plain_trace.hexdigest()
        # ...and the tracer actually saw the run (it was not displaced).
        assert telemetry.tracer.recorded > 0


class TestArtifactDeterminism:
    def test_double_run_byte_identical_artifacts(self, tmp_path):
        payloads = []
        for run in ("a", "b"):
            _ssd, _host, _trace, telemetry = _traced_run()
            outdir = tmp_path / run
            written = telemetry.write_artifacts(str(outdir))
            payloads.append(
                {name: Path(path).read_bytes() for name, path in written.items()}
            )
        assert set(payloads[0]) == {"trace", "metrics_csv", "metrics_json", "counters"}
        for name in payloads[0]:
            assert payloads[0][name] == payloads[1][name], name


class TestMetricsFidelity:
    def test_last_sample_matches_final_scalars(self, traced):
        ssd, _host, _trace, telemetry = traced
        sampler = telemetry.sampler
        assert sampler.samples > 1
        assert sampler.last("waf") == ssd.stats.write_amplification
        assert sampler.last("free_blocks") == float(ssd.allocator.free_block_count())
        assert sampler.last("total_flash_page_writes") == float(
            ssd.stats.total_flash_page_writes
        )
        assert sampler.last("time_us") == ssd.stats.simulated_time_us

    def test_series_shapes_and_columns(self, traced):
        ssd, _host, _trace, telemetry = traced
        sampler = telemetry.sampler
        columns = sampler.columns
        assert "gc_backlog" in columns
        assert "write_buffer_fill" in columns
        assert f"ch{ssd.config.channels - 1}_busy_frac" in columns
        assert "ns_reader_inflight" in columns and "ns_writer_inflight" in columns
        for column in columns:
            assert len(sampler.series(column)) == sampler.samples
        times = sampler.series("time_us")
        assert times == sorted(times)
        busy = sampler.series("ch0_busy_frac")
        assert all(0.0 <= value <= 1.0 for value in busy)
        assert max(busy) > 0.0

    def test_csv_round_trip(self, traced, tmp_path):
        _ssd, _host, _trace, telemetry = traced
        path = tmp_path / "metrics.csv"
        telemetry.sampler.export_csv(str(path))
        assert check_metrics_file(str(path)) == []
        lines = path.read_text().splitlines()
        assert lines[0].split(",") == telemetry.sampler.columns
        assert len(lines) == telemetry.sampler.samples + 1

    def test_serial_engine_pump_samples(self):
        """The qd=1 serial path has almost no loop events; the flush-path
        pump must still produce a usable series."""
        setup = ExperimentSetup(
            capacity_bytes=16 * 1024 * 1024,
            channels=2,
            dies_per_channel=2,
            pages_per_block=64,
            queue_depth=1,
            warmup=False,
            telemetry="metrics",
        )
        ssd = build_ssd("DFTL", setup)
        ssd.run([("W", (i * 13) % 3000, 8) for i in range(1500)])
        sampler = ssd.telemetry.sampler
        assert sampler.samples > 1
        assert sampler.last("time_us") == ssd.stats.simulated_time_us


class TestTraceSchema:
    def test_exported_trace_passes_schema_check(self, traced, tmp_path):
        _ssd, _host, _trace, telemetry = traced
        path = tmp_path / "trace.json"
        telemetry.tracer.export_json(str(path))
        assert check_trace_file(str(path)) == []
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert payload["otherData"]["dropped"] == 0
        # Request lifecycle spans made it out: B/E pairs on io-slot tracks
        # and NAND X spans on channel tracks.
        phases = {event["ph"] for event in events}
        assert {"M", "B", "E", "X", "i"} <= phases
        names = {
            event["args"]["name"]
            for event in events
            if event["ph"] == "M"
        }
        assert "gc" in names and "ch0" in names
        assert any(name.startswith("io-slot-") for name in names)

    def test_trace_has_gc_and_nand_spans(self, traced):
        _ssd, _host, _trace, telemetry = traced
        events = telemetry.tracer.trace_events()
        span_names = {e["name"] for e in events if e["ph"] in ("B", "X")}
        assert "nand" in span_names
        assert {"R", "W"} <= span_names
        # The erase stage is the only GC stage that spans sim time (the
        # pipeline's read/migrate events chain at issue timestamps), so it
        # exports as a duration span and the others as instants on the same
        # gc track.
        assert "gc_erase" in span_names
        instant_names = {e["name"] for e in events if e["ph"] == "i"}
        assert "gc_read" in instant_names and "gc_migrate" in instant_names

    def test_ring_buffer_bounds_memory(self):
        tracer = Tracer(capacity=16)
        for index in range(100):
            tracer.nand_op(0, float(index), float(index) + 1.0)
        assert tracer.recorded == 16
        assert tracer.dropped == 84
        assert check_trace_events(tracer.trace_events()) == []

    def test_schema_checker_rejects_malformed(self):
        decreasing = [
            {"name": "a", "ph": "i", "ts": 5.0, "pid": 1, "tid": 1, "s": "t"},
            {"name": "b", "ph": "i", "ts": 1.0, "pid": 1, "tid": 1, "s": "t"},
        ]
        assert check_trace_events(decreasing) != []
        unbalanced = [
            {"name": "a", "ph": "B", "ts": 1.0, "pid": 1, "tid": 1},
        ]
        assert check_trace_events(unbalanced) != []
        mismatched = [
            {"name": "a", "ph": "B", "ts": 1.0, "pid": 1, "tid": 1},
            {"name": "z", "ph": "E", "ts": 2.0, "pid": 1, "tid": 1},
        ]
        assert check_trace_events(mismatched) != []


class TestCounterRegistry:
    def test_snapshot_covers_every_ssd_stats_field(self):
        from repro.obs.registry import EXCLUDED_FIELDS

        stats = SSDStats()
        counters = snapshot_stats(stats, "ssd")
        for field in dataclasses.fields(stats):
            if ("SSDStats", field.name) in EXCLUDED_FIELDS:
                continue
            if field.name in ("read_latency", "write_latency"):
                assert f"ssd.{field.name}.p99_us" in counters
            else:
                assert f"ssd.{field.name}" in counters
        # Derived properties ride along.
        assert "ssd.write_amplification" in counters
        assert "ssd.cache_hit_ratio" in counters

    def test_unexportable_field_raises(self):
        @dataclasses.dataclass
        class RogueStats:
            values: list = dataclasses.field(default_factory=list)

        with pytest.raises(TypeError, match="EXCLUDED_FIELDS"):
            snapshot_stats(RogueStats(), "rogue")

    def test_device_snapshot_namespaces(self, traced):
        ssd, host, _trace, _telemetry = traced
        snapshot = device_snapshot(ssd, host=host)
        assert snapshot["ssd.host_writes"] > 0
        assert snapshot["cache.hits"] >= 0
        assert snapshot["write_buffer.flushes"] > 0
        assert snapshot["allocator.blocks_allocated"] > 0
        assert snapshot["ns.reader.completed"] > 0
        assert snapshot["ns.writer.completed"] > 0
        assert snapshot["device.free_blocks"] > 0
        assert "leaftl.mispredictions" in snapshot
        assert "mapping_table.segments_learned" in snapshot
        assert "ftl.lookups" in snapshot

    def test_delta_and_dict_api(self):
        earlier = CounterSnapshot({"a": 1.0, "b": 5.0})
        later = CounterSnapshot({"a": 4.0, "c": 2.0})
        delta = later.delta(earlier)
        assert delta["a"] == 3.0
        assert delta["b"] == -5.0
        assert delta["c"] == 2.0
        assert delta.keys() == ["a", "b", "c"]
        assert json.loads(later.to_json()) == {"a": 4.0, "c": 2.0}
        assert "a" in later and len(later) == 2
        assert later.get("missing", 7.0) == 7.0

    def test_experiment_tables_carry_device_section(self):
        from repro.experiments.multi_tenant import run_noisy_neighbor

        scenario = verify_scenario(seed=SEED, scale=0.05)
        table = run_noisy_neighbor(VERIFY_ARBITER, scenario)
        assert "device" in table
        assert table["device"]["ssd.host_writes"] > 0
        # The delta is over the measured phase only: monotone counters
        # cannot go negative.
        assert table["device"]["ssd.data_page_writes"] >= 0


class TestSummaryKeys:
    def test_waf_inputs_are_first_class(self):
        summary = SSDStats().summary()
        for key in (
            "checkpoint_page_writes",
            "data_page_writes",
            "gc_page_writes",
            "wl_page_moves",
            "translation_page_writes",
            "total_flash_page_writes",
            "power_failures",
            "buffered_pages_lost",
            "oob_scan_reads",
            "gc_urgent_collections",
            "measured_time_us",
        ):
            assert key in summary, key

    def test_describe_inherits_new_keys(self):
        ssd = SimulatedSSD(SSDConfig.tiny(), PageLevelFTL())
        description = ssd.describe()
        assert "checkpoint_page_writes" in description
        assert "free_block_ratio" in description


class TestCheckpointTracing:
    def test_checkpoint_spans_recorded(self):
        from repro.ssd.recovery import attach_checkpointer

        config = SSDConfig.tiny(capacity_bytes=16 * 1024 * 1024)
        from repro.config import DRAMBudget, LeaFTLConfig
        from repro.core.leaftl import LeaFTL

        ssd = SimulatedSSD(
            config,
            LeaFTL(LeaFTLConfig(gamma=4)),
            dram_budget=DRAMBudget(dram_bytes=config.dram_size),
            options=SSDOptions(queue_depth=8, telemetry="trace"),
        )
        attach_checkpointer(ssd, interval_pages=256)
        ssd.run([("W", (i * 5) % 2500, 8) for i in range(1200)])
        assert ssd.stats.checkpoint_page_writes > 0
        events = ssd.telemetry.tracer.trace_events()
        checkpoints = [e for e in events if e["name"] == "checkpoint"]
        assert checkpoints
        assert all(e["args"]["pages"] > 0 for e in checkpoints)
