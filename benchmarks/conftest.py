"""Shared configuration for the figure-reproduction benchmarks.

Every file in this directory regenerates one table or figure of the LeaFTL
paper (see DESIGN.md for the index).  The workloads are scaled down so the
whole suite finishes on a laptop; set the environment variable
``REPRO_BENCH_SCALE`` (default 1.0) to scale the replayed request counts up
or down, e.g.::

    REPRO_BENCH_SCALE=4 pytest benchmarks/ --benchmark-only

Each benchmark prints the rows/series of its figure, so running with ``-s``
shows the reproduced numbers next to the timing measurements.
"""

from __future__ import annotations

import os

from repro.experiments.common import ExperimentSetup, bench_scale

#: Workloads used by the heavier sweeps (a representative subset of the 12).
CORE_SIMULATOR_WORKLOADS = ("MSR-hm", "MSR-prxy", "MSR-usr", "FIU-mail")
CORE_DATABASE_WORKLOADS = ("TPCC", "SEATS", "OLTP")
CORE_WORKLOADS = CORE_SIMULATOR_WORKLOADS + CORE_DATABASE_WORKLOADS

def perf_setup(**overrides: object) -> ExperimentSetup:
    """Performance-measurement setup (warm-up enabled, small device).

    Replay admission is configurable from the environment so every
    performance figure (16/17/18, ...) can be regenerated under open-loop
    (timestamped) replay without code changes::

        REPRO_REPLAY_MODE=open REPRO_TIME_SCALE=1.0 pytest benchmarks/...

    Open-loop runs admit requests at their (stamped) arrival times, so the
    latencies include the time requests waited for a saturated device.
    """
    defaults = dict(
        capacity_bytes=512 * 1024 * 1024,
        dram_bytes=256 * 1024,
        warmup_fraction=0.5,
        request_scale=0.08 * bench_scale(),
        footprint_scale=0.35,
        compaction_interval_writes=100_000,
        replay_mode=os.environ.get("REPRO_REPLAY_MODE", "closed"),
        time_scale=float(os.environ.get("REPRO_TIME_SCALE", "1.0")),
    )
    defaults.update(overrides)
    return ExperimentSetup(**defaults)  # type: ignore[arg-type]

def memory_scale() -> float:
    """Request scale used by the footprint/structure benchmarks."""
    return 0.15 * bench_scale()

def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
