"""``python -m repro.obs`` — run, check, analyze and diff telemetry runs.

Four subcommands:

``run --scenario {multi_tenant,steady_state} --out DIR``
    Runs a named, GC-contended scenario with telemetry fully enabled and
    writes the artifacts into ``DIR``: ``trace.json`` (Chrome trace-event
    JSON — load in Perfetto), ``metrics.csv`` / ``metrics.json`` (the
    sampled gauge time-series) and ``counters.json`` (the final registry
    snapshot).  The run cross-checks the sampled series against the final
    scalar statistics before returning — the last sample's WAF and
    free-block ratio must equal the end-of-run values.

``check TRACE [--metrics CSV]``
    Trace-schema sanity check used by CI: the file must be valid JSON
    with non-decreasing timestamps and balanced, properly nested B/E
    pairs per (pid, tid) track; the metrics CSV must have a header, at
    least one row, and strictly increasing ``time_us``.

``analyze ARTIFACTS [--out DIR] [--top K]``
    Post-processes an artifact directory into a latency-attribution and
    health report (:mod:`repro.obs.analyze`): per-percentile critical-path
    breakdowns, tail-blame clustering, recovery/GC summaries and the
    per-namespace SLO scorecard.  With ``--out`` writes ``report.json``
    and ``report.md``; always prints the p99 headline blame.  Exit code 2
    on missing or malformed artifacts.

``diff RUN_A RUN_B [--threshold REL] [--out DIR]``
    Compares two runs' counter snapshots and metric series (aligned on
    sim-time) into a thresholded regression report.  With ``--out``
    writes ``diff.json`` and ``diff.md``.  Exit code 2 on missing or
    malformed artifacts; 0 whether or not anything moved (the report
    itself says what changed).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.analyze import (
    ArtifactError,
    analyze_artifacts,
    diff_runs,
    load_artifacts,
)
from repro.obs.report import render_diff, render_report
from repro.obs.session import attach_telemetry

#: Scenario registry of the ``run`` subcommand.
SCENARIOS = ("multi_tenant", "steady_state")


# --------------------------------------------------------------------------- #
# Scenarios
# --------------------------------------------------------------------------- #
def run_multi_tenant(scale: float, seed: int) -> Tuple[Any, Any]:
    """The verification scenario, instrumented: a Zipf reader and a bursty
    sequential writer under WRR arbitration with background GC active.

    Returns ``(ssd, telemetry)`` after the run completes.
    """
    from repro.experiments.multi_tenant import (
        build_tenant_host,
        reader_tenant,
        writer_tenant,
    )
    from repro.verify import VERIFY_ARBITER, verify_scenario

    scenario = verify_scenario(seed=seed, scale=scale)
    ssd, host = build_tenant_host(scenario, VERIFY_ARBITER)
    telemetry = attach_telemetry(ssd, "on", host=host)
    # A scenario driver, not an observer: driving the sim is its job.
    host.run([reader_tenant(scenario), writer_tenant(scenario)])  # simlint: disable=SIM008
    return ssd, telemetry


def run_steady_state(scale: float, seed: int) -> Tuple[Any, Any]:
    """A single-tenant aged device replaying an overwrite-heavy Zipf mix
    at queue depth 8 with background GC — the classic WAF/GC-interference
    study, instrumented.
    """
    from repro.experiments.common import (
        ExperimentSetup,
        build_ssd,
        precondition,
        steady_state_workload,
    )

    setup = ExperimentSetup(
        capacity_bytes=48 * 1024 * 1024,
        channels=4,
        dies_per_channel=4,
        pages_per_block=64,
        queue_depth=8,
        gc_mode="background",
        warmup=False,
    )
    ssd = build_ssd("LeaFTL", setup)
    footprint = precondition(ssd, seed=seed)
    telemetry = attach_telemetry(ssd, "on")
    requests = steady_state_workload(
        footprint, num_requests=max(64, int(4000 * scale)), seed=seed
    )
    ssd.run(requests)  # simlint: disable=SIM008
    return ssd, telemetry


def _cross_check(ssd: Any, telemetry: Any) -> List[str]:
    """The acceptance cross-check: last sampled gauges == final scalars."""
    problems: List[str] = []
    sampler = telemetry.sampler
    if sampler is None or sampler.samples == 0:
        return ["no metrics samples were taken"]
    final_waf = ssd.stats.write_amplification
    if sampler.last("waf") != final_waf:
        problems.append(
            f"last sampled waf {sampler.last('waf')!r} != final {final_waf!r}"
        )
    final_free = float(ssd.allocator.free_block_count())
    if sampler.last("free_blocks") != final_free:
        problems.append(
            f"last sampled free_blocks {sampler.last('free_blocks')!r} "
            f"!= final {final_free!r}"
        )
    final_writes = float(ssd.stats.total_flash_page_writes)
    if sampler.last("total_flash_page_writes") != final_writes:
        problems.append(
            f"last sampled total_flash_page_writes "
            f"{sampler.last('total_flash_page_writes')!r} != final {final_writes!r}"
        )
    return problems


# --------------------------------------------------------------------------- #
# Artifact checks
# --------------------------------------------------------------------------- #
def check_trace_events(events: List[Dict[str, Any]]) -> List[str]:
    """Schema problems in a Chrome trace-event list (empty = clean)."""
    problems: List[str] = []
    last_ts: Optional[float] = None
    stacks: Dict[Tuple[int, int], List[str]] = {}
    for index, event in enumerate(events):
        phase = event.get("ph")
        if phase == "M":
            continue
        for key in ("name", "ts", "pid", "tid"):
            if key not in event:
                problems.append(f"event {index}: missing {key!r}")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            continue
        if last_ts is not None and ts < last_ts:
            problems.append(
                f"event {index}: ts {ts!r} decreases (previous {last_ts!r})"
            )
        last_ts = float(ts)
        track = (event.get("pid"), event.get("tid"))
        if phase == "B":
            stacks.setdefault(track, []).append(event.get("name", ""))
        elif phase == "E":
            stack = stacks.setdefault(track, [])
            if not stack:
                problems.append(f"event {index}: E with no open B on track {track}")
            else:
                opened = stack.pop()
                if opened != event.get("name", ""):
                    problems.append(
                        f"event {index}: E {event.get('name')!r} closes B "
                        f"{opened!r} on track {track}"
                    )
        elif phase == "X":
            if not isinstance(event.get("dur"), (int, float)):
                problems.append(f"event {index}: X without numeric dur")
        elif phase == "i":
            pass
        else:
            problems.append(f"event {index}: unknown phase {phase!r}")
    for track, stack in sorted(stacks.items()):
        if stack:
            problems.append(f"track {track}: {len(stack)} unclosed B event(s)")
    return problems


def check_trace_file(path: str) -> List[str]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable or invalid JSON ({exc})"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return [f"{path}: no traceEvents list"]
    if not events:
        return [f"{path}: empty trace"]
    return [f"{path}: {problem}" for problem in check_trace_events(events)]


def check_metrics_file(path: str) -> List[str]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as exc:
        return [f"{path}: unreadable ({exc})"]
    if not lines:
        return [f"{path}: empty file"]
    header = lines[0].split(",")
    if "time_us" not in header:
        return [f"{path}: header has no time_us column"]
    if len(lines) < 2:
        return [f"{path}: no sample rows"]
    problems: List[str] = []
    time_index = header.index("time_us")
    previous: Optional[float] = None
    for row_number, line in enumerate(lines[1:], start=2):
        cells = line.split(",")
        if len(cells) != len(header):
            problems.append(
                f"{path}: row {row_number} has {len(cells)} cells, "
                f"header has {len(header)}"
            )
            continue
        value = float(cells[time_index])
        if previous is not None and value <= previous:
            problems.append(
                f"{path}: row {row_number} time_us {value!r} does not increase"
            )
        previous = value
    return problems


# --------------------------------------------------------------------------- #
# Analysis commands
# --------------------------------------------------------------------------- #
def _write_report_pair(
    outdir: str, stem: str, payload: Dict[str, Any], markdown: str
) -> None:
    os.makedirs(outdir, exist_ok=True)
    json_path = os.path.join(outdir, f"{stem}.json")
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    md_path = os.path.join(outdir, f"{stem}.md")
    with open(md_path, "w", encoding="utf-8") as handle:
        handle.write(markdown)
    print(f"{stem}: {json_path}")
    print(f"{stem}.md: {md_path}")


def _analyze_command(args: argparse.Namespace) -> int:
    artifacts = load_artifacts(args.artifacts)
    report = analyze_artifacts(artifacts, top_k=args.top)
    if args.out:
        _write_report_pair(args.out, "report", report, render_report(report))
    for op, table in report["requests"].get("ops", {}).items():
        p99 = table["levels"].get("p99")
        if p99 is None:
            continue
        print(
            f"{op}: p99 {p99['latency_us']:.3f} us over {table['count']} "
            f"requests, dominant component {p99['dominant']}"
        )
    clusters = report["tail_blame"].get("clusters", [])
    if clusters:
        top = clusters[0]
        print(
            f"tail blame: {top['component']} dominates "
            f"{top['count']}/{report['tail_blame']['top_k']} slowest requests"
        )
    for entry in report.get("recovery", []):
        print(f"recovery: {entry['phase']} {entry['makespan_us']:.3f} us")
    for name, ns in report.get("scorecard", {}).get("namespaces", {}).items():
        print(
            f"namespace {name}: {ns['status']} "
            f"(burn rate {ns['burn_rate']:.2f}, "
            f"{int(ns['slo_violations'])} violations)"
        )
    return 0


def _diff_command(args: argparse.Namespace) -> int:
    diff = diff_runs(args.run_a, args.run_b, rel_threshold=args.threshold)
    if args.out:
        _write_report_pair(args.out, "diff", diff, render_diff(diff))
    counters = diff["counters"]
    metrics = diff["metrics"]
    print(
        f"counters: {len(counters['changed'])} of {counters['compared']} moved "
        f"past {counters['threshold']:.0%}"
    )
    print(
        f"metrics: {len(metrics['changed'])} series moved "
        f"({metrics['aligned_samples']} aligned samples)"
    )
    for row in counters["changed"][:10]:
        rel = "new" if row["rel"] is None else f"{row['rel']:+.1%}"
        print(f"  {row['counter']}: {row['base']:g} -> {row['current']:g} ({rel})")
    return 0


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Run traced scenarios and sanity-check telemetry artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run a scenario with telemetry on")
    run_parser.add_argument("--scenario", choices=SCENARIOS, default="multi_tenant")
    run_parser.add_argument("--out", required=True, help="artifact directory")
    run_parser.add_argument("--scale", type=float, default=1.0)
    run_parser.add_argument("--seed", type=int, default=1234)

    check_parser = sub.add_parser("check", help="sanity-check emitted artifacts")
    check_parser.add_argument("trace", help="path to a Chrome trace JSON")
    check_parser.add_argument("--metrics", help="path to a metrics CSV")

    analyze_parser = sub.add_parser(
        "analyze", help="attribution + health report over an artifact directory"
    )
    analyze_parser.add_argument("artifacts", help="artifact directory from `run`")
    analyze_parser.add_argument("--out", help="write report.json / report.md here")
    analyze_parser.add_argument(
        "--top", type=int, default=12, help="tail-blame cluster size (default 12)"
    )

    diff_parser = sub.add_parser(
        "diff", help="regression report between two artifact directories"
    )
    diff_parser.add_argument("run_a", help="base artifact directory")
    diff_parser.add_argument("run_b", help="candidate artifact directory")
    diff_parser.add_argument(
        "--threshold",
        type=float,
        default=0.05,
        help="relative-change reporting threshold (default 0.05)",
    )
    diff_parser.add_argument("--out", help="write diff.json / diff.md here")

    args = parser.parse_args(argv)

    if args.command in ("analyze", "diff"):
        try:
            if args.command == "analyze":
                return _analyze_command(args)
            return _diff_command(args)
        except ArtifactError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.command == "run":
        driver = run_multi_tenant if args.scenario == "multi_tenant" else run_steady_state
        ssd, telemetry = driver(scale=args.scale, seed=args.seed)
        problems = _cross_check(ssd, telemetry)
        written = telemetry.write_artifacts(args.out)
        for name, path in sorted(written.items()):
            print(f"{name}: {path}")
        tracer = telemetry.tracer
        sampler = telemetry.sampler
        print(
            f"trace records={tracer.recorded} dropped={tracer.dropped} "
            f"samples={sampler.samples}"
        )
        for problem in problems:
            print(f"CROSS-CHECK FAILED: {problem}", file=sys.stderr)
        return 1 if problems else 0

    problems = check_trace_file(args.trace)
    if args.metrics:
        problems.extend(check_metrics_file(args.metrics))
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        print(f"{args.trace}: trace schema ok")
        if args.metrics:
            print(f"{args.metrics}: metrics schema ok")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
