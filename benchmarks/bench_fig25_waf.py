"""Figure 25: write amplification factor (SSD lifetime impact).

The paper shows LeaFTL's WAF is comparable to DFTL and SFTL (DFTL is usually
the worst because of its translation-page write-backs), i.e. the learned
mapping does not age the SSD faster.

The steady-state variant ages the device first (sequential fill + skewed
overwrites via ``precondition``) and sweeps the over-provisioning ratio and
the GC victim policy, reproducing the classic WAF-vs-OP trend the paper's
Section 3.6 setup assumes: more spare blocks → victims shed more valid
pages before collection → less migration traffic per host write.
"""

from __future__ import annotations

from repro.analysis.report import print_report, render_series
from repro.experiments.performance import aging_sweep, write_amplification

from benchmarks.conftest import bench_scale, perf_setup, run_once

WORKLOADS = ("MSR-prxy", "FIU-mail", "TPCC", "OLTP")


def test_fig25_write_amplification(benchmark):
    setup = perf_setup()
    table = run_once(benchmark, write_amplification, WORKLOADS, setup)

    print_report(render_series(
        "Figure 25: write amplification factor (lower is better)",
        {wl: {s: round(v, 3) for s, v in row.items()} for wl, row in table.items()},
        column_order=("DFTL", "SFTL", "LeaFTL"),
    ))

    for workload, row in table.items():
        # At the scaled-down trace sizes the controller write buffer absorbs
        # overwrites, so WAF legitimately dips below 1.0 for every scheme —
        # the figure's claim is the *relative* one: LeaFTL must not amplify
        # writes meaningfully more than the baselines.
        assert row["LeaFTL"] > 0.0
        assert row["LeaFTL"] <= max(row["DFTL"], row["SFTL"]) * 1.15, workload


def test_fig25_waf_aging_sweep(benchmark):
    """Steady-state WAF vs over-provisioning, per GC victim policy."""
    # Floor of 1500: below that the measured phase is too short for the
    # WAF-vs-OP trend to emerge from the preconditioned state (the high-OP
    # cells see almost no GC and the assertion becomes noise).
    num_requests = max(1500, int(5000 * bench_scale()))
    table = run_once(benchmark, aging_sweep, num_requests=num_requests)

    print_report(render_series(
        "Figure 25 (steady state): WAF by over-provisioning and GC policy",
        {
            policy: {f"OP {op:.0%}": round(metrics["waf"], 3)
                     for op, metrics in row.items()}
            for policy, row in table.items()
        },
    ))

    for policy, row in table.items():
        ops = sorted(row)
        wafs = [row[op]["waf"] for op in ops]
        # Aged devices amplify writes: every cell saw real GC traffic.
        assert all(waf > 1.0 for waf in wafs), policy
        # The steady-state trend: WAF falls as over-provisioning grows.
        # Adjacent steps may only regress within noise; the end-to-end drop
        # must be substantial for every policy.
        for tighter, looser in zip(wafs, wafs[1:]):
            assert looser <= tighter * 1.05, policy
        assert wafs[-1] < wafs[0] * 0.8, policy
