"""Figure 10: distribution of CRB sizes per workload (gamma = 4).

The paper measures an average CRB of ~14 bytes per group; the key property
is that conflict-resolution metadata stays tiny (well under the 256-byte
worst case).
"""

from __future__ import annotations

from repro.analysis.report import print_report, render_table
from repro.experiments.segments import crb_size_distribution

from benchmarks.conftest import CORE_SIMULATOR_WORKLOADS, memory_scale, run_once


def test_fig10_crb_size_distribution(benchmark):
    results = run_once(
        benchmark, crb_size_distribution, CORE_SIMULATOR_WORKLOADS, 4, memory_scale()
    )

    rows = [
        [workload, round(average, 1), round(p99, 1)]
        for workload, (average, p99) in results.items()
    ]
    print_report(render_table(
        ["workload", "average CRB bytes", "p99 CRB bytes"], rows,
        title="Figure 10: CRB size per LPA group (gamma = 4)"))

    for workload, (average, p99) in results.items():
        assert average < 256, f"{workload}: CRB average {average} exceeds one group"
        assert p99 <= 300
