"""Figure 21: LeaFTL performance as gamma grows (0, 1, 4, 16).

The paper reports a 1.3x performance improvement at gamma = 16 over
gamma = 0 (1.2x on the real SSD) thanks to the extra memory saved for the
data cache; mispredictions stay cheap (one extra read, Figure 24).
"""

from __future__ import annotations

from repro.analysis.report import print_report, render_series
from repro.experiments.performance import gamma_performance

from benchmarks.conftest import perf_setup, run_once

WORKLOADS = ("MSR-hm", "FIU-mail", "TPCC")
GAMMAS = (0, 4, 16)


def test_fig21_gamma_vs_performance(benchmark):
    setup = perf_setup()
    table = run_once(benchmark, gamma_performance, WORKLOADS, GAMMAS, setup)

    print_report(render_series(
        "Figure 21: LeaFTL read latency normalized to gamma = 0 (lower is better)",
        {wl: {f"gamma={g}": round(v, 3) for g, v in row.items()} for wl, row in table.items()},
    ))

    for workload, row in table.items():
        # A larger gamma must never make LeaFTL dramatically slower.
        assert row[16] <= 1.25, f"{workload}: gamma=16 slowed down by {row[16]:.2f}x"
