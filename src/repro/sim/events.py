"""A deterministic time-ordered event loop (the heart of the sim engine).

The loop owns the simulated clock.  Components schedule :class:`Event`
objects at absolute times; the loop pops them in ``(time, priority,
schedule-order)`` order and invokes their callbacks.  Two events with the
same timestamp and priority always fire in the order they were scheduled,
which makes every simulation run bit-reproducible — a property the
regression tests rely on when comparing the event-driven engine against the
synchronous fast path.

The design follows the classic discrete-event simulator split used by
WiscSee and FTL-SIM: an ``EventLoop`` plus a host frontend
(:mod:`repro.sim.frontend`) that admits requests at a configurable queue
depth, and resource schedulers (:mod:`repro.sim.nand`) that serialize
operations on shared hardware.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

#: Canonical event priorities.  Same-timestamp events fire in ascending
#: priority order, so foreground request handling always precedes background
#: completion bookkeeping, which precedes garbage-collection pipeline steps.
#: Keeping the ordering in one place makes the interleaving semantics of the
#: whole simulator auditable (and deterministic by construction).
PRIORITY_FOREGROUND = 0
PRIORITY_BACKGROUND = 1
PRIORITY_GC = 2


@dataclass
class Event:
    """One scheduled occurrence in simulated time.

    Attributes
    ----------
    time_us:
        Absolute simulated time at which the event fires.
    kind:
        Free-form tag (``"request_issue"``, ``"gc_program_done"``, ...)
        used by tests and tracing.
    callback:
        Invoked as ``callback(event)`` when the event fires; ``None`` makes
        the event a pure timestamp marker.
    payload:
        Arbitrary data carried to the callback.
    priority:
        Tie-breaker for same-timestamp events; lower fires first.
    seq:
        Monotonic schedule order, assigned by the loop (final tie-breaker).
    """

    time_us: float
    kind: str
    callback: Optional[Callable[["Event"], None]] = None
    payload: object = None
    priority: int = 0
    seq: int = -1
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent the callback from running when the event fires."""
        self.cancelled = True


class EventLoop:
    """A time-ordered event queue with a monotonic simulated clock."""

    def __init__(self, start_us: float = 0.0) -> None:
        self._now_us = start_us
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._seq = 0
        self.events_processed = 0
        #: Called with every processed event, before its callback runs.
        #: The determinism harness (:mod:`repro.verify`) hangs a trace
        #: digest here; ``None`` keeps the hot path branch-only.
        self.observer: Optional[Callable[[Event], None]] = None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def now_us(self) -> float:
        """Current simulated time (time of the last processed event)."""
        return self._now_us

    @property
    def pending(self) -> int:
        """Number of events still scheduled."""
        return len(self._queue)

    def __len__(self) -> int:
        return len(self._queue)

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next event, or ``None`` when the queue is empty."""
        return self._queue[0][0] if self._queue else None

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def schedule(
        self,
        time_us: float,
        kind: str,
        callback: Optional[Callable[[Event], None]] = None,
        payload: object = None,
        priority: int = 0,
    ) -> Event:
        """Schedule an event at ``time_us`` (clamped to the present).

        Scheduling in the past would make the clock run backwards, so such
        requests are clamped to ``now_us`` — they fire "immediately", after
        any event already scheduled for the current instant.
        """
        fire_at = max(time_us, self._now_us)
        event = Event(
            time_us=fire_at,
            kind=kind,
            callback=callback,
            payload=payload,
            priority=priority,
            seq=self._seq,
        )
        heapq.heappush(self._queue, (fire_at, priority, self._seq, event))
        self._seq += 1
        return event

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def step(self) -> Optional[Event]:
        """Process the next event; returns it, or ``None`` if queue is empty."""
        while self._queue:
            _, _, _, event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now_us = event.time_us
            self.events_processed += 1
            if self.observer is not None:
                self.observer(event)
            if event.callback is not None:
                event.callback(event)
            return event
        return None

    def run(self, until_us: Optional[float] = None, max_events: int = 50_000_000) -> int:
        """Drain the queue (optionally only up to ``until_us``); returns count.

        ``max_events`` is a runaway-loop backstop, far above anything a real
        trace replay schedules.
        """
        processed = 0
        while self._queue and processed < max_events:
            # Drop cancelled entries first so the time bound is checked
            # against the next event that would actually fire.
            while self._queue and self._queue[0][3].cancelled:
                heapq.heappop(self._queue)
            if not self._queue:
                break
            if until_us is not None and self._queue[0][0] > until_us:
                break
            if self.step() is not None:
                processed += 1
        if processed >= max_events:  # pragma: no cover - defensive
            raise RuntimeError(f"event loop exceeded {max_events} events")
        return processed
