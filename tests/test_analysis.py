"""Tests for the analysis helpers and the statistics recorders."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.latency import (
    histogram_cdf,
    latency_cdf,
    normalize,
    percentile,
    speedup,
    value_at_cdf,
)
from repro.analysis.memory import (
    format_bytes,
    geometric_mean,
    normalized_size,
    reduction_factor,
    reduction_table,
)
from repro.analysis.report import render_series, render_table
from repro.ssd.stats import LatencyRecorder, SSDStats


class TestLatencyHelpers:
    def test_percentile(self):
        samples = list(range(1, 101))
        assert percentile(samples, 0) == 1
        assert percentile(samples, 100) == 100
        assert percentile(samples, 50) == pytest.approx(50, abs=1)

    def test_percentile_empty(self):
        assert percentile([], 99) == 0.0

    def test_latency_cdf_points(self):
        cdf = latency_cdf([1, 2, 3, 4, 5], points=(0, 99))
        assert cdf[0] == 1
        assert cdf[99] == 5

    def test_normalize(self):
        normalized = normalize({"DFTL": 10.0, "LeaFTL": 5.0}, "DFTL")
        assert normalized["DFTL"] == 1.0
        assert normalized["LeaFTL"] == 0.5

    def test_normalize_missing_baseline(self):
        with pytest.raises(KeyError):
            normalize({"A": 1.0}, "B")

    def test_speedup(self):
        assert speedup({"DFTL": 10.0, "LeaFTL": 5.0}, over="DFTL", of="LeaFTL") == 2.0

    def test_histogram_cdf(self):
        cdf = dict(histogram_cdf({1: 90, 2: 9, 10: 1}))
        assert cdf[1] == pytest.approx(0.9)
        assert cdf[10] == pytest.approx(1.0)
        assert value_at_cdf({1: 90, 2: 9, 10: 1}, 0.99) == 2


class TestMemoryHelpers:
    def test_format_bytes(self):
        assert format_bytes(512) == "512.0 B"
        assert format_bytes(2048) == "2.0 KB"
        assert "MB" in format_bytes(5 * 1024 * 1024)

    def test_reduction_factor(self):
        assert reduction_factor(100, 25) == 4.0
        assert reduction_factor(100, 0) == float("inf")

    def test_reduction_table(self):
        table = reduction_table({"wl": {"DFTL": 100, "LeaFTL": 20}}, baseline="DFTL")
        assert table["wl"]["LeaFTL"] == 5.0

    def test_normalized_size(self):
        sizes = normalized_size({"g0": 100.0, "g16": 60.0}, "g0")
        assert sizes["g16"] == pytest.approx(0.6)

    @given(st.lists(st.floats(min_value=0.1, max_value=100), min_size=1, max_size=20))
    @settings(max_examples=50)
    def test_geometric_mean_bounded_by_min_max(self, values):
        gm = geometric_mean(values)
        assert min(values) <= gm * 1.0001
        assert gm <= max(values) * 1.0001


class TestReportRendering:
    def test_render_table_alignment(self):
        text = render_table(["a", "b"], [[1, 2.5], ["xyz", 0.001]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "b" in lines[2]
        assert len(lines) == 6

    def test_render_series(self):
        text = render_series("S", {"row": {"c1": 1.0, "c2": 2.0}})
        assert "row" in text and "c1" in text


class TestLatencyRecorder:
    def test_mean_and_percentiles(self):
        recorder = LatencyRecorder()
        for value in range(1, 1001):
            recorder.record(float(value))
        assert recorder.count == 1000
        assert recorder.mean_us == pytest.approx(500.5)
        assert recorder.percentile(99) >= 950
        assert recorder.max_us == 1000
        assert recorder.min_us == 1

    def test_reservoir_stays_bounded(self):
        recorder = LatencyRecorder(reservoir_size=100)
        for value in range(10_000):
            recorder.record(float(value))
        assert len(recorder.samples()) == 100
        assert recorder.count == 10_000

    def test_reservoir_sampling_is_reproducible(self):
        """Same seed, same stream -> identical reservoir past the bound."""
        first = LatencyRecorder(reservoir_size=64)
        second = LatencyRecorder(reservoir_size=64)
        for value in range(5_000):
            first.record(float(value))
            second.record(float(value))
        assert first.samples() == second.samples()
        assert first.percentile(99) == second.percentile(99)

    def test_reservoir_percentiles_track_distribution(self):
        """Uniform reservoir sampling keeps percentiles representative."""
        recorder = LatencyRecorder(reservoir_size=500)
        for value in range(20_000):
            recorder.record(float(value))
        # p50 of 0..19999 is ~10000; a 500-sample reservoir should land
        # within a few percent of it.
        assert abs(recorder.percentile(50) - 10_000) < 2_000
        assert recorder.percentile(0) < recorder.percentile(99)

    def test_empty_recorder(self):
        recorder = LatencyRecorder()
        assert recorder.mean_us == 0.0
        assert recorder.percentile(50) == 0.0


class TestSSDStats:
    def test_write_amplification(self):
        stats = SSDStats()
        stats.host_write_pages = 100
        stats.data_page_writes = 100
        stats.gc_page_writes = 30
        stats.translation_page_writes = 10
        assert stats.write_amplification == pytest.approx(1.4)

    def test_misprediction_ratio(self):
        stats = SSDStats()
        stats.translation_lookups = 200
        stats.mispredictions = 20
        assert stats.misprediction_ratio == pytest.approx(0.1)

    def test_cache_hit_ratio(self):
        stats = SSDStats()
        stats.cache_hits = 30
        stats.buffer_hits = 20
        stats.flash_reads_for_host = 50
        assert stats.cache_hit_ratio == pytest.approx(0.5)

    def test_summary_keys(self):
        summary = SSDStats().summary()
        for key in ("mean_latency_us", "write_amplification", "misprediction_ratio"):
            assert key in summary
