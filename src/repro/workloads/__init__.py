"""Workload generators and trace handling."""

from repro.workloads.database import (
    DATABASE_PROFILES,
    DATABASE_WORKLOAD_DESCRIPTIONS,
    DATABASE_WORKLOAD_NAMES,
    DatabaseProfile,
    DatabaseWorkload,
    database_profile,
    database_workload,
)
from repro.workloads.fiu import FIU_PROFILES, FIU_WORKLOAD_NAMES, fiu_profile, fiu_workload
from repro.workloads.msr import MSR_PROFILES, MSR_WORKLOAD_NAMES, msr_profile, msr_workload
from repro.workloads.multi_tenant import (
    TenantWorkload,
    fill_namespace,
    latency_sensitive_reader,
    sequential_writer,
    tenant_trace,
)
from repro.workloads.parser import (
    TraceParseError,
    parse_msr_line,
    parse_msr_trace,
    write_msr_trace,
)
from repro.workloads.synthetic import (
    SyntheticWorkload,
    WorkloadProfile,
    generate,
    jittered_run,
    sequential_run,
    strided_run,
    zipf_lpa,
)
from repro.workloads.trace import IORequest, READ, Trace, WRITE

__all__ = [
    "DATABASE_PROFILES",
    "DATABASE_WORKLOAD_DESCRIPTIONS",
    "DATABASE_WORKLOAD_NAMES",
    "DatabaseProfile",
    "DatabaseWorkload",
    "database_profile",
    "database_workload",
    "FIU_PROFILES",
    "FIU_WORKLOAD_NAMES",
    "fiu_profile",
    "fiu_workload",
    "MSR_PROFILES",
    "MSR_WORKLOAD_NAMES",
    "msr_profile",
    "msr_workload",
    "TenantWorkload",
    "fill_namespace",
    "latency_sensitive_reader",
    "sequential_writer",
    "tenant_trace",
    "TraceParseError",
    "parse_msr_line",
    "parse_msr_trace",
    "write_msr_trace",
    "SyntheticWorkload",
    "WorkloadProfile",
    "generate",
    "jittered_run",
    "sequential_run",
    "strided_run",
    "zipf_lpa",
    "IORequest",
    "READ",
    "WRITE",
    "Trace",
]
