"""Tests for the experiment harness (small, fast configurations)."""

from __future__ import annotations

import pytest

from repro.experiments.common import (
    ALL_WORKLOADS,
    ExperimentSetup,
    REAL_SSD_WORKLOADS,
    SCHEMES,
    SIMULATOR_WORKLOADS,
    build_ftl,
    build_ssd,
    run_experiment,
    run_schemes,
    workload_by_name,
    workload_for_setup,
)
from repro.experiments.memory import (
    average_reduction,
    mapping_footprints,
    memory_setup,
)


#: A deliberately small setup so harness tests stay fast.
FAST = ExperimentSetup(
    capacity_bytes=256 * 1024 * 1024,
    dram_bytes=256 * 1024,
    request_scale=0.01,
    footprint_scale=0.05,
    warmup_fraction=0.3,
    compaction_interval_writes=20_000,
)


class TestWorkloadRegistry:
    def test_all_workloads_resolvable(self):
        for name in ALL_WORKLOADS:
            trace = workload_by_name(name, request_scale=0.01)
            assert len(trace) > 0

    def test_workload_lists_match_paper(self):
        assert len(SIMULATOR_WORKLOADS) == 7   # 5 MSR + 2 FIU
        assert len(REAL_SSD_WORKLOADS) == 5    # Table 2
        assert set(SCHEMES) == {"DFTL", "SFTL", "LeaFTL"}

    def test_workload_fits_device(self):
        trace = workload_for_setup("MSR-usr", FAST)
        assert trace.max_lpa() < FAST.ssd_config().logical_pages


class TestBuilders:
    @pytest.mark.parametrize("scheme", list(SCHEMES) + ["PageMap"])
    def test_build_ftl(self, scheme):
        ftl = build_ftl(scheme, FAST)
        assert ftl.name.lower().startswith(scheme.lower()[:4])

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            build_ftl("bogus", FAST)

    def test_build_ssd_respects_gamma(self):
        setup = FAST.scaled(gamma=4)
        ssd = build_ssd("LeaFTL", setup)
        assert ssd.ftl.gamma == 4

    def test_setup_scaled_override(self):
        assert FAST.scaled(gamma=16).gamma == 16
        assert FAST.gamma == 0


class TestRunExperiment:
    def test_run_without_warmup(self):
        setup = FAST.scaled(warmup=False)
        result = run_experiment("MSR-hm", "LeaFTL", setup)
        assert result.mapping_full_bytes > 0
        assert result.stats.host_writes > 0

    def test_run_with_warmup_resets_stats(self):
        result = run_experiment("FIU-home", "DFTL", FAST)
        # Warm-up traffic must not be counted in the measured statistics.
        trace = workload_for_setup("FIU-home", FAST)
        assert result.stats.host_writes <= trace.write_pages + len(trace)

    def test_run_schemes_shares_trace(self):
        results = run_schemes("MSR-prxy", FAST.scaled(warmup=False))
        assert set(results) == set(SCHEMES)
        writes = {r.stats.host_write_pages for r in results.values()}
        assert len(writes) == 1  # identical workload replayed for each scheme

    def test_leaftl_details_populated(self):
        setup = FAST.scaled(warmup=False, gamma=4)
        result = run_experiment("FIU-mail", "LeaFTL", setup)
        assert result.segment_lengths
        assert result.level_counts
        assert sum(result.segment_type_counts) > 0


class TestMemoryExperiments:
    def test_leaftl_smaller_than_dftl(self):
        footprints = mapping_footprints(
            workloads=("MSR-usr",), request_scale=0.02
        )
        by_scheme = footprints["MSR-usr"]
        assert by_scheme["LeaFTL"] < by_scheme["DFTL"]
        assert by_scheme["SFTL"] < by_scheme["DFTL"]

    def test_average_reduction_positive(self):
        footprints = {
            "a": {"DFTL": 1000, "SFTL": 400, "LeaFTL": 100},
            "b": {"DFTL": 800, "SFTL": 300, "LeaFTL": 200},
        }
        assert average_reduction(footprints, "DFTL") > 1.0
        assert average_reduction(footprints, "SFTL") > 1.0

    def test_memory_setup_has_no_warmup(self):
        assert memory_setup().warmup is False
