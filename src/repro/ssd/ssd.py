"""The trace-driven SSD model that ties flash, FTL, cache, buffer and GC together.

This is the WiscSim-equivalent substrate of the reproduction.  It models an
SSD controller at the level of detail the LeaFTL evaluation depends on:

* a write buffer that batches host writes and programs them one flash block
  at a time, with LPA-sorted flushes (Section 3.3);
* an LRU read/write data cache whose capacity is whatever DRAM the mapping
  table leaves free — this is the mechanism that converts LeaFTL's memory
  savings into performance (Figure 16);
* per-channel latency accounting: every flash read/program/erase occupies
  its channel, so background flushes and GC delay later reads that land on
  the same channel;
* garbage collection with pluggable victim policies (greedy, cost-benefit,
  d-choices) and throttled wear leveling that relearn the mappings of
  migrated pages (Section 3.6); GC runs either as the classic synchronous
  reclaim loop (``SSDOptions.gc_mode="sync"``) or as a background event
  pipeline (``"background"``) that migrates one victim at a time through
  read → program → erase stages overlapping host I/O, with a hard
  watermark that throttles host writes when free blocks are critically
  low; host data and migrated (cold) data are programmed into separate
  allocator streams so they never share a flash block;
* OOB reverse mappings written with every page, including the
  ``[-gamma, +gamma]`` neighbour window LeaFTL needs to correct
  mispredictions with a single extra flash read (Section 3.5);
* verification of every translated read against the reverse mapping, which
  is how mispredictions are detected and accounted (Figure 24).

The simulator keeps a ground-truth ``LPA -> PPA`` map (the role the page
validity table plays in real firmware) that is used **only** to maintain
flash page validity for GC — never to answer host reads; reads always go
through the FTL under test.

Host commands are multi-page natively: a read spanning several pages is
translated in one :meth:`repro.ftl.base.FTL.translate_range` batch (one
learned-segment walk resolves a whole contiguous run in LeaFTL, one
translation-page fetch serves all its entries in DFTL/SFTL) and its flash
accesses are issued as per-channel chunks that proceed concurrently
through the NAND scheduler.  Single-page requests take the pre-batching
code path unchanged, which keeps single-page replay bit-exact across the
refactor.

Two replay engines are available (``SSDOptions.engine``):

* the **synchronous fast path** replays requests one at a time, each issued
  at the completion of its predecessor — the classic trace-driven model;
* the **event-driven engine** (:mod:`repro.sim`) admits up to
  ``SSDOptions.queue_depth`` requests concurrently through an NCQ-style
  host frontend and a time-ordered event loop, so foreground reads
  genuinely overlap the background flush/GC traffic earlier writes
  triggered.  With ``queue_depth = 1`` the two engines produce identical
  latencies and statistics (regression-tested); higher depths expose the
  channel contention behind Figure 18's tail latencies.

Two admission policies drive the event engine (``SSDOptions.replay_mode``):
**closed-loop** admission is completion-driven (a finished request admits
the next one), while **open-loop** admission fires each request at its
trace timestamp scaled by ``SSDOptions.time_scale`` — the WiscSee-style
replay that measures latency under load against *arrival* times instead of
queue depth.

Internally every operation takes an explicit issue clock (``at_us``), so
the same read/write/flush/GC code serves both engines: state changes apply
in submission order while timing is resolved through the per-channel/
per-die NAND scheduler.

Above the device, the NVMe-style multi-queue host interface
(:mod:`repro.host`) carves the logical space into namespaces and drives
the event loop with its own submission queues and arbitration, through the
:meth:`SimulatedSSD.run_frontend` / :meth:`SimulatedSSD.finalize_replay`
hooks; ``SSDOptions.arbiter`` names the default arbitration policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.config import DRAMBudget, SSDConfig
from repro.flash.allocator import BlockAllocator
from repro.flash.flash_array import FlashArray, PageState
from repro.flash.oob import OOBArea, validate_gamma_fits_oob
from repro.ftl.base import FTL
from repro.sim.events import Event, EventLoop
from repro.sim.frontend import HostFrontend, OpenLoopFrontend
from repro.sim.nand import NANDScheduler, TIMING_MODELS
from repro.workloads.trace import ReplayItem, as_request
from repro.ssd.cache import LRUDataCache
from repro.ssd.gc import (
    BackgroundGCController,
    GCPolicy,
    GCPolicyConfig,
    GreedyGCPolicy,
    make_gc_policy,
)
from repro.ssd.stats import SSDStats
from repro.ssd.wear_leveling import WearLeveler, WearLevelingConfig
from repro.ssd.write_buffer import WriteBuffer


class SimulationError(RuntimeError):
    """Raised when the simulated device reaches an inconsistent state."""


#: Valid values of :attr:`SSDOptions.engine`.
ENGINES = ("auto", "serial", "events")

#: Valid values of :attr:`SSDOptions.replay_mode`.
REPLAY_MODES = ("closed", "open")

#: Valid values of :attr:`SSDOptions.gc_mode`.
GC_MODES = ("sync", "background")

#: Which allocator write stream each program purpose lands in: host data is
#: hot, GC/wear-leveling migrations are cold (Section 3.6 stream separation).
STREAM_OF_PURPOSE = {"host": "hot", "gc": "cold", "wear": "cold"}


@dataclass
class SSDOptions:
    """Behavioural switches of the simulator (ablation knobs)."""

    #: Sort the write buffer by LPA before flushing (Section 3.3).
    sort_buffer_on_flush: bool = True
    #: Enable static wear leveling.
    wear_leveling: bool = True
    #: Raise on unrecoverable translation errors instead of falling back.
    strict: bool = True
    #: Host requests kept outstanding during trace replay (NCQ style);
    #: clamped to the device's ``SSDConfig.ncq_depth``.
    queue_depth: int = 1
    #: Replay engine: ``"auto"`` picks the event-driven engine whenever
    #: ``queue_depth > 1``; ``"serial"``/``"events"`` force one engine.
    engine: str = "auto"
    #: NAND timing model (see :class:`repro.sim.nand.NANDScheduler`):
    #: ``"bus"`` matches the classic per-channel accounting, ``"die"`` also
    #: serializes cell operations on the same die.
    timing_model: str = "bus"
    #: Replay admission policy: ``"closed"`` keeps up to ``queue_depth``
    #: requests outstanding (completion-driven); ``"open"`` admits each
    #: request at its trace timestamp regardless of completions, so
    #: latency-under-load is measured against arrival times.
    replay_mode: str = "closed"
    #: Multiplier on trace inter-arrival times in open-loop replay:
    #: ``0.5`` doubles the arrival rate, ``2.0`` halves it.
    time_scale: float = 1.0
    #: Garbage-collection scheduling: ``"sync"`` runs the classic blocking
    #: reclaim loop at flush time; ``"background"`` pipelines per-victim
    #: migrate/erase events through the event loop, overlapping host I/O
    #: (falls back to the synchronous loop when no event loop is attached,
    #: e.g. on the serial fast path or the final drain flush).
    gc_mode: str = "sync"
    #: Default submission-queue arbitration policy used when this device is
    #: driven through the multi-queue host interface
    #: (:class:`repro.host.interface.HostInterface`): ``"fifo"``,
    #: ``"round_robin"``, ``"weighted_round_robin"`` or
    #: ``"strict_priority"``.  Single-queue replays ignore it.
    arbiter: str = "round_robin"
    #: Observability mode (:data:`repro.obs.session.TELEMETRY_MODES`):
    #: ``"off"`` (default, zero per-event cost beyond observer-is-None
    #: checks), ``"trace"``, ``"metrics"`` or ``"on"`` (both).  Collectors
    #: never perturb scheduling, so determinism digests are unchanged.
    telemetry: str = "off"


class SimulatedSSD:
    """A trace-driven SSD with a pluggable flash translation layer."""

    def __init__(
        self,
        config: SSDConfig,
        ftl: FTL,
        dram_budget: Optional[DRAMBudget] = None,
        options: Optional[SSDOptions] = None,
        gc_config: Optional[GCPolicyConfig] = None,
        gc_policy: Optional[GCPolicy | str] = None,
        wear_config: Optional[WearLevelingConfig] = None,
    ) -> None:
        self.config = config
        self.ftl = ftl
        self.options = options or SSDOptions()
        self.dram_budget = dram_budget or DRAMBudget(dram_bytes=config.dram_size)
        if self.options.queue_depth < 1:
            raise ValueError("queue_depth must be at least 1")
        if self.options.engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}")
        if self.options.timing_model not in TIMING_MODELS:
            raise ValueError(f"timing_model must be one of {TIMING_MODELS}")
        if self.options.replay_mode not in REPLAY_MODES:
            raise ValueError(f"replay_mode must be one of {REPLAY_MODES}")
        if self.options.time_scale <= 0.0:
            raise ValueError("time_scale must be positive")
        if self.options.gc_mode not in GC_MODES:
            raise ValueError(f"gc_mode must be one of {GC_MODES}")
        # Imported lazily: the host package is the layer *above* this one
        # (host.namespace imports repro.ssd.stats), so a module-level
        # import here would create an import-time cycle.
        from repro.host.arbiter import ARBITERS

        if self.options.arbiter not in ARBITERS:
            raise ValueError(f"arbiter must be one of {ARBITERS}")

        gamma = self._ftl_oob_window()
        validate_gamma_fits_oob(gamma, config.oob_size)

        self.scheduler = NANDScheduler(
            config.channels,
            config.dies_per_channel,
            timing_model=self.options.timing_model,
        )
        self.flash = FlashArray(config, scheduler=self.scheduler)
        self.allocator = BlockAllocator(self.flash)
        self.write_buffer = WriteBuffer(
            capacity_pages=config.write_buffer_pages,
            sort_on_flush=self.options.sort_buffer_on_flush,
        )
        self.cache = LRUDataCache(capacity_pages=self._cache_capacity_pages())
        policy_config = gc_config or GCPolicyConfig(
            threshold=config.gc_threshold, restore=config.gc_restore
        )
        if gc_policy is None:
            self.gc_policy: GCPolicy = GreedyGCPolicy(policy_config)
        elif isinstance(gc_policy, str):
            self.gc_policy = make_gc_policy(gc_policy, policy_config)
        else:
            self.gc_policy = gc_policy
        self._bg_gc = BackgroundGCController(self, self.gc_policy)
        self.wear_leveler = (
            WearLeveler(wear_config) if self.options.wear_leveling else None
        )
        self.stats = SSDStats()

        #: Ground truth of the live flash page of every LPA (page validity).
        self._current_ppa: Dict[int, int] = {}
        self._now_us = 0.0
        self._prev_flush_finish_us = 0.0
        self._translation_reads_seen = 0
        self._translation_writes_seen = 0
        self._background_channel = 0
        self._in_gc = False
        self._measure_start_us = 0.0
        #: Event loop attached while the event-driven engine is replaying.
        self._loop: Optional[EventLoop] = None
        #: Per-event observer propagated to every replay's event loop
        #: (see :attr:`repro.sim.events.EventLoop.observer`).  The
        #: determinism harness (:mod:`repro.verify`) attaches its trace
        #: digest here so open-loop, closed-loop and multi-queue replays
        #: are all covered by one hook.
        self.event_observer: Optional[Callable[[Event], None]] = None
        #: Optional periodic mapping checkpointer
        #: (:class:`repro.ssd.recovery.MappingCheckpointer`); duck-typed to
        #: keep this module free of a circular import.  ``None`` (the
        #: default) costs a single predicate per flush and nothing else.
        self.checkpointer: Optional[Any] = None
        #: Telemetry session (:class:`repro.obs.session.Telemetry`);
        #: duck-typed for the same import-cycle reason as ``checkpointer``.
        #: ``None`` (telemetry off) keeps every hook at one predicate.
        self.telemetry: Optional[Any] = None
        #: Critical-path attribution of the host request currently inside
        #: :meth:`submit`: a component -> microseconds dict, or ``None``
        #: when breakdown capture is off (the telemetry session asks for it
        #: only while a tracer records spans).  Every accounting site below
        #: guards on ``is not None``, so the disabled path costs one
        #: predicate per site and allocates nothing.
        self._attr: Optional[Dict[str, float]] = None
        #: Component dict of the *page* currently resolving on the read
        #: path; multi-page commands keep only the slowest page's dict
        #: (the critical path), tracked via ``_attr_best``.
        self._page_attr: Optional[Dict[str, float]] = None
        self._attr_best: Optional[Dict[str, float]] = None
        self._attr_best_finish = 0.0
        #: Completion horizon of the last urgent (hard-watermark) reclaim;
        #: write backpressure up to this horizon is GC throttling, beyond
        #: it plain flush-drain wait.
        self._throttle_horizon_us = 0.0
        if self.options.telemetry != "off":
            # Lazy import: repro.obs sits above this module in the layer
            # stack (its registry imports repro.ssd.stats).
            from repro.obs.session import attach_telemetry

            attach_telemetry(self, self.options.telemetry)

    # ------------------------------------------------------------------ #
    # Small helpers
    # ------------------------------------------------------------------ #
    def _ftl_oob_window(self) -> int:
        window = getattr(self.ftl, "oob_window", None)
        return int(window()) if callable(window) else 0

    def _cache_capacity_pages(self) -> int:
        cache_bytes = self.dram_budget.cache_bytes(self.ftl.resident_bytes())
        return max(1, cache_bytes // self.config.page_size)

    @property
    def now_us(self) -> float:
        """Current simulated time in microseconds."""
        return self._now_us

    @property
    def effective_queue_depth(self) -> int:
        """Replay concurrency: the requested depth, capped by the device NCQ."""
        return min(self.options.queue_depth, self.config.ncq_depth)

    @property
    def logical_pages(self) -> int:
        return self.config.logical_pages

    def _horizon_us(self) -> float:
        """Latest simulated time any resource is reserved to.

        The serial clock lags reservations made by the final flush/GC, so
        both the simulated end time and the utilization denominator use
        the maximum of the clock and every channel's busy horizon.
        """
        busiest = max(
            (self.flash.channel_busy_until(c) for c in range(self.config.channels)),
            default=0.0,
        )
        return max(self._now_us, busiest)

    def _clock(self, at_us: Optional[float]) -> float:
        """Resolve an operation's issue time (``None`` = the serial clock)."""
        return self._now_us if at_us is None else at_us

    def _advance(self, finish_us: float) -> None:
        """Move the serial clock forward to the latest completion seen."""
        if finish_us > self._now_us:
            self._now_us = finish_us

    def quiesce(self) -> float:
        """Let all in-flight flash work finish (in simulated time).

        Advances the device clock to the busiest channel's horizon, so the
        next request starts on idle hardware.  Call between an aging /
        warm-up phase and a measured phase: otherwise the first measured
        requests queue behind the warm-up's final flush/GC reservations and
        the measured tail reflects the warm-up, not the workload.
        """
        self._advance(self._horizon_us())
        return self._now_us

    def begin_measurement(self) -> None:
        """Reset the statistics and anchor measured time at the present.

        Call after a warm-up phase: subsequent ``run()`` calls report
        ``stats.measured_time_us`` relative to this point, so throughput
        numbers exclude the warm-up makespan.
        """
        self.stats = SSDStats()
        self._measure_start_us = self._now_us

    def _notify_background(self, kind: str, finish_us: float) -> None:
        """Publish a background flash completion to the event loop, if any."""
        if self._loop is not None:
            self._loop.schedule(
                finish_us, kind, self._on_background_done, priority=1
            )

    def _on_background_done(self, event: Event) -> None:
        self.stats.background_completions += 1

    def _check_lpa(self, lpa: int) -> None:
        if not 0 <= lpa < self.config.logical_pages:
            raise ValueError(f"LPA {lpa} outside the device ({self.config.logical_pages} pages)")

    def _next_background_channel(self) -> int:
        self._background_channel = (self._background_channel + 1) % self.config.channels
        return self._background_channel

    # ------------------------------------------------------------------ #
    # Translation-page traffic accounting (DFTL / SFTL)
    # ------------------------------------------------------------------ #
    def _sync_translation_counters(self, start_us: float, foreground: bool) -> float:
        """Charge flash time for translation-page I/O the FTL just performed.

        Returns the completion time of that I/O; ``start_us`` when none
        happened.  Foreground charges (read path) are serial with the host
        request; background charges only occupy a channel.
        """
        reads = self.ftl.stats.translation_page_reads - self._translation_reads_seen
        writes = self.ftl.stats.translation_page_writes - self._translation_writes_seen
        self._translation_reads_seen = self.ftl.stats.translation_page_reads
        self._translation_writes_seen = self.ftl.stats.translation_page_writes
        if reads == 0 and writes == 0:
            return start_us
        self.stats.translation_page_reads += reads
        self.stats.translation_page_writes += writes
        finish = start_us
        background_finish = start_us
        for _ in range(reads):
            channel = self._next_background_channel()
            done = self.flash.occupy_channel(channel, start_us, self.config.read_latency_us)
            finish = max(finish, done) if foreground else finish
            background_finish = max(background_finish, done)
        for _ in range(writes):
            channel = self._next_background_channel()
            done = self.flash.occupy_channel(channel, start_us, self.config.write_latency_us)
            finish = max(finish, done) if foreground else finish
            background_finish = max(background_finish, done)
        if self.telemetry is not None:
            self.telemetry.note_translation(
                start_us, background_finish, reads, writes, foreground
            )
        return finish

    # ------------------------------------------------------------------ #
    # Host write path
    # ------------------------------------------------------------------ #
    def write(self, lpa: int, at_us: Optional[float] = None) -> float:
        """Write one logical page; returns the request latency in microseconds.

        ``at_us`` is the issue time of the request (the event-driven engine
        passes it explicitly; the synchronous path uses the serial clock).
        """
        if not 0 <= lpa < self.config.logical_pages:
            self._check_lpa(lpa)
        start = self._now_us if at_us is None else at_us
        stats = self.stats
        stats.host_writes += 1
        stats.host_write_pages += 1

        self.cache.insert(lpa, dirty=True)
        buffer = self.write_buffer
        buffer.add(lpa)

        latency = self.config.dram_latency_us
        attr = self._attr
        if attr is not None:
            attr["dram_us"] = attr.get("dram_us", 0.0) + latency
        if buffer.is_full:
            # Double-buffering backpressure: if the previous flush is still
            # draining to flash, this write waits for it.
            wait = max(0.0, self._prev_flush_finish_us - start)
            if wait > 0.0 and attr is not None:
                key = (
                    "gc_wait_us"
                    if self._prev_flush_finish_us <= self._throttle_horizon_us
                    else "flush_wait_us"
                )
                attr[key] = attr.get(key, 0.0) + wait
            latency += wait
            done = start + latency
            if done > self._now_us:
                self._now_us = done
            self._flush_buffer(at_us=done)
        else:
            done = start + latency
            if done > self._now_us:
                self._now_us = done
        stats.write_latency.record(latency)
        return latency

    def flush(self, at_us: Optional[float] = None) -> None:
        """Drain the write buffer (e.g. at the end of a trace replay)."""
        if len(self.write_buffer):
            self._flush_buffer(at_us=at_us)

    def _flush_buffer(self, at_us: Optional[float] = None) -> None:
        clock = self._clock(at_us)
        lpas = self.write_buffer.drain()
        if not lpas:
            return
        self.stats.buffer_flushes += 1
        finish = self._program_batch(lpas, purpose="host", at_us=clock)
        self._prev_flush_finish_us = max(self._prev_flush_finish_us, finish)
        if self.checkpointer is not None:
            self.checkpointer.note_programs(len(lpas), clock)
        self.stats.mapping_bytes_samples.append(self.ftl.resident_bytes())
        self.cache.resize(self._cache_capacity_pages())
        self._maybe_collect_garbage(at_us=clock)
        self._maybe_level_wear(at_us=clock)
        self._throttle_if_critical(clock)
        if self.telemetry is not None:
            # Serial replays process few loop events, so the flush clock is
            # the sampling heartbeat that keeps metrics flowing there.
            self.telemetry.pump(clock)

    # ------------------------------------------------------------------ #
    # Programming batches (host flush, GC migration, wear leveling)
    # ------------------------------------------------------------------ #
    def _program_batch(
        self, lpas: Sequence[int], purpose: str, at_us: Optional[float] = None
    ) -> float:
        """Program ``lpas`` at the purpose's stream frontier, learn mappings.

        Writes are tagged by purpose: host data goes to the **hot** stream,
        GC/wear migrations to the **cold** stream — each stream fills its
        own open block to the end before taking a fresh one, so short-lived
        host pages never share a block with long-lived migrated pages.

        Returns the completion time of the last program operation.  The
        programs are *issued* at ``at_us``; their completion times come from
        the NAND scheduler, so they extend into the future and delay any
        foreground read that lands on the same channel meanwhile.
        """
        clock = self._clock(at_us)
        finish = clock
        stream = STREAM_OF_PURPOSE[purpose]
        index = 0
        while index < len(lpas):
            block, next_ppa, room = self.allocator.frontier(stream)
            chunk = lpas[index : index + room]
            index += len(chunk)
            finish = max(
                finish, self._program_chunk(block, next_ppa, chunk, purpose, clock)
            )
        self._notify_background(f"{purpose}_program_done", finish)
        return finish

    def _program_chunk(
        self, block: int, first_ppa: int, chunk: Sequence[int], purpose: str, at_us: float
    ) -> float:
        mappings: List[Tuple[int, int]] = [
            (lpa, first_ppa + offset) for offset, lpa in enumerate(chunk)
        ]
        ppa_to_lpa = {ppa: lpa for lpa, ppa in mappings}

        current_ppa = self._current_ppa
        current_ppa_get = current_ppa.get
        lpas = list(chunk)
        old_ppas = [current_ppa_get(lpa) for lpa in lpas]
        # One batched flash call programs the whole run: page-state updates,
        # OOB windows, old-copy invalidation and the per-page scheduler
        # timing chain all happen inside (bit-identical to per-page calls).
        finish = self.flash.program_run(
            first_ppa, lpas, old_ppas, self._ftl_oob_window(), ppa_to_lpa, at_us
        )
        current_ppa.update(mappings)
        if purpose == "host":
            mark_clean = self.cache.mark_clean
            for lpa in lpas:
                mark_clean(lpa)
        self._record_programs(purpose, len(mappings))
        self.allocator.seal_if_full(block)

        self.ftl.update_batch(mappings)
        self._sync_translation_counters(at_us, foreground=False)
        return finish

    def _record_programs(self, purpose: str, pages: int) -> None:
        if purpose == "host":
            self.stats.data_page_writes += pages
        elif purpose == "gc":
            self.stats.gc_page_writes += pages
        elif purpose == "wear":
            self.stats.wl_page_moves += pages
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown program purpose {purpose!r}")

    # ------------------------------------------------------------------ #
    # Host read path
    # ------------------------------------------------------------------ #
    def read(self, lpa: int, at_us: Optional[float] = None) -> float:
        """Read one logical page; returns the request latency in microseconds.

        ``at_us`` is the issue time of the request (the event-driven engine
        passes it explicitly; the synchronous path uses the serial clock).
        """
        if not 0 <= lpa < self.config.logical_pages:
            self._check_lpa(lpa)
        start = self._now_us if at_us is None else at_us
        stats = self.stats
        stats.host_reads += 1
        stats.host_read_pages += 1

        attr = self._attr
        if lpa in self.write_buffer:
            stats.buffer_hits += 1
            latency = self.config.dram_latency_us
            if attr is not None:
                attr["dram_us"] = attr.get("dram_us", 0.0) + latency
        elif self.cache.lookup(lpa):
            stats.cache_hits += 1
            latency = self.config.dram_latency_us
            if attr is not None:
                attr["dram_us"] = attr.get("dram_us", 0.0) + latency
        else:
            latency = self._read_from_flash(lpa, start)
        done = start + latency
        if done > self._now_us:
            self._now_us = done
        stats.read_latency.record(latency)
        return latency

    def _timed_host_read(self, ppa: int, clock: float) -> float:
        """Read a data page for the host, accounting queueing-wait time.

        The stall (time the read queued behind earlier operations on its
        channel bus or die — buffer flushes, GC migrations, other
        outstanding requests) is the direct measure of background traffic
        delaying foreground reads.  It is derived from the reservation the
        scheduler actually granted, so it is exact under both timing
        models.
        """
        finish = self.flash.read_page(ppa, now_us=clock)
        stall = finish - clock - self.config.read_latency_us
        if stall > 0.0:
            self.stats.read_stall_us += stall
        page_attr = self._page_attr
        if page_attr is not None:
            if stall > 0.0:
                # Stalls while the GC pipeline is mid-victim (or a sync
                # reclaim is in progress) are GC interference; otherwise
                # the read queued behind ordinary channel traffic (flush
                # programs, other requests, translation I/O).
                key = (
                    "gc_wait_us"
                    if (self._in_gc or self._bg_gc.running)
                    else "chan_wait_us"
                )
                page_attr[key] = page_attr.get(key, 0.0) + stall
                page_attr["nand_us"] = (
                    page_attr.get("nand_us", 0.0) + (finish - clock - stall)
                )
            else:
                page_attr["nand_us"] = page_attr.get("nand_us", 0.0) + (finish - clock)
        return finish

    def _read_from_flash(self, lpa: int, start: float) -> float:
        translation = self.ftl.translate(lpa)
        clock = self._sync_translation_counters(start, foreground=True)
        attr = self._attr
        if attr is not None and clock > start:
            attr["translate_us"] = attr.get("translate_us", 0.0) + (clock - start)

        if translation.ppa is None:
            # Reading unwritten space: served as zeroes from the controller.
            self.stats.unmapped_reads += 1
            if attr is not None:
                attr["dram_us"] = (
                    attr.get("dram_us", 0.0) + self.config.dram_latency_us
                )
            return max(clock - start, 0.0) + self.config.dram_latency_us

        self.stats.translation_lookups += 1
        # Single-page command: the page's components are the request's.
        self._page_attr = attr
        finish = self._read_resolved_page(lpa, translation.ppa, clock)
        self._page_attr = None
        self.stats.flash_reads_for_host += 1
        self.cache.insert(lpa, dirty=False)
        return finish - start

    def _read_resolved_page(self, lpa: int, ppa: int, clock: float) -> float:
        """Read the data page a translation resolved to; returns completion.

        Handles the two recovery paths shared by the serial and batched
        read paths: predictions landing on a FREE page (possible at block
        boundaries with gamma > 0) fall back to the nearest programmed page
        of the error window, and mispredictions are corrected through the
        OOB reverse mapping at one extra flash read.
        """
        flash = self.flash
        page_attr = self._page_attr
        if not 0 <= ppa < flash.geometry.total_pages or flash.is_free(ppa):
            # The learned model pointed past the programmed region of a block
            # (or, within gamma of the array edges, past the array itself):
            # read the nearest programmed page of the error window instead and
            # correct from its OOB, which keeps the cost at two flash reads.
            fallback = self._nearest_programmed_page(lpa, ppa)
            if fallback is None:
                finish = self._fail_translation(lpa, ppa, clock)
                if page_attr is not None and finish > clock:
                    page_attr["extra_read_us"] = (
                        page_attr.get("extra_read_us", 0.0) + (finish - clock)
                    )
                return finish
            finish = self._timed_host_read(fallback, clock)
            if flash.lpa_of(fallback) != lpa:
                corrected = self._correct_misprediction(lpa, ppa, fallback, finish)
                if page_attr is not None and corrected > finish:
                    page_attr["extra_read_us"] = (
                        page_attr.get("extra_read_us", 0.0) + (corrected - finish)
                    )
                finish = corrected
            return finish
        finish = self._timed_host_read(ppa, clock)
        if flash.lpa_of(ppa) != lpa:
            corrected = self._correct_misprediction(lpa, ppa, ppa, finish)
            if page_attr is not None and corrected > finish:
                page_attr["extra_read_us"] = (
                    page_attr.get("extra_read_us", 0.0) + (corrected - finish)
                )
            finish = corrected
        return finish

    def _nearest_programmed_page(self, lpa: int, predicted_ppa: int) -> Optional[int]:
        """The programmed page of the ±gamma window closest to the prediction."""
        gamma = max(self._ftl_oob_window(), 1)
        total = self.flash.geometry.total_pages
        for distance in range(0, gamma + 1):
            for candidate in (predicted_ppa - distance, predicted_ppa + distance):
                if 0 <= candidate < total and self.flash.page_state(candidate) is not PageState.FREE:
                    return candidate
        return None

    def _correct_misprediction(
        self, lpa: int, predicted_ppa: int, read_ppa: int, clock: float
    ) -> float:
        """Recover the true PPA after a misprediction (Section 3.5).

        ``read_ppa`` is the page whose data and OOB were just fetched; its
        OOB stores the reverse mappings of its ±gamma neighbourhood, so the
        correction normally costs exactly one more flash read.  If the OOB
        cannot resolve the LPA (the window crossed a block boundary when the
        page was written), the simulator falls back to scanning the error
        window page by page, which is the paper's baseline log(gamma)
        strategy.
        """
        self.stats.mispredictions += 1
        oob = self.flash.oob_of(read_ppa)
        resolver = getattr(self.ftl, "resolve_misprediction", None)
        correct_ppa: Optional[int] = None
        if oob is not None and callable(resolver):
            correct_ppa = resolver(lpa, read_ppa, oob)

        if (
            correct_ppa is not None
            and 0 <= correct_ppa < self.flash.geometry.total_pages
            and self.flash.lpa_of(correct_ppa) == lpa
        ):
            finish = self.flash.read_page(correct_ppa, now_us=clock)
            self.stats.misprediction_extra_reads += 1
            return finish

        # OOB could not resolve: scan the error window around the prediction.
        gamma = max(self._ftl_oob_window(), 1)
        total = self.flash.geometry.total_pages
        finish = clock
        for candidate in range(predicted_ppa - gamma, predicted_ppa + gamma + 1):
            if candidate == read_ppa or not 0 <= candidate < total:
                continue
            if self.flash.page_state(candidate) is PageState.FREE:
                continue
            finish = self.flash.read_page(candidate, now_us=finish)
            self.stats.misprediction_extra_reads += 1
            if self.flash.lpa_of(candidate) == lpa:
                return finish
        return self._fail_translation(lpa, predicted_ppa, finish)

    def _fail_translation(
        self, lpa: int, predicted_ppa: Optional[int], clock: float
    ) -> float:
        """Last-resort handling of an unrecoverable translation."""
        if self.options.strict:
            raise SimulationError(
                f"unrecoverable misprediction for LPA {lpa}: predicted PPA {predicted_ppa}"
            )
        correct_ppa = self._current_ppa.get(lpa)
        if correct_ppa is None:
            raise SimulationError(f"LPA {lpa} has no live flash page")
        finish = self.flash.read_page(correct_ppa, now_us=clock)
        self.stats.misprediction_extra_reads += 1
        return finish

    # ------------------------------------------------------------------ #
    # Garbage collection
    # ------------------------------------------------------------------ #
    def _maybe_collect_garbage(self, at_us: Optional[float] = None) -> None:
        clock = self._clock(at_us)
        if self.options.gc_mode == "background" and self._loop is not None:
            # Background mode: hand reclaim to the event pipeline, which
            # overlaps migrations with host I/O (one victim in flight).
            self._bg_gc.maybe_start(clock)
            return
        if (
            self._in_gc
            or self._bg_gc.running
            or not self.gc_policy.should_collect(self.allocator)
        ):
            return
        self._in_gc = True
        try:
            self.stats.gc_invocations += 1
            while not self.gc_policy.should_stop(self.allocator):
                free_before = self.allocator.free_block_count()
                urgent = self.gc_policy.below_hard_watermark(self.allocator)
                victims = self._bounded_victims(
                    self.gc_policy.select_victims(
                        self.flash, self.allocator, urgent=urgent
                    )
                )
                if not victims:
                    break
                self._collect_blocks(victims, purpose="gc", at_us=clock)
                if self.allocator.free_block_count() <= free_before:
                    # No net space reclaimed (victims were fully valid):
                    # stop rather than amplify writes indefinitely.
                    break
        finally:
            self._in_gc = False

    def _throttle_if_critical(self, clock: float) -> None:
        """Hard watermark: stall host writes behind an urgent reclaim.

        When the free pool drops below the hard watermark (background GC
        lagging a write burst), the device reclaims synchronously and the
        reclaim's completion time extends the flush horizon — the next
        buffer-filling write waits for it through the double-buffering
        backpressure, which is how real controllers throttle hosts.
        """
        policy = self.gc_policy
        if not policy.below_hard_watermark(self.allocator):
            return
        self.stats.gc_urgent_collections += 1
        finish = clock
        guard = self.allocator.total_blocks + 1
        while policy.below_hard_watermark(self.allocator) and guard > 0:
            guard -= 1
            free_before = self.allocator.free_block_count()
            victims = policy.select_victims(self.flash, self.allocator, urgent=True)
            in_flight = self._bg_gc.in_flight
            victims = self._bounded_victims(
                [b for b in victims if b != in_flight][:4]
            )
            if not victims:
                break
            finish = max(
                finish, self._collect_blocks(victims, purpose="gc", at_us=finish)
            )
            if self.allocator.free_block_count() <= free_before:
                break
        stall = max(0.0, finish - clock)
        if stall > 0.0:
            self.stats.gc_write_throttle_us += stall
            self._prev_flush_finish_us = max(self._prev_flush_finish_us, finish)
            self._throttle_horizon_us = max(self._throttle_horizon_us, finish)

    def _bounded_victims(self, victims: Sequence[int]) -> List[int]:
        """Prefix of ``victims`` whose migration fits the current free pool.

        A migration batch consumes free blocks *before* the victims' erases
        release any, so an unbounded batch can exhaust the pool mid-flight
        on a small or nearly-full device.  Zero-valid victims cost nothing;
        the first space-consuming victim is always kept so reclaim can make
        progress even when the pool is down to its last blocks.
        """
        pages_per_block = self.config.pages_per_block
        room = max(0, self.allocator.free_block_count() - 1) * pages_per_block
        chosen: List[int] = []
        migrating = False
        pending = 0
        for block in victims:
            pending += self.flash.valid_page_count(block)
            if migrating and pending > room:
                break
            chosen.append(block)
            migrating = migrating or self.flash.valid_page_count(block) > 0
        return chosen

    def _collect_blocks(
        self, blocks: Sequence[int], purpose: str, at_us: Optional[float] = None
    ) -> float:
        """Migrate the valid pages of several victims, then erase them.

        Valid pages from all victims are packed into shared destination
        blocks (one migration batch), which is what lets GC reclaim space
        even when every victim still holds some valid data.  Returns the
        completion time of the last migration/erase operation.
        """
        clock = self._clock(at_us)
        finish = clock
        lpas: List[int] = []
        flash = self.flash
        lpa_of = flash.lpa_of
        append_lpa = lpas.append
        for block in blocks:
            if purpose == "gc":
                self.stats.gc_victim_blocks += 1
            victims = flash.valid_ppas_of_block(block)
            flash.read_page_run(victims, now_us=clock)
            for ppa in victims:
                lpa = lpa_of(ppa)
                if lpa is None:  # pragma: no cover - defensive
                    raise SimulationError(f"valid page {ppa} without reverse mapping")
                append_lpa(lpa)
            self.stats.gc_page_reads += len(victims)
        if lpas:
            # Section 3.6: migrated pages are sorted by LPA and relearned,
            # exactly like a regular buffer flush.
            finish = max(
                finish,
                self._program_batch(sorted(set(lpas)), purpose=purpose, at_us=clock),
            )
        erase_finish = clock
        erased = False
        for block in blocks:
            if self.flash.valid_page_count(block):
                # A migrated LPA was overwritten concurrently; skip for now.
                continue
            erase_finish = max(
                erase_finish, self.flash.erase_block(block, now_us=clock)
            )
            erased = True
            if purpose == "gc":
                self.stats.gc_block_erases += 1
            self.allocator.release_block(block)
        if erased:
            finish = max(finish, erase_finish)
            self._notify_background(f"{purpose}_erase_done", erase_finish)
        return finish

    def _collect_block(
        self, block: int, purpose: str, at_us: Optional[float] = None
    ) -> None:
        """Migrate and erase a single block (wear-leveling path)."""
        self._collect_blocks([block], purpose=purpose, at_us=at_us)

    # ------------------------------------------------------------------ #
    # Wear leveling
    # ------------------------------------------------------------------ #
    def _maybe_level_wear(self, at_us: Optional[float] = None) -> None:
        leveler = self.wear_leveler
        if leveler is None or self._bg_gc.running or not leveler.due(self.flash):
            # While the background GC pipeline is mid-flight its victim must
            # not be stolen by a wear-leveling migration; wear evens out on
            # the next quiet check instead.  ``due()`` is pure, so a skipped
            # check here does not consume the throttle window.
            return
        if not leveler.imbalanced(self.flash):
            return
        # Only an actual leveling pass restarts the throttle window.
        leveler.acknowledge(self.flash)
        clock = self._clock(at_us)
        for block in leveler.select_cold_blocks(self.flash, self.allocator):
            self._collect_block(block, purpose="wear", at_us=clock)

    # ------------------------------------------------------------------ #
    # Power failure
    # ------------------------------------------------------------------ #
    def power_fail(self, at_us: Optional[float] = None) -> Dict[int, int]:
        """Simulate a sudden power loss: every DRAM structure is destroyed.

        What dies: the write buffer (its unflushed pages were never durable
        — counted in ``stats.buffered_pages_lost``), the data cache, the
        FTL's in-DRAM mapping state (the FTL object survives as a Python
        object but its tables are garbage until recovery rebuilds them),
        the background-GC pipeline and the ground-truth validity map.  What
        survives is exactly the flash substrate: page states, per-page LPA
        back-references, stored OOB areas and erase counters.

        Returns the durability **oracle**: the last-acked flash location of
        every LPA at the instant of the crash.  Programs apply their state
        atomically at issue, so flash is never torn — the oracle is simply
        a copy of the validity map, and the differential recovery tests
        assert every oracle LPA reads back after recovery.

        Between ``power_fail()`` and :func:`repro.ssd.recovery.recover` the
        device must not serve host I/O (behaviour is undefined, exactly as
        on real hardware).
        """
        clock = self._clock(at_us)
        self._advance(clock)
        oracle = dict(self._current_ppa)
        self.stats.power_failures += 1
        self.stats.buffered_pages_lost += self.write_buffer.discard()
        self.cache.clear()
        self._current_ppa.clear()
        self._bg_gc = BackgroundGCController(self, self.gc_policy)
        self._in_gc = False
        self._loop = None
        if self.checkpointer is not None:
            self.checkpointer.on_power_fail()
        return oracle

    # ------------------------------------------------------------------ #
    # Trace replay
    # ------------------------------------------------------------------ #
    def submit(
        self, op: str, lpa: int, npages: int = 1, at_us: Optional[float] = None
    ) -> float:
        """Issue one host request at ``at_us``; returns its completion time.

        Multi-page commands are first-class: a read spanning several pages
        is translated in one :meth:`FTL.translate_range` batch and its flash
        accesses are issued concurrently, split into per-channel chunks that
        the NAND scheduler arbitrates — so a run striped over k channels
        completes in roughly one read time, not k.  Multi-page writes stream
        into the DRAM write buffer page by page (the buffer, not the NAND
        path, absorbs them).  Single-page requests take exactly the
        pre-batching code path, which keeps single-page replay bit-exact.

        Pages running past the end of the logical space are clipped and
        counted in ``stats.clipped_pages``.
        """
        if npages <= 0:
            raise ValueError("npages must be positive")
        if op not in ("R", "W"):
            raise ValueError(f"unknown operation {op!r}")
        if lpa < 0:
            raise ValueError(f"LPA {lpa} must be non-negative")
        clock = self._clock(at_us)
        end = lpa + npages
        logical_pages = self.config.logical_pages
        if end > logical_pages:
            end = logical_pages
            self.stats.clipped_pages += lpa + npages - (end if end > lpa else lpa)
            if end <= lpa:
                return clock
        telemetry = self.telemetry
        attr: Optional[Dict[str, float]] = None
        if telemetry is not None and getattr(telemetry, "wants_breakdowns", False):
            attr = {}
            self._attr = attr
        start = clock
        try:
            if op == "W":
                for page in range(lpa, end):
                    clock += self.write(page, at_us=clock)
                finish = clock
            elif end - lpa == 1:
                finish = clock + self.read(lpa, at_us=clock)
            else:
                finish = self._read_multi(lpa, end - lpa, clock)
        finally:
            self._attr = None
        if attr is not None:
            telemetry.note_request_breakdown(attr, finish - start)
        return finish

    def _read_multi(self, lpa: int, npages: int, start: float) -> float:
        """Serve one multi-page read command as a batch; returns completion.

        Pages resident in DRAM (write buffer or data cache) complete at
        DRAM latency.  The remaining pages form contiguous runs, each
        translated with a single :meth:`FTL.translate_range` call, then
        issued to flash grouped by channel: chunks on different channels
        proceed concurrently while pages of the same chunk queue on their
        channel bus — the striping the NAND scheduler arbitrates.  Each
        page's latency (its completion minus the command's issue time) is
        recorded individually; the command completes when its slowest page
        does.
        """
        self.stats.host_reads += npages
        self.stats.host_read_pages += npages
        attr = self._attr
        if attr is not None:
            self._attr_best = None
            self._attr_best_finish = start
        finish = start
        runs: List[List[int]] = []
        for page in range(lpa, lpa + npages):
            if page in self.write_buffer:
                self.stats.buffer_hits += 1
            elif self.cache.lookup(page):
                self.stats.cache_hits += 1
            else:
                if runs and runs[-1][-1] == page - 1:
                    runs[-1].append(page)
                else:
                    runs.append([page])
                continue
            latency = self.config.dram_latency_us
            self.stats.read_latency.record(latency)
            done = start + latency
            if attr is not None and done >= self._attr_best_finish:
                self._attr_best = {"dram_us": latency}
                self._attr_best_finish = done
            if done > finish:
                finish = done
        for run in runs:
            done = self._read_run_from_flash(run, start)
            if done > finish:
                finish = done
        if attr is not None:
            # The command completes when its slowest page does, so that
            # page's components *are* the request's critical path.
            best = self._attr_best
            if best is not None:
                for key, value in best.items():
                    attr[key] = attr.get(key, 0.0) + value
            self._attr_best = None
        self._advance(finish)
        return finish

    def _read_run_from_flash(self, pages: Sequence[int], start: float) -> float:
        """Translate one contiguous run in a batch and issue it striped.

        Returns the completion time of the slowest page.  Foreground
        translation flash traffic (DFTL/SFTL page fetches) is serial with
        the run — every data read issues after it completes — exactly as in
        the single-page path.
        """
        translations = self.ftl.translate_range(pages[0], len(pages))
        clock = self._sync_translation_counters(start, foreground=True)
        attr = self._attr
        translate_us = clock - start if clock > start else 0.0
        finish = start
        chunks: Dict[int, List[Tuple[int, int]]] = {}
        for page, translation in zip(pages, translations):
            if translation.ppa is None:
                # Unwritten space: served as zeroes from the controller.
                self.stats.unmapped_reads += 1
                latency = max(clock - start, 0.0) + self.config.dram_latency_us
                self.stats.read_latency.record(latency)
                done = start + latency
                if attr is not None and done >= self._attr_best_finish:
                    candidate = {"dram_us": self.config.dram_latency_us}
                    if translate_us > 0.0:
                        candidate["translate_us"] = translate_us
                    self._attr_best = candidate
                    self._attr_best_finish = done
                if done > finish:
                    finish = done
                continue
            self.stats.translation_lookups += 1
            chunks.setdefault(self._channel_of_prediction(translation.ppa), []).append(
                (page, translation.ppa)
            )
        stats = self.stats
        record_latency = stats.read_latency.record
        insert = self.cache.insert
        read_resolved = self._read_resolved_page
        for channel in sorted(chunks):
            for page, ppa in chunks[channel]:
                if attr is not None:
                    page_dict: Dict[str, float] = {}
                    self._page_attr = page_dict
                page_finish = read_resolved(page, ppa, clock)
                if attr is not None:
                    self._page_attr = None
                    if page_finish >= self._attr_best_finish:
                        # This run's foreground translation I/O is serial
                        # with every page of the run, so the critical-path
                        # page inherits it.
                        if translate_us > 0.0:
                            page_dict["translate_us"] = (
                                page_dict.get("translate_us", 0.0) + translate_us
                            )
                        self._attr_best = page_dict
                        self._attr_best_finish = page_finish
                stats.flash_reads_for_host += 1
                insert(page, dirty=False)
                record_latency(page_finish - start)
                if page_finish > finish:
                    finish = page_finish
        return finish

    def _channel_of_prediction(self, ppa: int) -> int:
        """Channel a (possibly approximate) predicted PPA falls on.

        Predictions of approximate segments can overshoot the physical
        space by up to gamma pages; clamping keeps the chunk grouping
        valid — the actual read path corrects the prediction itself.
        """
        geometry = self.flash.geometry
        last = geometry.total_pages - 1
        if ppa < 0:
            ppa = 0
        elif ppa > last:
            ppa = last
        return geometry.channel_of(ppa)

    def process(self, op: str, lpa: int, npages: int = 1) -> None:
        """Apply one host request (``op`` is 'R' or 'W') spanning ``npages``."""
        self.submit(op, lpa, npages)

    def run(
        self,
        requests: Iterable[ReplayItem],
        drain: bool = True,
        queue_depth: Optional[int] = None,
        replay_mode: Optional[str] = None,
        time_scale: Optional[float] = None,
    ) -> SSDStats:
        """Replay an iterable of host requests.

        ``requests`` may yield :class:`repro.workloads.trace.IORequest`
        objects (a :class:`~repro.workloads.trace.Trace` iterates those
        directly) or bare ``(op, lpa, npages)`` tuples; tuples carry no
        timestamps, so open-loop replay of a tuple stream degenerates to
        simultaneous arrival.

        ``queue_depth``, ``replay_mode`` and ``time_scale`` override the
        configured options for this replay.  Closed-loop mode uses the
        event-driven engine when the effective depth exceeds 1 (or when
        ``options.engine`` forces it); otherwise the synchronous fast path
        runs.  Open-loop mode always runs through the event loop: requests
        are admitted at their (scaled) trace timestamps whether or not
        earlier requests completed.
        """
        mode = self.options.replay_mode if replay_mode is None else replay_mode
        if mode not in REPLAY_MODES:
            raise ValueError(f"replay_mode must be one of {REPLAY_MODES}")
        scale = self.options.time_scale if time_scale is None else time_scale
        if scale <= 0.0:
            raise ValueError("time_scale must be positive")
        depth = self.effective_queue_depth if queue_depth is None else min(
            max(1, queue_depth), self.config.ncq_depth
        )
        engine = self.options.engine
        if mode == "open":
            loop = EventLoop(start_us=self._now_us)
            self.run_frontend(OpenLoopFrontend(self, loop, time_scale=scale), loop, requests)
        elif engine == "events" or (engine == "auto" and depth > 1):
            loop = EventLoop(start_us=self._now_us)
            self.run_frontend(HostFrontend(self, loop, queue_depth=depth), loop, requests)
        else:
            for request in map(as_request, requests):
                self.stats.requests_submitted += 1
                self.submit(request.op, request.lpa, request.npages)
                self.stats.requests_completed += 1
        return self.finalize_replay(drain=drain)

    def run_frontend(
        self,
        frontend: Any,  # duck-typed, see docstring; run() signatures differ
        loop: EventLoop,
        requests: Optional[Iterable[ReplayItem]] = None,
    ) -> None:
        """Replay through the event loop with the given host frontend.

        The frontend is duck-typed: it needs ``run()`` (or ``run(requests)``
        when ``requests`` is given) and a ``stats`` attribute carrying
        :class:`repro.sim.frontend.FrontendStats`.  This is the hook the
        multi-queue host interface (:mod:`repro.host`) uses to drive the
        device with its own admission machinery; callers are expected to
        follow up with :meth:`finalize_replay`.
        """
        self._loop = loop
        # Chain rather than install-if-empty: a caller-installed observer
        # (say a CrashTimer on the loop) and the device's own observers
        # must all see every event.  chain_observer runs the existing
        # observer first, so the digest/crash ordering of repro.verify is
        # preserved and telemetry observes last.
        if self.event_observer is not None and loop.observer is not self.event_observer:
            loop.chain_observer(self.event_observer)
        if self.telemetry is not None:
            loop.chain_observer(self.telemetry.observe)
        try:
            if requests is None:
                frontend.run()
            else:
                frontend.run(requests)
        finally:
            self._loop = None
        self.stats.events_processed += loop.events_processed
        self.stats.requests_submitted += frontend.stats.submitted
        self.stats.requests_completed += frontend.stats.completed
        if frontend.stats.max_outstanding > self.stats.max_outstanding_requests:
            self.stats.max_outstanding_requests = frontend.stats.max_outstanding
        self._advance(loop.now_us)

    def finalize_replay(self, drain: bool = True) -> SSDStats:
        """End-of-replay bookkeeping: optional drain flush + time accounting."""
        if drain:
            self.flush()
        self.stats.simulated_time_us = self._horizon_us()
        self.stats.measured_time_us = max(
            0.0, self.stats.simulated_time_us - self._measure_start_us
        )
        if self.telemetry is not None:
            self.telemetry.finalize(self.stats.simulated_time_us)
        return self.stats

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def mapping_table_bytes(self) -> int:
        """Current DRAM footprint of the FTL's mapping structures."""
        return self.ftl.resident_bytes()

    def describe(self) -> Dict[str, float]:
        """Flat summary used by the experiment harness."""
        summary = self.stats.summary()
        # Utilization denominator: the same horizon simulated_time_us uses.
        now = max(self._horizon_us(), 1e-9)
        summary.update(
            {
                "cache_capacity_pages": float(self.cache.capacity_pages),
                "free_block_ratio": self.allocator.free_ratio(),
                "wear_imbalance": self.allocator.wear_imbalance(),
                "queue_depth": float(self.effective_queue_depth),
                "mean_channel_utilization": sum(
                    self.scheduler.channel_utilization(c, now)
                    for c in range(self.config.channels)
                )
                / self.config.channels,
            }
        )
        return summary
