"""One level of the log-structured mapping table.

A level is a set of learned segments whose LPA intervals do **not** overlap,
kept sorted by their starting LPA so that the segment covering a given LPA
is found with a binary search (Algorithm 1, line 2/19 of the paper).
Overlap is only allowed *across* levels — newer segments live in higher
levels — which is what lets LeaFTL serve the latest mapping without
relearning older segments on every update.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional

from repro.core.segment import Segment


class Level:
    """A sorted, non-overlapping run of segments."""

    def __init__(self) -> None:
        self._segments: List[Segment] = []
        self._starts: List[int] = []

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._segments)

    def __iter__(self) -> Iterator[Segment]:
        return iter(self._segments)

    def __contains__(self, segment: Segment) -> bool:
        return any(existing is segment for existing in self._segments)

    @property
    def is_empty(self) -> bool:
        return not self._segments

    def segments(self) -> List[Segment]:
        """A snapshot copy of the segments (safe to iterate while mutating)."""
        return list(self._segments)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def find_covering(self, lpa: int) -> Optional[Segment]:
        """The segment whose LPA interval contains ``lpa``, if any."""
        index = bisect.bisect_right(self._starts, lpa) - 1
        if index < 0:
            return None
        segment = self._segments[index]
        return segment if segment.covers(lpa) else None

    def overlapping(self, start_lpa: int, end_lpa: int) -> List[Segment]:
        """All segments whose interval intersects ``[start_lpa, end_lpa]``."""
        result: List[Segment] = []
        # Step back two positions: during an insertion the level temporarily
        # holds the (overlapping) new segment, so both it and its predecessor
        # may start at or before ``start_lpa`` while reaching into the range.
        index = max(0, bisect.bisect_right(self._starts, start_lpa) - 2)
        while index < len(self._segments):
            segment = self._segments[index]
            if segment.start_lpa > end_lpa:
                break
            if segment.overlaps_range(start_lpa, end_lpa):
                result.append(segment)
            index += 1
        return result

    def overlaps_range(self, start_lpa: int, end_lpa: int) -> bool:
        return bool(self.overlapping(start_lpa, end_lpa))

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def insert(self, segment: Segment) -> None:
        """Insert ``segment`` keeping the level sorted by starting LPA.

        The caller is responsible for resolving overlaps (the merge procedure
        of Algorithm 2 runs *after* insertion, exactly as in the paper).
        """
        index = bisect.bisect_left(self._starts, segment.start_lpa)
        self._segments.insert(index, segment)
        self._starts.insert(index, segment.start_lpa)

    def remove(self, segment: Segment) -> None:
        """Remove ``segment`` (identity match) from the level.

        The common case — the segment's ``start_lpa`` unchanged since
        insertion — is located with a binary search over the recorded
        starts; a merge-trimmed segment whose start moved falls back to
        the identity scan.
        """
        segments = self._segments
        starts = self._starts
        index = bisect.bisect_left(starts, segment.start_lpa)
        total = len(segments)
        while index < total and starts[index] == segment.start_lpa:
            if segments[index] is segment:
                del segments[index]
                del starts[index]
                return
            index += 1
        for index, existing in enumerate(segments):
            if existing is segment:
                del segments[index]
                del starts[index]
                return
        raise ValueError("segment not present in this level")

    def reposition(self, segment: Segment) -> None:
        """Re-sort a segment whose ``start_lpa`` was updated by a merge."""
        self.remove(segment)
        self.insert(segment)

    def validate_sorted_non_overlapping(self) -> None:
        """Raise ``AssertionError`` if the level invariant is broken (tests)."""
        for left, right in zip(self._segments, self._segments[1:]):
            assert left.start_lpa <= right.start_lpa, "level not sorted"
            assert left.end_lpa < right.start_lpa, (
                f"overlapping segments in one level: {left} / {right}"
            )
