"""Regression pins for the deterministic block allocator (simlint SIM003 fix).

The allocator's free/active pools used to be ``set``s: every wear-aware
``min(pool, ...)`` broke erase-count ties by hash-table iteration order — an
accident of CPython's set implementation, not a specified behaviour.  The
pools are now insertion-ordered (dict keys) and ties break by an explicit
``(erase count, block id)`` total order, so allocation decisions are
bit-reproducible across runs, Python builds and implementations.

These tests pin that behaviour three ways:

* the tie-break order itself (fresh device: lowest block id per channel);
* a GC-heavy aged workload replayed twice must produce *identical* stats —
  the dynamic determinism witness;
* golden digests of that workload, so any future change to allocation
  ordering fails loudly and has to re-pin deliberately (the values were
  recorded when the ordered-pool allocator landed; the hash-ordered
  allocator it replaced produced different cascades, e.g. WAF 2.11 vs 2.31
  on the sync config — aggregate-equivalent but not bit-exact).
"""

import hashlib
import json

from repro.config import SSDConfig
from repro.experiments.common import precondition, steady_state_workload
from repro.flash.flash_array import FlashArray
from repro.flash.allocator import BlockAllocator
from repro.ftl.pagemap import PageLevelFTL
from repro.ssd.ssd import SimulatedSSD, SSDOptions


def _gc_heavy_run(gc_mode: str, queue_depth: int):
    """Age a small device into GC steady state and replay a skewed mix."""
    config = SSDConfig(
        capacity_bytes=48 * 1024 * 1024,
        page_size=4096,
        pages_per_block=64,
        channels=4,
        dies_per_channel=2,
        dram_size=256 * 1024,
        write_buffer_bytes=256 * 1024,
        overprovisioning=0.25,
    )
    ssd = SimulatedSSD(
        config=config,
        ftl=PageLevelFTL(),
        options=SSDOptions(queue_depth=queue_depth, gc_mode=gc_mode),
    )
    footprint = precondition(ssd, seed=11)
    requests = steady_state_workload(footprint, 6000, seed=23, read_ratio=0.35)
    stats = ssd.run(requests)
    summary = stats.summary()
    summary.update(
        {
            "gc_page_reads": stats.gc_page_reads,
            "gc_page_writes": stats.gc_page_writes,
            "gc_block_erases": stats.gc_block_erases,
            "data_page_writes": stats.data_page_writes,
            "blocks_allocated": ssd.allocator.stats.blocks_allocated,
            "blocks_reclaimed": ssd.allocator.stats.blocks_reclaimed,
            "wear_imbalance": ssd.allocator.wear_imbalance(),
            "free_blocks": ssd.allocator.free_block_count(),
        }
    )
    return summary


def _digest(summary: dict) -> str:
    return hashlib.sha256(
        json.dumps(summary, sort_keys=True).encode()
    ).hexdigest()


#: sha256 over the sorted-JSON summary of the runs above, recorded when the
#: ordered-pool allocator landed.  A digest change means allocation ordering
#: (or anything downstream of it) changed — re-pin only deliberately.
#: Re-recorded when SSDStats.summary() gained its full counter set (a pure
#: reporting change; the allocation-order witnesses above are unchanged and
#: the event-trace digests in test_layout_bitexact did not move).
GOLDEN_DIGESTS = {
    ("sync", 1): "d56b350658c703c01e311be845698677f99171a98412d6fb7d040824ba614951",
    ("background", 8): "b811b7ed32ca996895f6745cc3c9083899c32af0ecfca1e9cda021e8867b40a0",
}


class TestTieBreakOrder:
    def test_fresh_device_allocates_lowest_block_per_channel(self):
        config = SSDConfig.tiny()
        flash = FlashArray(config)
        allocator = BlockAllocator(flash)
        channels = config.channels
        first = [allocator.allocate_block() for _ in range(channels)]
        # Hot-stream rotation visits each channel once; with every erase
        # count equal the explicit tie-break picks each channel's lowest id.
        expected = sorted(
            min(b for b in range(config.total_blocks)
                if flash.geometry.block_to_channel(b) == ch)
            for ch in range(channels)
        )
        assert sorted(first) == expected

    def test_wear_preference_beats_block_id(self):
        config = SSDConfig.tiny()
        flash = FlashArray(config)
        allocator = BlockAllocator(flash)
        channel = 0
        pool = [
            b for b in range(config.total_blocks)
            if flash.geometry.block_to_channel(b) == channel
        ]
        # Wear out every block of the channel except one late-id block.
        preferred = pool[-1]
        for block in pool:
            if block != preferred:
                ppa = flash.geometry.first_ppa_of_block(block)
                flash.program_page(ppa, lpa=0, oob=None)
                flash.invalidate_page(ppa)
                flash.erase_block(block)
        assert allocator.allocate_block(channel=channel) == preferred

    def test_release_order_does_not_leak_into_selection(self):
        # Two blocks of equal wear released in opposite orders must still be
        # handed out by block id, not by insertion (release) order.
        config = SSDConfig.tiny()
        for release_order in (False, True):
            flash = FlashArray(config)
            allocator = BlockAllocator(flash)
            a = allocator.allocate_block(channel=0)
            b = allocator.allocate_block(channel=0)
            for block in (a, b) if release_order else (b, a):
                allocator.seal_block(block)
                allocator.release_block(block)
            assert allocator.allocate_block(channel=0) == min(a, b)


class TestGCHeavyPins:
    def test_double_run_identical(self):
        first = _gc_heavy_run("sync", 1)
        second = _gc_heavy_run("sync", 1)
        assert first == second

    def test_golden_digest_sync(self):
        summary = _gc_heavy_run("sync", 1)
        assert _digest(summary) == GOLDEN_DIGESTS[("sync", 1)]

    def test_golden_digest_background(self):
        summary = _gc_heavy_run("background", 8)
        assert _digest(summary) == GOLDEN_DIGESTS[("background", 8)]
