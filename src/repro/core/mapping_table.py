"""The log-structured learned mapping table (Figure 14 of the paper).

This is the DRAM-resident data structure that replaces the page-level
address mapping cache: a dictionary of :class:`repro.core.group.LPAGroup`
objects (one per 256-LPA group that has ever been written), each holding its
own multi-level segment log and Conflict Resolution Buffer.

Responsibilities:

* partition incoming mapping batches by group, learn segments per group with
  the PLR learner, and insert them (Section 3.7, creation + insert/update);
* answer LPA lookups with the number of levels searched (Figure 23a);
* periodic compaction (Section 3.7);
* exact DRAM footprint accounting (Figures 15 and 19).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.config import LeaFTLConfig
from repro.core.group import GroupLookup, LPAGroup
from repro.core.plr import LearnedSegment, PLRLearner
from repro.core.segment import Segment, group_base_of


@dataclass(slots=True)
class LookupResult:
    """Outcome of a mapping-table lookup."""

    ppa: Optional[int]
    levels_searched: int = 0
    segment: Optional[Segment] = None

    @property
    def found(self) -> bool:
        return self.ppa is not None

    @property
    def approximate(self) -> bool:
        return self.segment is not None and not self.segment.accurate


def iter_resolution_runs(
    results: Sequence[LookupResult],
    start_lpa: int = 0,
    group_size: Optional[int] = None,
) -> Iterable[Tuple[int, int, Optional[Segment], int]]:
    """Group consecutive lookup results by the segment that resolved them.

    Yields ``(start, stop, segment, depth)`` per run: a maximal stretch
    ``results[start:stop]`` sharing one segment identity (misses —
    ``segment is None`` — form runs of their own) and the deepest level any
    page of the run searched.  This is the unit the batched range lookup
    charges statistics at: one segment resolution serves the whole run.

    When ``group_size`` is given (with ``start_lpa`` as the LPA of
    ``results[0]``), runs additionally split at group boundaries: a miss
    gap spanning two groups consulted two group structures and must charge
    two resolutions.  Found runs never span groups — a segment lives
    inside one group — so the split only affects misses.
    """
    index = 0
    total = len(results)
    while index < total:
        segment = results[index].segment
        depth = results[index].levels_searched
        stop = index + 1
        while stop < total and results[stop].segment is segment:
            if group_size is not None and (start_lpa + stop) % group_size == 0:
                break
            levels = results[stop].levels_searched
            if levels > depth:
                depth = levels
            stop += 1
        yield index, stop, segment, depth
        index = stop


@dataclass
class MappingTableStats:
    """Counters describing learning and lookup activity."""

    lookups: int = 0
    lookup_levels_total: int = 0
    batches_learned: int = 0
    segments_learned: int = 0
    accurate_segments_learned: int = 0
    approximate_segments_learned: int = 0
    mappings_learned: int = 0
    compactions: int = 0

    @property
    def mean_levels_per_lookup(self) -> float:
        return self.lookup_levels_total / self.lookups if self.lookups else 0.0

    @property
    def mean_segment_length(self) -> float:
        if self.segments_learned == 0:
            return 0.0
        return self.mappings_learned / self.segments_learned


class LogStructuredMappingTable:
    """LeaFTL's learned LPA→PPA mapping table."""

    def __init__(self, config: Optional[LeaFTLConfig] = None) -> None:
        self.config = config or LeaFTLConfig()
        self._learner = PLRLearner(
            gamma=self.config.gamma, group_size=self.config.group_size
        )
        self._groups: Dict[int, LPAGroup] = {}
        self.stats = MappingTableStats()

    # ------------------------------------------------------------------ #
    # Group access
    # ------------------------------------------------------------------ #
    @property
    def gamma(self) -> int:
        return self.config.gamma

    def group_for(self, lpa: int) -> Optional[LPAGroup]:
        return self._groups.get(group_base_of(lpa, self.config.group_size))

    def _group_for_base(self, group_base: int) -> LPAGroup:
        group = self._groups.get(group_base)
        if group is None:
            group = LPAGroup(group_base, self.config.group_size)
            self._groups[group_base] = group
        return group

    def groups(self) -> List[LPAGroup]:
        return list(self._groups.values())

    def group_count(self) -> int:
        return len(self._groups)

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #
    def update(self, mappings: Sequence[Tuple[int, int]]) -> List[LearnedSegment]:
        """Learn segments from a flush batch and insert them into the log.

        Returns the learned segments (used by tests and by the segment
        distribution experiments).
        """
        if not mappings:
            return []
        learned = self._learner.learn(mappings)
        for item in learned:
            group = self._group_for_base(item.segment.group_base)
            group.update(item)
        self.stats.batches_learned += 1
        self.stats.segments_learned += len(learned)
        self.stats.mappings_learned += len(mappings)
        for item in learned:
            if item.accurate:
                self.stats.accurate_segments_learned += 1
            else:
                self.stats.approximate_segments_learned += 1
        return learned

    def update_single(self, lpa: int, ppa: int) -> List[LearnedSegment]:
        """Insert a single mapping (degenerates to a single-point segment)."""
        return self.update([(lpa, ppa)])

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def lookup(self, lpa: int) -> LookupResult:
        """Resolve ``lpa`` to its (possibly approximate) PPA.

        Every lookup — hit, in-group miss or group miss — charges at least
        one searched level: even a group miss consults the group directory.
        Counting misses as zero levels while still counting the lookup
        would deflate ``mean_levels_per_lookup`` (Figure 23a) on workloads
        with many cold reads.
        """
        self.stats.lookups += 1
        group = self.group_for(lpa)
        if group is None:
            self.stats.lookup_levels_total += 1
            return LookupResult(ppa=None, levels_searched=1)
        result: GroupLookup = group.lookup(lpa)
        levels = max(result.levels_searched, 1)
        self.stats.lookup_levels_total += levels
        return LookupResult(
            ppa=result.ppa,
            levels_searched=levels,
            segment=result.segment,
        )

    def lookup_range(self, start_lpa: int, npages: int) -> List[LookupResult]:
        """Resolve the contiguous run ``[start_lpa, start_lpa + npages)``.

        The run is split at group boundaries and each group resolves its
        chunk with a single top-down level walk
        (:meth:`repro.core.group.LPAGroup.lookup_range`), so a run covered
        by one learned segment costs one segment resolution instead of one
        full walk per page.

        Statistics are charged per *resolution*, not per page: consecutive
        pages served by the same segment (or forming one miss gap) count as
        one lookup, whose levels-searched is the deepest level the run
        needed.  An 8-page run covered by one segment therefore grows
        ``stats.lookups`` by exactly 1.
        """
        if npages <= 0:
            raise ValueError("npages must be positive")
        results: List[LookupResult] = []
        lpa = start_lpa
        end = start_lpa + npages
        group_size = self.config.group_size
        groups_get = self._groups.get
        append = results.append
        while lpa < end:
            group_base = group_base_of(lpa, group_size)
            chunk_end = group_base + group_size
            if chunk_end > end:
                chunk_end = end
            group = groups_get(group_base)
            if group is None:
                results.extend(
                    LookupResult(ppa=None, levels_searched=1)
                    for _ in range(lpa, chunk_end)
                )
            else:
                for found in group.lookup_range(lpa, chunk_end - 1):
                    levels = found.levels_searched
                    append(
                        LookupResult(
                            ppa=found.ppa,
                            levels_searched=levels if levels > 1 else 1,
                            segment=found.segment,
                        )
                    )
            lpa = chunk_end
        for _start, _stop, _segment, depth in iter_resolution_runs(
            results, start_lpa, group_size
        ):
            self.stats.lookups += 1
            self.stats.lookup_levels_total += depth
        return results

    def exists(self, lpa: int) -> bool:
        """Membership test; charged to the lookup stats like any lookup."""
        return self.lookup(lpa).found

    # ------------------------------------------------------------------ #
    # Compaction
    # ------------------------------------------------------------------ #
    def compact(self) -> None:
        """Compact every group (Section 3.7: run once per ~1M writes)."""
        for group in self._groups.values():
            group.compact()
        self.stats.compactions += 1

    # ------------------------------------------------------------------ #
    # Memory accounting & distribution statistics
    # ------------------------------------------------------------------ #
    def segment_count(self) -> int:
        return sum(group.segment_count() for group in self._groups.values())

    def memory_bytes(self) -> int:
        """Total DRAM footprint of segments, CRBs and level bookkeeping."""
        overhead = self.config.level_overhead_bytes
        return sum(group.memory_bytes(overhead) for group in self._groups.values())

    def crb_bytes(self) -> int:
        return sum(group.crb.size_bytes() for group in self._groups.values())

    def crb_sizes(self) -> List[int]:
        """Per-group CRB sizes in bytes (Figure 10)."""
        return [group.crb.size_bytes() for group in self._groups.values()]

    def level_counts(self) -> List[int]:
        """Per-group level counts (Figure 12)."""
        return [group.level_count for group in self._groups.values()]

    def segment_lengths(self) -> List[int]:
        """Number of LPAs encoded by each live segment (Figure 5)."""
        lengths: List[int] = []
        for group in self._groups.values():
            for segment in group.segments():
                lengths.append(len(group.covered_lpas(segment)))
        return lengths

    def segment_type_counts(self) -> Tuple[int, int]:
        """(accurate, approximate) live segment counts (Figure 20)."""
        accurate = 0
        approximate = 0
        for group in self._groups.values():
            for segment in group.segments():
                if segment.accurate:
                    accurate += 1
                else:
                    approximate += 1
        return accurate, approximate

    # ------------------------------------------------------------------ #
    # Checkpoint serialization (power-fail recovery)
    # ------------------------------------------------------------------ #
    def serialize_checkpoint(self) -> bytes:
        """Encode every group's learned state for persistence to flash.

        Layout: ``<I`` group count, then per group ``<qI`` (group base, blob
        length) followed by the group's
        :meth:`repro.core.group.LPAGroup.serialize_checkpoint` blob.
        Groups are written in ascending base order so the payload is
        deterministic regardless of dict insertion history.
        """
        parts = [struct.pack("<I", len(self._groups))]
        for group_base in sorted(self._groups):
            blob = self._groups[group_base].serialize_checkpoint()
            parts.append(struct.pack("<qI", group_base, len(blob)))
            parts.append(blob)
        return b"".join(parts)

    @classmethod
    def from_checkpoint(
        cls, payload: bytes, config: Optional[LeaFTLConfig] = None
    ) -> "LogStructuredMappingTable":
        """Rebuild a table from :meth:`serialize_checkpoint` output.

        The restored table answers every lookup bit-identically to the
        checkpointed one; statistics start fresh (they are DRAM counters a
        crash destroys along with everything else).
        """
        table = cls(config)
        (group_count,) = struct.unpack_from("<I", payload, 0)
        offset = 4
        for _ in range(group_count):
            group_base, size = struct.unpack_from("<qI", payload, offset)
            offset += 12
            table._groups[group_base] = LPAGroup.from_checkpoint(
                payload[offset : offset + size], group_base, table.config.group_size
            )
            offset += size
        if offset != len(payload):
            raise ValueError(
                f"checkpoint payload has {len(payload) - offset} trailing bytes"
            )
        return table

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        for group in self._groups.values():
            group.validate()
