"""The annotation contract mypy.ini enforces, checked without mypy.

CI runs real mypy in the static-analysis job; developer machines (and
this test environment) may not have it installed.  This test replicates
the two mypy settings that are pure syntax properties —
``disallow_untyped_defs``/``disallow_incomplete_defs`` and
``no_implicit_optional`` — over the same subtree ``mypy.ini`` scopes
(``src/repro/{core,ftl,flash,sim,ssd}``), so an unannotated def or an
implicit Optional fails fast locally instead of only in CI.
"""

import ast
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
TYPED_PACKAGES = ("core", "ftl", "flash", "sim", "ssd")


def typed_files():
    for package in TYPED_PACKAGES:
        yield from sorted((REPO / "src" / "repro" / package).rglob("*.py"))


def _optional_ok(annotation: ast.expr) -> bool:
    rendered = ast.unparse(annotation)
    return "Optional" in rendered or "None" in rendered or rendered in ("object", "Any")


def _violations(path: Path):
    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = node.args
        positional = args.posonlyargs + args.args
        named = [a for a in positional + args.kwonlyargs if a.arg not in ("self", "cls")]
        for arg in named:
            if arg.annotation is None:
                yield (node.lineno, f"{node.name}: parameter {arg.arg!r} unannotated")
        for vararg in (args.vararg, args.kwarg):
            if vararg is not None and vararg.annotation is None:
                yield (node.lineno, f"{node.name}: *{vararg.arg} unannotated")
        if node.returns is None and node.name != "__init__":
            yield (node.lineno, f"{node.name}: no return annotation")
        defaults = args.defaults
        for arg, default in zip(positional[len(positional) - len(defaults):], defaults):
            if (
                isinstance(default, ast.Constant)
                and default.value is None
                and arg.annotation is not None
                and not _optional_ok(arg.annotation)
            ):
                yield (node.lineno, f"{node.name}: implicit Optional parameter {arg.arg!r}")
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if (
                default is not None
                and isinstance(default, ast.Constant)
                and default.value is None
                and arg.annotation is not None
                and not _optional_ok(arg.annotation)
            ):
                yield (node.lineno, f"{node.name}: implicit Optional parameter {arg.arg!r}")


@pytest.mark.parametrize("path", list(typed_files()), ids=lambda p: str(p.relative_to(REPO)))
def test_typed_subtree_is_fully_annotated(path):
    found = [f"{path}:{line} {message}" for line, message in _violations(path)]
    assert found == [], "\n".join(found)


def test_mypy_config_scopes_the_same_subtree():
    text = (REPO / "mypy.ini").read_text()
    for package in TYPED_PACKAGES:
        assert f"src/repro/{package}" in text
    assert "disallow_untyped_defs = True" in text
    assert "no_implicit_optional = True" in text
