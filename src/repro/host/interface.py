"""The NVMe-style multi-queue host interface on top of the event loop.

Three pieces:

* :class:`SubmissionQueue` — one tenant stream feeding one namespace.
  Closed-loop queues pull their next request on demand (the stream is
  always backlogged, completion-driven); open-loop queues receive requests
  at their (scaled) trace timestamps via arrival events, the WiscSee-style
  replay the single-queue :class:`repro.sim.frontend.OpenLoopFrontend`
  introduced.

* :class:`MultiQueueFrontend` — the admission engine.  The device executes
  up to ``queue_depth`` commands concurrently (its NCQ/NVMe slots); every
  time a slot frees, the arbiter picks which eligible queue's head request
  is admitted.  Token-bucket throttled queues are not offered to the
  arbiter; a retry fires when their bucket refills.  With a single
  closed-loop queue and any arbiter this degenerates *exactly* to the
  :class:`repro.sim.frontend.HostFrontend` admission order — the
  single-tenant regression tests pin that bit-for-bit.

* :class:`HostInterface` — the user-facing object: carves namespaces out of
  one :class:`repro.ssd.ssd.SimulatedSSD`, builds queues for the tenant
  streams, runs the replay and returns per-tenant statistics.

Per-tenant latency is measured against the request's *ready time*: the
arrival timestamp for open-loop streams (so submission-queue waiting counts
— the quantity QoS arbitration actually improves) and the admission time
for closed-loop streams (service latency, matching the single-queue
engine's convention).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.host.arbiter import Arbiter, TokenBucket, make_arbiter
from repro.host.namespace import Namespace, NamespaceStats
from repro.sim.events import Event, EventLoop, PRIORITY_FOREGROUND
from repro.sim.frontend import FrontendStats
from repro.workloads.trace import IORequest, ReplayItem, as_request

#: Valid submission-queue admission modes.
QUEUE_MODES = ("closed", "open")


class SubmissionQueue:
    """One tenant's request stream, queued toward a namespace."""

    def __init__(
        self,
        namespace: Namespace,
        source: Iterable[ReplayItem],
        mode: str = "closed",
        time_scale: float = 1.0,
        name: Optional[str] = None,
    ) -> None:
        if mode not in QUEUE_MODES:
            raise ValueError(f"mode must be one of {QUEUE_MODES}")
        if time_scale <= 0.0:
            raise ValueError("time_scale must be positive")
        self.namespace = namespace
        self.name = name or namespace.name
        self.mode = mode
        self.time_scale = time_scale
        self._source: Iterator[ReplayItem] = iter(source)
        self._exhausted = False
        #: Requests that have arrived and wait for admission:
        #: ``(request, ready_us, enqueue_seq)``.
        self._pending: Deque[Tuple[IORequest, float, int]] = deque()
        #: Set by the frontend: allocates global enqueue sequence numbers.
        self._stamp = None
        #: Open-loop arrival anchoring (mirrors OpenLoopFrontend).
        self._origin_us = 0.0
        self._first_timestamp: Optional[float] = None
        self._last_timestamp: Optional[float] = None
        #: Longest backlog observed (requests waiting, not yet admitted).
        self.max_backlog = 0
        #: True while the current head has already been counted as a
        #: rate-limit deferral (one count per request, not per attempt).
        self.head_deferred = False

    # Arbiter-facing attributes ----------------------------------------- #
    @property
    def weight(self) -> int:
        return self.namespace.weight

    @property
    def priority(self) -> int:
        return self.namespace.priority

    def head_key(self) -> Tuple[float, int]:
        """(ready_time, enqueue_seq) of the head — FIFO comparison key."""
        request, ready_us, seq = self._pending[0]
        return (ready_us, seq)

    # Frontend-facing API ------------------------------------------------ #
    def bind(self, stamp, origin_us: float) -> None:
        self._stamp = stamp
        self._origin_us = origin_us

    def next_source_request(self) -> Optional[IORequest]:
        """Pull the next request off the stream (None when exhausted)."""
        if self._exhausted:
            return None
        item = next(self._source, None)
        if item is None:
            self._exhausted = True
            return None
        return as_request(item)

    def arrival_time(self, request: IORequest) -> float:
        """Absolute arrival time of an open-loop request.

        Timestamps are taken relative to the stream's first timestamp and
        anchored at the replay origin, scaled by ``time_scale``.  A
        non-monotonic timestamp raises: silently reordering (or clamping)
        arrivals would misrepresent the offered load — sort the trace with
        :meth:`repro.workloads.trace.Trace.sorted_by_timestamp` first.
        """
        if self._first_timestamp is None:
            self._first_timestamp = request.timestamp_us
        if (
            self._last_timestamp is not None
            and request.timestamp_us < self._last_timestamp
        ):
            raise ValueError(
                f"queue {self.name!r}: non-monotonic trace timestamp "
                f"{request.timestamp_us} after {self._last_timestamp}; "
                "sort the trace (Trace.sorted_by_timestamp()) before replay"
            )
        self._last_timestamp = request.timestamp_us
        offset = max(0.0, request.timestamp_us - self._first_timestamp)
        return self._origin_us + offset * self.time_scale

    def enqueue(self, request: IORequest, ready_us: float) -> None:
        """An open-loop arrival joins the queue."""
        assert self._stamp is not None
        self._pending.append((request, ready_us, self._stamp()))
        if len(self._pending) > self.max_backlog:
            self.max_backlog = len(self._pending)

    def ensure_head(self, now_us: float) -> bool:
        """True when a head request is available for arbitration.

        Closed-loop queues materialise their head lazily: the stream is
        always backlogged, so the head becomes ready the moment admission
        considers it.
        """
        if self._pending:
            return True
        if self.mode == "closed":
            request = self.next_source_request()
            if request is None:
                return False
            assert self._stamp is not None
            self._pending.append((request, now_us, self._stamp()))
            return True
        return False

    def pop(self) -> Tuple[IORequest, float]:
        """Remove and return the head: ``(request, ready_us)``."""
        request, ready_us, _ = self._pending.popleft()
        self.head_deferred = False
        return request, ready_us

    @property
    def backlog(self) -> int:
        return len(self._pending)


class MultiQueueFrontend:
    """Admits requests from several submission queues into one device.

    The device is duck-typed exactly like the single-queue frontends:
    anything with ``submit(op, lpa, npages, at_us) -> finish_us`` works.
    """

    def __init__(
        self,
        device,
        loop: EventLoop,
        queues: Sequence[SubmissionQueue],
        arbiter: Arbiter,
        queue_depth: int,
    ) -> None:
        if queue_depth < 1:
            raise ValueError("queue_depth must be at least 1")
        if not queues:
            raise ValueError("at least one submission queue is required")
        self._device = device
        self._loop = loop
        self._queues = list(queues)
        self._arbiter = arbiter
        self._queue_depth = queue_depth
        self._outstanding = 0
        #: Slots reserved by scheduled-but-not-yet-fired issue events.
        self._reserved = 0
        self._seq = 0
        #: Earliest pending rate-limit retry (inf = none scheduled).  A
        #: retry needed *earlier* than the pending one must still be
        #: scheduled, or a briefly-throttled queue would wait for another
        #: queue's distant refill.
        self._next_retry_us = float("inf")
        self.stats = FrontendStats()
        arbiter.bind(self._queues)
        for queue in self._queues:
            queue.bind(self._next_seq, loop.now_us)

    def _next_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    @property
    def outstanding(self) -> int:
        return self._outstanding

    # ------------------------------------------------------------------ #
    # Replay
    # ------------------------------------------------------------------ #
    def run(self) -> FrontendStats:
        """Replay every queue's stream to completion; returns the stats."""
        for queue in self._queues:
            if queue.mode == "open":
                self._schedule_next_arrival(queue)
        self._pump(self._loop.now_us)
        self._loop.run()
        return self.stats

    # ------------------------------------------------------------------ #
    # Open-loop arrivals
    # ------------------------------------------------------------------ #
    def _schedule_next_arrival(self, queue: SubmissionQueue) -> None:
        request = queue.next_source_request()
        if request is None:
            return
        self._loop.schedule(
            queue.arrival_time(request),
            "request_arrival",
            self._on_arrival,
            payload=(queue, request),
            priority=PRIORITY_FOREGROUND,
        )

    def _on_arrival(self, event: Event) -> None:
        queue, request = event.payload  # type: ignore[misc]
        queue.enqueue(request, event.time_us)
        self._schedule_next_arrival(queue)
        self._pump(event.time_us)

    # ------------------------------------------------------------------ #
    # Admission
    # ------------------------------------------------------------------ #
    def _free_slots(self) -> int:
        return self._queue_depth - self._outstanding - self._reserved

    def _eligible(self, now_us: float) -> Tuple[List[SubmissionQueue], Optional[float]]:
        """Queues the arbiter may pick from, plus the earliest token-retry.

        A queue is eligible when it has a head request *and* its namespace
        has the tokens to admit it.  For throttled queues the earliest time
        any of them could be admitted is returned so the caller can schedule
        a single retry event instead of polling.
        """
        candidates: List[SubmissionQueue] = []
        retry_at: Optional[float] = None
        for queue in self._queues:
            if not queue.ensure_head(now_us):
                continue
            request = queue._pending[0][0]
            blocked_until: Optional[float] = None
            for bucket in queue.namespace.limiters:
                cost = bucket.cost_of(request.npages)
                if not bucket.can_admit(cost, now_us):
                    available = bucket.available_at(cost, now_us)
                    blocked_until = (
                        available
                        if blocked_until is None
                        else max(blocked_until, available)
                    )
            if blocked_until is None:
                candidates.append(queue)
            else:
                if not queue.head_deferred:
                    # Count once per deferred admission, not once per
                    # admission attempt while the same head waits.
                    queue.head_deferred = True
                    queue.namespace.stats.rate_limit_deferrals += 1
                retry_at = (
                    blocked_until if retry_at is None else min(retry_at, blocked_until)
                )
        return candidates, retry_at

    def _pump(self, now_us: float) -> None:
        """Fill free device slots: one arbitration decision per slot."""
        while self._free_slots() > 0:
            candidates, retry_at = self._eligible(now_us)
            if retry_at is not None and retry_at < self._next_retry_us:
                self._next_retry_us = retry_at
                self._loop.schedule(
                    retry_at,
                    "rate_limit_retry",
                    self._on_retry,
                    priority=PRIORITY_FOREGROUND,
                )
            if not candidates:
                return
            queue = self._arbiter.select(candidates)
            request, ready_us = queue.pop()
            for bucket in queue.namespace.limiters:
                bucket.try_consume(bucket.cost_of(request.npages), now_us)
            self._reserved += 1
            self._loop.schedule(
                now_us,
                "request_issue",
                self._issue,
                payload=(queue, request, ready_us),
                priority=PRIORITY_FOREGROUND,
            )

    def _on_retry(self, event: Event) -> None:
        # Clear first: if some queue is still (or newly) throttled, the
        # pump recomputes its refill time and schedules a fresh retry.
        self._next_retry_us = float("inf")
        self._pump(event.time_us)

    def _issue(self, event: Event) -> None:
        queue, request, ready_us = event.payload  # type: ignore[misc]
        self._reserved -= 1
        self._outstanding += 1
        self.stats.submitted += 1
        if self._outstanding > self.stats.max_outstanding:
            self.stats.max_outstanding = self._outstanding
        namespace = queue.namespace
        namespace.stats.submitted += 1
        namespace.stats.queue_wait_us += max(0.0, event.time_us - ready_us)
        device_lpa, npages = namespace.translate(request.lpa, request.npages)
        if request.is_read:
            namespace.stats.read_pages += npages
        else:
            namespace.stats.write_pages += npages
        finish = self._device.submit(
            request.op, device_lpa, npages, at_us=event.time_us
        )
        self._loop.schedule(
            finish,
            "request_complete",
            self._complete,
            payload=(queue, request, ready_us),
            priority=PRIORITY_FOREGROUND,
        )

    def _complete(self, event: Event) -> None:
        queue, request, ready_us = event.payload  # type: ignore[misc]
        self._outstanding -= 1
        self.stats.completed += 1
        queue.namespace.stats.completed += 1
        queue.namespace.record_completion(request.op, event.time_us - ready_us)
        if event.time_us > self.stats.finished_at_us:
            self.stats.finished_at_us = event.time_us
        self._pump(event.time_us)


@dataclass
class HostRunResult:
    """Everything one multi-tenant replay reports."""

    frontend: FrontendStats
    namespaces: Dict[str, NamespaceStats]
    #: Deepest submission-queue backlog seen per queue name.
    max_backlog: Dict[str, int] = field(default_factory=dict)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """tenant -> flat metrics (plus submission-queue depth)."""
        table: Dict[str, Dict[str, float]] = {}
        for name, stats in self.namespaces.items():
            row = stats.summary()
            row["max_backlog"] = float(self.max_backlog.get(name, 0))
            table[name] = row
        return table


class HostInterface:
    """Carves namespaces out of one SSD and replays multi-tenant streams.

    >>> host = HostInterface(ssd, arbiter="weighted_round_robin")
    >>> host.add_namespace("db", size_pages=4096, weight=4, slo_read_us=200.0)
    >>> host.add_namespace("batch", size_pages=8192)
    >>> result = host.run({"db": db_trace, "batch": batch_trace})

    The default arbiter comes from ``ssd.options.arbiter`` and the default
    slot count from ``ssd.effective_queue_depth``, so the host layer honours
    the same knobs single-queue replays use.
    """

    def __init__(
        self,
        ssd,
        arbiter: Optional[str] = None,
        queue_depth: Optional[int] = None,
    ) -> None:
        self._ssd = ssd
        options = getattr(ssd, "options", None)
        self.arbiter_name = arbiter or getattr(options, "arbiter", "round_robin")
        # Instantiate eagerly so an unknown name fails at construction.
        make_arbiter(self.arbiter_name)
        self.queue_depth = queue_depth or ssd.effective_queue_depth
        self._namespaces: Dict[str, Namespace] = {}
        self._next_base_lpa = 0

    # ------------------------------------------------------------------ #
    # Namespace management
    # ------------------------------------------------------------------ #
    @property
    def namespaces(self) -> Dict[str, Namespace]:
        return dict(self._namespaces)

    def namespace(self, name: str) -> Namespace:
        return self._namespaces[name]

    def free_pages(self) -> int:
        """Logical pages not yet claimed by any namespace."""
        return self._ssd.config.logical_pages - self._next_base_lpa

    def add_namespace(
        self,
        name: str,
        size_pages: Optional[int] = None,
        base_lpa: Optional[int] = None,
        weight: int = 1,
        priority: int = 0,
        slo_read_us: Optional[float] = None,
        slo_write_us: Optional[float] = None,
        iops_limit: Optional[float] = None,
        iops_burst: float = 8.0,
        bandwidth_pages_per_s: Optional[float] = None,
        bandwidth_burst_pages: float = 64.0,
    ) -> Namespace:
        """Carve a namespace out of the device's logical space.

        Without ``base_lpa`` the namespace is placed after the last one;
        without ``size_pages`` it takes all remaining logical pages.  The
        optional ``iops_limit`` / ``bandwidth_pages_per_s`` caps attach
        token-bucket rate limiters (QoS throttles independent of the
        arbiter).
        """
        if name in self._namespaces:
            raise ValueError(f"namespace {name!r} already exists")
        if base_lpa is None:
            base_lpa = self._next_base_lpa
        if size_pages is None:
            size_pages = self._ssd.config.logical_pages - base_lpa
        limiters: List[TokenBucket] = []
        if iops_limit is not None:
            limiters.append(TokenBucket(iops_limit, iops_burst, unit="requests"))
        if bandwidth_pages_per_s is not None:
            limiters.append(
                TokenBucket(bandwidth_pages_per_s, bandwidth_burst_pages, unit="pages")
            )
        namespace = Namespace(
            name,
            base_lpa,
            size_pages,
            weight=weight,
            priority=priority,
            slo_read_us=slo_read_us,
            slo_write_us=slo_write_us,
            limiters=tuple(limiters),
        )
        if namespace.end_lpa > self._ssd.config.logical_pages:
            raise ValueError(
                f"namespace {name!r} ends at LPA {namespace.end_lpa}, past the "
                f"device's {self._ssd.config.logical_pages} logical pages"
            )
        for existing in self._namespaces.values():
            if namespace.overlaps(existing):
                raise ValueError(
                    f"namespace {name!r} overlaps namespace {existing.name!r}"
                )
        self._namespaces[name] = namespace
        self._next_base_lpa = max(self._next_base_lpa, namespace.end_lpa)
        return namespace

    def reset_stats(self) -> None:
        """Fresh per-namespace statistics (end of a warm-up phase)."""
        for namespace in self._namespaces.values():
            namespace.reset_stats()

    # ------------------------------------------------------------------ #
    # Replay
    # ------------------------------------------------------------------ #
    def run(
        self,
        tenants,
        drain: bool = True,
        queue_depth: Optional[int] = None,
        arbiter: Optional[str] = None,
    ) -> HostRunResult:
        """Replay per-tenant streams through the arbiter; returns the result.

        ``tenants`` is either a mapping ``{namespace_name: stream}`` (the
        admission mode is inferred: open-loop when the stream is a
        :class:`~repro.workloads.trace.Trace` carrying timestamps, closed
        otherwise) or an iterable of objects with ``namespace``/``trace``/
        ``mode`` attributes (see
        :class:`repro.workloads.multi_tenant.TenantWorkload`).
        """
        queues = self._build_queues(tenants)
        loop = EventLoop(start_us=self._ssd.now_us)
        frontend = MultiQueueFrontend(
            self._ssd,
            loop,
            queues,
            make_arbiter(arbiter or self.arbiter_name),
            min(queue_depth or self.queue_depth, self._ssd.config.ncq_depth),
        )
        self._ssd.run_frontend(frontend, loop)
        self._ssd.finalize_replay(drain=drain)
        return HostRunResult(
            frontend=frontend.stats,
            namespaces={
                queue.namespace.name: queue.namespace.stats for queue in queues
            },
            max_backlog={queue.name: queue.max_backlog for queue in queues},
        )

    def _build_queues(self, tenants) -> List[SubmissionQueue]:
        queues: List[SubmissionQueue] = []
        if hasattr(tenants, "items"):
            specs = [
                (name, stream, _infer_mode(stream), 1.0, None)
                for name, stream in tenants.items()
            ]
        else:
            specs = [
                (
                    spec.namespace,
                    spec.trace,
                    getattr(spec, "mode", "auto"),
                    getattr(spec, "time_scale", 1.0),
                    getattr(spec, "name", None),
                )
                for spec in tenants
            ]
        for ns_name, stream, mode, time_scale, queue_name in specs:
            if ns_name not in self._namespaces:
                raise KeyError(
                    f"unknown namespace {ns_name!r}; "
                    f"known: {sorted(self._namespaces)}"
                )
            if mode == "auto":
                mode = _infer_mode(stream)
            queues.append(
                SubmissionQueue(
                    self._namespaces[ns_name],
                    stream,
                    mode=mode,
                    time_scale=time_scale,
                    name=queue_name,
                )
            )
        if not queues:
            raise ValueError("no tenant streams to replay")
        return queues


def _infer_mode(stream) -> str:
    """Open-loop when the stream is a trace carrying timestamps."""
    has_timestamps = getattr(stream, "has_timestamps", None)
    if callable(has_timestamps) and has_timestamps():
        return "open"
    return "closed"
