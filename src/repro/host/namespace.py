"""Namespaces: disjoint LPA regions sharing one simulated device.

An NVMe namespace carves a private logical address space out of the shared
device.  Tenants address pages relative to their namespace; the host
interface translates to device LPAs before submission, so several tenants
share the same FTL, write buffer, data cache and GC machinery — which is
exactly what makes the noisy-neighbor question interesting: one tenant's
flush/GC traffic contends with another tenant's reads at the flash channels
even though their address spaces never overlap.

Each namespace records its own latency/SLO statistics, so per-tenant p50/p99
and SLO-violation counts fall out of a single shared replay.

This module must stay importable without triggering the device model
(``repro.ssd.ssd``): it imports only the statistics submodule directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.host.arbiter import TokenBucket
from repro.ssd.stats import LatencyRecorder

#: Reservoir seed offsets so a namespace's read and write recorders draw
#: different (but fixed) sample streams.
_READ_SEED = 0x5EED
_WRITE_SEED = 0xF1005


@dataclass
class NamespaceStats:
    """Per-tenant counters collected during a host-interface replay."""

    #: Requests handed to the device / completed by it.
    submitted: int = 0
    completed: int = 0
    read_pages: int = 0
    write_pages: int = 0
    #: Pages clipped because a request ran past the end of the namespace.
    clipped_pages: int = 0
    #: Total time requests waited in the submission queue before the
    #: arbiter granted them a device slot (us).
    queue_wait_us: float = 0.0
    #: Times the namespace's token bucket deferred an admission.
    rate_limit_deferrals: int = 0
    #: Completions whose latency exceeded the namespace SLO.
    slo_violations_read: int = 0
    slo_violations_write: int = 0
    read_latency: LatencyRecorder = field(
        default_factory=lambda: LatencyRecorder(seed=_READ_SEED)
    )
    write_latency: LatencyRecorder = field(
        default_factory=lambda: LatencyRecorder(seed=_WRITE_SEED)
    )

    @property
    def slo_violations(self) -> int:
        return self.slo_violations_read + self.slo_violations_write

    def summary(self) -> Dict[str, float]:
        """Flat per-tenant metrics (the multi-tenant reports print these)."""
        return {
            "submitted": float(self.submitted),
            "completed": float(self.completed),
            "read_pages": float(self.read_pages),
            "write_pages": float(self.write_pages),
            "clipped_pages": float(self.clipped_pages),
            "queue_wait_us": self.queue_wait_us,
            "rate_limit_deferrals": float(self.rate_limit_deferrals),
            "slo_violations": float(self.slo_violations),
            "read_mean_us": self.read_latency.mean_us,
            "read_p50_us": self.read_latency.percentile(50),
            "read_p95_us": self.read_latency.percentile(95),
            "read_p99_us": self.read_latency.percentile(99),
            "write_mean_us": self.write_latency.mean_us,
            "write_p50_us": self.write_latency.percentile(50),
            "write_p95_us": self.write_latency.percentile(95),
            "write_p99_us": self.write_latency.percentile(99),
        }


class Namespace:
    """One tenant's logical address region plus its QoS attributes.

    ``weight`` feeds weighted-round-robin arbitration, ``priority`` feeds
    strict-priority arbitration (lower value = more urgent), and
    ``limiters`` (token buckets) cap the namespace's admission rate
    regardless of the arbiter in use.
    """

    def __init__(
        self,
        name: str,
        base_lpa: int,
        size_pages: int,
        weight: int = 1,
        priority: int = 0,
        slo_read_us: Optional[float] = None,
        slo_write_us: Optional[float] = None,
        limiters: Tuple[TokenBucket, ...] = (),
    ) -> None:
        if base_lpa < 0:
            raise ValueError("base_lpa must be non-negative")
        if size_pages <= 0:
            raise ValueError("size_pages must be positive")
        if weight < 1:
            raise ValueError("weight must be at least 1")
        for slo in (slo_read_us, slo_write_us):
            if slo is not None and slo <= 0.0:
                raise ValueError("SLO thresholds must be positive")
        self.name = name
        self.base_lpa = base_lpa
        self.size_pages = size_pages
        self.weight = weight
        self.priority = priority
        self.slo_read_us = slo_read_us
        self.slo_write_us = slo_write_us
        self.limiters: List[TokenBucket] = list(limiters)
        self.stats = NamespaceStats()

    @property
    def end_lpa(self) -> int:
        """One past the last device LPA owned by this namespace."""
        return self.base_lpa + self.size_pages

    def overlaps(self, other: "Namespace") -> bool:
        return self.base_lpa < other.end_lpa and other.base_lpa < self.end_lpa

    def translate(self, lpa: int, npages: int) -> Tuple[int, int]:
        """Map a namespace-relative request to device LPAs.

        Returns ``(device_lpa, npages)`` with the page count clipped to the
        namespace boundary (clipped pages are counted, mirroring the
        device-level ``stats.clipped_pages`` convention).  Requests starting
        outside the namespace are errors, not clips.
        """
        if not 0 <= lpa < self.size_pages:
            raise ValueError(
                f"LPA {lpa} outside namespace {self.name!r} "
                f"({self.size_pages} pages)"
            )
        allowed = min(npages, self.size_pages - lpa)
        if allowed < npages:
            self.stats.clipped_pages += npages - allowed
        return self.base_lpa + lpa, allowed

    def reset_stats(self) -> NamespaceStats:
        """Fresh statistics (call between a warm-up and a measured phase)."""
        self.stats = NamespaceStats()
        return self.stats

    def record_completion(self, op: str, latency_us: float) -> None:
        """Record one completed request's latency and check its SLO."""
        if op == "R":
            self.stats.read_latency.record(latency_us)
            if self.slo_read_us is not None and latency_us > self.slo_read_us:
                self.stats.slo_violations_read += 1
        else:
            self.stats.write_latency.record(latency_us)
            if self.slo_write_us is not None and latency_us > self.slo_write_us:
                self.stats.slo_violations_write += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Namespace({self.name!r}, base={self.base_lpa}, "
            f"pages={self.size_pages}, weight={self.weight}, "
            f"priority={self.priority})"
        )
