"""Benchmark package: one module per figure/table of the LeaFTL paper."""
