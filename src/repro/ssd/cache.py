"""LRU read/write data cache for the SSD controller DRAM.

The paper extends WiscSim with "an LRU-based read-write cache" (Section 3.9).
The cache holds flash-page-sized entries keyed by LPA.  Its capacity is
whatever DRAM is left after the mapping table has taken its share, so the
central claim of LeaFTL — a smaller mapping table leaves more room for data
caching — shows up here as a larger ``capacity_pages``.

The cache capacity can be resized at runtime (the learned mapping table grows
and shrinks as the workload evolves); shrinking evicts the least recently
used entries immediately.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, List, Tuple


@dataclass
class CacheStats:
    """Hit/miss counters of the data cache."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0


class LRUDataCache:
    """An LRU cache of flash pages, keyed by LPA.

    Entries can be *clean* (populated on read) or *dirty* (populated on
    write before the data reaches flash).  Eviction returns the evicted
    (lpa, dirty) pairs so the caller can schedule write-back if needed; in
    this simulator dirty data always also lives in the write buffer, so the
    returned list is informational.
    """

    def __init__(self, capacity_pages: int) -> None:
        if capacity_pages < 0:
            raise ValueError("capacity_pages must be non-negative")
        self._capacity = capacity_pages
        self._entries: "OrderedDict[int, bool]" = OrderedDict()
        self.stats = CacheStats()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def capacity_pages(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, lpa: int) -> bool:
        return lpa in self._entries

    def __iter__(self) -> Iterator[int]:
        return iter(self._entries)

    # ------------------------------------------------------------------ #
    # Cache operations
    # ------------------------------------------------------------------ #
    def lookup(self, lpa: int) -> bool:
        """Return True on a hit; refreshes recency and updates stats."""
        if lpa in self._entries:
            self._entries.move_to_end(lpa)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def peek(self, lpa: int) -> bool:
        """Membership test without touching recency or statistics."""
        return lpa in self._entries

    def insert(self, lpa: int, dirty: bool = False) -> List[Tuple[int, bool]]:
        """Insert (or refresh) ``lpa``; return the entries evicted to make room."""
        capacity = self._capacity
        if capacity == 0:
            return []
        entries = self._entries
        if lpa in entries:
            # Refresh; a dirty insert over a clean entry upgrades it.
            if dirty and not entries[lpa]:
                entries[lpa] = True
            entries.move_to_end(lpa)
            return []
        entries[lpa] = dirty
        stats = self.stats
        stats.insertions += 1
        evicted: List[Tuple[int, bool]] = []
        while len(entries) > capacity:
            old = entries.popitem(last=False)
            stats.evictions += 1
            evicted.append(old)
        return evicted

    def mark_clean(self, lpa: int) -> None:
        """Clear the dirty flag after the page has been persisted to flash."""
        if lpa in self._entries:
            self._entries[lpa] = False

    def invalidate(self, lpa: int) -> bool:
        """Drop ``lpa`` from the cache (e.g. after TRIM); True if present."""
        return self._entries.pop(lpa, None) is not None

    def resize(self, capacity_pages: int) -> List[Tuple[int, bool]]:
        """Change the capacity; evicts LRU entries when shrinking."""
        if capacity_pages < 0:
            raise ValueError("capacity_pages must be non-negative")
        self._capacity = capacity_pages
        evicted: List[Tuple[int, bool]] = []
        while len(self._entries) > self._capacity:
            lpa, dirty = self._entries.popitem(last=False)
            self.stats.evictions += 1
            evicted.append((lpa, dirty))
        return evicted

    def clear(self) -> None:
        self._entries.clear()
