"""Tests for the event-driven simulation engine.

Covers three layers:

* the event loop itself (deterministic ordering of same-timestamp events);
* the NAND scheduler (bus vs die timing models);
* the full device: the event engine at ``queue_depth = 1`` must reproduce
  the synchronous simulator bit-for-bit, and at higher depths foreground
  reads must be measurably delayed by concurrent flush/GC traffic while
  the replay makespan shrinks.
"""

from __future__ import annotations

import random

import pytest

from repro.config import SSDConfig
from repro.sim.events import EventLoop
from repro.sim.frontend import HostFrontend, interleave_streams
from repro.sim.nand import NANDScheduler
from repro.ssd.ssd import SSDOptions
from tests.conftest import make_ssd


class TestEventLoop:
    def test_events_fire_in_time_order(self):
        loop = EventLoop()
        fired = []
        for time_us in (30.0, 10.0, 20.0):
            loop.schedule(time_us, "tick", lambda e: fired.append(e.time_us))
        loop.run()
        assert fired == [10.0, 20.0, 30.0]
        assert loop.now_us == 30.0
        assert loop.events_processed == 3

    def test_same_timestamp_events_fire_in_schedule_order(self):
        loop = EventLoop()
        fired = []
        for tag in ("a", "b", "c", "d"):
            loop.schedule(5.0, tag, lambda e: fired.append(e.kind))
        loop.run()
        assert fired == ["a", "b", "c", "d"]

    def test_priority_breaks_timestamp_ties(self):
        loop = EventLoop()
        fired = []
        loop.schedule(5.0, "late", lambda e: fired.append(e.kind), priority=1)
        loop.schedule(5.0, "early", lambda e: fired.append(e.kind), priority=-1)
        loop.run()
        assert fired == ["early", "late"]

    def test_scheduling_in_the_past_clamps_to_now(self):
        loop = EventLoop(start_us=100.0)
        fired = []
        loop.schedule(1.0, "stale", lambda e: fired.append(e.time_us))
        loop.run()
        assert fired == [100.0]
        assert loop.now_us == 100.0

    def test_events_scheduled_from_callbacks_interleave(self):
        loop = EventLoop()
        fired = []

        def chain(event):
            fired.append((event.kind, event.time_us))
            if len(fired) < 3:
                loop.schedule(event.time_us + 10.0, f"gen{len(fired)}", chain)

        loop.schedule(0.0, "gen0", chain)
        loop.schedule(15.0, "other", lambda e: fired.append(("other", e.time_us)))
        loop.run()
        assert fired == [
            ("gen0", 0.0),
            ("gen1", 10.0),
            ("other", 15.0),
            ("gen2", 20.0),
        ]

    def test_cancelled_events_do_not_fire(self):
        loop = EventLoop()
        fired = []
        event = loop.schedule(1.0, "dead", lambda e: fired.append(e.kind))
        loop.schedule(2.0, "live", lambda e: fired.append(e.kind))
        event.cancel()
        loop.run()
        assert fired == ["live"]

    def test_run_until_leaves_future_events_pending(self):
        loop = EventLoop()
        loop.schedule(1.0, "soon")
        loop.schedule(100.0, "later")
        processed = loop.run(until_us=50.0)
        assert processed == 1
        assert loop.pending == 1

    def test_run_until_respects_bound_past_cancelled_head(self):
        loop = EventLoop()
        head = loop.schedule(10.0, "dead")
        loop.schedule(100.0, "later")
        head.cancel()
        processed = loop.run(until_us=50.0)
        # The cancelled head must not let the later event slip past the bound.
        assert processed == 0
        assert loop.now_us <= 50.0
        assert loop.pending == 1


class TestNANDScheduler:
    def test_bus_reservations_serialize_per_channel(self):
        sched = NANDScheduler(channels=2)
        assert sched.reserve(0, 0.0, 10.0) == 10.0
        assert sched.reserve(0, 0.0, 10.0) == 20.0   # queued behind the first
        assert sched.reserve(1, 0.0, 10.0) == 10.0   # other channel is free
        assert sched.busy_until(0) == 20.0

    def test_bus_model_ignores_die_conflicts(self):
        sched = NANDScheduler(channels=1, dies_per_channel=2, timing_model="bus")
        first = sched.reserve(0, 0.0, 5.0, die=0, cell_us=200.0)
        second = sched.reserve(0, 0.0, 5.0, die=0, cell_us=200.0)
        # Only the bus constrains: back-to-back despite the shared die.
        assert (first, second) == (5.0, 10.0)
        assert sched.die_busy_until(0, 0) == 205.0

    def test_die_model_serializes_cell_operations(self):
        sched = NANDScheduler(channels=1, dies_per_channel=2, timing_model="die")
        sched.reserve(0, 0.0, 5.0, die=0, cell_us=200.0)
        # A different die only waits for the bus transfer of the first op.
        other_die = sched.reserve(0, 0.0, 5.0, die=1, cell_us=200.0)
        assert other_die == 10.0
        # The same die waits for the first cell operation to finish.
        same_die = sched.reserve(0, 0.0, 5.0, die=0, cell_us=200.0)
        assert same_die == 205.0

    def test_utilization_tracks_bus_time(self):
        sched = NANDScheduler(channels=1)
        sched.reserve(0, 0.0, 25.0)
        assert sched.channel_utilization(0, 100.0) == pytest.approx(0.25)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            NANDScheduler(channels=0)
        with pytest.raises(ValueError):
            NANDScheduler(channels=1, timing_model="warp")


def _mixed_requests(seed: int, count: int, footprint: int):
    rng = random.Random(seed)
    requests = []
    for _ in range(count):
        start = rng.randrange(footprint)
        if rng.random() < 0.4:
            requests.append(("W", start, rng.randint(1, 32)))
        else:
            requests.append(("R", start, rng.randint(1, 8)))
    return requests


#: Device used by the engine tests: small enough that the fill +
#: overwrite passes of the contended workload push it past the GC
#: threshold, so flush *and* GC traffic are both in play.
_CONTENDED_CONFIG = SSDConfig.tiny(capacity_bytes=128 * 1024 * 1024)
_CONTENDED_FOOTPRINT = 28_000


def _contended_workload(footprint: int = _CONTENDED_FOOTPRINT):
    """A fill pass + half-stride overwrites (activates GC), then a mix."""
    fill = [("W", lpa, 64) for lpa in range(0, footprint, 64)]
    overwrite = [("W", lpa, 64) for lpa in range(0, footprint, 128)]
    return fill + overwrite + _mixed_requests(7, 2500, footprint)


def _stats_signature(ssd):
    stats = ssd.stats
    return (
        stats.read_latency.count,
        stats.read_latency.total_us,
        stats.read_latency.max_us,
        stats.write_latency.count,
        stats.write_latency.total_us,
        stats.data_page_writes,
        stats.gc_page_reads,
        stats.gc_page_writes,
        stats.gc_invocations,
        stats.gc_block_erases,
        stats.buffer_flushes,
        stats.buffer_hits,
        stats.cache_hits,
        stats.mispredictions,
        stats.misprediction_extra_reads,
        stats.read_stall_us,
        stats.simulated_time_us,
        ssd.flash.counters.page_reads,
        ssd.flash.counters.page_writes,
        ssd.flash.counters.block_erases,
    )


class TestEngineEquivalence:
    def test_event_engine_at_depth_one_matches_serial_exactly(self):
        """Acceptance: queue_depth=1 events == synchronous, stat for stat."""
        requests = _contended_workload()
        serial = make_ssd(
            gamma=4, config=_CONTENDED_CONFIG, options=SSDOptions(engine="serial")
        )
        serial.run(requests)
        events = make_ssd(
            gamma=4,
            config=_CONTENDED_CONFIG,
            options=SSDOptions(engine="events", queue_depth=1),
        )
        events.run(requests)
        assert _stats_signature(serial) == _stats_signature(events)
        # The event engine really ran through the loop.
        assert events.stats.events_processed > 0
        assert serial.stats.events_processed == 0

    def test_auto_engine_picks_serial_at_depth_one(self):
        ssd = make_ssd()
        ssd.run(_mixed_requests(1, 200, 5000))
        assert ssd.stats.events_processed == 0

    def test_gc_active_during_equivalence_workload(self):
        """The equivalence test must exercise flush + GC, not just reads."""
        ssd = make_ssd(gamma=4, config=_CONTENDED_CONFIG)
        ssd.run(_contended_workload())
        assert ssd.stats.gc_invocations > 0
        assert ssd.stats.buffer_flushes > 0


class TestQueueDepthContention:
    def _run_at_depth(self, depth: int):
        ssd = make_ssd(
            gamma=4,
            config=_CONTENDED_CONFIG,
            options=SSDOptions(queue_depth=depth),
        )
        ssd.run(_contended_workload())
        return ssd

    def test_deeper_queues_delay_foreground_reads(self):
        """Acceptance: reads at depth > 1 stall behind concurrent GC/flush."""
        shallow = self._run_at_depth(1)
        deep = self._run_at_depth(8)
        # Same logical work...
        assert deep.stats.host_reads == shallow.stats.host_reads
        assert deep.stats.data_page_writes == shallow.stats.data_page_writes
        # ...but reads queue behind overlapping background traffic.
        assert deep.stats.read_stall_us > shallow.stats.read_stall_us * 2
        assert (
            deep.stats.read_latency.mean_us > shallow.stats.read_latency.mean_us
        )
        # Overlap shortens the replay makespan (throughput gain).
        assert deep.stats.simulated_time_us < shallow.stats.simulated_time_us
        # The frontend really kept 8 requests outstanding.
        assert deep.stats.max_outstanding_requests == 8
        # Background flush/GC completions were observed by the loop.
        assert deep.stats.background_completions > 0

    def test_queue_depth_clamped_to_device_ncq(self):
        from repro.config import SSDConfig

        config = SSDConfig.tiny(ncq_depth=4)
        ssd = make_ssd(config=config, options=SSDOptions(queue_depth=64))
        assert ssd.effective_queue_depth == 4

    def test_event_replay_is_deterministic(self):
        first = self._run_at_depth(8)
        second = self._run_at_depth(8)
        assert _stats_signature(first) == _stats_signature(second)


class TestHostFrontend:
    class _RecordingDevice:
        """Fixed-latency device that records issue times."""

        def __init__(self, latency_us: float = 10.0):
            self.latency_us = latency_us
            self.issues = []

        def submit(self, op, lpa, npages, at_us):
            self.issues.append((at_us, op, lpa))
            return at_us + self.latency_us

    def test_depth_one_is_serial(self):
        device = self._RecordingDevice()
        loop = EventLoop()
        frontend = HostFrontend(device, loop, queue_depth=1)
        stats = frontend.run([("R", lpa, 1) for lpa in range(4)])
        assert [t for t, _, _ in device.issues] == [0.0, 10.0, 20.0, 30.0]
        assert stats.submitted == stats.completed == 4
        assert stats.max_outstanding == 1

    def test_depth_n_overlaps_requests(self):
        device = self._RecordingDevice()
        loop = EventLoop()
        frontend = HostFrontend(device, loop, queue_depth=2)
        stats = frontend.run([("R", lpa, 1) for lpa in range(4)])
        # Two admitted at t=0, the next two at the first completions.
        assert [t for t, _, _ in device.issues] == [0.0, 0.0, 10.0, 10.0]
        assert stats.max_outstanding == 2
        assert stats.finished_at_us == 20.0

    def test_invalid_depth_rejected(self):
        with pytest.raises(ValueError):
            HostFrontend(self._RecordingDevice(), EventLoop(), queue_depth=0)

    def test_interleave_streams_round_robins(self):
        a = [("R", 0, 1), ("R", 1, 1), ("R", 2, 1)]
        b = [("W", 10, 1)]
        merged = list(interleave_streams(a, b))
        assert merged == [("R", 0, 1), ("W", 10, 1), ("R", 1, 1), ("R", 2, 1)]
