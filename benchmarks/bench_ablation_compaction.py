"""Ablation: segment compaction interval (Section 3.7).

The paper compacts the learned table once per million writes and reports the
whole-table compaction takes ~4.1 ms of CPU time.  This ablation measures
(a) how much memory periodic compaction reclaims on an overwrite-heavy
workload and (b) how long one full compaction takes on the host CPU.
"""

from __future__ import annotations

from repro.analysis.memory import format_bytes
from repro.analysis.report import print_report, render_table
from repro.experiments.common import run_experiment, workload_for_setup
from repro.experiments.memory import memory_setup

from benchmarks.conftest import memory_scale, run_once

def test_ablation_compaction_interval(benchmark):
    def run_both():
        results = {}
        for label, interval in (("frequent (25k writes)", 25_000), ("disabled", 10**9)):
            setup = memory_setup(gamma=0, request_scale=memory_scale()).scaled(
                compaction_interval_writes=interval
            )
            trace = workload_for_setup("FIU-mail", setup)
            results[label] = run_experiment("FIU-mail", "LeaFTL", setup, trace=trace)
        return results

    results = run_once(benchmark, run_both)

    rows = [
        [label, format_bytes(outcome.mapping_full_bytes), outcome.ftl_details.get("segments", 0)]
        for label, outcome in results.items()
    ]
    print_report(render_table(
        ["compaction", "mapping table", "live segments"],
        rows, title="Ablation: segment compaction (FIU-mail, overwrite-heavy)"))

    compacted = results["frequent (25k writes)"].mapping_full_bytes
    uncompacted = results["disabled"].mapping_full_bytes
    assert compacted <= uncompacted

def test_ablation_compaction_latency(benchmark):
    """Wall-clock cost of one full-table compaction (paper: ~4.1 ms)."""
    setup = memory_setup(gamma=0, request_scale=memory_scale()).scaled(
        compaction_interval_writes=10**9
    )
    run_experiment("MSR-hm", "LeaFTL", setup)
    # Rebuild a table of the same shape and time compact() directly.
    from repro.config import LeaFTLConfig
    from repro.core.mapping_table import LogStructuredMappingTable

    table = LogStructuredMappingTable(LeaFTLConfig(gamma=0))
    import random

    rng = random.Random(0)
    ppa = 0
    for _ in range(300):
        start = rng.randrange(0, 50_000)
        lpas = sorted(set(start + rng.randrange(0, 128) for _ in range(64)))
        table.update([(lpa, ppa + i) for i, lpa in enumerate(lpas)])
        ppa += len(lpas)

    benchmark(table.compact)
    compact_ms = benchmark.stats.stats.mean * 1e3
    print_report(render_table(
        ["metric", "value", "paper"],
        [["full compaction time (ms)", round(compact_ms, 2), "~4.1 ms (ARM)"]],
        title="Ablation: compaction latency"))
    assert compact_ms < 500
