"""Command-line entry point: ``python -m tools.simlint [paths...]``.

Exit status: 0 when clean, 1 when findings were reported, 2 on usage or
parse errors — the contract the CI ``static-analysis`` job relies on.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List

from tools.simlint.config import CONFIG_NAME, SimlintConfig
from tools.simlint.engine import RULES, iter_python_files, lint_file


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.simlint",
        description="Determinism-and-correctness static analysis for the simulator.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the config's include list)",
    )
    parser.add_argument(
        "--config",
        type=Path,
        default=None,
        help=f"path to {CONFIG_NAME} (default: discovered from the lint roots)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (default: all enabled rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule with its rationale and exit",
    )
    return parser


def _list_rules() -> None:
    for code in sorted(RULES):
        rule = RULES[code]()
        print(f"{code}  {rule.name}")
        print(f"    {rule.rationale}")
        print(f"    default scope: {', '.join(rule.default_paths)}")


def main(argv: List[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        _list_rules()
        return 0

    try:
        if args.config is not None:
            config = SimlintConfig.load(args.config)
        else:
            start = Path(args.paths[0]) if args.paths else Path.cwd()
            config = SimlintConfig.discover(start)
    except (OSError, ValueError) as exc:
        print(f"simlint: config error: {exc}", file=sys.stderr)
        return 2

    selected = None
    if args.select:
        selected = {code.strip() for code in args.select.split(",") if code.strip()}
        unknown = selected - set(RULES)
        if unknown:
            print(
                f"simlint: unknown rule(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2

    roots = [Path(p) for p in args.paths] if args.paths else [
        config.root / entry for entry in config.include
    ]
    missing = [str(root) for root in roots if not root.exists()]
    if missing:
        print(f"simlint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    active = [
        rule
        for rule in config.active_rules()
        if selected is None or rule.code in selected
    ]

    findings = []
    errors = 0
    files = 0
    for path in iter_python_files(roots):
        if config.is_excluded(path):
            continue
        applicable = [rule for rule in active if config.rule_applies(rule, path)]
        if not applicable:
            continue
        files += 1
        try:
            findings.extend(lint_file(path, config.relpath(path), applicable))
        except SyntaxError as exc:
            errors += 1
            print(
                f"simlint: {config.relpath(path)}: syntax error: {exc.msg} "
                f"(line {exc.lineno})",
                file=sys.stderr,
            )

    findings.sort()
    if args.format == "json":
        print(
            json.dumps(
                {
                    "files_checked": files,
                    "findings": [f.as_dict() for f in findings],
                },
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding.render())
        summary = f"simlint: {files} files checked, {len(findings)} finding(s)"
        print(summary, file=sys.stderr)

    if errors:
        return 2
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
