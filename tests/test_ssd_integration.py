"""Integration tests: the full SSD model with each FTL scheme.

The key end-to-end invariant is *read-your-writes*: whatever FTL is plugged
in (and whatever gamma LeaFTL uses), a read of any previously written LPA
must reach the flash page that holds that LPA's latest data — mispredictions
may add flash reads, but never return wrong data.  The simulator enforces
this by verifying the OOB reverse mapping on every translated read and
raising in strict mode when it cannot be satisfied.
"""

from __future__ import annotations

import random

import pytest

from repro.config import DRAMBudget, LeaFTLConfig, SSDConfig
from repro.core.leaftl import LeaFTL
from repro.ftl.dftl import DFTL
from repro.ftl.pagemap import PageLevelFTL
from repro.ftl.sftl import SFTL
from repro.ssd.ssd import SimulatedSSD, SSDOptions
from tests.conftest import make_ssd


def mixed_requests(rng, count, footprint):
    requests = []
    for _ in range(count):
        r = rng.random()
        start = rng.randrange(footprint)
        if r < 0.3:
            requests.append(("W", start, rng.randint(1, 32)))
        elif r < 0.5:
            requests.append(("W", start, 1))
        elif r < 0.8:
            requests.append(("R", start, rng.randint(1, 8)))
        else:
            requests.append(("R", start, 1))
    return requests


@pytest.mark.parametrize(
    "ftl_factory",
    [
        lambda: PageLevelFTL(),
        lambda: DFTL(mapping_budget_bytes=64 * 1024),
        lambda: SFTL(mapping_budget_bytes=64 * 1024),
        lambda: LeaFTL(LeaFTLConfig(gamma=0, compaction_interval_writes=20_000)),
        lambda: LeaFTL(LeaFTLConfig(gamma=4, compaction_interval_writes=20_000)),
        lambda: LeaFTL(LeaFTLConfig(gamma=16, compaction_interval_writes=20_000)),
    ],
    ids=["PageMap", "DFTL", "SFTL", "LeaFTL-g0", "LeaFTL-g4", "LeaFTL-g16"],
)
def test_mixed_workload_runs_clean_in_strict_mode(ftl_factory):
    """Strict mode raises on any unrecoverable translation — none may occur."""
    rng = random.Random(99)
    ssd = make_ssd(ftl=ftl_factory())
    requests = mixed_requests(rng, 4000, footprint=12_000)
    stats = ssd.run(requests)
    total_pages = sum(npages for _op, _lpa, npages in requests)
    assert stats.host_reads + stats.host_writes == total_pages
    assert stats.simulated_time_us > 0


def test_read_your_writes_through_flash():
    """Data read from flash always belongs to the requested LPA (gamma=16)."""
    rng = random.Random(5)
    config = SSDConfig.tiny()
    ssd = make_ssd(gamma=16, config=config)
    footprint = 8000
    written = set()
    for _ in range(3000):
        if rng.random() < 0.5 or not written:
            lpa = rng.randrange(footprint)
            ssd.write(lpa)
            written.add(lpa)
        else:
            ssd.read(rng.choice(sorted(written)))
    ssd.flush()
    # Sample reads after flush: every translated read is OOB-verified by the
    # simulator, so surviving without SimulationError proves correctness.
    for lpa in rng.sample(sorted(written), 200):
        ssd.read(lpa)


def test_write_buffer_absorbs_overwrites():
    ssd = make_ssd()
    for _ in range(10):
        ssd.write(42)
    ssd.flush()
    assert ssd.stats.data_page_writes == 1


def test_cache_hit_served_from_dram():
    ssd = make_ssd()
    ssd.write(10)
    ssd.flush()
    ssd.cache.invalidate(10)   # drop the write-allocated entry
    first = ssd.read(10)       # flash read, repopulates the cache
    second = ssd.read(10)      # cache hit
    assert second <= ssd.config.dram_latency_us
    assert ssd.stats.cache_hits >= 1
    assert first >= ssd.config.read_latency_us


def test_unmapped_read_serves_zeroes_without_flash_access():
    ssd = make_ssd()
    before = ssd.flash.counters.page_reads
    ssd.read(123)
    assert ssd.flash.counters.page_reads == before
    assert ssd.stats.unmapped_reads == 1


def test_gc_reclaims_space_and_preserves_data():
    """Fill the device past the GC threshold and verify data integrity."""
    rng = random.Random(3)
    config = SSDConfig.tiny()
    ssd = make_ssd(gamma=4, config=config)
    footprint = int(config.logical_pages * 0.9)
    # A full pass fills the device; the second pass overwrites the first
    # half of every other 64-page extent, so GC victims are half-valid and
    # must migrate their surviving pages (fully-valid blocks are skipped —
    # migrating them would reclaim nothing).
    for lpa in range(0, footprint, 64):
        ssd.process("W", lpa, 64)
    for lpa in range(0, footprint, 128):
        ssd.process("W", lpa, 32)
    ssd.flush()
    assert ssd.stats.gc_invocations > 0
    assert ssd.stats.gc_page_writes > 0
    assert ssd.allocator.free_ratio() > ssd.gc_policy.config.threshold
    # Reads after GC still find their data (strict mode would raise otherwise).
    for lpa in rng.sample(range(footprint), 300):
        ssd.read(lpa)


def test_write_amplification_accounts_gc_traffic():
    config = SSDConfig.tiny()
    ssd = make_ssd(config=config)
    footprint = int(config.logical_pages * 0.9)
    for _ in range(2):
        for lpa in range(0, footprint, 64):
            ssd.process("W", lpa, 64)
    ssd.flush()
    waf = ssd.stats.write_amplification
    assert waf >= 1.0
    assert waf < 3.0


def test_mapping_bytes_sampled_on_flush():
    ssd = make_ssd()
    for lpa in range(0, 4096, 8):
        ssd.write(lpa)
    ssd.flush()
    assert len(ssd.stats.mapping_bytes_samples) >= 1
    assert ssd.mapping_table_bytes() > 0


def test_cache_resizes_as_mapping_grows():
    config = SSDConfig.tiny()
    ftl = DFTL(mapping_budget_bytes=1024 * 1024)
    budget = DRAMBudget(dram_bytes=256 * 1024, min_cache_bytes=16 * 4096)
    ssd = SimulatedSSD(config, ftl, dram_budget=budget)
    initial_capacity = ssd.cache.capacity_pages
    rng = random.Random(0)
    for _ in range(20_000):
        ssd.write(rng.randrange(60_000))
    ssd.flush()
    assert ssd.cache.capacity_pages < initial_capacity


def test_unsorted_flush_option_produces_more_segments():
    """Ablation of Section 3.3: sorting the buffer reduces segment count."""
    def run(sort):
        ssd = make_ssd(
            ftl=LeaFTL(LeaFTLConfig(gamma=0)),
            options=SSDOptions(sort_buffer_on_flush=sort),
        )
        rng = random.Random(11)
        for _ in range(6000):
            start = rng.randrange(0, 30_000)
            ssd.process("W", start, rng.randint(1, 16))
        ssd.flush()
        return ssd.ftl.table.segment_count()

    assert run(sort=True) < run(sort=False)


def test_wear_leveling_keeps_erase_counts_bounded():
    """Repeated hot overwrites trigger GC/wear leveling and spread erases."""
    config = SSDConfig.tiny()
    ssd = make_ssd(config=config)
    hot = 4096
    passes = int(config.physical_pages / hot) + 4
    for _ in range(passes):
        for lpa in range(0, hot, 64):
            ssd.process("W", lpa, 64)
    ssd.flush()
    counts = ssd.flash.erase_counts()
    assert max(counts) >= 1
    assert ssd.stats.gc_invocations > 0


def test_misprediction_handling_costs_one_extra_read():
    """With gamma > 0, mispredicted reads add at most one flash read each."""
    rng = random.Random(17)
    ssd = make_ssd(gamma=16)
    footprint = 20_000
    written = set()
    for _ in range(8000):
        lpas = sorted(set(rng.randrange(footprint) for _ in range(rng.randint(1, 30))))
        for lpa in lpas:
            ssd.write(lpa)
            written.add(lpa)
    ssd.flush()
    for lpa in rng.sample(sorted(written), 500):
        ssd.read(lpa)
    stats = ssd.stats
    if stats.mispredictions:
        assert stats.misprediction_extra_reads <= stats.mispredictions * (2 * 16 + 1)
        # The common case resolves with exactly one extra read via the OOB.
        assert stats.misprediction_extra_reads >= stats.mispredictions
