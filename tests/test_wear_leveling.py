"""Unit tests for the wear-leveling policy (repro.ssd.wear_leveling).

The module previously had no direct tests — its ``due()`` predicate
mutated the throttle state on every probe, so a caller that checked wear
and decided not to level silently pushed the next check a full interval
out.  These tests pin the fixed contract: ``due()`` is a pure probe and
only an explicit :meth:`WearLeveler.acknowledge` restarts the window.
"""

from __future__ import annotations

import pytest

from repro.config import SSDConfig
from repro.flash.allocator import BlockAllocator
from repro.flash.flash_array import FlashArray
from repro.ssd.wear_leveling import WearLeveler, WearLevelingConfig


@pytest.fixture
def config():
    return SSDConfig.tiny()


@pytest.fixture
def flash(config):
    return FlashArray(config)


def fill_block(flash: FlashArray, block: int, base_lpa: int) -> None:
    """Program a whole block with distinct LPAs (no prior copies)."""
    pages = flash.geometry.pages_per_block
    first = block * pages
    lpas = list(range(base_lpa, base_lpa + pages))
    flash.program_run(first, lpas, [None] * pages, 0, {}, 0.0)


def churn_block(flash: FlashArray, block: int, erases: int) -> None:
    """Run program/invalidate/erase cycles to raise a block's erase count."""
    pages = flash.geometry.pages_per_block
    first = block * pages
    for _ in range(erases):
        lpas = list(range(pages))
        flash.program_run(first, lpas, [None] * pages, 0, {}, 0.0)
        for ppa in range(first, first + pages):
            flash.invalidate_page(ppa)
        flash.erase_block(block, now_us=0.0)


class TestConfigValidation:
    def test_defaults_valid(self):
        WearLevelingConfig()

    @pytest.mark.parametrize(
        "field", ["imbalance_threshold", "check_interval_erases", "blocks_per_invocation"]
    )
    def test_rejects_non_positive(self, field):
        with pytest.raises(ValueError):
            WearLevelingConfig(**{field: 0})


class TestDueThrottle:
    def test_not_due_before_interval(self, flash):
        leveler = WearLeveler(WearLevelingConfig(check_interval_erases=4))
        churn_block(flash, 0, erases=3)
        assert not leveler.due(flash)

    def test_due_after_interval(self, flash):
        leveler = WearLeveler(WearLevelingConfig(check_interval_erases=4))
        churn_block(flash, 0, erases=4)
        assert leveler.due(flash)

    def test_due_is_pure(self, flash):
        """Probing due() must not consume the throttle window (the old bug:
        every probe reset the counter, so a balanced-wear check pushed the
        next one a full interval out)."""
        leveler = WearLeveler(WearLevelingConfig(check_interval_erases=4))
        churn_block(flash, 0, erases=4)
        assert leveler.due(flash)
        # Repeated probes with no acknowledge stay due — no state consumed.
        assert leveler.due(flash)
        assert leveler.due(flash)

    def test_acknowledge_restarts_window(self, flash):
        leveler = WearLeveler(WearLevelingConfig(check_interval_erases=4))
        churn_block(flash, 0, erases=4)
        assert leveler.due(flash)
        leveler.acknowledge(flash)
        assert not leveler.due(flash)
        churn_block(flash, 1, erases=4)
        assert leveler.due(flash)


class TestImbalance:
    def test_fresh_array_balanced(self, flash):
        leveler = WearLeveler(WearLevelingConfig(imbalance_threshold=2))
        assert not leveler.imbalanced(flash)

    def test_spread_over_threshold_triggers(self, flash):
        leveler = WearLeveler(WearLevelingConfig(imbalance_threshold=2))
        churn_block(flash, 0, erases=2)
        assert not leveler.imbalanced(flash)  # spread == threshold: not yet
        churn_block(flash, 0, erases=1)
        assert leveler.imbalanced(flash)


class TestColdBlockSelection:
    def test_prefers_least_erased_then_most_valid(self, flash):
        allocator = BlockAllocator(flash)
        # Three sealed blocks with valid data; block 2 is the most worn.
        for block in range(3):
            allocator.allocate_block(channel=flash.geometry.block_to_channel(block))
        churn_block(flash, 2, erases=5)
        for block in range(3):
            fill_block(flash, block, base_lpa=block * 1000)
            allocator.seal_block(block)
        # Drain one page from block 1: equal wear to block 0, fewer valid.
        flash.invalidate_page(block_first_ppa(flash, 1))
        leveler = WearLeveler(WearLevelingConfig(blocks_per_invocation=2))
        cold = leveler.select_cold_blocks(flash, allocator)
        assert cold == [0, 1]

    def test_skips_blocks_without_valid_data(self, flash):
        allocator = BlockAllocator(flash)
        allocator.allocate_block(channel=flash.geometry.block_to_channel(0))
        fill_block(flash, 0, base_lpa=0)
        allocator.seal_block(0)
        for ppa in flash.programmed_ppas_of_block(0):
            flash.invalidate_page(ppa)
        leveler = WearLeveler()
        assert leveler.select_cold_blocks(flash, allocator) == []


def block_first_ppa(flash: FlashArray, block: int) -> int:
    return block * flash.geometry.pages_per_block
