"""Table 1: SSD configuration used by the simulator.

Prints the configuration the experiments use alongside the paper's values
and benchmarks how long constructing the simulated device takes.
"""

from __future__ import annotations

from repro.analysis.report import print_report, render_table
from repro.config import SSDConfig
from repro.core.leaftl import LeaFTL
from repro.ssd.ssd import SimulatedSSD

from benchmarks.conftest import run_once


def test_table1_ssd_configuration(benchmark):
    paper = SSDConfig.paper_simulator()

    def build():
        # Building the full 2 TB device is memory-heavy; the experiments use
        # a geometrically identical but smaller device, built here.
        return SimulatedSSD(SSDConfig.small(), LeaFTL())

    ssd = run_once(benchmark, build)

    rows = [
        ["Capacity", f"{paper.capacity_bytes // 2**40} TB", "2 TB"],
        ["Page size", f"{paper.page_size // 1024} KB", "4 KB"],
        ["DRAM size", f"{paper.dram_size // 2**30} GB", "1 GB"],
        ["Channels", paper.channels, 16],
        ["OOB size", f"{paper.oob_size} B", "128 B"],
        ["Pages/block", paper.pages_per_block, 256],
        ["Read latency", f"{paper.read_latency_us} us", "20 us"],
        ["Write latency", f"{paper.write_latency_us} us", "200 us"],
        ["Erase latency", f"{paper.erase_latency_us / 1000} ms", "1.5 ms"],
        ["Overprovisioning", f"{paper.overprovisioning:.0%}", "20%"],
    ]
    print_report(render_table(["parameter", "this repo", "paper (Table 1)"], rows,
                              title="Table 1: SSD configuration"))
    assert ssd.config.channels == paper.channels
