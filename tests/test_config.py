"""Tests for the configuration dataclasses."""

from __future__ import annotations

import pytest

from repro.config import DRAMBudget, LeaFTLConfig, SSDConfig, GB, KB, MB, TB


class TestSSDConfig:
    def test_paper_simulator_matches_table1(self):
        config = SSDConfig.paper_simulator()
        assert config.capacity_bytes == 2 * TB
        assert config.page_size == 4 * KB
        assert config.channels == 16
        assert config.pages_per_block == 256
        assert config.oob_size == 128
        assert config.dram_size == 1 * GB
        assert config.read_latency_us == pytest.approx(20.0)
        assert config.write_latency_us == pytest.approx(200.0)
        assert config.erase_latency_us == pytest.approx(1500.0)
        assert config.overprovisioning == pytest.approx(0.20)

    def test_paper_prototype_geometry(self):
        config = SSDConfig.paper_prototype()
        assert config.capacity_bytes == 1 * TB
        assert config.page_size == 16 * KB

    def test_physical_capacity_includes_overprovisioning(self):
        config = SSDConfig.tiny()
        assert config.physical_pages > config.logical_pages
        ratio = config.physical_pages / config.logical_pages
        assert ratio == pytest.approx(1.0 / (1.0 - config.overprovisioning), rel=0.05)

    def test_geometry_is_consistent(self):
        config = SSDConfig.small()
        assert config.total_blocks * config.pages_per_block == config.physical_pages
        assert config.blocks_per_channel * config.channels == config.total_blocks

    def test_block_size(self):
        config = SSDConfig.tiny()
        assert config.block_size == config.page_size * config.pages_per_block

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            SSDConfig(capacity_bytes=0)

    def test_invalid_page_size_rejected(self):
        with pytest.raises(ValueError):
            SSDConfig(page_size=1000)

    def test_invalid_gc_thresholds_rejected(self):
        with pytest.raises(ValueError):
            SSDConfig(gc_threshold=0.5, gc_restore=0.4)

    def test_scaled_override(self):
        config = SSDConfig.tiny().scaled(channels=8)
        assert config.channels == 8
        assert config.capacity_bytes == SSDConfig.tiny().capacity_bytes

    def test_write_buffer_pages(self):
        config = SSDConfig(write_buffer_bytes=8 * MB, page_size=4 * KB)
        assert config.write_buffer_pages == 2048


class TestLeaFTLConfig:
    def test_defaults_match_paper(self):
        config = LeaFTLConfig()
        assert config.gamma == 0
        assert config.group_size == 256
        assert config.segment_bytes == 8
        assert config.compaction_interval_writes == 1_000_000

    def test_negative_gamma_rejected(self):
        with pytest.raises(ValueError):
            LeaFTLConfig(gamma=-1)

    def test_group_size_must_fit_one_byte_offsets(self):
        with pytest.raises(ValueError):
            LeaFTLConfig(group_size=512)


class TestDRAMBudget:
    def test_mapping_first_gives_leftover_to_cache(self):
        budget = DRAMBudget(dram_bytes=10 * MB, policy="mapping_first")
        assert budget.cache_bytes(2 * MB) == 8 * MB

    def test_cache_reserved_keeps_minimum_share(self):
        budget = DRAMBudget(
            dram_bytes=10 * MB, policy="cache_reserved", reserved_cache_fraction=0.2
        )
        # Even if the mapping takes 9.5 MB, 20% stays reserved for the cache.
        assert budget.cache_bytes(int(9.5 * MB)) >= 2 * MB

    def test_mapping_budget_respects_policy(self):
        budget = DRAMBudget(dram_bytes=10 * MB, policy="cache_reserved")
        assert budget.mapping_budget() == 8 * MB

    def test_cache_never_below_minimum(self):
        budget = DRAMBudget(dram_bytes=1 * MB, min_cache_bytes=64 * KB)
        assert budget.cache_bytes(2 * MB) == 64 * KB

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            DRAMBudget(dram_bytes=1 * MB, policy="bogus")
