"""Figure 5: aggregated length distribution of learned segments (gamma 0/4/8).

The paper reports that 98.2-99.2% of learned segments cover at most 128
LPA-PPA mappings and that the segment count drops as gamma grows.
"""

from __future__ import annotations

from repro.analysis.report import print_report, render_series
from repro.experiments.segments import length_histogram, segment_length_distribution

from benchmarks.conftest import CORE_SIMULATOR_WORKLOADS, memory_scale, run_once


def test_fig05_segment_length_distribution(benchmark):
    distribution = run_once(
        benchmark,
        segment_length_distribution,
        CORE_SIMULATOR_WORKLOADS,
        (0, 4, 8),
        memory_scale(),
    )

    series = {}
    counts = {}
    for gamma, lengths in distribution.items():
        histogram = length_histogram(lengths)
        series[f"gamma={gamma} (#segments={len(lengths)})"] = {
            str(bucket): round(share, 1) for bucket, share in histogram.items()
        }
        counts[gamma] = len(lengths)
    print_report(render_series(
        "Figure 5: cumulative % of segments with length <= bucket", series))

    # Shape checks mirroring the paper's observations.
    assert counts[4] <= counts[0]
    assert counts[8] <= counts[4]
    share_le_128 = length_histogram(distribution[0])[128]
    assert share_le_128 > 90.0
