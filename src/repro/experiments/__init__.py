"""Experiment harness: per-figure experiment drivers built on the SSD model."""

from repro.experiments.multi_tenant import (
    ARBITER_CHOICES,
    NoisyNeighborScenario,
    build_tenant_host,
    noisy_neighbor_sweep,
    rate_limit_comparison,
    run_noisy_neighbor,
)
from repro.experiments.recovery import (
    RecoveryOutcome,
    RecoveryScenario,
    recovery_interval_sweep,
    run_crash_recovery,
)
from repro.experiments.common import (
    ALL_WORKLOADS,
    ExperimentResult,
    ExperimentSetup,
    REAL_SSD_WORKLOADS,
    SCHEMES,
    SIMULATOR_WORKLOADS,
    bench_scale,
    build_ftl,
    build_ssd,
    run_experiment,
    run_schemes,
    warmup_ssd,
    workload_by_name,
    workload_for_setup,
)

__all__ = [
    "ARBITER_CHOICES",
    "NoisyNeighborScenario",
    "build_tenant_host",
    "noisy_neighbor_sweep",
    "rate_limit_comparison",
    "run_noisy_neighbor",
    "RecoveryOutcome",
    "RecoveryScenario",
    "recovery_interval_sweep",
    "run_crash_recovery",
    "ALL_WORKLOADS",
    "ExperimentResult",
    "ExperimentSetup",
    "REAL_SSD_WORKLOADS",
    "SCHEMES",
    "SIMULATOR_WORKLOADS",
    "bench_scale",
    "build_ftl",
    "build_ssd",
    "run_experiment",
    "run_schemes",
    "warmup_ssd",
    "workload_by_name",
    "workload_for_setup",
]
