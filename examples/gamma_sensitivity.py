#!/usr/bin/env python3
"""Explore the error-bound knob gamma (paper Figures 19-21 and 24).

Run with::

    python examples/gamma_sensitivity.py [--workload MSR-hm] [--scale 0.1]

LeaFTL's single tunable is the error bound ``gamma`` of approximate
segments: a larger gamma lets one segment cover more irregular LPA→PPA
patterns (smaller mapping table, better caching) at the cost of occasional
mispredictions, each corrected with one extra flash read through the OOB
reverse mapping.  This example sweeps gamma and prints the trade-off.
"""

from __future__ import annotations

import argparse

from repro.analysis.memory import format_bytes
from repro.analysis.report import print_report, render_table
from repro.experiments.common import (
    ALL_WORKLOADS,
    ExperimentSetup,
    oob_size_for_gamma,
    run_experiment,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="MSR-hm", choices=ALL_WORKLOADS)
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--gammas", nargs="+", type=int, default=[0, 1, 4, 16])
    args = parser.parse_args()

    rows = []
    baseline_bytes = None
    baseline_latency = None
    for gamma in args.gammas:
        print(f"running {args.workload} with gamma={gamma} ...")
        setup = ExperimentSetup(
            gamma=gamma,
            oob_size=oob_size_for_gamma(gamma),
            request_scale=args.scale,
        )
        result = run_experiment(args.workload, "LeaFTL", setup)
        if baseline_bytes is None:
            baseline_bytes = result.mapping_full_bytes or 1
            baseline_latency = result.read_mean_latency_us or 1.0
        accurate, approximate = result.segment_type_counts
        total_segments = max(1, accurate + approximate)
        rows.append(
            [
                gamma,
                format_bytes(result.mapping_full_bytes),
                round(result.mapping_full_bytes / baseline_bytes, 3),
                round(result.read_mean_latency_us / baseline_latency, 3),
                f"{100 * approximate / total_segments:.1f}%",
                f"{100 * result.misprediction_ratio:.2f}%",
                round(result.cache_hit_ratio, 3),
            ]
        )

    print_report(
        render_table(
            ["gamma", "mapping table", "size vs g=0", "read latency vs g=0",
             "approximate segments", "mispredictions", "cache hit"],
            rows,
            title=f"LeaFTL gamma sensitivity on {args.workload}",
        )
    )


if __name__ == "__main__":
    main()
