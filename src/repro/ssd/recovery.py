"""Power-fail injection and mapping recovery (crash consistency).

The paper keeps LeaFTL's learned segments in DRAM and treats the per-page
OOB reverse mappings as the durable ground truth (Section 3.5).  This
module exercises that contract end to end:

* :class:`CrashTimer` is an :attr:`repro.sim.events.EventLoop.observer`
  that raises :class:`PowerFailure` at an injected trigger — an absolute
  simulated timestamp, or the N-th event of a kind (e.g. the first
  ``gc_…`` pipeline step for a mid-GC crash).  The observer runs *before*
  the event's callback, and flash state changes apply atomically when an
  operation is issued, so the crash always lands between consistent flash
  states: at most one VALID page per LPA, never a torn page.
* :meth:`repro.ssd.ssd.SimulatedSSD.power_fail` then discards every DRAM
  structure and returns the durability oracle (the last-acked flash
  location of each LPA).
* :func:`recover` rebuilds the mapping two ways: a full **OOB scan**
  (works for any FTL — read every programmed page's reverse mapping,
  rebuild from the VALID ones) and, for LeaFTL, **checkpoint + replay**
  (restore the last :class:`MappingCheckpointer` image losslessly, then
  re-learn only the pages programmed since — found by diffing durable
  per-block ``(erase_count, write_pointer)`` generations).

Cost model
----------

Recovery time is dominated by modeled flash reads: one page-read latency
per scanned OOB (the spare area cannot be sensed without activating the
page), issued as one per-block burst through the NAND scheduler so the
channels drain in parallel.  Checkpoint writes are charged as real page
writes (``stats.checkpoint_page_writes`` feeds the WAF) plus channel
time; checkpoint images live in a small reserved metadata region, so they
do not consume data blocks or interact with GC.  The in-DRAM rebuild
itself (dict inserts, segment relearning) is charge-free, as is reading
the page-validity bitmap — firmware metadata in the model.  FTL rebuild
entry points are pure state reconstructions and charge no translation
counters; every modeled recovery cost flows through this module.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.flash.flash_array import PageState
from repro.sim.events import Event
from repro.ssd.ssd import SimulatedSSD

#: Default checkpoint interval: data pages programmed between checkpoints.
DEFAULT_CHECKPOINT_INTERVAL_PAGES = 8192

#: Recovery strategies accepted by :func:`recover`.
RECOVERY_MODES = ("oob_scan", "checkpoint_replay")


class PowerFailure(Exception):
    """Raised out of the event loop when an injected crash fires.

    Propagates through the frontend's ``run()`` and out of
    ``SimulatedSSD.run`` / ``run_frontend``; the harness catches it and
    calls :meth:`repro.ssd.ssd.SimulatedSSD.power_fail`.
    """

    def __init__(self, at_us: float, event_kind: str) -> None:
        super().__init__(
            f"power failure injected at t={at_us:.3f}us (event {event_kind!r})"
        )
        self.at_us = at_us
        self.event_kind = event_kind


class CrashTimer:
    """Event-loop observer that raises :class:`PowerFailure` at a trigger.

    Triggers (first one to hold wins):

    * ``at_us`` — crash at the first processed event whose timestamp has
      reached the deadline;
    * ``after_kind`` / ``kind_count`` — crash at the ``kind_count``-th
      processed event whose ``kind`` starts with ``after_kind`` (e.g.
      ``after_kind="gc"`` lands the crash mid-GC-migration when background
      GC is active).

    Attach with :meth:`repro.sim.events.EventLoop.chain_observer` so it
    composes with the determinism harness's digest observer — the crash
    then lands at the identical event index with or without digesting.
    """

    def __init__(
        self,
        at_us: Optional[float] = None,
        after_kind: Optional[str] = None,
        kind_count: int = 1,
    ) -> None:
        if at_us is None and after_kind is None:
            raise ValueError("CrashTimer needs at_us or after_kind")
        if kind_count < 1:
            raise ValueError("kind_count must be at least 1")
        self.at_us = at_us
        self.after_kind = after_kind
        self.kind_count = kind_count
        self._kind_seen = 0
        self.fired = False

    def __call__(self, event: Event) -> None:
        if self.fired:
            return
        if self.at_us is not None and event.time_us >= self.at_us:
            self.fired = True
            raise PowerFailure(event.time_us, event.kind)
        if self.after_kind is not None and event.kind.startswith(self.after_kind):
            self._kind_seen += 1
            if self._kind_seen >= self.kind_count:
                self.fired = True
                raise PowerFailure(event.time_us, event.kind)


@dataclass
class CheckpointImage:
    """One persisted mapping checkpoint (modeled flash-durable)."""

    #: Lossless serialization of the learned table
    #: (:meth:`repro.core.leaftl.LeaFTL.serialize_checkpoint`).
    payload: bytes
    #: Flash pages the image occupies (what its write and read-back cost).
    pages: int
    #: Durable per-block ``(erase_count, write_pointer)`` generations at
    #: checkpoint time; recovery diffs these against the post-crash state
    #: to find exactly the pages programmed since.
    block_generations: List[Tuple[int, int]]
    taken_at_us: float


class MappingCheckpointer:
    """Periodically persists the learned mapping table to flash.

    Attached via :func:`attach_checkpointer`; the SSD calls
    :meth:`note_programs` after every buffer flush, and once
    ``interval_pages`` data pages have been programmed the next flush
    triggers :meth:`take`.  Checkpoint pages are charged as real flash
    writes (``stats.checkpoint_page_writes``, part of the WAF) and occupy
    rotating channels for their program time; the image itself lives in a
    reserved metadata region, so it neither consumes data blocks nor
    perturbs GC.  The image and the generation snapshot are modeled as
    durable; only the programs-since counter is DRAM and resets at a
    crash.
    """

    def __init__(
        self,
        ssd: SimulatedSSD,
        interval_pages: int = DEFAULT_CHECKPOINT_INTERVAL_PAGES,
    ) -> None:
        if interval_pages < 1:
            raise ValueError("interval_pages must be at least 1")
        self.ssd = ssd
        self.interval_pages = interval_pages
        self.image: Optional[CheckpointImage] = None
        self.checkpoints_taken = 0
        self._programs_since = 0

    def note_programs(self, pages: int, at_us: float) -> None:
        """Account freshly flushed data pages; checkpoint when due."""
        self._programs_since += pages
        if self._programs_since >= self.interval_pages:
            self.take(at_us)

    def take(self, at_us: float) -> CheckpointImage:
        """Persist the current learned table to flash, charging its writes."""
        ssd = self.ssd
        ftl = ssd.ftl
        payload = ftl.serialize_checkpoint()
        # On flash the table occupies its device encoding (8 B/segment plus
        # CRB and level bookkeeping — exactly resident_bytes); the wider
        # in-payload encoding exists only for bit-exact restoration.
        pages = max(1, math.ceil(ftl.resident_bytes() / ssd.config.page_size))
        ssd.stats.checkpoint_page_writes += pages
        flash = ssd.flash
        write_us = ssd.config.write_latency_us
        finish = at_us
        for _ in range(pages):
            done = flash.occupy_channel(ssd._next_background_channel(), at_us, write_us)
            finish = max(finish, done)
        telemetry = getattr(ssd, "telemetry", None)
        if telemetry is not None:
            telemetry.note_checkpoint(at_us, finish, pages)
        self.image = CheckpointImage(
            payload=payload,
            pages=pages,
            block_generations=flash.block_generations(),
            taken_at_us=at_us,
        )
        self.checkpoints_taken += 1
        self._programs_since = 0
        return self.image

    def on_power_fail(self) -> None:
        """Reset the (DRAM) programs-since counter; the image survives."""
        self._programs_since = 0


def attach_checkpointer(
    ssd: SimulatedSSD, interval_pages: int = DEFAULT_CHECKPOINT_INTERVAL_PAGES
) -> MappingCheckpointer:
    """Wire a :class:`MappingCheckpointer` into ``ssd``'s flush path."""
    if not hasattr(ssd.ftl, "serialize_checkpoint"):
        raise ValueError(
            f"FTL {type(ssd.ftl).__name__} has no checkpoint serialization; "
            "only LeaFTL supports checkpoint+replay recovery"
        )
    checkpointer = MappingCheckpointer(ssd, interval_pages=interval_pages)
    ssd.checkpointer = checkpointer
    return checkpointer


@dataclass
class RecoveryResult:
    """What a :func:`recover` call did and what it cost."""

    #: Strategy actually used (``checkpoint_replay`` falls back to
    #: ``oob_scan`` when no checkpoint image exists yet).
    mode: str
    #: OOB reads charged at full page-read latency (scan or replay).
    flash_reads: int
    #: Checkpoint-image pages read back (checkpoint mode only).
    checkpoint_pages_read: int
    #: Post-checkpoint pages whose mappings were replayed into the table.
    replayed_pages: int
    #: Live LPAs the recovered device can translate.
    recovered_lpas: int
    #: Modeled wall time of the recovery I/O (scan/read-back makespan).
    recovery_time_us: float


def recover(ssd: SimulatedSSD, mode: str = "oob_scan") -> RecoveryResult:
    """Rebuild all DRAM mapping state of a crashed device.

    Call after :meth:`repro.ssd.ssd.SimulatedSSD.power_fail`.  Both modes
    end with the same post-conditions: the FTL translates every live LPA,
    the ground-truth validity map and the block allocator are re-derived
    from flash, and the data cache is resized to whatever DRAM the rebuilt
    table leaves free.  The device clock advances past the recovery I/O,
    so the first post-recovery requests queue behind it exactly like
    requests behind any other background traffic.
    """
    if mode not in RECOVERY_MODES:
        raise ValueError(f"mode must be one of {RECOVERY_MODES}")
    flash = ssd.flash
    ftl = ssd.ftl
    start = ssd.now_us
    finish = start
    flash_reads = 0
    checkpoint_pages_read = 0
    replayed_pages = 0

    checkpointer = ssd.checkpointer
    image = checkpointer.image if checkpointer is not None else None
    if mode == "checkpoint_replay" and image is None:
        # Crashed before the first checkpoint: the full scan is the only
        # durable source.
        mode = "oob_scan"

    total_blocks = flash.geometry.total_blocks
    if mode == "oob_scan":
        # Baseline: read the OOB of every programmed page (VALID pages
        # carry live reverse mappings; INVALID ones must be read to be
        # recognised as stale), rebuild from the VALID set.
        mappings: List[Tuple[int, int]] = []
        for block in range(total_blocks):
            run = flash.programmed_ppas_of_block(block)
            if not run:
                continue
            finish = max(finish, flash.read_oob_run(run, now_us=start))
            flash_reads += len(run)
            for ppa in run:
                if flash.page_state(ppa) is PageState.VALID:
                    oob = flash.oob_of(ppa)
                    assert oob is not None and oob.lpa is not None
                    mappings.append((oob.lpa, ppa))
        ftl.rebuild_from_oob(mappings)
    else:
        # Restore the checkpointed table (reading the image back from the
        # metadata region), then replay only the pages programmed since:
        # a block whose erase count changed was recycled, so its whole
        # programmed range is post-checkpoint; otherwise only the pages
        # the write pointer grew over are new.
        assert image is not None
        read_us = ssd.config.read_latency_us
        for _ in range(image.pages):
            finish = max(
                finish,
                flash.occupy_channel(ssd._next_background_channel(), start, read_us),
            )
        checkpoint_pages_read = image.pages
        ftl.restore_checkpoint(image.payload)
        old_generations = image.block_generations
        pages_per_block = ssd.config.pages_per_block
        for block, (new_erases, new_wp) in enumerate(flash.block_generations()):
            old_erases, old_wp = old_generations[block]
            if new_erases != old_erases:
                run = flash.programmed_ppas_of_block(block)
            elif new_wp > old_wp:
                base = block * pages_per_block
                run = range(base + old_wp, base + new_wp)
            else:
                continue
            if not run:
                continue
            finish = max(finish, flash.read_oob_run(run, now_us=start))
            flash_reads += len(run)
            replay: List[Tuple[int, int]] = []
            for ppa in run:
                if flash.page_state(ppa) is PageState.VALID:
                    oob = flash.oob_of(ppa)
                    assert oob is not None and oob.lpa is not None
                    replay.append((oob.lpa, ppa))
            if replay:
                # Level-0 insertion shadows whatever stale mappings the
                # checkpoint still holds for these LPAs.
                ftl.replay_mappings(replay)
                replayed_pages += len(replay)

    # Re-derive the remaining DRAM state from the durable substrate.  The
    # validity bitmap and reverse-LPA array are firmware metadata in the
    # model, so this costs no charged reads.
    rebuilt: Dict[int, int] = {}
    for block in range(total_blocks):
        for ppa in flash.valid_ppas_of_block(block):
            lpa = flash.lpa_of(ppa)
            assert lpa is not None
            rebuilt[lpa] = ppa
    ssd._current_ppa = rebuilt
    ssd.allocator.rebuild_from_flash()
    ssd.cache.resize(ssd._cache_capacity_pages())
    # Re-anchor the translation-traffic deltas: the rebuild is charge-free
    # and must not surface as phantom translation I/O on the next request.
    ssd._translation_reads_seen = ftl.stats.translation_page_reads
    ssd._translation_writes_seen = ftl.stats.translation_page_writes
    ssd.stats.oob_scan_reads += flash_reads
    # The device is not ready before its recovery I/O completes.
    ssd._advance(finish)
    ssd._prev_flush_finish_us = max(ssd._prev_flush_finish_us, finish)

    telemetry = getattr(ssd, "telemetry", None)
    if telemetry is not None:
        telemetry.note_recovery(
            "recovery_scan" if mode == "oob_scan" else "recovery_replay",
            start,
            finish,
            {
                "flash_reads": flash_reads,
                "checkpoint_pages_read": checkpoint_pages_read,
                "replayed_pages": replayed_pages,
                "recovered_lpas": len(rebuilt),
            },
        )

    return RecoveryResult(
        mode=mode,
        flash_reads=flash_reads,
        checkpoint_pages_read=checkpoint_pages_read,
        replayed_pages=replayed_pages,
        recovered_lpas=len(rebuilt),
        recovery_time_us=finish - start,
    )
