"""Flash translation layers: the abstract interface and the baseline schemes."""

from repro.ftl.base import FTL, FTLStats, TranslationResult
from repro.ftl.dftl import DFTL
from repro.ftl.pagemap import PageLevelFTL
from repro.ftl.sftl import SFTL

__all__ = [
    "FTL",
    "FTLStats",
    "TranslationResult",
    "DFTL",
    "PageLevelFTL",
    "SFTL",
]
