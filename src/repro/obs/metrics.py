"""Sim-time metrics sampling: gauge time-series with CSV/JSON export.

End-of-run counters say *how much*; they cannot say *when*.  The
:class:`MetricsSampler` snapshots the device's live gauges — free blocks,
GC backlog, cache hit rate, write-buffer fill, per-channel busy fraction,
per-namespace queue depth, write amplification so far — on a fixed
simulated-time interval, producing a columnar time-series that plots the
run: a GC burst shows up as a free-block dip plus a channel-busy spike
exactly when a tenant's latency histogram went bimodal.

Like the tracer, the sampler reads simulated clocks only and mutates
nothing it observes, so enabling it leaves ``repro.verify`` digests
unchanged; the column set is fixed at construction and every cell is
formatted with ``repr`` floats, so two runs of the same seed export
byte-identical files.

Sampling rides the same observer hook as tracing (cheap: one float
comparison per event when no sample is due).  Serial engines process few
events, so :meth:`pump` exists for the flush path to call; the final
sample is taken by :meth:`finalize` so the last row always reflects the
end-of-run state regardless of interval phase.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.sim.events import Event

#: Default sampling interval (simulated microseconds).
DEFAULT_METRICS_INTERVAL_US = 1_000.0


class MetricsSampler:
    """Samples device gauges into a columnar sim-time series."""

    def __init__(
        self,
        ssd: Any,
        host: Any = None,
        interval_us: float = DEFAULT_METRICS_INTERVAL_US,
    ) -> None:
        if interval_us <= 0.0:
            raise ValueError("interval_us must be positive")
        self._ssd = ssd
        self._host = host
        self.interval_us = interval_us
        self._next_due = interval_us
        #: Bus-occupied time per channel at the previous sample, for the
        #: windowed (per-interval, not cumulative) busy fraction.
        self._bus_time_prev = [0.0] * ssd.scheduler.channels
        self._time_prev = 0.0
        self._columns = self._column_names()
        self._series: Dict[str, List[float]] = {name: [] for name in self._columns}

    def _column_names(self) -> List[str]:
        names = [
            "time_us",
            "free_blocks",
            "free_block_ratio",
            "gc_running",
            "gc_backlog",
            "gc_urgent",
            "cache_hit_ratio",
            "write_buffer_fill",
            "waf",
            "total_flash_page_writes",
        ]
        names.extend(f"ch{c}_busy_frac" for c in range(self._ssd.scheduler.channels))
        if self._host is not None:
            names.extend(
                f"ns_{name}_inflight" for name in sorted(self._host.namespaces)
            )
        return names

    # ------------------------------------------------------------------ #
    # Hooks
    # ------------------------------------------------------------------ #
    def observe(self, event: Event) -> None:
        """Event-loop observer: sample when the interval has elapsed."""
        if event.time_us >= self._next_due:
            self._sample(event.time_us)

    def pump(self, now_us: float) -> None:
        """Same check as :meth:`observe`, for paths with no event loop."""
        if now_us >= self._next_due:
            self._sample(now_us)

    def finalize(self, now_us: float) -> None:
        """Take the closing sample (skipped if a sample already landed there)."""
        times = self._series["time_us"]
        if times and times[-1] >= now_us:
            return
        self._sample(now_us)

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def _sample(self, now_us: float) -> None:
        ssd = self._ssd
        stats = ssd.stats
        gc = ssd._bg_gc
        row: Dict[str, float] = {
            "time_us": now_us,
            "free_blocks": float(ssd.allocator.free_block_count()),
            "free_block_ratio": ssd.allocator.free_ratio(),
            "gc_running": 1.0 if gc.running else 0.0,
            "gc_backlog": float(gc.backlog),
            "gc_urgent": 1.0 if ssd.gc_policy.below_hard_watermark(ssd.allocator) else 0.0,
            "cache_hit_ratio": stats.cache_hit_ratio,
            "write_buffer_fill": len(ssd.write_buffer) / ssd.write_buffer.capacity_pages,
            "waf": stats.write_amplification,
            "total_flash_page_writes": float(stats.total_flash_page_writes),
        }
        elapsed = now_us - self._time_prev
        scheduler = ssd.scheduler
        for channel in range(scheduler.channels):
            bus_time = scheduler.bus_time_us(channel)
            if elapsed > 0.0:
                frac = min(1.0, (bus_time - self._bus_time_prev[channel]) / elapsed)
            else:
                frac = 0.0
            row[f"ch{channel}_busy_frac"] = frac
            self._bus_time_prev[channel] = bus_time
        if self._host is not None:
            for name, namespace in sorted(self._host.namespaces.items()):
                ns_stats = namespace.stats
                row[f"ns_{name}_inflight"] = float(
                    ns_stats.submitted - ns_stats.completed
                )
        for column in self._columns:
            self._series[column].append(row[column])
        self._time_prev = now_us
        # Skip intervals with no events rather than emitting stale rows.
        periods = int(now_us // self.interval_us) + 1
        self._next_due = periods * self.interval_us

    # ------------------------------------------------------------------ #
    # Access / export
    # ------------------------------------------------------------------ #
    @property
    def columns(self) -> List[str]:
        return list(self._columns)

    @property
    def samples(self) -> int:
        return len(self._series["time_us"])

    def series(self, column: str) -> List[float]:
        """The sampled values of one column (copy)."""
        return list(self._series[column])

    def last(self, column: str) -> float:
        values = self._series[column]
        if not values:
            raise ValueError("no samples taken")
        return values[-1]

    def rows(self) -> List[List[float]]:
        return [
            [self._series[column][i] for column in self._columns]
            for i in range(self.samples)
        ]

    def to_csv(self) -> str:
        """CSV text: header row then one ``repr``-formatted row per sample."""
        lines = [",".join(self._columns)]
        for row in self.rows():
            lines.append(",".join(repr(value) for value in row))
        return "\n".join(lines) + "\n"

    def to_json(self) -> str:
        """Columnar JSON: ``{"interval_us": ..., "series": {col: [...]}}``."""
        return json.dumps(
            {
                "interval_us": self.interval_us,
                "columns": self._columns,
                "series": self._series,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    def export_csv(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_csv())

    def export_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")
