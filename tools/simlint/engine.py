"""simlint core: findings, the rule registry and the per-file lint driver.

simlint is a repo-specific static-analysis pass for the simulator.  Every
result this reproduction claims (bit-exact engine regressions, differential
GC oracles, reproducible percentiles) rests on the simulator being
deterministic under a seed; the rules in :mod:`tools.simlint.rules` encode
the coding contracts that determinism depends on, so they are checked by
machine instead of by review.

Design notes
------------
* **stdlib only** — the linter must run in a bare checkout (``ast`` +
  ``tomllib``/fallback, no third-party dependencies).
* **one parse per file** — all applicable rules share the same
  :class:`FileContext` (source, AST, suppression map).
* **suppressions are per line and per code** — ``# simlint: disable=SIM003``
  on the offending line; a bare ``# simlint: disable`` silences every rule
  on that line.  There are deliberately no file-level pragmas: a file that
  needs one should be excluded via ``simlint.toml`` where the exception is
  reviewable in one place.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

#: Matches a suppression comment anywhere in a physical line.  Codes are
#: comma-separated; omitting ``=CODES`` disables every rule for the line.
_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*disable(?:\s*=\s*(?P<codes>[A-Z0-9]+(?:\s*,\s*[A-Z0-9]+)*))?"
)

#: Sentinel entry meaning "every code is suppressed on this line".
_ALL_CODES = "*"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


class FileContext:
    """Everything a rule needs about one source file (parsed once)."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.lines: List[str] = source.splitlines()
        self._suppressed: Dict[int, Set[str]] = self._scan_suppressions()

    def _scan_suppressions(self) -> Dict[int, Set[str]]:
        suppressed: Dict[int, Set[str]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(line)
            if match is None:
                continue
            codes = match.group("codes")
            if codes is None:
                suppressed.setdefault(lineno, set()).add(_ALL_CODES)
            else:
                for code in codes.split(","):
                    suppressed.setdefault(lineno, set()).add(code.strip())
        return suppressed

    def is_suppressed(self, code: str, line: int) -> bool:
        codes = self._suppressed.get(line)
        return codes is not None and (code in codes or _ALL_CODES in codes)

    def finding(self, node: ast.AST, code: str, message: str) -> Finding:
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=code,
            message=message,
        )


class Rule:
    """Base class of all simlint rules.

    Subclasses set the class attributes and implement :meth:`check`; the
    :func:`register` decorator adds them to the registry.  ``default_paths``
    scopes the rule when ``simlint.toml`` does not override it: a file is in
    scope when its posix-style path (relative to the config root) starts
    with one of the entries (``""`` means everywhere).
    """

    code: str = ""
    name: str = ""
    rationale: str = ""
    default_paths: Tuple[str, ...] = ("",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError

    def emit(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Iterator[Finding]:
        """Yield a finding unless a suppression comment covers its line."""
        finding = ctx.finding(node, self.code, message)
        if not ctx.is_suppressed(self.code, finding.line):
            yield finding


#: Registry of every known rule, keyed by code (``SIM001`` ...).
RULES: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if cls.code in RULES:
        raise ValueError(f"duplicate rule code {cls.code}")
    RULES[cls.code] = cls
    return cls


# --------------------------------------------------------------------------- #
# Import resolution shared by several rules
# --------------------------------------------------------------------------- #
class ImportMap:
    """Maps local names to canonical dotted paths.

    ``import numpy as np`` makes ``np.random.randint`` resolve to
    ``numpy.random.randint``; ``from random import randint as ri`` makes
    ``ri`` resolve to ``random.randint``; ``from datetime import datetime``
    makes ``datetime.now`` resolve to ``datetime.datetime.now``.  Rules
    match on the canonical path, so aliasing cannot dodge them.
    """

    def __init__(self, tree: ast.Module) -> None:
        self._names: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else local
                    self._names[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self._names[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted path of a Name/Attribute chain, if importable."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self._names.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))


# --------------------------------------------------------------------------- #
# Driver
# --------------------------------------------------------------------------- #
def parse_file(path: Path, display_path: str) -> FileContext:
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    return FileContext(display_path, source, tree)


def lint_file(
    path: Path,
    display_path: str,
    rules: Sequence[Rule],
) -> List[Finding]:
    """Run ``rules`` over one file; returns sorted findings."""
    ctx = parse_file(path, display_path)
    findings: List[Finding] = []
    for rule in rules:
        findings.extend(rule.check(ctx))
    return sorted(findings, key=lambda f: (f.line, f.col, f.code))


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into a deterministic list of ``.py`` files."""
    for path in paths:
        if path.is_dir():
            yield from sorted(p for p in path.rglob("*.py") if p.is_file())
        elif path.suffix == ".py":
            yield path
