"""DFTL: demand-based page-level FTL (Gupta et al., ASPLOS 2009).

DFTL keeps the complete page-level mapping table in dedicated *translation
pages* on flash and caches only the recently used entries in the in-device
DRAM:

* the **Cached Mapping Table (CMT)** holds individual ``LPA → PPA`` entries
  with LRU replacement, bounded by the DRAM budget;
* the **Global Translation Directory (GTD)** locates the flash-resident
  translation page of any LPA (modelled implicitly — its footprint is tiny
  and identical across schemes);
* a CMT miss costs one flash read (fetch the translation page); evicting a
  dirty entry costs a read-modify-write of its translation page, amortized by
  writing back every dirty CMT entry that belongs to the same translation
  page (the "batch update" optimization of the original paper).

This is the primary memory-footprint baseline of the LeaFTL evaluation.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import DFTLConfig
from repro.ftl.base import FTL, TranslationResult


class DFTL(FTL):
    """Demand-based FTL with an LRU cached mapping table."""

    name = "DFTL"

    def __init__(
        self,
        mapping_budget_bytes: Optional[int] = None,
        config: Optional[DFTLConfig] = None,
    ) -> None:
        super().__init__(mapping_budget_bytes=mapping_budget_bytes)
        self._config = config or DFTLConfig()
        #: CMT: lpa -> (ppa, dirty flag); ordered by recency (LRU first).
        self._cmt: "OrderedDict[int, Tuple[int, bool]]" = OrderedDict()
        #: The flash-resident translation pages, flattened to lpa -> ppa.
        self._flash_table: Dict[int, int] = {}
        #: Dirty CMT entries grouped by translation page (for batched write-back).
        self._dirty_by_tp: Dict[int, set] = {}

    # ------------------------------------------------------------------ #
    # Geometry helpers
    # ------------------------------------------------------------------ #
    @property
    def config(self) -> DFTLConfig:
        return self._config

    def _translation_page_of(self, lpa: int) -> int:
        return lpa // self._config.entries_per_translation_page

    def _max_cached_entries(self) -> Optional[int]:
        if self.mapping_budget_bytes is None:
            return None
        return max(1, self.mapping_budget_bytes // self._config.entry_bytes)

    # ------------------------------------------------------------------ #
    # CMT management
    # ------------------------------------------------------------------ #
    def _touch(self, lpa: int) -> None:
        self._cmt.move_to_end(lpa)

    def _mark_dirty(self, lpa: int) -> None:
        self._dirty_by_tp.setdefault(self._translation_page_of(lpa), set()).add(lpa)

    def _mark_clean(self, lpa: int) -> None:
        tp = self._translation_page_of(lpa)
        dirty = self._dirty_by_tp.get(tp)
        if dirty is not None:
            dirty.discard(lpa)
            if not dirty:
                del self._dirty_by_tp[tp]

    def _evict_if_needed(self) -> Tuple[int, int]:
        """Evict LRU entries until the CMT fits its budget.

        Returns ``(flash_reads, flash_writes)`` incurred by dirty evictions.
        """
        limit = self._max_cached_entries()
        reads = 0
        writes = 0
        if limit is None:
            return reads, writes
        while len(self._cmt) > limit:
            victim_lpa, (victim_ppa, dirty) = self._cmt.popitem(last=False)
            if not dirty:
                continue
            # Read-modify-write of the victim's translation page; batch every
            # dirty CMT entry that belongs to the same translation page.
            tp = self._translation_page_of(victim_lpa)
            self._flash_table[victim_lpa] = victim_ppa
            self._mark_clean(victim_lpa)
            for lpa in list(self._dirty_by_tp.get(tp, ())):
                ppa, _entry_dirty = self._cmt[lpa]
                self._flash_table[lpa] = ppa
                self._cmt[lpa] = (ppa, False)
            self._dirty_by_tp.pop(tp, None)
            reads += 1
            writes += 1
            self.stats.translation_page_reads += 1
            self.stats.translation_page_writes += 1
        return reads, writes

    # ------------------------------------------------------------------ #
    # FTL interface
    # ------------------------------------------------------------------ #
    def translate(self, lpa: int) -> TranslationResult:
        self.stats.lookups += 1
        if lpa in self._cmt:
            ppa, _dirty = self._cmt[lpa]
            self._touch(lpa)
            return TranslationResult(ppa=ppa)

        if lpa not in self._flash_table:
            # Never written: no translation page holds this entry.
            return TranslationResult(ppa=None)

        # CMT miss: fetch the translation page from flash (one page read),
        # install the entry, then evict if the CMT exceeded its budget.
        ppa = self._flash_table[lpa]
        self.stats.translation_page_reads += 1
        self._cmt[lpa] = (ppa, False)
        self._touch(lpa)
        extra_reads, extra_writes = self._evict_if_needed()
        return TranslationResult(
            ppa=ppa,
            translation_flash_reads=1 + extra_reads,
            translation_flash_writes=extra_writes,
        )

    def translate_range(self, lpa: int, npages: int) -> List[TranslationResult]:
        """Resolve a contiguous run, one translation-page visit per chunk.

        The run is split at translation-page boundaries; within a chunk a
        single CMT miss fetches the translation page once and that fetch
        serves *every* missing entry of the chunk (they live on the same
        flash page), so an N-page run on one translation page costs at most
        one ``translation_page_reads`` instead of N.  ``stats.lookups`` is
        charged once per chunk.  Evictions run once per chunk, after the
        fetched entries are installed.
        """
        if npages <= 0:
            raise ValueError("npages must be positive")
        results: List[TranslationResult] = []
        per_tp = self._config.entries_per_translation_page
        start = lpa
        end = lpa + npages
        while start < end:
            tp = self._translation_page_of(start)
            chunk_end = min(end, (tp + 1) * per_tp)
            self.stats.lookups += 1
            fetched = False
            for page in range(start, chunk_end):
                if page in self._cmt:
                    ppa, _dirty = self._cmt[page]
                    self._touch(page)
                    results.append(TranslationResult(ppa=ppa))
                elif page not in self._flash_table:
                    results.append(TranslationResult(ppa=None))
                else:
                    ppa = self._flash_table[page]
                    first_miss = not fetched
                    if first_miss:
                        fetched = True
                        self.stats.translation_page_reads += 1
                    self._cmt[page] = (ppa, False)
                    self._touch(page)
                    results.append(
                        TranslationResult(
                            ppa=ppa,
                            translation_flash_reads=1 if first_miss else 0,
                        )
                    )
            if fetched:
                self._evict_if_needed()
            start = chunk_end
        return results

    def update_batch(self, mappings: Sequence[Tuple[int, int]]) -> None:
        for lpa, ppa in mappings:
            self._cmt[lpa] = (ppa, True)
            self._mark_dirty(lpa)
            self._touch(lpa)
            self.stats.updates += 1
        self._evict_if_needed()

    def exists(self, lpa: int) -> bool:
        return lpa in self._cmt or lpa in self._flash_table

    def invalidate(self, lpa: int) -> None:
        self._cmt.pop(lpa, None)
        self._mark_clean(lpa)
        self._flash_table.pop(lpa, None)

    def rebuild_from_oob(self, mappings: Sequence[Tuple[int, int]]) -> None:
        """Rebuild the flash-resident table from an OOB scan.

        The CMT and its dirty-tracking are DRAM casualties of the crash;
        the rebuilt table starts fully flash-resident and clean (the scan
        re-wrote the translation pages), so the first post-recovery lookups
        repopulate the CMT through the ordinary demand-miss path.  The scan
        driver charges the flash traffic; nothing is charged here.
        """
        self._cmt.clear()
        self._dirty_by_tp.clear()
        self._flash_table = dict(mappings)

    # ------------------------------------------------------------------ #
    # Memory accounting
    # ------------------------------------------------------------------ #
    def resident_bytes(self) -> int:
        return len(self._cmt) * self._config.entry_bytes

    def full_mapping_bytes(self) -> int:
        """Size of the complete page-level table for all live mappings."""
        live = set(self._flash_table)
        live.update(self._cmt)
        return len(live) * self._config.entry_bytes

    def mapped_lpa_count(self) -> Optional[int]:
        live = set(self._flash_table)
        live.update(self._cmt)
        return len(live)

    def cmt_entry_count(self) -> int:
        """Number of entries currently cached (for tests and reports)."""
        return len(self._cmt)
