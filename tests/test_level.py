"""Tests for one level of the log-structured mapping table."""

from __future__ import annotations

import pytest

from repro.core.level import Level
from repro.core.segment import Segment


def seg(start, length):
    return Segment(
        group_base=0, start_lpa=start, length=length, slope=1.0,
        intercept=0.0, accurate=True,
    )


class TestLevel:
    def test_insert_keeps_sorted_order(self):
        level = Level()
        for start in (50, 10, 30):
            level.insert(seg(start, 5))
        starts = [s.start_lpa for s in level]
        assert starts == sorted(starts)
        level.validate_sorted_non_overlapping()

    def test_find_covering(self):
        level = Level()
        a, b = seg(0, 9), seg(20, 9)
        level.insert(a)
        level.insert(b)
        assert level.find_covering(5) is a
        assert level.find_covering(25) is b
        assert level.find_covering(15) is None
        assert level.find_covering(100) is None

    def test_overlapping_query(self):
        level = Level()
        a, b, c = seg(0, 9), seg(20, 9), seg(40, 9)
        for s in (a, b, c):
            level.insert(s)
        assert level.overlapping(5, 25) == [a, b]
        assert level.overlapping(30, 35) == []
        assert level.overlapping(0, 100) == [a, b, c]

    def test_overlapping_finds_predecessor_of_inserted_segment(self):
        """The predecessor that spans into a newly inserted segment is found."""
        level = Level()
        old = seg(0, 63)
        level.insert(old)
        new = seg(16, 15)
        level.insert(new)
        found = level.overlapping(new.start_lpa, new.end_lpa)
        assert old in found and new in found

    def test_remove_by_identity(self):
        level = Level()
        a = seg(0, 5)
        duplicate_range = seg(0, 5)
        level.insert(a)
        level.insert(duplicate_range)
        level.remove(a)
        assert len(level) == 1
        assert a not in level
        assert duplicate_range in level

    def test_remove_missing_raises(self):
        level = Level()
        with pytest.raises(ValueError):
            level.remove(seg(0, 1))

    def test_reposition_after_start_change(self):
        level = Level()
        a, b = seg(0, 30), seg(40, 10)
        level.insert(a)
        level.insert(b)
        a.start_lpa = 60  # merge trimmed the victim's range
        a.length = 5
        level.reposition(a)
        assert [s.start_lpa for s in level] == [40, 60]
        assert level.find_covering(62) is a

    def test_is_empty(self):
        level = Level()
        assert level.is_empty
        level.insert(seg(0, 1))
        assert not level.is_empty
