"""Experiment harness shared by the benchmarks and examples.

The harness mirrors the paper's methodology (Section 4.1):

1. build an SSD with the FTL scheme under test and a DRAM budget policy;
2. *warm up* the device by writing a large fraction of the logical space
   (the paper replays warm-up traces until GC is guaranteed to run during
   the measurement) — this fills DFTL's cached mapping table and fills the
   flash so that garbage collection is active;
3. replay the workload trace and collect statistics;
4. report mapping-table footprint, latency, hit ratio, WAF, misprediction
   ratio and the learned-table internals the figures need.

Workload sizes are scaled down from the paper's multi-hour traces so a full
figure regenerates in minutes on a laptop; the ``request_scale`` and
environment variable ``REPRO_BENCH_SCALE`` control the scaling.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import DFTLConfig, DRAMBudget, LeaFTLConfig, SFTLConfig, SSDConfig
from repro.core.leaftl import LeaFTL
from repro.flash.oob import required_oob_bytes
from repro.ftl.base import FTL
from repro.ftl.dftl import DFTL
from repro.ftl.pagemap import PageLevelFTL
from repro.ftl.sftl import SFTL
from repro.ssd.ssd import SimulatedSSD, SSDOptions
from repro.ssd.stats import SSDStats
from repro.workloads.database import DATABASE_WORKLOAD_NAMES, database_workload
from repro.workloads.fiu import FIU_WORKLOAD_NAMES, fiu_workload
from repro.workloads.msr import MSR_WORKLOAD_NAMES, msr_workload
from repro.workloads.synthetic import zipf_lpa
from repro.workloads.trace import Trace

#: FTL schemes compared throughout the evaluation.
SCHEMES: Tuple[str, ...] = ("DFTL", "SFTL", "LeaFTL")

#: The simulator-trace workloads (Figures 15, 16, 19-25 left half).
SIMULATOR_WORKLOADS: List[str] = MSR_WORKLOAD_NAMES + FIU_WORKLOAD_NAMES

#: The real-SSD workloads (Figure 17 and the right half of 19-25).
REAL_SSD_WORKLOADS: List[str] = list(DATABASE_WORKLOAD_NAMES)

ALL_WORKLOADS: List[str] = SIMULATOR_WORKLOADS + REAL_SSD_WORKLOADS


def bench_scale(default: float = 1.0) -> float:
    """Global scale factor for benchmark workload sizes.

    Set the ``REPRO_BENCH_SCALE`` environment variable to trade fidelity for
    runtime (e.g. ``REPRO_BENCH_SCALE=0.1`` for a quick smoke run).
    """
    value = os.environ.get("REPRO_BENCH_SCALE")
    if not value:
        return default
    return max(0.01, float(value))


def oob_size_for_gamma(gamma: int) -> int:
    """Smallest standard spare-area size (128, 256, ... bytes) fitting gamma.

    The reverse-mapping window needs ``(2 * gamma + 1) * 4`` bytes, so the
    common 128-byte spare covers gamma <= 15 and gamma = 16 (Figure 19's
    largest sweep point) needs a 256-byte spare.  Gamma sweeps use this so
    each point runs on the cheapest spare area that can actually hold its
    OOB payload.
    """
    size = 128
    while required_oob_bytes(gamma) > size:
        size *= 2
    return size


@dataclass(frozen=True)
class ExperimentSetup:
    """Device + policy configuration for one experiment run."""

    #: Logical capacity of the simulated device.
    capacity_bytes: int = 1 * 1024 * 1024 * 1024
    #: Flash page size (Figure 22b varies this).
    page_size: int = 4096
    channels: int = 16
    #: Dies per channel: programs/erases on different dies overlap, so a
    #: program occupies its channel bus for ``write_latency / dies``.
    dies_per_channel: int = 8
    pages_per_block: int = 256
    #: Controller DRAM shared by the mapping table and the data cache.
    dram_bytes: int = 512 * 1024
    #: ``mapping_first`` (Figure 16a) or ``cache_reserved`` (Figure 16b).
    dram_policy: str = "mapping_first"
    #: LeaFTL error bound.
    gamma: int = 0
    #: Per-page spare (OOB) area in bytes.  The default 128-byte spare fits
    #: the reverse-mapping window of gamma <= 15; gamma = 16 needs 132 bytes
    #: and therefore a 256-byte spare (see repro.flash.oob.required_oob_bytes).
    oob_size: int = 128
    #: Fraction of the logical space written once before measuring.
    warmup_fraction: float = 0.70
    #: Whether to run the warm-up phase at all.
    warmup: bool = True
    #: Write-buffer size in bytes (the paper's default is 8 MB).
    write_buffer_bytes: int = 1 * 1024 * 1024
    #: LeaFTL compaction interval, scaled to the smaller trace sizes.
    compaction_interval_writes: int = 200_000
    #: Fraction of each workload's requests to replay (runtime knob).
    request_scale: float = 0.25
    #: Scale factor applied to workload footprints so they fit the device.
    footprint_scale: float = 0.6
    #: Sort the write buffer by LPA before flushing (ablation knob).
    sort_buffer_on_flush: bool = True
    #: Host requests kept outstanding during replay (1 = the classic
    #: synchronous simulation; > 1 uses the event-driven engine).
    queue_depth: int = 1
    #: Replay admission policy: ``"closed"`` (completion-driven, bounded by
    #: ``queue_depth``) or ``"open"`` (requests admitted at their trace
    #: timestamps — latency is measured against arrival times).
    replay_mode: str = "closed"
    #: Multiplier on trace inter-arrival times in open-loop replay.
    time_scale: float = 1.0
    #: Arrival spacing stamped onto timestamp-less (synthetic) traces when
    #: they are replayed open-loop.
    open_loop_interarrival_us: float = 20.0
    #: Fraction of raw flash capacity reserved as over-provisioning space
    #: (the knob the aging sweep varies; the paper's default is 20 %).
    overprovisioning: float = 0.20
    #: GC scheduling: ``"sync"`` (classic blocking reclaim at flush time) or
    #: ``"background"`` (event-pipelined reclaim overlapping host I/O).
    gc_mode: str = "sync"
    #: GC victim-selection policy: ``greedy``, ``cost_benefit``, ``d_choices``.
    gc_policy: str = "greedy"
    #: Submission-queue arbitration policy used when the device is driven
    #: through the multi-queue host interface (``repro.host``): ``fifo``,
    #: ``round_robin``, ``weighted_round_robin`` or ``strict_priority``.
    arbiter: str = "round_robin"
    #: Observability mode passed to ``SSDOptions.telemetry``: ``"off"``
    #: (default), ``"trace"``, ``"metrics"`` or ``"on"``.  Collectors never
    #: perturb scheduling, so results are identical either way; artifacts
    #: are read from ``build_ssd(...).telemetry`` after the run.
    telemetry: str = "off"
    #: Random seed of the warm-up pattern.
    seed: int = 7

    def ssd_config(self) -> SSDConfig:
        return SSDConfig(
            capacity_bytes=self.capacity_bytes,
            page_size=self.page_size,
            pages_per_block=self.pages_per_block,
            channels=self.channels,
            dies_per_channel=self.dies_per_channel,
            dram_size=self.dram_bytes,
            oob_size=self.oob_size,
            write_buffer_bytes=self.write_buffer_bytes,
            overprovisioning=self.overprovisioning,
            ncq_depth=max(32, self.queue_depth),
        )

    def dram_budget(self) -> DRAMBudget:
        return DRAMBudget(dram_bytes=self.dram_bytes, policy=self.dram_policy)

    def scaled(self, **overrides: object) -> "ExperimentSetup":
        return replace(self, **overrides)  # type: ignore[arg-type]


@dataclass
class ExperimentResult:
    """Everything a benchmark needs to print one cell of a paper figure."""

    workload: str
    scheme: str
    gamma: int
    mean_latency_us: float
    read_mean_latency_us: float
    read_p99_us: float
    simulated_time_us: float
    cache_hit_ratio: float
    write_amplification: float
    misprediction_ratio: float
    mapping_full_bytes: int
    mapping_resident_bytes: int
    stats: SSDStats
    ftl_details: Dict[str, float] = field(default_factory=dict)
    latency_samples: List[float] = field(default_factory=list)
    levels_histogram: Dict[int, int] = field(default_factory=dict)
    crb_sizes: List[int] = field(default_factory=list)
    segment_lengths: List[int] = field(default_factory=list)
    segment_type_counts: Tuple[int, int] = (0, 0)
    level_counts: List[int] = field(default_factory=list)


# --------------------------------------------------------------------------- #
# Building blocks
# --------------------------------------------------------------------------- #
def build_ftl(scheme: str, setup: ExperimentSetup) -> FTL:
    """Instantiate the FTL scheme under test with the setup's DRAM budget."""
    budget = setup.dram_budget().mapping_budget()
    if scheme == "DFTL":
        return DFTL(mapping_budget_bytes=budget, config=DFTLConfig())
    if scheme == "SFTL":
        return SFTL(mapping_budget_bytes=budget, config=SFTLConfig())
    if scheme == "LeaFTL":
        config = LeaFTLConfig(
            gamma=setup.gamma,
            compaction_interval_writes=setup.compaction_interval_writes,
        )
        return LeaFTL(config=config, mapping_budget_bytes=budget)
    if scheme == "PageMap":
        return PageLevelFTL()
    raise ValueError(f"unknown FTL scheme {scheme!r}; known: {SCHEMES + ('PageMap',)}")


def build_ssd(scheme: str, setup: ExperimentSetup) -> SimulatedSSD:
    """An SSD + FTL pair ready for warm-up and trace replay."""
    config = setup.ssd_config()
    ftl = build_ftl(scheme, setup)
    options = SSDOptions(
        sort_buffer_on_flush=setup.sort_buffer_on_flush,
        queue_depth=setup.queue_depth,
        replay_mode=setup.replay_mode,
        time_scale=setup.time_scale,
        gc_mode=setup.gc_mode,
        arbiter=setup.arbiter,
        telemetry=setup.telemetry,
    )
    return SimulatedSSD(
        config=config,
        ftl=ftl,
        dram_budget=setup.dram_budget(),
        options=options,
        gc_policy=setup.gc_policy,
    )


def warmup_ssd(ssd: SimulatedSSD, setup: ExperimentSetup) -> None:
    """Pre-fill the device so GC is active and mapping tables are populated.

    The warm-up writes ``warmup_fraction`` of the logical space in large
    sequential extents interleaved with scattered small writes — a mix that
    populates every FTL's mapping structures without handing LeaFTL an
    artificially easy all-sequential history.
    """
    rng = random.Random(setup.seed)
    logical_pages = ssd.config.logical_pages
    target_pages = int(logical_pages * setup.warmup_fraction)
    extent = 2048
    lpa = 0
    written = 0
    while written < target_pages and lpa < logical_pages - extent:
        ssd.process("W", lpa, extent)
        written += extent
        lpa += extent
        if rng.random() < 0.25:
            scattered = rng.randrange(0, logical_pages - 8)
            ssd.process("W", scattered, rng.randint(1, 4))
            written += 4
    ssd.flush()
    reset_measurement(ssd)


def precondition(
    ssd: SimulatedSSD,
    fill_fraction: float = 0.92,
    overwrite_fraction: float = 1.0,
    zipf_alpha: float = 0.8,
    extent: int = 256,
    seed: int = 11,
) -> int:
    """Age the device into GC steady state (WiscSee-style preconditioning).

    Steady-state WAF and GC-interference latencies only mean something once
    every physical block has been written and the per-block validity
    distribution reflects the workload's skew — a freshly formatted device
    under-reports both.  The recipe:

    1. **fill** — write ``fill_fraction`` of the logical space sequentially
       in ``extent``-page runs, so every block starts fully valid;
    2. **age** — overwrite ``overwrite_fraction`` of the filled footprint in
       Zipf-skewed random order (``zipf_alpha``), spreading invalid pages
       *unevenly* across blocks: hot blocks drain toward empty while cold
       blocks stay valid, which is the regime where victim policies differ;
    3. drain the write buffer and reset measurement, so subsequent ``run()``
       calls report steady-state statistics only.

    Returns the preconditioned footprint in pages (use it to bound the
    measured workload so it overwrites aged data rather than virgin space).
    """
    if not 0.0 < fill_fraction <= 1.0:
        raise ValueError("fill_fraction must be in (0, 1]")
    if overwrite_fraction < 0.0:
        raise ValueError("overwrite_fraction must be non-negative")
    logical_pages = ssd.config.logical_pages
    footprint = max(extent, int(logical_pages * fill_fraction))
    footprint = min(footprint, logical_pages)
    for lpa in range(0, footprint - extent + 1, extent):
        ssd.process("W", lpa, extent)
    rng = random.Random(seed)
    span = 4
    overwrites = int(footprint * overwrite_fraction) // span
    for _ in range(overwrites):
        lpa = zipf_lpa(rng, max(1, footprint - span), zipf_alpha)
        ssd.process("W", lpa, span)
    ssd.flush()
    # Let the aging traffic drain: without this the first measured requests
    # queue behind the preconditioning's final flush/GC reservations and the
    # measured tail reflects the aging, not the workload.
    ssd.quiesce()
    reset_measurement(ssd)
    return footprint


def steady_state_workload(
    footprint_pages: int,
    num_requests: int,
    seed: int = 23,
    read_ratio: float = 0.4,
    zipf_alpha: float = 0.85,
    max_span: int = 8,
) -> List[Tuple[str, int, int]]:
    """An overwrite-heavy, Zipf-skewed request mix for GC studies.

    Every request targets the preconditioned footprint, so writes are
    overwrites (sustaining GC pressure) and reads hit aged data (measuring
    GC interference).  Deterministic given ``seed``.
    """
    rng = random.Random(seed)
    requests: List[Tuple[str, int, int]] = []
    upper = max(1, footprint_pages - max_span)
    for _ in range(num_requests):
        lpa = zipf_lpa(rng, upper, zipf_alpha)
        op = "R" if rng.random() < read_ratio else "W"
        requests.append((op, lpa, rng.randint(1, max_span)))
    return requests


def reset_measurement(ssd: SimulatedSSD) -> None:
    """Clear the statistics accumulated so far (end of warm-up).

    Also anchors the measured-time origin, so ``stats.measured_time_us``
    of the subsequent replay excludes the warm-up makespan.
    """
    ssd.begin_measurement()
    ssd.ftl.stats.reset()
    lea = getattr(ssd.ftl, "lea_stats", None)
    if lea is not None:
        lea.mispredictions = 0
        lea.oob_corrections = 0
        lea.oob_correction_failures = 0
        lea.approximate_lookups = 0
        lea.lookups_resolved = 0
        lea.levels_histogram = {}


# --------------------------------------------------------------------------- #
# Workloads
# --------------------------------------------------------------------------- #
def workload_by_name(
    name: str, request_scale: float = 1.0, footprint_scale: float = 1.0
) -> Trace:
    """Build the named workload trace (MSR-like, FIU-like or database)."""
    if name in MSR_WORKLOAD_NAMES:
        return msr_workload(name, request_scale, footprint_scale)
    if name in FIU_WORKLOAD_NAMES:
        return fiu_workload(name, request_scale, footprint_scale)
    if name in DATABASE_WORKLOAD_NAMES:
        return database_workload(name, request_scale)
    raise KeyError(f"unknown workload {name!r}; known: {ALL_WORKLOADS}")


def workload_for_setup(name: str, setup: ExperimentSetup) -> Trace:
    """The named workload scaled for the experiment device."""
    trace = workload_by_name(name, setup.request_scale, setup.footprint_scale)
    return trace.scaled_to(setup.ssd_config().logical_pages)


# --------------------------------------------------------------------------- #
# Running experiments
# --------------------------------------------------------------------------- #
def run_experiment(
    workload: str,
    scheme: str,
    setup: Optional[ExperimentSetup] = None,
    trace: Optional[Trace] = None,
    replay_mode: Optional[str] = None,
) -> ExperimentResult:
    """Run one (workload, scheme) cell and collect every figure's inputs.

    ``replay_mode`` overrides ``setup.replay_mode``: ``"closed"`` replays
    completion-driven at ``setup.queue_depth``; ``"open"`` admits requests
    at their trace timestamps (timestamp-less synthetic traces are stamped
    with ``setup.open_loop_interarrival_us`` first), so latency-under-load
    is measured against arrival times.
    """
    setup = setup or ExperimentSetup()
    mode = setup.replay_mode if replay_mode is None else replay_mode
    ssd = build_ssd(scheme, setup)
    if setup.warmup:
        warmup_ssd(ssd, setup)
    replay = trace if trace is not None else workload_for_setup(workload, setup)
    if mode == "open":
        replay = replay.with_interarrival(setup.open_loop_interarrival_us)
    stats = ssd.run(replay, replay_mode=mode, time_scale=setup.time_scale)

    ftl = ssd.ftl
    result = ExperimentResult(
        workload=workload,
        scheme=scheme,
        gamma=setup.gamma,
        mean_latency_us=stats.mean_latency_us,
        read_mean_latency_us=stats.read_latency.mean_us,
        read_p99_us=stats.read_latency.percentile(99),
        simulated_time_us=stats.simulated_time_us,
        cache_hit_ratio=stats.cache_hit_ratio,
        write_amplification=stats.write_amplification,
        misprediction_ratio=stats.misprediction_ratio,
        mapping_full_bytes=ftl.full_mapping_bytes(),
        mapping_resident_bytes=ftl.resident_bytes(),
        stats=stats,
        ftl_details=ftl.describe(),
        latency_samples=stats.read_latency.samples(),
    )
    if isinstance(ftl, LeaFTL):
        result.levels_histogram = dict(ftl.lea_stats.levels_histogram)
        result.crb_sizes = ftl.table.crb_sizes()
        result.segment_lengths = ftl.table.segment_lengths()
        result.segment_type_counts = ftl.table.segment_type_counts()
        result.level_counts = ftl.table.level_counts()
    return result


def run_schemes(
    workload: str,
    setup: Optional[ExperimentSetup] = None,
    schemes: Sequence[str] = SCHEMES,
    replay_mode: Optional[str] = None,
) -> Dict[str, ExperimentResult]:
    """Run every scheme on one workload (shares the generated trace)."""
    setup = setup or ExperimentSetup()
    trace = workload_for_setup(workload, setup)
    return {
        scheme: run_experiment(
            workload, scheme, setup, trace=trace, replay_mode=replay_mode
        )
        for scheme in schemes
    }
