"""Tests for the per-group log structure and the full mapping table.

The central invariant, checked both with targeted cases (the paper's
Figure 13 timeline) and property-based random histories: after any sequence
of batched updates, looking up any LPA returns a PPA within ``gamma`` of the
most recently recorded mapping, and with ``gamma = 0`` it is exact.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.config import LeaFTLConfig
from repro.core.mapping_table import LogStructuredMappingTable

def make_table(gamma=0):
    return LogStructuredMappingTable(LeaFTLConfig(gamma=gamma))


class TestBasicUpdatesAndLookups:
    def test_lookup_unmapped(self):
        table = make_table()
        assert not table.lookup(123).found
        assert not table.exists(123)

    def test_sequential_batch(self):
        table = make_table()
        table.update([(lpa, 5000 + lpa) for lpa in range(64)])
        for lpa in range(64):
            assert table.lookup(lpa).ppa == 5000 + lpa
        assert table.segment_count() == 1
        assert table.memory_bytes() < 64 * 8  # beats the page-level table

    def test_overwrite_returns_latest(self):
        table = make_table()
        table.update([(lpa, 100 + lpa) for lpa in range(32)])
        table.update([(lpa, 900 + lpa) for lpa in range(32)])
        for lpa in range(32):
            assert table.lookup(lpa).ppa == 900 + lpa

    def test_partial_overwrite_keeps_old_tail(self):
        """Figure 13 (T2): [16, 31] overwrites part of [0, 63]."""
        table = make_table()
        table.update([(lpa, 1000 + lpa) for lpa in range(64)])
        table.update([(lpa, 3000 + lpa) for lpa in range(16, 32)])
        for lpa in range(64):
            expected = 3000 + lpa if 16 <= lpa < 32 else 1000 + lpa
            assert table.lookup(lpa).ppa == expected
        # The old segment was demoted, not destroyed: two levels exist.
        group = table.groups()[0]
        assert group.level_count == 2

    def test_single_point_updates(self):
        table = make_table()
        for i, lpa in enumerate((700, 20, 431, 90)):
            table.update_single(lpa, 10_000 + i)
        for i, lpa in enumerate((700, 20, 431, 90)):
            assert table.lookup(lpa).ppa == 10_000 + i

    def test_lookup_levels_reported(self):
        table = make_table()
        table.update([(lpa, 100 + lpa) for lpa in range(64)])
        table.update([(lpa, 500 + lpa) for lpa in range(8, 16)])
        shallow = table.lookup(10)
        deep = table.lookup(40)
        assert shallow.levels_searched == 1
        assert deep.levels_searched == 2


class TestCompaction:
    def test_full_shadowing_removes_old_segment(self):
        table = make_table()
        table.update([(lpa, 100 + lpa) for lpa in range(64)])
        table.update([(lpa, 900 + lpa) for lpa in range(64)])
        table.compact()
        assert table.segment_count() == 1
        for lpa in range(64):
            assert table.lookup(lpa).ppa == 900 + lpa

    def test_compaction_preserves_lookups(self):
        rng = random.Random(5)
        table = make_table(gamma=4)
        truth = {}
        ppa = 0
        for _ in range(60):
            start = rng.randrange(0, 2000)
            lpas = sorted(set(start + rng.randrange(0, 64) for _ in range(32)))
            batch = []
            for lpa in lpas:
                batch.append((lpa, ppa))
                truth[lpa] = ppa
                ppa += 1
            table.update(batch)
        table.compact()
        table.validate()
        for lpa, expected in truth.items():
            result = table.lookup(lpa)
            assert result.found
            assert abs(result.ppa - expected) <= 4

    def test_compaction_never_increases_memory(self):
        table = make_table()
        for round_ in range(10):
            table.update([(lpa, round_ * 1000 + lpa) for lpa in range(128)])
        before = table.memory_bytes()
        table.compact()
        assert table.memory_bytes() <= before


class TestMemoryAccounting:
    def test_memory_grows_with_fragmentation(self):
        sequential = make_table()
        sequential.update([(lpa, lpa) for lpa in range(256)])
        fragmented = make_table()
        for lpa in range(0, 256, 2):
            fragmented.update_single(lpa, lpa * 7 + 13)
        assert fragmented.memory_bytes() > sequential.memory_bytes()

    def test_random_mapping_no_worse_than_page_level(self):
        rng = random.Random(9)
        table = make_table()
        lpas = sorted(rng.sample(range(10_000), 500))
        table.update([(lpa, rng.randrange(10**6)) for lpa in lpas])
        page_level_bytes = 500 * 8
        # Allow the CRB/level overhead but stay in the same ballpark.
        assert table.memory_bytes() <= page_level_bytes * 1.2

    def test_stats_track_learning(self):
        table = make_table()
        table.update([(lpa, lpa) for lpa in range(100)])
        assert table.stats.batches_learned == 1
        assert table.stats.mappings_learned == 100
        assert table.stats.segments_learned >= 1


class TestPropertyBasedHistories:
    @given(
        gamma=st.sampled_from([0, 1, 4]),
        seed=st.integers(min_value=0, max_value=10_000),
        compact=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_latest_mapping_always_within_gamma(self, gamma, seed, compact):
        rng = random.Random(seed)
        table = make_table(gamma=gamma)
        truth = {}
        ppa = 0
        for _ in range(rng.randint(1, 40)):
            kind = rng.random()
            if kind < 0.4:
                start = rng.randrange(0, 3000)
                lpas = list(range(start, start + rng.randint(1, 100)))
            elif kind < 0.6:
                start = rng.randrange(0, 3000)
                stride = rng.choice((2, 3, 4))
                lpas = list(range(start, start + stride * rng.randint(2, 40), stride))
            else:
                lpas = sorted(set(rng.randrange(0, 3000) for _ in range(rng.randint(1, 48))))
            batch = []
            for lpa in lpas:
                batch.append((lpa, ppa))
                truth[lpa] = ppa
                ppa += 1
            table.update(batch)
        if compact:
            table.compact()
        table.validate()
        for lpa, expected in truth.items():
            result = table.lookup(lpa)
            assert result.found, f"lost mapping for LPA {lpa}"
            assert abs(result.ppa - expected) <= gamma

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_structural_invariants_hold(self, seed):
        rng = random.Random(seed)
        table = make_table(gamma=4)
        ppa = 0
        for _ in range(20):
            start = rng.randrange(0, 1000)
            lpas = sorted(set(start + rng.randrange(0, 200) for _ in range(40)))
            table.update([(lpa, ppa + i) for i, lpa in enumerate(lpas)])
            ppa += len(lpas)
            table.validate()


class TestLookupStatsAccounting:
    """Regression: miss lookups must not deflate mean_levels_per_lookup.

    A lookup whose group does not exist still consults the group directory,
    so it charges one searched level; counting it as zero while still
    incrementing ``lookups`` skewed Figure 23a on cold-read workloads.
    """

    def test_group_miss_charges_one_level(self):
        table = make_table()
        result = table.lookup(123)
        assert not result.found
        assert result.levels_searched == 1
        assert table.stats.lookups == 1
        assert table.stats.lookup_levels_total == 1
        assert table.stats.mean_levels_per_lookup == 1.0

    def test_every_lookup_charges_at_least_one_level(self):
        table = make_table()
        table.update([(lpa, 100 + lpa) for lpa in range(32)])
        for lpa in range(32):
            assert table.lookup(lpa).found
        for lpa in range(100_000, 100_032):   # cold groups: all misses
            assert not table.lookup(lpa).found
        assert table.stats.lookups == 64
        assert table.stats.lookup_levels_total >= table.stats.lookups
        assert table.stats.mean_levels_per_lookup >= 1.0

    def test_in_group_miss_counts_levels_searched(self):
        table = make_table()
        table.update([(0, 100)])   # group 0 exists, LPA 5 unmapped
        result = table.lookup(5)
        assert not result.found
        assert result.levels_searched >= 1
        assert table.stats.lookup_levels_total >= 1

    def test_exists_uses_the_same_stats_policy(self):
        table = make_table()
        table.update([(0, 100)])
        lookups_before = table.stats.lookups
        levels_before = table.stats.lookup_levels_total
        assert table.exists(0)
        assert not table.exists(999_999)
        assert table.stats.lookups == lookups_before + 2
        assert table.stats.lookup_levels_total >= levels_before + 2
