# Fixture for SIM002 (seeded-random-only).  See sim001 fixture for the
# marker convention.  NOT imported — parsed by simlint only.
import random
import numpy as np
from random import randint
from numpy.random import rand


def bad_module_level() -> float:
    return random.random()  # expect: SIM002


def bad_from_import() -> int:
    return randint(0, 10)  # expect: SIM002


def bad_shuffle(items) -> None:
    random.shuffle(items)  # expect: SIM002


def bad_seed_global() -> None:
    random.seed(7)  # expect: SIM002


def bad_numpy() -> float:
    x = np.random.rand()  # expect: SIM002
    y = rand()  # expect: SIM002
    return x + y


def bad_unseeded_instance():
    return random.Random()  # expect: SIM002


def bad_unseeded_generator():
    return np.random.default_rng()  # expect: SIM002


def suppressed() -> float:
    return random.random()  # simlint: disable=SIM002


def ok_injected(rng: random.Random) -> int:
    # Injected, seeded instances are the sanctioned pattern.
    return rng.randint(0, 10)


def ok_seeded_construction():
    a = random.Random(42)
    b = np.random.default_rng(7)
    c = random.Random(seed=3)
    return a, b, c
