"""The NAND flash array: page state machine, OOB storage and access counters.

The array models the FTL-visible behaviour of NAND flash:

* pages are written out-of-place — a page must be FREE to be programmed and
  must be erased (at block granularity) before it can be programmed again;
* each block has an erase counter (used for wear-leveling studies and the
  write-amplification figure);
* each page has an OOB area storing reverse mappings (see
  :mod:`repro.flash.oob`);
* every read/program/erase is accounted per channel so the SSD model can
  compute request latencies under channel parallelism.

The array does not store page payloads — the simulator is trace-driven and
only address translation correctness matters.  Each valid page remembers the
LPA it holds, which doubles as its "content" for verification purposes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.config import SSDConfig
from repro.flash.geometry import FlashGeometry
from repro.flash.oob import OOBArea
from repro.sim.nand import NANDScheduler


class PageState(enum.Enum):
    """Lifecycle of a flash page."""

    FREE = "free"
    VALID = "valid"
    INVALID = "invalid"


class FlashError(RuntimeError):
    """Raised when an operation violates NAND flash constraints."""


@dataclass
class FlashCounters:
    """Aggregate operation counters for the whole array."""

    page_reads: int = 0
    page_writes: int = 0
    block_erases: int = 0
    oob_reads: int = 0

    def reset(self) -> None:
        self.page_reads = 0
        self.page_writes = 0
        self.block_erases = 0
        self.oob_reads = 0


@dataclass
class _BlockState:
    """Mutable per-block bookkeeping."""

    erase_count: int = 0
    valid_pages: int = 0
    #: Next page offset to program (NAND requires in-order programming).
    write_pointer: int = 0
    #: Array-wide logical op-clock value of the last state change (program,
    #: invalidate or erase touching this block).  Age-aware GC victim
    #: policies (cost-benefit) read it through :meth:`FlashArray.block_age`.
    last_modified_op: int = 0


class FlashArray:
    """A multi-channel NAND flash array with per-channel time accounting."""

    def __init__(
        self, config: SSDConfig, scheduler: Optional[NANDScheduler] = None
    ) -> None:
        self._config = config
        self._geometry = FlashGeometry(config)
        total_pages = self._geometry.total_pages
        total_blocks = self._geometry.total_blocks

        self._page_state: List[PageState] = [PageState.FREE] * total_pages
        self._page_lpa: List[Optional[int]] = [None] * total_pages
        self._oob: Dict[int, OOBArea] = {}
        self._blocks: List[_BlockState] = [_BlockState() for _ in range(total_blocks)]
        self._scheduler = scheduler or NANDScheduler(
            config.channels, config.dies_per_channel
        )
        self.counters = FlashCounters()
        #: Logical clock: increments on every program/invalidate/erase.  It
        #: orders block modifications without depending on simulated time,
        #: so block ages are identical across replay engines.
        self._op_clock = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def geometry(self) -> FlashGeometry:
        return self._geometry

    @property
    def config(self) -> SSDConfig:
        return self._config

    def page_state(self, ppa: int) -> PageState:
        return self._page_state[ppa]

    def lpa_of(self, ppa: int) -> Optional[int]:
        """Reverse mapping stored in the page (None if FREE/never written)."""
        return self._page_lpa[ppa]

    def oob_of(self, ppa: int) -> Optional[OOBArea]:
        """The OOB contents of ``ppa`` (None if the page was never written)."""
        return self._oob.get(ppa)

    def erase_count(self, block: int) -> int:
        return self._blocks[block].erase_count

    def block_age(self, block: int) -> int:
        """Logical age: array-wide operations since the block last changed.

        A block that has not been programmed, invalidated or erased for many
        operations holds cold data; cost-benefit GC weighs this age against
        the migration cost of the block's valid pages.
        """
        return self._op_clock - self._blocks[block].last_modified_op

    def valid_page_count(self, block: int) -> int:
        return self._blocks[block].valid_pages

    def write_pointer(self, block: int) -> int:
        """Next programmable page offset within ``block``."""
        return self._blocks[block].write_pointer

    def block_is_full(self, block: int) -> bool:
        return self._blocks[block].write_pointer >= self._geometry.pages_per_block

    def block_is_free(self, block: int) -> bool:
        """True when every page of the block is FREE (freshly erased)."""
        return self._blocks[block].write_pointer == 0 and self._blocks[block].valid_pages == 0

    def valid_ppas_of_block(self, block: int) -> List[int]:
        """All VALID PPAs in ``block`` (ascending order)."""
        return [
            ppa
            for ppa in self._geometry.ppas_of_block(block)
            if self._page_state[ppa] is PageState.VALID
        ]

    @property
    def scheduler(self) -> NANDScheduler:
        """The NAND scheduler arbitrating channel-bus and die occupancy."""
        return self._scheduler

    def channel_busy_until(self, channel: int) -> float:
        """Simulated time (us) until which ``channel``'s bus is occupied."""
        return self._scheduler.busy_until(channel)

    # ------------------------------------------------------------------ #
    # Time accounting
    # ------------------------------------------------------------------ #
    def occupy_channel(self, channel: int, now_us: float, duration_us: float) -> float:
        """Schedule an operation on ``channel`` and return its finish time.

        Exposed so the SSD model can charge channel time for logically
        modelled traffic (e.g. DFTL translation-page I/O) that does not go
        through a specific data page.
        """
        return self._scheduler.reserve(channel, now_us, duration_us)


    # ------------------------------------------------------------------ #
    # Flash operations
    # ------------------------------------------------------------------ #
    def read_page(self, ppa: int, now_us: float = 0.0) -> float:
        """Read a flash page; returns the completion time in microseconds.

        Reading a FREE page is allowed by hardware but flagged here because
        it always indicates an FTL bug in the simulator.
        """
        state = self._page_state[ppa]
        if state is PageState.FREE:
            raise FlashError(f"read of unwritten page ppa={ppa}")
        self.counters.page_reads += 1
        return self._reserve_read(ppa, now_us)

    def read_oob(self, ppa: int, now_us: float = 0.0) -> float:
        """Read only the OOB of a page (modelled with full page-read latency).

        Real devices cannot read the spare area without activating the page,
        so the latency equals a page read; the separate counter lets the
        benchmarks attribute the cost to misprediction handling.
        """
        if self._page_state[ppa] is PageState.FREE:
            raise FlashError(f"OOB read of unwritten page ppa={ppa}")
        self.counters.oob_reads += 1
        return self._reserve_read(ppa, now_us)

    def _reserve_read(self, ppa: int, now_us: float) -> float:
        """Schedule a page-sized read on ``ppa``'s channel and die."""
        return self._scheduler.reserve(
            self._geometry.channel_of(ppa),
            now_us,
            self._config.read_latency_us,
            die=self._geometry.die_of(ppa),
        )

    def program_page(
        self,
        ppa: int,
        lpa: int,
        oob: Optional[OOBArea] = None,
        now_us: float = 0.0,
    ) -> float:
        """Program a FREE page with the data of ``lpa``.

        NAND constraints enforced:

        * the page must be FREE;
        * pages within a block must be programmed in ascending order.
        """
        if self._page_state[ppa] is not PageState.FREE:
            raise FlashError(f"program of non-free page ppa={ppa} ({self._page_state[ppa]})")
        block = self._geometry.block_of(ppa)
        offset = self._geometry.page_offset_of(ppa)
        block_state = self._blocks[block]
        if offset != block_state.write_pointer:
            raise FlashError(
                f"out-of-order program in block {block}: offset {offset}, "
                f"expected {block_state.write_pointer}"
            )

        self._page_state[ppa] = PageState.VALID
        self._page_lpa[ppa] = lpa
        self._oob[ppa] = oob if oob is not None else OOBArea(lpa=lpa)
        block_state.valid_pages += 1
        block_state.write_pointer += 1
        self._op_clock += 1
        block_state.last_modified_op = self._op_clock
        self.counters.page_writes += 1
        # Programs proceed inside a die; the channel bus is only occupied for
        # the data transfer share, so concurrent programs on other dies
        # overlap.  The die itself stays busy for the full program time.
        occupancy = self._config.write_latency_us / self._config.dies_per_channel
        return self._scheduler.reserve(
            self._geometry.channel_of(ppa),
            now_us,
            occupancy,
            die=self._geometry.die_of(ppa),
            cell_us=self._config.write_latency_us,
        )

    def invalidate_page(self, ppa: int) -> None:
        """Mark a VALID page as INVALID (its LPA was overwritten or trimmed)."""
        if self._page_state[ppa] is not PageState.VALID:
            raise FlashError(f"invalidate of non-valid page ppa={ppa}")
        self._page_state[ppa] = PageState.INVALID
        block = self._geometry.block_of(ppa)
        self._blocks[block].valid_pages -= 1
        self._op_clock += 1
        self._blocks[block].last_modified_op = self._op_clock

    def erase_block(self, block: int, now_us: float = 0.0) -> float:
        """Erase a whole block; all its pages become FREE again."""
        remaining_valid = self._blocks[block].valid_pages
        if remaining_valid:
            raise FlashError(
                f"erase of block {block} with {remaining_valid} valid pages; "
                "GC must migrate valid pages first"
            )
        for ppa in self._geometry.ppas_of_block(block):
            self._page_state[ppa] = PageState.FREE
            self._page_lpa[ppa] = None
            self._oob.pop(ppa, None)
        state = self._blocks[block]
        state.erase_count += 1
        state.write_pointer = 0
        self._op_clock += 1
        state.last_modified_op = self._op_clock
        self.counters.block_erases += 1
        occupancy = self._config.erase_latency_us / self._config.dies_per_channel
        return self._scheduler.reserve(
            self._geometry.block_to_channel(block),
            now_us,
            occupancy,
            die=self._geometry.die_of_block(block),
            cell_us=self._config.erase_latency_us,
        )

    # ------------------------------------------------------------------ #
    # Bulk helpers
    # ------------------------------------------------------------------ #
    def erase_counts(self) -> List[int]:
        """Erase counter of every block (for wear-leveling analysis)."""
        return [b.erase_count for b in self._blocks]

    def blocks_by_valid_pages(self, candidates: Iterable[int]) -> List[int]:
        """Sort candidate blocks by ascending valid-page count (greedy GC)."""
        return sorted(candidates, key=lambda b: self._blocks[b].valid_pages)
