"""Figure 17: performance on the real-SSD (database) workloads.

The paper reports LeaFTL obtaining a 1.4x average speedup (up to 1.5x) over
SFTL and DFTL across SEATS, AuctionMark, TPC-C, OLTP and CompFlow.

Replay is closed-loop by default; set ``REPRO_REPLAY_MODE=open`` to admit
requests at (stamped) trace timestamps instead, measuring latency against
arrival times (see ``benchmarks/conftest.perf_setup``).  Multi-page
database commands are translated in batched ``FTL.translate_range`` runs
and striped across channels either way.
"""

from __future__ import annotations

from repro.analysis.report import print_report, render_series
from repro.experiments.performance import normalized_performance

from benchmarks.conftest import CORE_DATABASE_WORKLOADS, perf_setup, run_once


def test_fig17_database_performance(benchmark):
    setup = perf_setup(dram_policy="cache_reserved")
    table = run_once(benchmark, normalized_performance, CORE_DATABASE_WORKLOADS, setup)

    print_report(render_series(
        "Figure 17: normalized read latency on database workloads (lower is better)",
        {wl: {s: round(v, 3) for s, v in row.items()} for wl, row in table.items()},
        column_order=("DFTL", "SFTL", "LeaFTL"),
    ))

    leaftl_mean = sum(row["LeaFTL"] for row in table.values()) / len(table)
    assert leaftl_mean < 1.0
