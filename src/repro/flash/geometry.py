"""Flash geometry: translating physical page addresses to device coordinates.

A physical page address (PPA) is a dense integer in ``[0, physical_pages)``.
The geometry maps it to a ``(channel, block, page)`` triple.  Pages are laid
out block-major within a channel so that consecutive PPAs inside one block
stay on the same channel — this matches how the write buffer flushes a whole
flash block worth of pages to a single active block (Section 3.3 of the
paper), and is what makes learned segments possible: consecutive PPAs within
a block are handed to contiguous, LPA-sorted host pages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.config import SSDConfig


@dataclass(frozen=True)
class PageAddress:
    """A decomposed physical page address."""

    channel: int
    block: int
    page: int

    def as_tuple(self) -> Tuple[int, int, int]:
        return (self.channel, self.block, self.page)


class FlashGeometry:
    """Address arithmetic for a multi-channel flash array.

    The PPA layout is::

        ppa = channel * pages_per_channel + block_in_channel * pages_per_block + page

    so that one flash block occupies a contiguous PPA range, and blocks of
    the same channel occupy a contiguous range of blocks.
    """

    def __init__(self, config: SSDConfig) -> None:
        self._config = config
        self._pages_per_block = config.pages_per_block
        self._blocks_per_channel = config.blocks_per_channel
        self._pages_per_channel = config.pages_per_channel
        self._channels = config.channels
        self._dies_per_channel = config.dies_per_channel
        self._total_pages = config.physical_pages
        self._total_blocks = config.total_blocks

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def config(self) -> SSDConfig:
        return self._config

    @property
    def total_pages(self) -> int:
        return self._total_pages

    @property
    def total_blocks(self) -> int:
        return self._total_blocks

    @property
    def pages_per_block(self) -> int:
        return self._pages_per_block

    @property
    def channels(self) -> int:
        return self._channels

    @property
    def blocks_per_channel(self) -> int:
        return self._blocks_per_channel

    # ------------------------------------------------------------------ #
    # PPA <-> coordinates
    # ------------------------------------------------------------------ #
    def decompose(self, ppa: int) -> PageAddress:
        """Split a PPA into its (channel, block, page) coordinates.

        ``block`` is a global block id (unique across channels).
        """
        self._check_ppa(ppa)
        channel = ppa // self._pages_per_channel
        within = ppa % self._pages_per_channel
        block_in_channel = within // self._pages_per_block
        page = within % self._pages_per_block
        block = channel * self._blocks_per_channel + block_in_channel
        return PageAddress(channel=channel, block=block, page=page)

    def compose(self, channel: int, block_in_channel: int, page: int) -> int:
        """Build a PPA from channel-local coordinates."""
        if not 0 <= channel < self._channels:
            raise ValueError(f"channel {channel} out of range")
        if not 0 <= block_in_channel < self._blocks_per_channel:
            raise ValueError(f"block {block_in_channel} out of range")
        if not 0 <= page < self._pages_per_block:
            raise ValueError(f"page {page} out of range")
        return (
            channel * self._pages_per_channel
            + block_in_channel * self._pages_per_block
            + page
        )

    def channel_of(self, ppa: int) -> int:
        """Channel that hosts ``ppa``."""
        self._check_ppa(ppa)
        return ppa // self._pages_per_channel

    def block_of(self, ppa: int) -> int:
        """Global block id that hosts ``ppa``."""
        self._check_ppa(ppa)
        channel = ppa // self._pages_per_channel
        within = ppa % self._pages_per_channel
        return channel * self._blocks_per_channel + within // self._pages_per_block

    def page_offset_of(self, ppa: int) -> int:
        """Page index of ``ppa`` inside its block."""
        self._check_ppa(ppa)
        return (ppa % self._pages_per_channel) % self._pages_per_block

    def block_to_channel(self, block: int) -> int:
        """Channel that hosts global block ``block``."""
        self._check_block(block)
        return block // self._blocks_per_channel

    def die_of(self, ppa: int) -> int:
        """Die (within its channel) that hosts ``ppa``.

        Blocks are striped round-robin across the dies of their channel, so
        consecutively allocated blocks land on different dies and their
        programs can overlap.
        """
        self._check_ppa(ppa)
        block_in_channel = (ppa % self._pages_per_channel) // self._pages_per_block
        return block_in_channel % self._dies_per_channel

    def die_of_block(self, block: int) -> int:
        """Die (within its channel) that hosts global block ``block``."""
        self._check_block(block)
        return (block % self._blocks_per_channel) % self._dies_per_channel

    def first_ppa_of_block(self, block: int) -> int:
        """The first (lowest) PPA inside global block ``block``."""
        self._check_block(block)
        channel = block // self._blocks_per_channel
        block_in_channel = block % self._blocks_per_channel
        return self.compose(channel, block_in_channel, 0)

    def ppas_of_block(self, block: int) -> Iterator[int]:
        """Iterate all PPAs of global block ``block`` in ascending order."""
        start = self.first_ppa_of_block(block)
        for offset in range(self._pages_per_block):
            yield start + offset

    # ------------------------------------------------------------------ #
    # Validation helpers
    # ------------------------------------------------------------------ #
    def _check_ppa(self, ppa: int) -> None:
        if not 0 <= ppa < self._total_pages:
            raise ValueError(f"PPA {ppa} out of range [0, {self._total_pages})")

    def _check_block(self, block: int) -> None:
        if not 0 <= block < self._total_blocks:
            raise ValueError(f"block {block} out of range [0, {self._total_blocks})")
