"""CI perf smoke: fail when replay throughput regresses hard.

Measures one replay configuration (default ``qd8_events``) at a reduced
scale and compares wall-clock IOs/sec against the most recent committed
point in ``BENCH_replay.json``.  Exit 1 when the measurement falls more
than ``--max-regression`` (default 30%) below the baseline::

    PYTHONPATH=src python benchmarks/check_perf_smoke.py --scale 0.25

Calibration notes, so the threshold is read honestly:

* the committed baseline is recorded at scale 1.0; a reduced-scale run
  measures *higher* IOs/sec (less accumulated GC/aging work per
  request), so the headroom is asymmetric in the safe direction —
  the gate trips on structural regressions (losing a fast path,
  accidental O(n^2) reintroduction), not on noise;
* same-machine run-to-run variance is roughly +/-10%, and CI runners
  differ from the machine that recorded the baseline, which is why the
  threshold is 30% rather than 10%.

Tighten ``--max-regression`` only after re-recording the baseline on
the infrastructure that runs this check.

The power-fail machinery (``repro.ssd.recovery``) is exercised by its
own tests and determinism scenario, not here: with no crash timer
attached and no checkpointer installed, the hooks on the replay hot
path reduce to one ``is None`` check per buffer flush and a pre-existing
per-event observer indirection, so a disabled recovery subsystem costs
this gate nothing measurable.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "benchmarks"))

from record_trajectory import CONFIGS, DEFAULT_OUTPUT  # noqa: E402


def baseline_ios_per_sec(trajectory: Path, config: str) -> float:
    history = json.loads(trajectory.read_text())
    if not history.get("runs"):
        raise SystemExit(f"{trajectory} has no recorded runs to compare against")
    last = history["runs"][-1]
    try:
        return float(last["configs"][config]["ios_per_sec"])
    except KeyError as error:
        raise SystemExit(
            f"baseline run {last.get('label')!r} has no {config}/ios_per_sec"
        ) from error


def main(argv: list = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--config", default="qd8_events", choices=sorted(CONFIGS))
    parser.add_argument(
        "--scale", type=float, default=0.25, help="request-count scale factor"
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="fail when measured IOs/sec drops more than this fraction below baseline",
    )
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_OUTPUT, help="trajectory file"
    )
    args = parser.parse_args(argv)

    baseline = baseline_ios_per_sec(args.baseline, args.config)
    floor = baseline * (1.0 - args.max_regression)
    print(f"measuring {args.config} at scale {args.scale} ...", flush=True)
    measured = CONFIGS[args.config](args.scale)["ios_per_sec"]
    verdict = "ok" if measured >= floor else "REGRESSION"
    print(
        f"{args.config}: measured {measured:,.1f} IOs/sec vs committed baseline "
        f"{baseline:,.1f} (floor {floor:,.1f} at -{args.max_regression:.0%}): {verdict}"
    )
    return 0 if measured >= floor else 1


if __name__ == "__main__":
    sys.exit(main())
