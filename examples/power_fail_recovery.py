#!/usr/bin/env python3
"""Crash a simulated SSD mid-workload and watch it recover.

Run with::

    python examples/power_fail_recovery.py [--interval 512] [--crash-at 2600]

LeaFTL keeps its learned mapping table in DRAM; power loss wipes it.  The
durable ground truth is in each flash page's OOB spare area (the reverse
LPA mapping written at program time), so the table is always rebuildable —
the question is how long a rebuild takes.  This example injects a power
failure mid-write-burst and recovers the same crashed device twice:

* a full OOB scan — read every programmed page's spare area;
* checkpoint + replay — restore the last flash checkpoint of the learned
  segments, then re-learn only the pages programmed since.

Both must agree bit-exactly with the durability oracle (the last-acked
location of every LPA, captured at the instant of the crash).
"""

from __future__ import annotations

import argparse

from repro.analysis.report import print_report, render_table
from repro.experiments.recovery import RecoveryScenario, run_crash_recovery


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--interval", type=int, default=512,
        help="checkpoint interval in data pages (default 512)",
    )
    parser.add_argument(
        "--crash-at", type=int, default=2600,
        help="crash at the N-th host request issue (default 2600)",
    )
    parser.add_argument("--seed", type=int, default=20)
    args = parser.parse_args()

    scenario = RecoveryScenario(crash_after_issues=args.crash_at, seed=args.seed)

    print("crashing mid-burst, recovering via full OOB scan ...")
    scan = run_crash_recovery(scenario, mode="oob_scan")
    print(f"crashing again, recovering via checkpoint+replay "
          f"(interval={args.interval} pages) ...")
    ckpt = run_crash_recovery(
        scenario, interval_pages=args.interval, mode="checkpoint_replay"
    )

    rows = []
    for outcome in (scan, ckpt):
        rows.append(
            [
                outcome.mode,
                round(outcome.recovery_time_us / 1000.0, 2),
                outcome.flash_reads,
                outcome.checkpoint_pages_read,
                outcome.replayed_pages,
                outcome.recovered_lpas,
                outcome.checkpoint_page_writes,
                round(outcome.write_amplification, 3),
            ]
        )
    print_report(
        render_table(
            ["mode", "recovery ms", "OOB reads", "ckpt reads",
             "replayed", "LPAs", "ckpt writes", "WAF"],
            rows,
            title="Power-fail recovery (every acked page verified bit-exact)",
        )
    )
    speedup = scan.recovery_time_us / max(ckpt.recovery_time_us, 1e-9)
    print(f"checkpoint+replay recovered {speedup:.1f}x faster than the full scan")


if __name__ == "__main__":
    main()
