#!/usr/bin/env python3
"""Guided tour of the device telemetry layer (``repro.obs``).

Run with::

    PYTHONPATH=src python examples/telemetry_tour.py [--out telemetry/]

A simulator answers "how much" with its end-of-run counters; telemetry
answers "when" and "where".  This example runs the GC-contended
two-tenant verify scenario with all three collectors enabled and walks
through what each one saw:

* **Tracer** — per-request lifecycle spans, NAND bus occupations and
  the GC pipeline, exported as Chrome trace-event JSON.  Open the
  written ``trace.json`` at https://ui.perfetto.dev to scrub through
  the run on the simulated-microsecond clock.
* **MetricsSampler** — gauge time-series on a fixed sim-time interval;
  the free-block dip and channel-busy spike of a GC burst line up with
  the latency spike the tenants observed.
* **Counter registry** — every ``*Stats`` dataclass flattened into one
  namespaced snapshot with a delta API; the tour prints the counters
  that moved during the measured phase.

Everything here is observational: running this with telemetry on
produces bit-identical ``repro.verify`` digests to a plain run.
"""

from __future__ import annotations

import argparse
import os

from repro.experiments.multi_tenant import (
    build_tenant_host,
    reader_tenant,
    writer_tenant,
)
from repro.obs import attach_telemetry, device_snapshot
from repro.verify import VERIFY_ARBITER, verify_scenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default="telemetry",
        help="directory for trace/metrics/counters artifacts (default telemetry/)",
    )
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=1234)
    args = parser.parse_args()

    scenario = verify_scenario(seed=args.seed, scale=args.scale)
    ssd, host = build_tenant_host(scenario, VERIFY_ARBITER)
    telemetry = attach_telemetry(ssd, "on", host=host)
    before = device_snapshot(ssd, host=host)

    print("== Running the GC-contended two-tenant scenario (telemetry on) ==")
    host.run([reader_tenant(scenario), writer_tenant(scenario)])

    tracer = telemetry.tracer
    print(f"\n== Tracer: {tracer.recorded} records "
          f"({tracer.dropped} dropped by the ring buffer) ==")
    requests = []
    open_spans = {}
    for event in tracer.trace_events():
        if event["ph"] == "B" and event["name"] in ("R", "W"):
            open_spans[event["tid"]] = event
        elif event["ph"] == "E" and event["tid"] in open_spans:
            begin = open_spans.pop(event["tid"])
            requests.append((event["ts"] - begin["ts"], begin))
    for duration, begin in sorted(requests, reverse=True, key=lambda r: r[0])[:3]:
        print(f"  longest {begin['name']} request: {duration:.0f} us "
              f"at t={begin['ts']:.0f} us ({begin['args']})")

    sampler = telemetry.sampler
    print(f"\n== MetricsSampler: {sampler.samples} samples every "
          f"{sampler.interval_us:.0f} sim-us ==")
    free = sampler.series("free_blocks")
    busy = sampler.series("ch0_busy_frac")
    print(f"  free blocks: start {free[0]:.0f}, min {min(free):.0f}, "
          f"end {free[-1]:.0f}")
    print(f"  ch0 busy fraction: peak {max(busy):.2f}")
    print(f"  final sampled WAF {sampler.last('waf'):.3f} == "
          f"scalar stats WAF {ssd.stats.write_amplification:.3f}")

    after = device_snapshot(ssd, host=host)
    moved = {
        key: value for key, value in after.delta(before).as_dict().items()
        if value != 0.0 and not key.endswith("_us")
    }
    print(f"\n== Counter registry: {len(moved)} counters moved ==")
    for key in list(sorted(moved))[:12]:
        print(f"  {key:40s} {moved[key]:+.0f}")
    if len(moved) > 12:
        print(f"  ... and {len(moved) - 12} more")

    os.makedirs(args.out, exist_ok=True)
    written = telemetry.write_artifacts(args.out)
    print("\n== Artifacts ==")
    for name, path in sorted(written.items()):
        print(f"  {name:12s} {path}")
    print("\nLoad the trace at https://ui.perfetto.dev — requests on "
          "io-slot tracks, NAND ops on chN tracks, GC on the gc track.")


if __name__ == "__main__":
    main()
