#!/usr/bin/env python3
"""Multi-page commands: batched translation, striped issue, open-loop replay.

Run with::

    python examples/multi_page_commands.py

Three demonstrations on a small LeaFTL device:

1. **Batched translation** — a contiguous 8-page read is resolved by a
   single learned-segment walk (`FTL.translate_range`), so the lookup
   counter grows by 1 where the old per-page path charged 8.

2. **Striped NAND issue** — the pages of one multi-page command are split
   into per-channel chunks and issued concurrently through the NAND
   scheduler, so a read striped over k channels completes in roughly one
   flash read time instead of k.  The table compares issuing the same span
   as one multi-page command vs. as single-page commands back to back.

3. **Open-loop replay** — requests are admitted at their trace timestamps
   (scaled by ``SSDOptions.time_scale``) whether or not earlier requests
   completed, so latency is measured against *arrival* times.  Tightening
   the inter-arrival spacing pushes the device past saturation and the
   backlog (max outstanding) grows.
"""

from __future__ import annotations

from repro import DRAMBudget, LeaFTL, LeaFTLConfig, SSDConfig, SimulatedSSD
from repro.ssd.ssd import SSDOptions
from repro.workloads.trace import IORequest, Trace


def build_ssd(**options) -> SimulatedSSD:
    config = SSDConfig.tiny()
    ftl = LeaFTL(LeaFTLConfig(gamma=4, compaction_interval_writes=50_000))
    return SimulatedSSD(
        config,
        ftl,
        dram_budget=DRAMBudget(dram_bytes=config.dram_size),
        options=SSDOptions(**options),
    )


def fill(ssd: SimulatedSSD, footprint: int) -> None:
    for lpa in range(0, footprint, 64):
        ssd.process("W", lpa, 64)
    ssd.flush()


def demo_batched_translation() -> None:
    print("=== 1. batched translation: one segment walk per run ===")
    ssd = build_ssd()
    fill(ssd, footprint=8192)
    lpa = 512
    before = ssd.ftl.stats.lookups
    results = ssd.ftl.translate_range(lpa, 8)
    print(f"translate_range({lpa}, 8): resolved {sum(r.ppa is not None for r in results)}"
          f"/8 pages, lookup counter grew by {ssd.ftl.stats.lookups - before} (not 8)")


def demo_striped_issue() -> None:
    print("\n=== 2. striped issue: one k-channel command vs k serial commands ===")
    # The write path fills one 64-page flash block per buffer flush and the
    # allocator rotates channels per block, so a span crossing 4 block
    # boundaries is striped over the tiny config's 4 channels.
    span = 256
    header = f"{'issue style':>28} {'completion us':>14}"
    print(header)
    print("-" * len(header))
    for label, requests in (
        ("1 multi-page command", [("R", 0, span)]),
        ("serial single-page", [("R", lpa, 1) for lpa in range(span)]),
    ):
        ssd = build_ssd()
        fill(ssd, footprint=8192)
        # Drop DRAM copies so every page really goes to flash.
        for lpa in range(span):
            ssd.cache.invalidate(lpa)
        start = ssd.now_us
        for op, lpa, npages in requests:
            ssd.submit(op, lpa, npages)
        print(f"{label:>28} {ssd.now_us - start:>14.1f}")


def demo_open_loop() -> None:
    print("\n=== 3. open-loop replay: latency vs arrival time ===")
    header = (f"{'interarrival us':>16} {'read mean us':>13} "
              f"{'read p99 us':>12} {'max outstanding':>16}")
    print(header)
    print("-" * len(header))
    for interarrival in (100.0, 25.0, 10.0, 2.0):
        ssd = build_ssd(replay_mode="open")
        fill(ssd, footprint=50_000)
        ssd.begin_measurement()
        requests = [
            IORequest("R", (lpa * 97) % 50_000, 4, timestamp_us=i * interarrival)
            for i, lpa in enumerate(range(2000))
        ]
        stats = ssd.run(Trace("open-loop", requests))
        print(f"{interarrival:>16.1f} {stats.read_latency.mean_us:>13.1f} "
              f"{stats.read_latency.percentile(99):>12.1f} "
              f"{stats.max_outstanding_requests:>16d}")


def main() -> None:
    demo_batched_translation()
    demo_striped_issue()
    demo_open_loop()


if __name__ == "__main__":
    main()
