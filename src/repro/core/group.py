"""Per-group log-structured segment management (Sections 3.4 and 3.7).

The LPA space is partitioned into groups of 256 contiguous LPAs.  Each group
owns a small log-structured collection of learned segments organised in
levels — level 0 holds the most recently learned segments, lower levels hold
older ones — plus a Conflict Resolution Buffer for its approximate segments.

This module implements Algorithm 1 (``seg_update``, ``lookup``,
``seg_compact``) and Algorithm 2 (``has_lpa``, ``get_bitmap``, ``seg_merge``)
of the paper.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass
from typing import List, Optional

from repro.core.crb import ConflictResolutionBuffer
from repro.core.level import Level
from repro.core.plr import LearnedSegment
from repro.core.segment import (
    CHECKPOINT_SEGMENT_BYTES,
    GROUP_SIZE,
    SEGMENT_BYTES,
    Segment,
)


@dataclass(slots=True)
class GroupLookup:
    """Result of a group-level LPA lookup."""

    ppa: Optional[int]
    levels_searched: int
    segment: Optional[Segment] = None

    @property
    def found(self) -> bool:
        return self.ppa is not None


class LPAGroup:
    """The learned mapping state of one 256-LPA group."""

    def __init__(self, group_base: int, group_size: int = GROUP_SIZE) -> None:
        self.group_base = group_base
        self.group_size = group_size
        self._levels: List[Level] = []
        self.crb = ConflictResolutionBuffer()
        #: Bumped by every mutating entry point (``update``/``compact``);
        #: keys the memoized DRAM-footprint computation below.  The sampled
        #: footprint is digest-pinned, so the cache must only ever skip
        #: recomputation, never change the result.
        self._mutations = 0
        self._memory_key = (-1, 0)
        self._memory_value = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def level_count(self) -> int:
        return len(self._levels)

    def levels(self) -> List[Level]:
        return list(self._levels)

    def segment_count(self) -> int:
        count = 0
        for level in self._levels:
            count += len(level)
        return count

    def segments(self) -> List[Segment]:
        """All segments, topmost level first."""
        result: List[Segment] = []
        for level in self._levels:
            result.extend(level.segments())
        return result

    def memory_bytes(self, level_overhead_bytes: int = 0) -> int:
        """DRAM footprint: 8 bytes per segment + CRB + per-level overhead.

        Memoized on the group's mutation counter: the footprint is sampled
        after every flush across *all* groups, but a flush only mutates the
        few groups its pages fall in, so untouched groups return the cached
        value.
        """
        key = (self._mutations, level_overhead_bytes)
        if key == self._memory_key:
            return self._memory_value
        value = (
            self.segment_count() * SEGMENT_BYTES
            + self.crb.size_bytes()
            + len(self._levels) * level_overhead_bytes
        )
        self._memory_key = key
        self._memory_value = value
        return value

    # ------------------------------------------------------------------ #
    # Membership (Algorithm 2, has_lpa)
    # ------------------------------------------------------------------ #
    def has_lpa(self, segment: Segment, lpa: int) -> bool:
        """Does ``segment`` currently encode a mapping for ``lpa``?"""
        if not segment.covers(lpa):
            return False
        if segment.accurate:
            return segment.has_lpa_accurate(lpa)
        return self.crb.owner(lpa) is segment

    def covered_lpas(self, segment: Segment) -> List[int]:
        """The LPAs ``segment`` currently encodes (metadata or CRB driven)."""
        if segment.is_removable:
            return []
        if segment.accurate:
            return segment.covered_lpas_accurate_list()
        return [lpa for lpa in self.crb.lpas_of(segment) if segment.covers(lpa)]

    # ------------------------------------------------------------------ #
    # Update path (Algorithm 1, seg_update)
    # ------------------------------------------------------------------ #
    def update(self, learned: LearnedSegment) -> None:
        """Insert a freshly learned segment at the topmost level."""
        segment = learned.segment
        if segment.group_base != self.group_base:
            raise ValueError("segment belongs to a different group")
        self._mutations += 1
        if not segment.accurate:
            self.crb.insert_segment(segment, learned.lpas)
        self._insert_at_level(segment, 0)

    def _level_at(self, index: int) -> Level:
        while len(self._levels) <= index:
            self._levels.append(Level())
        return self._levels[index]

    def _insert_at_level(self, segment: Segment, level_index: int) -> None:
        """Algorithm 1, lines 1-16: insert + merge + demote victims."""
        level = self._level_at(level_index)
        level.insert(segment)

        length = segment.length
        end_lpa = segment.start_lpa + (length if length > 0 else 0)
        for victim in level.overlapping(segment.start_lpa, end_lpa):
            if victim is segment:
                continue
            self._merge(segment, victim)
            if victim.is_removable:
                level.remove(victim)
                if not victim.accurate:
                    self.crb.remove_segment(victim)
            elif segment.overlaps(victim):
                # The victim still holds valid LPAs inside the new segment's
                # range: demote it so the newer segment shadows it.
                level.remove(victim)
                self._demote(victim, level_index + 1)
            else:
                # Trimmed but disjoint now; its start may have moved, so
                # restore the level's sort order.
                level.reposition(victim)

    def _demote(self, victim: Segment, target_index: int) -> None:
        """Push a victim one level down, creating a level to avoid recursion."""
        if target_index >= len(self._levels):
            self._level_at(target_index).insert(victim)
            return
        target = self._levels[target_index]
        if target.overlaps_range(victim.start_lpa, victim.end_lpa):
            # Algorithm 1, line 15-16: never merge recursively — give the
            # victim its own level right above the conflicting one.
            fresh = Level()
            fresh.insert(victim)
            self._levels.insert(target_index, fresh)
        else:
            target.insert(victim)

    # ------------------------------------------------------------------ #
    # Merge (Algorithm 2)
    # ------------------------------------------------------------------ #
    def _merge(self, new: Segment, old: Segment) -> None:
        """Remove from ``old`` every LPA that ``new`` now encodes.

        The paper's Algorithm 2 materializes per-LPA bitmaps over the union
        range; building the covered-LPA sets directly from segment metadata
        (stride lattice for accurate segments, CRB entries for approximate
        ones) computes the same remainder without the per-LPA ``has_lpa``
        scans, and produces the identical trimmed ``(start_lpa, length)``
        state — including the stride-phase behaviour of trimmed accurate
        segments, which is anchored at the new ``start_lpa`` in both forms.

        When the *new* segment is accurate its membership is an O(1) lattice
        test, so the remainder needs no set materialization at all: an
        accurate victim only needs its surviving endpoints (scanned from both
        ends of its stride lattice), and an approximate victim filters its
        CRB list directly.  Both branches compute exactly the endpoints the
        set difference would.
        """
        if new.accurate:
            n_start = new.start_lpa
            n_len = new.length
            n_end = n_start + n_len if n_len > 0 else n_start
            n_stride = new.stride
            if old.accurate:
                o_stride = old.stride
                first = old.start_lpa
                o_len = old.length
                o_last = (
                    first + (o_len // o_stride) * o_stride if o_len > 0 else first
                )
                while (
                    first <= o_last
                    and n_start <= first <= n_end
                    and (first - n_start) % n_stride == 0
                ):
                    first += o_stride
                if first > o_last:
                    old.mark_removable()
                    return
                last = o_last
                while (
                    n_start <= last <= n_end and (last - n_start) % n_stride == 0
                ):
                    last -= o_stride
                old.start_lpa = first
                old.length = last - first
                return
            remaining_list = [
                lpa
                for lpa in self.covered_lpas(old)
                if not (
                    n_start <= lpa <= n_end and (lpa - n_start) % n_stride == 0
                )
            ]
            if not remaining_list:
                old.mark_removable()
                return
            old.start_lpa = remaining_list[0]
            old.length = remaining_list[-1] - remaining_list[0]
            self.crb.retain_lpas(old, remaining_list)
            return
        remaining = set(self.covered_lpas(old))
        remaining.difference_update(self.covered_lpas(new))
        if not remaining:
            old.mark_removable()
            return
        first = min(remaining)
        last = max(remaining)
        old.start_lpa = first
        old.length = last - first
        if not old.accurate:
            self.crb.retain_lpas(old, remaining)

    # ------------------------------------------------------------------ #
    # Lookup (Algorithm 1, lookup)
    # ------------------------------------------------------------------ #
    def lookup(self, lpa: int) -> GroupLookup:
        """Top-down search for the newest segment that encodes ``lpa``."""
        for depth, level in enumerate(self._levels, start=1):
            segment = level.find_covering(lpa)
            if segment is not None and self.has_lpa(segment, lpa):
                return GroupLookup(
                    ppa=segment.predict(lpa), levels_searched=depth, segment=segment
                )
        return GroupLookup(ppa=None, levels_searched=len(self._levels))

    def lookup_range(self, start_lpa: int, end_lpa: int) -> List[GroupLookup]:
        """Resolve every LPA of ``[start_lpa, end_lpa]`` with one level walk.

        Equivalent to calling :meth:`lookup` per page but each level is
        visited once for the whole run: the segments intersecting the range
        are located with one binary search per level, and every LPA they
        encode resolves at that depth.  Pages still unresolved continue to
        the next level, so newer (higher-level) segments shadow older ones
        exactly as in the per-page walk.
        """
        if end_lpa < start_lpa:
            raise ValueError("end_lpa must not precede start_lpa")
        count = end_lpa - start_lpa + 1
        results: List[Optional[GroupLookup]] = [None] * count
        unresolved = count
        ceil = math.ceil
        for depth, level in enumerate(self._levels, start=1):
            if unresolved == 0:
                break
            for segment in level.overlapping(start_lpa, end_lpa):
                low = segment.start_lpa
                if low < start_lpa:
                    low = start_lpa
                high = segment.end_lpa
                if high > end_lpa:
                    high = end_lpa
                # Enumerate only the LPAs this segment actually encodes
                # instead of probing every LPA of the clipped interval.
                if segment.accurate:
                    seg_start = segment.start_lpa
                    if segment.length <= 0:
                        members = (seg_start,) if low <= seg_start <= high else ()
                    else:
                        stride = segment.stride
                        offset = low - seg_start
                        phase = offset % stride
                        if phase:
                            low += stride - phase
                        members = range(low, high + 1, stride)
                else:
                    members = [
                        lpa
                        for lpa in self.crb.lpas_of(segment)
                        if low <= lpa <= high
                    ]
                slope = segment.slope
                intercept = segment.intercept
                group_base = segment.group_base
                for lpa in members:
                    index = lpa - start_lpa
                    if results[index] is None:
                        results[index] = GroupLookup(
                            ppa=int(ceil(slope * (lpa - group_base) + intercept)),
                            levels_searched=depth,
                            segment=segment,
                        )
                        unresolved -= 1
        miss = GroupLookup(ppa=None, levels_searched=len(self._levels))
        return [result if result is not None else miss for result in results]

    # ------------------------------------------------------------------ #
    # Compaction (Algorithm 1, seg_compact)
    # ------------------------------------------------------------------ #
    def compact(self) -> None:
        """Merge upper levels downward until no further space can be reclaimed."""
        self._mutations += 1
        guard = len(self._levels) + self.segment_count() + 4
        while len(self._levels) > 1 and guard > 0:
            guard -= 1
            before = (len(self._levels), self.segment_count())
            top = self._levels.pop(0)
            for segment in top.segments():
                top.remove(segment)
                self._insert_at_level(segment, 0)
            self._drop_empty_levels()
            after = (len(self._levels), self.segment_count())
            if after >= before:
                break

    def _drop_empty_levels(self) -> None:
        self._levels = [level for level in self._levels if not level.is_empty]

    # ------------------------------------------------------------------ #
    # Checkpoint serialization (power-fail recovery)
    # ------------------------------------------------------------------ #
    def serialize_checkpoint(self) -> bytes:
        """Encode the group's levels and CRB for a mapping checkpoint.

        Layout: ``<H`` level count, then per level ``<H`` segment count and
        per segment its 12-byte lossless encoding followed by ``<H`` CRB
        entry count (always 0 for accurate segments) and the owned LPAs as
        ``<H`` group-relative offsets.  Levels are written topmost first so
        restoration rebuilds the shadowing order exactly.
        """
        parts = [struct.pack("<H", len(self._levels))]
        append = parts.append
        base = self.group_base
        for level in self._levels:
            segments = level.segments()
            append(struct.pack("<H", len(segments)))
            for segment in segments:
                append(segment.to_checkpoint_bytes())
                if segment.accurate:
                    append(struct.pack("<H", 0))
                else:
                    lpas = self.crb.lpas_of(segment)
                    append(struct.pack("<H", len(lpas)))
                    for lpa in lpas:
                        append(struct.pack("<H", lpa - base))
        return b"".join(parts)

    @classmethod
    def from_checkpoint(
        cls, payload: bytes, group_base: int, group_size: int = GROUP_SIZE
    ) -> "LPAGroup":
        """Rebuild a group from :meth:`serialize_checkpoint` output.

        Segments are re-inserted level by level through the plain sorted
        insert (they were serialized non-overlapping within each level, so
        no merge logic runs) and approximate segments re-register their CRB
        ownership.  CRB LPA sets are disjoint in any valid group, so the
        insertion order cannot change ownership.
        """
        group = cls(group_base, group_size)
        offset = 0
        (level_count,) = struct.unpack_from("<H", payload, offset)
        offset += 2
        for _ in range(level_count):
            (segment_count,) = struct.unpack_from("<H", payload, offset)
            offset += 2
            level = Level()
            for _ in range(segment_count):
                segment = Segment.from_checkpoint_bytes(
                    payload[offset : offset + CHECKPOINT_SEGMENT_BYTES], group_base
                )
                offset += CHECKPOINT_SEGMENT_BYTES
                (crb_count,) = struct.unpack_from("<H", payload, offset)
                offset += 2
                if crb_count:
                    lpas = [
                        group_base + struct.unpack_from("<H", payload, offset + 2 * i)[0]
                        for i in range(crb_count)
                    ]
                    offset += 2 * crb_count
                    group.crb.insert_segment(segment, lpas)
                level.insert(segment)
            group._levels.append(level)
        if offset != len(payload):
            raise ValueError(
                f"checkpoint payload has {len(payload) - offset} trailing bytes"
            )
        # Invalidate the memoized footprint: the restored group must report
        # its own (recomputed) DRAM bytes, not a stale cached value.
        group._mutations += 1
        return group

    # ------------------------------------------------------------------ #
    # Validation (used by tests)
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check the structural invariants of the group."""
        for level in self._levels:
            level.validate_sorted_non_overlapping()
            for segment in level:
                assert not segment.is_removable, "removable segment left in a level"
                assert segment.group_base == self.group_base
