"""Differential bit-exactness goldens for the hot-path data layouts.

The flat-array ``FlashArray`` (bitmap page state, lazy OOB synthesis),
the calendar-queue ``EventLoop`` with batched dispatch, and the
vectorized/analytic segment paths are all pure representation changes:
the PR that introduced them promised byte-identical behaviour.  These
tests pin that promise to concrete digests recorded on the pre-overhaul
tree, so any future "optimization" that changes event ordering, float
operation sequences, GC victim choice or stats accounting — however
slightly — fails loudly instead of silently drifting the science.

Two scenarios cover the two engines the goldens care about:

* the stock ``repro.verify`` multi-tenant run (background GC, WRR
  arbitration, event engine) at scale 0.25, and
* a small synchronous-GC device driven hard enough that collections
  fire and write amplification climbs well above 1 (the layout most
  sensitive to the lazy-OOB and valid-page-counter rewrites).

If a deliberate semantic change lands (new scheduling policy, different
latency model), re-record the constants below in that PR and say so in
its description — they are expected values, not checksums of the code.
"""

from repro.experiments.common import (
    ExperimentSetup,
    build_ssd,
    precondition,
    steady_state_workload,
)
from repro.verify import EventTraceDigest, run_once, stats_digest

# Golden digests recorded before the flat-array/calendar-queue overhaul
# (PR 6 tree) and required to hold forever after it.  The *stats* digests
# were re-recorded when SSDStats.summary() gained its full counter set
# (WAF inputs, durability counters, ...) — a pure reporting change; the
# event counts and event digests are the originals and did not move.
VERIFY_EVENTS = 1380
VERIFY_EVENT_DIGEST = (
    "556fc4383ddfa9528115f8177041028c4d090c588260961dab61ec71e9c7a4c3"
)
VERIFY_STATS_DIGEST = (
    "88b35c9d7bf62870e1e0da82ae22574cabde157c9c841b35e5a579808dabd5d0"
)

GC_SYNC_EVENTS = 6036
GC_SYNC_EVENT_DIGEST = (
    "416ab881a529b2a0196077d951c69619062704242acfe86b570b73f676da9465"
)
GC_SYNC_STATS_DIGEST = (
    "2e02cb969f8c9336ccbcfb33ff2a1f6e8efad77e5d050cba1917853e4610d4b3"
)


class TestVerifyScenarioGolden:
    """The stock multi-tenant verify run must keep its exact trace."""

    def test_event_and_stats_digests_pinned(self):
        report = run_once(seed=1234, scale=0.25)
        assert report.events_observed == VERIFY_EVENTS
        assert report.event_digest == VERIFY_EVENT_DIGEST
        assert report.stats_digest == VERIFY_STATS_DIGEST


class TestSyncGCGolden:
    """A GC-heavy synchronous device pins the flash-layout hot paths."""

    def _run(self):
        setup = ExperimentSetup(
            capacity_bytes=32 * 1024 * 1024,
            channels=4,
            dies_per_channel=2,
            pages_per_block=64,
            dram_bytes=512 * 1024,
            queue_depth=8,
            gc_mode="sync",
            warmup=False,
        )
        ssd = build_ssd("LeaFTL", setup)
        trace = EventTraceDigest()
        ssd.event_observer = trace.observe
        footprint = precondition(ssd, seed=7)
        requests = steady_state_workload(footprint, 3000, seed=13, read_ratio=0.4)
        ssd.run(requests)
        ssd.quiesce()
        return ssd, trace

    def test_gc_heavy_trace_pinned(self):
        ssd, trace = self._run()
        summary = ssd.stats.summary()
        # The scenario must actually stress GC, or the golden proves little:
        # synchronous collections fired and relocated enough valid pages to
        # push write amplification well above 1.
        assert summary["gc_invocations"] > 0
        assert summary["write_amplification"] > 1.5
        assert trace.events_observed == GC_SYNC_EVENTS
        assert trace.hexdigest() == GC_SYNC_EVENT_DIGEST
        assert stats_digest(summary) == GC_SYNC_STATS_DIGEST
