"""Markdown renderers for the analyzer and differ reports.

The JSON reports from :mod:`repro.obs.analyze` are the machine-readable
artifacts; this module turns them into the human-readable ``report.md`` /
``diff.md`` companions.  Rendering is deliberately dumb — it walks the
already-deterministic report structures in order and formats floats with
fixed precision, so same-seed runs render byte-identical markdown.
"""

from __future__ import annotations

from typing import Any, List, Mapping, Optional

from repro.obs.analyze import COMPONENT_LABELS


def _us(value: float) -> str:
    return f"{value:.3f}"


def _pct(value: float) -> str:
    return f"{value * 100.0:.1f}%"


def _label(component: str) -> str:
    return COMPONENT_LABELS.get(component, component)


def _table(header: List[str], rows: List[List[str]]) -> List[str]:
    lines = ["| " + " | ".join(header) + " |"]
    lines.append("|" + "|".join(" --- " for _ in header) + "|")
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return lines


def _render_attribution(requests: Mapping[str, Any]) -> List[str]:
    lines: List[str] = ["## Latency attribution", ""]
    total = requests.get("requests", 0)
    if not total:
        lines.append("No completed request spans in the trace.")
        lines.append("")
        return lines
    lines.append(f"{total} completed requests.")
    lines.append("")
    for op, table in requests.get("ops", {}).items():
        op_name = {"R": "Reads", "W": "Writes"}.get(op, f"Op {op}")
        lines.append(f"### {op_name} ({table['count']} requests)")
        lines.append("")
        levels = table.get("levels", {})
        for level_name, level in levels.items():
            components = level.get("components", {})
            title = (
                "All requests (mean)"
                if level_name == "all"
                else f"{level_name} cohort (latency >= {_us(level['latency_us'])} us, "
                f"{level['count']} requests)"
            )
            lines.append(f"**{title}** — dominant: {_label(level.get('dominant', ''))}")
            lines.append("")
            rows = [
                [_label(key), _us(entry["mean_us"]), _pct(entry["share"])]
                for key, entry in components.items()
                if entry["mean_us"] != 0.0
            ]
            lines.extend(_table(["component", "mean us", "share"], rows))
            lines.append("")
    return lines


def _render_tail_blame(blame: Mapping[str, Any]) -> List[str]:
    lines: List[str] = ["## Tail blame", ""]
    if not blame.get("top_k"):
        lines.append("No requests to blame.")
        lines.append("")
        return lines
    lines.append(
        f"Top {blame['top_k']} slowest requests, clustered by dominant component:"
    )
    lines.append("")
    rows = [
        [
            _label(cluster["component"]),
            str(cluster["count"]),
            _us(cluster["mean_latency_us"]),
            _pct(cluster["mean_share"]),
            ",".join(cluster["ops"]),
            ",".join(cluster["queues"]) or "-",
        ]
        for cluster in blame.get("clusters", [])
    ]
    lines.extend(
        _table(
            ["dominant component", "requests", "mean latency us", "mean share", "ops", "queues"],
            rows,
        )
    )
    lines.append("")
    return lines


def _render_recovery(phases: List[Mapping[str, Any]]) -> List[str]:
    if not phases:
        return []
    lines: List[str] = ["## Recovery", ""]
    for phase in phases:
        extras = ", ".join(
            f"{key}={phase[key]}"
            for key in sorted(phase)
            if key not in ("phase", "start_us", "makespan_us")
        )
        line = f"- `{phase['phase']}`: {_us(phase['makespan_us'])} us"
        if extras:
            line += f" ({extras})"
        lines.append(line)
    lines.append("")
    return lines


def _render_gc(stages: Mapping[str, Mapping[str, float]]) -> List[str]:
    if not stages:
        return []
    lines: List[str] = ["## Background GC stages", ""]
    rows = [
        [name, str(int(entry["count"])), _us(entry["total_us"])]
        for name, entry in stages.items()
    ]
    lines.extend(_table(["stage", "spans", "total us"], rows))
    lines.append("")
    return lines


def _render_scorecard(card: Mapping[str, Any]) -> List[str]:
    lines: List[str] = ["## Namespace health", ""]
    namespaces = card.get("namespaces", {})
    if not namespaces:
        lines.append("No per-namespace counters in the snapshot.")
        lines.append("")
    else:
        lines.append(f"Error budget: {_pct(card.get('error_budget', 0.0))} of requests.")
        lines.append("")
        rows = []
        for name, entry in namespaces.items():
            rows.append(
                [
                    name,
                    entry["status"],
                    str(int(entry["completed"])),
                    str(int(entry["slo_violations"])),
                    f"{entry['burn_rate']:.2f}",
                    _us(entry["mean_queue_wait_us"]),
                    _us(entry["read_p99_us"]),
                    _us(entry["write_p99_us"]),
                ]
            )
        lines.extend(
            _table(
                [
                    "namespace",
                    "status",
                    "completed",
                    "violations",
                    "burn rate",
                    "mean queue wait us",
                    "read p99 us",
                    "write p99 us",
                ],
                rows,
            )
        )
        lines.append("")
        for name, entry in namespaces.items():
            windows = entry.get("violation_windows") or []
            if not windows:
                continue
            lines.append(f"Violation windows for `{name}` (sim-time):")
            for window in windows[:8]:
                lines.append(
                    f"- [{_us(window['start_us'])}, {_us(window['end_us'])}) us: "
                    f"{int(window['violations'])} violations"
                )
            if len(windows) > 8:
                lines.append(f"- ... {len(windows) - 8} more windows")
            lines.append("")
    saturation = card.get("saturation")
    if saturation:
        lines.append("Device saturation (from the metrics series):")
        for key in sorted(saturation):
            value = saturation[key]
            if isinstance(value, dict):
                inner = ", ".join(f"{k}={v:g}" for k, v in sorted(value.items()))
                lines.append(f"- {key}: {inner}")
            elif isinstance(value, float):
                lines.append(f"- {key}: {value:.4f}")
            else:
                lines.append(f"- {key}: {value}")
        lines.append("")
    return lines


def render_report(report: Mapping[str, Any]) -> str:
    """Render an :func:`repro.obs.analyze.analyze_artifacts` report."""
    lines: List[str] = ["# Device report", ""]
    lines.extend(_render_attribution(report.get("requests", {})))
    lines.extend(_render_tail_blame(report.get("tail_blame", {})))
    lines.extend(_render_recovery(report.get("recovery", [])))
    lines.extend(_render_gc(report.get("gc_stages", {})))
    scorecard = report.get("scorecard")
    if scorecard is not None:
        lines.extend(_render_scorecard(scorecard))
    return "\n".join(lines).rstrip() + "\n"


def _rel_cell(rel: Optional[float]) -> str:
    return "new" if rel is None else _pct(rel)


def render_diff(diff: Mapping[str, Any]) -> str:
    """Render a :func:`repro.obs.analyze.diff_runs` report."""
    lines: List[str] = ["# Run diff", ""]
    threshold = diff.get("threshold", 0.0)
    lines.append(f"Relative-change threshold: {_pct(threshold)}.")
    lines.append("")
    counters = diff.get("counters", {})
    changed = counters.get("changed", [])
    lines.append("## Counters")
    lines.append("")
    if not changed:
        lines.append(
            f"No counter moved past the threshold "
            f"({counters.get('compared', 0)} compared)."
        )
        lines.append("")
    else:
        rows = [
            [
                f"`{row['counter']}`",
                f"{row['base']:g}",
                f"{row['current']:g}",
                f"{row['delta']:+g}",
                _rel_cell(row["rel"]),
            ]
            for row in changed
        ]
        lines.extend(_table(["counter", "base", "current", "delta", "rel"], rows))
        lines.append("")
    metrics = diff.get("metrics", {})
    lines.append("## Metric series")
    lines.append("")
    if not metrics.get("aligned_samples"):
        lines.append("No aligned metric samples to compare.")
        lines.append("")
    elif not metrics.get("changed"):
        lines.append(
            f"No series mean moved past the threshold "
            f"({metrics['aligned_samples']} aligned samples)."
        )
        lines.append("")
    else:
        rows = [
            [
                f"`{row['column']}`",
                f"{row['base_mean']:.4f}",
                f"{row['current_mean']:.4f}",
                f"{row['delta_mean']:+.4f}",
                _rel_cell(row["rel"]),
                f"{row['max_abs_diff']:.4f}",
            ]
            for row in metrics["changed"]
        ]
        lines.extend(
            _table(
                ["series", "base mean", "current mean", "delta", "rel", "max abs diff"],
                rows,
            )
        )
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
