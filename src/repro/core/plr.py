"""Greedy maximum-error-bounded piecewise linear regression (Section 3.1-3.3).

LeaFTL learns LPA→PPA mappings with the greedy streaming PLR algorithm of
Xie et al. [64]: points are consumed in ascending LPA order while a *cone* of
feasible slopes (anchored at the segment's first point) is narrowed; when a
new point would empty the cone, the current segment is closed and a new one
starts.  Every point of a closed segment is guaranteed to be within
``[-gamma, +gamma]`` of the fitted line.

Because the on-device segment encoding rounds the slope to float16 and the
prediction applies a ceiling, the learner *verifies* every candidate segment
against the exact :meth:`repro.core.segment.Segment.predict` semantics before
emitting it, and classifies it as

* **accurate** when every covered LPA predicts its exact PPA,
* **approximate** when every prediction is within ``gamma``,
* otherwise the candidate is split and relearned (a rare fallback that keeps
  the error bound a hard guarantee rather than a statistical one).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.segment import GROUP_SIZE, Segment, group_base_of


@dataclass
class LearnedSegment:
    """A freshly learned segment plus the LPAs it covers.

    The covered-LPA list is needed once, at insertion time: approximate
    segments register their LPAs in the Conflict Resolution Buffer.  It is
    not part of the segment's 8-byte footprint.
    """

    segment: Segment
    lpas: List[int]

    @property
    def accurate(self) -> bool:
        return self.segment.accurate

    def __len__(self) -> int:
        return len(self.lpas)


class PLRLearner:
    """Learns index segments from sorted (LPA, PPA) mapping batches."""

    def __init__(self, gamma: int = 0, group_size: int = GROUP_SIZE) -> None:
        if gamma < 0:
            raise ValueError("gamma must be non-negative")
        if group_size <= 0 or group_size > GROUP_SIZE:
            raise ValueError("group_size must be in (0, 256]")
        self.gamma = gamma
        self.group_size = group_size

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def learn(self, mappings: Sequence[Tuple[int, int]]) -> List[LearnedSegment]:
        """Learn segments from a batch of ``(lpa, ppa)`` pairs.

        The batch is the content of one write-buffer flush: LPAs are unique.
        They do not need to arrive sorted; sorting happens here (matching the
        buffer-sorting co-design of Section 3.3, where ascending LPAs receive
        ascending PPAs).  Segments never span a group boundary because the
        1-byte ``S_LPA`` field is a group-relative offset.
        """
        if not mappings:
            return []
        points = sorted(mappings, key=lambda pair: pair[0])
        self._check_unique(points)

        learned: List[LearnedSegment] = []
        run_start = 0
        current_group = group_base_of(points[0][0], self.group_size)
        for index, (lpa, _ppa) in enumerate(points):
            base = group_base_of(lpa, self.group_size)
            if base != current_group:
                learned.extend(self._learn_group(points[run_start:index], current_group))
                run_start = index
                current_group = base
        learned.extend(self._learn_group(points[run_start:], current_group))
        return learned

    # ------------------------------------------------------------------ #
    # Per-group learning
    # ------------------------------------------------------------------ #
    def _learn_group(
        self, points: Sequence[Tuple[int, int]], group_base: int
    ) -> List[LearnedSegment]:
        """Greedy cone-based PLR over the points of a single group."""
        segments: List[LearnedSegment] = []
        start = 0
        count = len(points)
        while start < count:
            end = self._extend_cone(points, start)
            segments.extend(self._finalize(points[start:end], group_base))
            start = end
        return segments

    def _extend_cone(self, points: Sequence[Tuple[int, int]], start: int) -> int:
        """Return the exclusive end index of the longest feasible segment."""
        x0, y0 = points[start]
        low = -math.inf
        high = math.inf
        gamma = float(self.gamma)
        index = start + 1
        while index < len(points):
            x, y = points[index]
            # The configured group span, not the module-wide maximum: with
            # group_size < 256 a cone must still stop at the group boundary
            # (the 1-byte S_LPA/L fields are group-relative).
            if x - x0 > self.group_size - 1:
                break
            dx = float(x - x0)
            point_low = (y - gamma - y0) / dx
            point_high = (y + gamma - y0) / dx
            new_low = max(low, point_low)
            new_high = min(high, point_high)
            if new_low > new_high:
                break
            low, high = new_low, new_high
            index += 1
        return index

    def _finalize(
        self, points: Sequence[Tuple[int, int]], group_base: int
    ) -> List[LearnedSegment]:
        """Fit, quantize and verify one candidate segment.

        Falls back to splitting the candidate when the quantized model cannot
        honour the error bound (a rare event caused by float16 rounding).
        """
        if not points:
            return []
        if len(points) == 1:
            lpa, ppa = points[0]
            return [LearnedSegment(Segment.single_point(group_base, lpa, ppa), [lpa])]

        lpas = [lpa for lpa, _ in points]
        x0, y0 = points[0]
        xn, yn = points[-1]
        raw_slope = self._choose_slope(points)
        length = xn - x0

        for accurate in (True, False) if self.gamma > 0 else (True,):
            for shift in (0.0, -0.5, -1.0):
                segment = Segment.from_anchor(
                    group_base=group_base,
                    start_lpa=x0,
                    length=length,
                    raw_slope=raw_slope,
                    anchor_lpa=x0,
                    anchor_ppa=y0,
                    accurate=accurate,
                    intercept_shift=shift,
                )
                if self._verify(segment, points, exact=accurate):
                    return [LearnedSegment(segment, lpas)]

        # Quantization broke the bound: split the candidate and relearn.
        middle = len(points) // 2
        return self._finalize(points[:middle], group_base) + self._finalize(
            points[middle:], group_base
        )

    def _choose_slope(self, points: Sequence[Tuple[int, int]]) -> float:
        """Slope of the fitted line through the cone anchored at the first point."""
        x0, y0 = points[0]
        low = -math.inf
        high = math.inf
        gamma = float(self.gamma)
        for x, y in points[1:]:
            dx = float(x - x0)
            low = max(low, (y - gamma - y0) / dx)
            high = min(high, (y + gamma - y0) / dx)
        if low > high:
            raise ValueError("inconsistent cone: caller must pass a feasible range")
        slope = (low + high) / 2.0 if gamma else low
        return min(max(slope, 0.0), 1.0)

    def _verify(
        self, segment: Segment, points: Sequence[Tuple[int, int]], exact: bool
    ) -> bool:
        """Check the quantized model against the real predict() semantics."""
        limit = 0 if exact else self.gamma
        for lpa, ppa in points:
            error = segment.predict(lpa) - ppa
            if abs(error) > limit:
                return False
        # Accurate segments must also be *enumerable* from their metadata:
        # the stride test of Algorithm 2 has to report exactly the learned
        # LPAs, otherwise lookups would claim LPAs the segment does not hold.
        if exact and len(points) > 1:
            learned = set(lpa for lpa, _ in points)
            derived = set(segment.covered_lpas_accurate())
            if learned != derived:
                return False
        return True

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _check_unique(points: Sequence[Tuple[int, int]]) -> None:
        for (lpa_a, _), (lpa_b, _) in zip(points, points[1:]):
            if lpa_a == lpa_b:
                raise ValueError(f"duplicate LPA {lpa_a} in one learning batch")


def learn_segments(
    mappings: Sequence[Tuple[int, int]], gamma: int = 0, group_size: int = GROUP_SIZE
) -> List[LearnedSegment]:
    """Convenience wrapper: learn segments from a mapping batch."""
    return PLRLearner(gamma=gamma, group_size=group_size).learn(mappings)
