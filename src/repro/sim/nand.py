"""Per-channel / per-die NAND operation scheduling.

Every flash read, program and erase must cross its channel bus, and the
affected die stays busy for the full cell operation.  The scheduler owns
both timelines:

* **channel bus** — one operation at a time; a request that arrives while
  the bus is occupied starts when the bus frees up.  This is the resource
  foreground reads contend on with background flush/GC traffic.
* **die** — the cell-level part of a program/erase proceeds inside the die
  after the bus transfer, so operations on *different* dies of the same
  channel overlap.

Two timing models are supported:

``"bus"`` (default)
    Only the channel bus constrains start times; the die timeline is
    tracked for utilization reporting but does not delay operations.  A
    program occupies the bus for ``cell_time / dies_per_channel`` — the
    steady-state share of a fully pipelined channel.  This reproduces the
    synchronous simulator's latency accounting exactly.

``"die"``
    An operation additionally waits for its die to be idle and then holds
    the die for the full cell time.  Stricter (burst programs to one die
    serialize) and therefore produces slightly higher tail latencies.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

TIMING_MODELS = ("bus", "die")


class NANDScheduler:
    """Arbitrates channel-bus and die occupancy for flash operations."""

    def __init__(
        self,
        channels: int,
        dies_per_channel: int = 1,
        timing_model: str = "bus",
    ) -> None:
        if channels <= 0:
            raise ValueError("channels must be positive")
        if dies_per_channel <= 0:
            raise ValueError("dies_per_channel must be positive")
        if timing_model not in TIMING_MODELS:
            raise ValueError(f"timing_model must be one of {TIMING_MODELS}")
        self._channels = channels
        self._dies_per_channel = dies_per_channel
        self.timing_model = timing_model
        self._bus_busy_until: List[float] = [0.0] * channels
        self._die_busy_until: List[List[float]] = [
            [0.0] * dies_per_channel for _ in range(channels)
        ]
        self._bus_time_us: List[float] = [0.0] * channels
        #: Optional observation hook called as ``probe(channel, start_us,
        #: finish_us)`` for every bus reservation.  Purely observational —
        #: it must not touch the scheduler — and ``None`` (the default)
        #: keeps the hot path at a single attribute check.
        self.probe: Optional[Callable[[int, float, float], None]] = None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def channels(self) -> int:
        return self._channels

    @property
    def dies_per_channel(self) -> int:
        return self._dies_per_channel

    def busy_until(self, channel: int) -> float:
        """Time until which ``channel``'s bus is occupied."""
        return self._bus_busy_until[channel]

    def die_busy_until(self, channel: int, die: int) -> float:
        return self._die_busy_until[channel][die]

    def channel_utilization(self, channel: int, now_us: float) -> float:
        """Fraction of elapsed time the channel bus was occupied."""
        if now_us <= 0.0:
            return 0.0
        return min(1.0, self._bus_time_us[channel] / now_us)

    def bus_time_us(self, channel: int) -> float:
        """Cumulative bus-occupied time of ``channel`` (for windowed rates)."""
        return self._bus_time_us[channel]

    def least_busy_channel(self, candidates: Optional[Sequence[int]] = None) -> int:
        """The channel whose bus frees up earliest (ties → lowest index).

        Background traffic (GC migrations, wear-leveling moves) uses this to
        place its destination blocks where it will contend least with
        foreground reads.  Deterministic, so replays stay reproducible.
        """
        pool = range(self._channels) if candidates is None else candidates
        return min(pool, key=lambda ch: (self._bus_busy_until[ch], ch))

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def reserve(
        self,
        channel: int,
        at_us: float,
        bus_us: float,
        die: Optional[int] = None,
        cell_us: Optional[float] = None,
    ) -> float:
        """Schedule one operation; returns its bus completion time.

        Parameters
        ----------
        channel / die:
            Target coordinates.  ``die=None`` models traffic that only
            crosses the bus (e.g. DFTL translation-page accounting).
        bus_us:
            Time the operation occupies the channel bus.
        cell_us:
            Full cell-operation time charged to the die (defaults to
            ``bus_us``).  Under the ``"die"`` model the die also gates the
            start of the operation.
        """
        busy = self._bus_busy_until[channel]
        start = at_us if at_us > busy else busy
        if die is not None and self.timing_model == "die":
            die_busy = self._die_busy_until[channel][die]
            if die_busy > start:
                start = die_busy
        finish = start + bus_us
        self._bus_busy_until[channel] = finish
        self._bus_time_us[channel] += bus_us
        if die is not None:
            occupied_until = start + (cell_us if cell_us is not None else bus_us)
            if occupied_until > self._die_busy_until[channel][die]:
                self._die_busy_until[channel][die] = occupied_until
        if self.probe is not None:
            self.probe(channel, start, finish)
        return finish

    def reserve_run(
        self,
        channel: int,
        at_us: float,
        bus_us: float,
        count: int,
        die: Optional[int] = None,
        cell_us: Optional[float] = None,
    ) -> float:
        """``count`` back-to-back :meth:`reserve` calls with identical args.

        Performs exactly the float operations of the equivalent call
        sequence (the per-operation timing chain is digest-critical), so a
        whole burst — a block's worth of programs, a victim's worth of GC
        reads — costs one call instead of one per page.  Returns the bus
        completion time of the *last* operation.
        """
        if self.probe is not None and count > 0:
            # With a probe installed every operation must be visible
            # individually; :meth:`reserve` performs the identical float
            # chain (same order of the same operations), so delegating is
            # digest-exact.  count == 0 falls through to the batched body,
            # which returns the current bus-busy time untouched.
            finish = self._bus_busy_until[channel]
            for _ in range(count):
                finish = self.reserve(channel, at_us, bus_us, die=die, cell_us=cell_us)
            return finish
        busy = self._bus_busy_until[channel]
        bus_total = self._bus_time_us[channel]
        die_model = self.timing_model == "die"
        if die is None:
            for _ in range(count):
                start = at_us if at_us > busy else busy
                busy = start + bus_us
                bus_total += bus_us
        else:
            die_row = self._die_busy_until[channel]
            die_busy = die_row[die]
            cell = cell_us if cell_us is not None else bus_us
            for _ in range(count):
                start = at_us if at_us > busy else busy
                if die_model and die_busy > start:
                    start = die_busy
                busy = start + bus_us
                bus_total += bus_us
                occupied_until = start + cell
                if occupied_until > die_busy:
                    die_busy = occupied_until
            die_row[die] = die_busy
        self._bus_busy_until[channel] = busy
        self._bus_time_us[channel] = bus_total
        return busy
