"""Figure 19: mapping-table size of LeaFTL as gamma grows (0, 1, 4, 16).

The paper reports a 1.3x average reduction at gamma = 16 relative to
gamma = 0 (1.2x on the real SSD): a larger error bound lets one approximate
segment absorb more irregular mappings.
"""

from __future__ import annotations

from repro.analysis.memory import normalized_size
from repro.analysis.report import print_report, render_series
from repro.experiments.memory import gamma_sweep_footprints

from benchmarks.conftest import CORE_WORKLOADS, memory_scale, run_once

GAMMAS = (0, 1, 4, 16)


def test_fig19_gamma_vs_mapping_size(benchmark):
    footprints = run_once(
        benchmark, gamma_sweep_footprints, CORE_WORKLOADS, GAMMAS, memory_scale()
    )

    series = {}
    for workload, by_gamma in footprints.items():
        normalized = normalized_size({str(g): float(v) for g, v in by_gamma.items()}, "0")
        series[workload] = {f"gamma={g}": round(normalized[str(g)], 3) for g in GAMMAS}
    print_report(render_series(
        "Figure 19: mapping table size normalized to gamma = 0 (lower is better)", series))

    for workload, by_gamma in footprints.items():
        assert by_gamma[16] <= by_gamma[0], f"{workload}: gamma=16 must not be larger"
    reductions = [by_gamma[0] / by_gamma[16] for by_gamma in footprints.values()]
    assert sum(reductions) / len(reductions) > 1.05
