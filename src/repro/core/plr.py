"""Greedy maximum-error-bounded piecewise linear regression (Section 3.1-3.3).

LeaFTL learns LPA→PPA mappings with the greedy streaming PLR algorithm of
Xie et al. [64]: points are consumed in ascending LPA order while a *cone* of
feasible slopes (anchored at the segment's first point) is narrowed; when a
new point would empty the cone, the current segment is closed and a new one
starts.  Every point of a closed segment is guaranteed to be within
``[-gamma, +gamma]`` of the fitted line.

Because the on-device segment encoding rounds the slope to float16 and the
prediction applies a ceiling, the learner *verifies* every candidate segment
against the exact :meth:`repro.core.segment.Segment.predict` semantics before
emitting it, and classifies it as

* **accurate** when every covered LPA predicts its exact PPA,
* **approximate** when every prediction is within ``gamma``,
* otherwise the candidate is split and relearned (a rare fallback that keeps
  the error bound a hard guarantee rather than a statistical one).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.compat import HAVE_NUMPY, np
from repro.core.segment import GROUP_SIZE, Segment

#: Candidate sizes at or above this use the numpy batch verifier.  The
#: vectorized path performs the same float64 multiply/add/ceil per point as
#: the scalar loop, so the threshold only affects speed, never results.
_VERIFY_VECTOR_MIN = 24


@dataclass
class LearnedSegment:
    """A freshly learned segment plus the LPAs it covers.

    The covered-LPA list is needed once, at insertion time: approximate
    segments register their LPAs in the Conflict Resolution Buffer.  It is
    not part of the segment's 8-byte footprint.
    """

    segment: Segment
    lpas: List[int]

    @property
    def accurate(self) -> bool:
        return self.segment.accurate

    def __len__(self) -> int:
        return len(self.lpas)


class PLRLearner:
    """Learns index segments from sorted (LPA, PPA) mapping batches."""

    def __init__(self, gamma: int = 0, group_size: int = GROUP_SIZE) -> None:
        if gamma < 0:
            raise ValueError("gamma must be non-negative")
        if group_size <= 0 or group_size > GROUP_SIZE:
            raise ValueError("group_size must be in (0, 256]")
        self.gamma = gamma
        self.group_size = group_size

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def learn(self, mappings: Sequence[Tuple[int, int]]) -> List[LearnedSegment]:
        """Learn segments from a batch of ``(lpa, ppa)`` pairs.

        The batch is the content of one write-buffer flush: LPAs are unique.
        They do not need to arrive sorted; sorting happens here (matching the
        buffer-sorting co-design of Section 3.3, where ascending LPAs receive
        ascending PPAs).  Segments never span a group boundary because the
        1-byte ``S_LPA`` field is a group-relative offset.
        """
        if not mappings:
            return []
        points = sorted(mappings, key=lambda pair: pair[0])
        self._check_unique(points)

        learned: List[LearnedSegment] = []
        run_start = 0
        group_size = self.group_size
        current_group = points[0][0] // group_size * group_size
        for index, (lpa, _ppa) in enumerate(points):
            base = lpa // group_size * group_size
            if base != current_group:
                learned.extend(self._learn_group(points[run_start:index], current_group))
                run_start = index
                current_group = base
        learned.extend(self._learn_group(points[run_start:], current_group))
        return learned

    # ------------------------------------------------------------------ #
    # Per-group learning
    # ------------------------------------------------------------------ #
    def _learn_group(
        self, points: Sequence[Tuple[int, int]], group_base: int
    ) -> List[LearnedSegment]:
        """Greedy cone-based PLR over the points of a single group."""
        count = len(points)
        if count == 1:
            # Isolated write: degenerate single-point segment, no cone walk.
            lpa, ppa = points[0]
            return [
                LearnedSegment(Segment.single_point(group_base, lpa, ppa), [lpa])
            ]
        segments: List[LearnedSegment] = []
        start = 0
        while start < count:
            end, low, high = self._extend_cone(points, start)
            segments.extend(
                self._finalize(points[start:end], group_base, cone=(low, high))
            )
            start = end
        return segments

    def _extend_cone(
        self, points: Sequence[Tuple[int, int]], start: int
    ) -> Tuple[int, float, float]:
        """Extend the feasible-slope cone from ``points[start]``.

        Returns the exclusive end index of the longest feasible segment plus
        the final cone bounds, so the caller can derive the fitted slope
        without re-walking the points (the bounds are narrowed with exactly
        the float operations a fresh pass would perform).
        """
        x0, y0 = points[start]
        low = -math.inf
        high = math.inf
        gamma = float(self.gamma)
        group_span = self.group_size - 1
        index = start + 1
        count = len(points)
        if gamma == 0.0:
            # Single-ratio form: ``(y ± 0.0 - y0) / dx`` and ``(y - y0) / dx``
            # are bit-identical for exact-integer operands, so point_low and
            # point_high collapse into one division.
            while index < count:
                x, y = points[index]
                if x - x0 > group_span:
                    break
                ratio = (y - y0) / (x - x0)
                new_low = low if low > ratio else ratio
                new_high = high if high < ratio else ratio
                if new_low > new_high:
                    break
                low, high = new_low, new_high
                index += 1
            return index, low, high
        while index < count:
            x, y = points[index]
            # The configured group span, not the module-wide maximum: with
            # group_size < 256 a cone must still stop at the group boundary
            # (the 1-byte S_LPA/L fields are group-relative).
            if x - x0 > group_span:
                break
            dx = float(x - x0)
            point_low = (y - gamma - y0) / dx
            point_high = (y + gamma - y0) / dx
            new_low = low if low > point_low else point_low
            new_high = high if high < point_high else point_high
            if new_low > new_high:
                break
            low, high = new_low, new_high
            index += 1
        return index, low, high

    def _finalize(
        self,
        points: Sequence[Tuple[int, int]],
        group_base: int,
        cone: Optional[Tuple[float, float]] = None,
    ) -> List[LearnedSegment]:
        """Fit, quantize and verify one candidate segment.

        ``cone`` carries the feasible-slope bounds already narrowed by
        :meth:`_extend_cone` so the slope needs no second pass over the
        points; the recursive split fallback recomputes them for its halves.

        Falls back to splitting the candidate when the quantized model cannot
        honour the error bound (a rare event caused by float16 rounding).
        """
        if not points:
            return []
        if len(points) == 1:
            lpa, ppa = points[0]
            return [LearnedSegment(Segment.single_point(group_base, lpa, ppa), [lpa])]

        lpas = [lpa for lpa, _ in points]
        x0, y0 = points[0]
        xn, yn = points[-1]
        raw_slope = (
            self._slope_from_cone(*cone) if cone else self._choose_slope(points)
        )
        length = xn - x0

        for accurate in (True, False) if self.gamma > 0 else (True,):
            for shift in (0.0, -0.5, -1.0):
                segment = Segment.from_anchor(
                    group_base=group_base,
                    start_lpa=x0,
                    length=length,
                    raw_slope=raw_slope,
                    anchor_lpa=x0,
                    anchor_ppa=y0,
                    accurate=accurate,
                    intercept_shift=shift,
                )
                if self._verify(segment, points, exact=accurate, lpas=lpas):
                    return [LearnedSegment(segment, lpas)]

        # Quantization broke the bound: split the candidate and relearn.
        middle = len(points) // 2
        return self._finalize(points[:middle], group_base) + self._finalize(
            points[middle:], group_base
        )

    def _choose_slope(self, points: Sequence[Tuple[int, int]]) -> float:
        """Slope of the fitted line through the cone anchored at the first point."""
        x0, y0 = points[0]
        low = -math.inf
        high = math.inf
        gamma = float(self.gamma)
        for x, y in points[1:]:
            dx = float(x - x0)
            low = max(low, (y - gamma - y0) / dx)
            high = min(high, (y + gamma - y0) / dx)
        if low > high:
            raise ValueError("inconsistent cone: caller must pass a feasible range")
        return self._slope_from_cone(low, high)

    def _slope_from_cone(self, low: float, high: float) -> float:
        slope = (low + high) / 2.0 if self.gamma else low
        # Clamp to [0, 1] with max()/min() equal-value semantics (the first
        # argument wins on ties, so a -0.0 slope stays -0.0).
        if slope < 0.0:
            return 0.0
        return slope if slope <= 1.0 else 1.0

    def _verify(
        self,
        segment: Segment,
        points: Sequence[Tuple[int, int]],
        exact: bool,
        lpas: Optional[List[int]] = None,
    ) -> bool:
        """Check the quantized model against the real predict() semantics."""
        limit = 0 if exact else self.gamma
        slope = segment.slope
        intercept = segment.intercept
        group_base = segment.group_base
        if HAVE_NUMPY and len(points) >= _VERIFY_VECTOR_MIN:
            # Same float64 multiply/add/ceil per point as the scalar loop.
            lpa_vec = np.fromiter(
                (p[0] for p in points), dtype=np.int64, count=len(points)
            )
            ppas = np.fromiter((p[1] for p in points), dtype=np.int64, count=len(points))
            predicted = np.ceil(slope * (lpa_vec - group_base) + intercept)
            if np.abs(predicted - ppas).max() > limit:
                return False
        else:
            ceil = math.ceil
            for lpa, ppa in points:
                error = ceil(slope * (lpa - group_base) + intercept) - ppa
                if error > limit or -error > limit:
                    return False
        # Accurate segments must also be *enumerable* from their metadata:
        # the stride test of Algorithm 2 has to report exactly the learned
        # LPAs, otherwise lookups would claim LPAs the segment does not hold.
        # Both sides are sorted and duplicate-free, so list equality replaces
        # the set comparison.
        if exact and len(points) > 1:
            if lpas is None:
                lpas = [lpa for lpa, _ in points]
            if lpas != segment.covered_lpas_accurate_list():
                return False
        return True

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _check_unique(points: Sequence[Tuple[int, int]]) -> None:
        for (lpa_a, _), (lpa_b, _) in zip(points, points[1:]):
            if lpa_a == lpa_b:
                raise ValueError(f"duplicate LPA {lpa_a} in one learning batch")


def learn_segments(
    mappings: Sequence[Tuple[int, int]], gamma: int = 0, group_size: int = GROUP_SIZE
) -> List[LearnedSegment]:
    """Convenience wrapper: learn segments from a mapping batch."""
    return PLRLearner(gamma=gamma, group_size=group_size).learn(mappings)
