"""Ablation: LPA group size (Section 3.2 picks 256).

The paper chooses groups of 256 contiguous LPAs because learned segments are
almost always shorter than 256 mappings (Figure 5), so the 1-byte group
offset never truncates a segment.  Smaller groups chop long sequential runs
into more segments; this ablation quantifies that.
"""

from __future__ import annotations

from repro.analysis.memory import format_bytes
from repro.analysis.report import print_report, render_table
from repro.config import LeaFTLConfig
from repro.core.mapping_table import LogStructuredMappingTable
from repro.experiments.common import workload_for_setup
from repro.experiments.memory import memory_setup

from benchmarks.conftest import memory_scale, run_once

GROUP_SIZES = (64, 128, 256)


def test_ablation_group_size(benchmark):
    setup = memory_setup(gamma=0, request_scale=memory_scale())
    trace = workload_for_setup("MSR-usr", setup)
    write_batches = []
    batch = []
    for request in trace:
        if request.is_write:
            for lpa in request.pages():
                batch.append(lpa)
                if len(batch) == 256:
                    write_batches.append(batch)
                    batch = []
    if batch:
        write_batches.append(batch)

    def learn_with_group_sizes():
        results = {}
        for group_size in GROUP_SIZES:
            table = LogStructuredMappingTable(LeaFTLConfig(gamma=0, group_size=group_size))
            ppa = 0
            for lpas in write_batches:
                unique = sorted(set(lpas))
                table.update([(lpa, ppa + i) for i, lpa in enumerate(unique)])
                ppa += len(unique)
            results[group_size] = table
        return results

    tables = run_once(benchmark, learn_with_group_sizes)

    rows = [
        [size, tables[size].segment_count(), format_bytes(tables[size].memory_bytes())]
        for size in GROUP_SIZES
    ]
    print_report(render_table(
        ["group size (LPAs)", "segments", "mapping table"],
        rows, title="Ablation: LPA group size"))

    assert tables[256].segment_count() <= tables[64].segment_count()
