"""Power-fail recovery: recovery time and checkpoint WAF vs interval.

Not a paper figure — the paper keeps recovery qualitative (Section 3.5:
OOB reverse mappings make the learned table rebuildable) — but the cost
model makes it measurable: a mid-write-burst crash, then either a full
OOB scan or checkpoint+replay at several checkpoint intervals.  The JSON
report (``--benchmark-json``) carries the whole frontier in
``extra_info``: modeled recovery time and flash reads per strategy, and
the checkpoint page writes each interval added to the device's WAF.
"""

from __future__ import annotations

from repro.analysis.report import print_report, render_series
from repro.experiments.recovery import DEFAULT_INTERVALS, recovery_interval_sweep

from benchmarks.conftest import run_once


def test_recovery_time_vs_checkpoint_interval(benchmark):
    outcomes = run_once(benchmark, recovery_interval_sweep, DEFAULT_INTERVALS)

    series = {
        name: {
            "recovery ms": round(outcome.recovery_time_us / 1000.0, 2),
            "flash reads": outcome.flash_reads,
            "ckpt writes": outcome.checkpoint_page_writes,
            "WAF": round(outcome.write_amplification, 3),
        }
        for name, outcome in outcomes.items()
    }
    print_report(
        render_series(
            "Power-fail recovery: full OOB scan vs checkpoint+replay", series
        )
    )
    benchmark.extra_info["recovery"] = {
        name: {
            "mode": outcome.mode,
            "interval_pages": outcome.interval_pages,
            "recovery_time_us": outcome.recovery_time_us,
            "flash_reads": outcome.flash_reads,
            "checkpoint_pages_read": outcome.checkpoint_pages_read,
            "replayed_pages": outcome.replayed_pages,
            "checkpoints_taken": outcome.checkpoints_taken,
            "checkpoint_page_writes": outcome.checkpoint_page_writes,
            "write_amplification": outcome.write_amplification,
        }
        for name, outcome in outcomes.items()
    }

    scan = outcomes["oob_scan"]
    assert scan.checkpoint_page_writes == 0
    for interval in DEFAULT_INTERVALS:
        ckpt = outcomes[f"interval={interval}"]
        # Same durable contents recovered either way...
        assert ckpt.recovered_lpas == scan.recovered_lpas
        # ...with a bounded replay instead of a full scan.
        assert ckpt.mode == "checkpoint_replay"
        assert ckpt.flash_reads < scan.flash_reads
        assert ckpt.recovery_time_us < scan.recovery_time_us
        # The price shows up where it should: real checkpoint page writes.
        assert ckpt.checkpoint_page_writes > 0
    # Shorter intervals write more checkpoint pages.
    writes = [
        outcomes[f"interval={interval}"].checkpoint_page_writes
        for interval in sorted(DEFAULT_INTERVALS)
    ]
    assert writes == sorted(writes, reverse=True)
