"""Tests for the workload generators, trace model and MSR parser."""

from __future__ import annotations

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads import (
    DATABASE_WORKLOAD_NAMES,
    FIU_WORKLOAD_NAMES,
    MSR_WORKLOAD_NAMES,
    IORequest,
    Trace,
    WorkloadProfile,
    database_workload,
    fiu_workload,
    generate,
    jittered_run,
    msr_workload,
    parse_msr_trace,
    sequential_run,
    strided_run,
    write_msr_trace,
    zipf_lpa,
)
from repro.workloads.msr import msr_profile


class TestTrace:
    def test_request_validation(self):
        with pytest.raises(ValueError):
            IORequest("X", 0, 1)
        with pytest.raises(ValueError):
            IORequest("R", -1, 1)
        with pytest.raises(ValueError):
            IORequest("R", 0, 0)

    def test_summary_statistics(self):
        trace = Trace("t", [IORequest("W", 0, 4), IORequest("R", 2, 2), IORequest("R", 100, 1)])
        assert trace.read_requests == 2
        assert trace.write_requests == 1
        assert trace.write_pages == 4
        assert trace.read_pages == 3
        assert trace.footprint_pages() == 5
        assert trace.written_footprint_pages() == 4
        assert trace.max_lpa() == 100
        assert trace.read_ratio == pytest.approx(2 / 3)

    def test_scaled_to_clamps_lpas(self):
        trace = Trace("t", [IORequest("W", 1000, 4)])
        clamped = trace.scaled_to(512)
        assert clamped[0].lpa < 512
        assert clamped[0].lpa + clamped[0].npages <= 512

    def test_truncated_and_concatenated(self):
        trace = Trace("t", [IORequest("R", i, 1) for i in range(10)])
        assert len(trace.truncated(3)) == 3
        assert len(trace.concatenated(trace)) == 20

    def test_as_tuples_round_trip(self):
        trace = Trace("t", [IORequest("W", 5, 2)])
        rebuilt = Trace.from_tuples("t", trace.as_tuples())
        assert rebuilt[0].lpa == 5 and rebuilt[0].npages == 2

    def test_with_interarrival_stamps_timestampless_traces(self):
        trace = Trace("t", [IORequest("R", i, 1) for i in range(4)])
        assert not trace.has_timestamps()
        stamped = trace.with_interarrival(25.0)
        assert [r.timestamp_us for r in stamped] == [0.0, 25.0, 50.0, 75.0]
        assert stamped.has_timestamps()

    def test_with_interarrival_preserves_existing_timestamps(self):
        trace = Trace("t", [IORequest("R", 0, 1, timestamp_us=7.0)])
        stamped = trace.with_interarrival(100.0)
        assert stamped[0].timestamp_us == 7.0


class TestPatternGenerators:
    def test_sequential_run(self):
        assert sequential_run(10, 4) == [10, 11, 12, 13]

    def test_strided_run(self):
        assert strided_run(10, 3, 4) == [10, 13, 16, 19]

    def test_jittered_run_is_monotonic(self):
        import random

        lpas = jittered_run(100, 50, random.Random(0))
        assert all(b > a for a, b in zip(lpas, lpas[1:]))

    @given(st.integers(min_value=1, max_value=10**6), st.floats(min_value=0.0, max_value=0.99))
    @settings(max_examples=100)
    def test_zipf_lpa_in_range(self, footprint, alpha):
        import random

        lpa = zipf_lpa(random.Random(0), footprint, alpha)
        assert 0 <= lpa < footprint


class TestProfiles:
    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            WorkloadProfile(
                name="bad", footprint_pages=100, num_requests=10, read_ratio=0.5,
                sequential_fraction=0.9, strided_fraction=0.9,
                jittered_fraction=0.0, random_fraction=0.0,
            )

    def test_generation_is_deterministic(self):
        profile = msr_profile("hm").scaled(0.02)
        a = generate(profile)
        b = generate(profile)
        assert [r.as_tuple() for r in a] == [r.as_tuple() for r in b]

    @pytest.mark.parametrize("name", MSR_WORKLOAD_NAMES + FIU_WORKLOAD_NAMES)
    def test_named_profiles_generate(self, name):
        if name.startswith("MSR"):
            trace = msr_workload(name, request_scale=0.02)
        else:
            trace = fiu_workload(name, request_scale=0.02)
        assert len(trace) > 0
        assert trace.name == name
        # The generated mix respects the profile's read ratio within tolerance.
        profile = msr_profile(name) if name.startswith("MSR") else None
        if profile is not None:
            assert abs(trace.read_ratio - profile.read_ratio) < 0.15

    @pytest.mark.parametrize("name", DATABASE_WORKLOAD_NAMES)
    def test_database_workloads_generate(self, name):
        trace = database_workload(name, request_scale=0.02)
        assert len(trace) > 0
        assert trace.footprint_pages() > 0

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            msr_workload("nope")
        with pytest.raises(KeyError):
            fiu_workload("nope")
        with pytest.raises(KeyError):
            database_workload("nope")

    def test_scaling_reduces_requests(self):
        full = msr_profile("usr")
        scaled = full.scaled(request_scale=0.1)
        assert scaled.num_requests == pytest.approx(full.num_requests * 0.1, rel=0.01)


class TestMSRParser:
    SAMPLE = (
        "128166372003061629,hm,0,Read,8192,4096,100\n"
        "128166372016853991,hm,0,Write,12288,8192,200\n"
        "\n"
        "# comment line\n"
    )

    def test_parse_basic(self):
        trace = parse_msr_trace(io.StringIO(self.SAMPLE), name="sample")
        assert len(trace) == 2
        assert trace[0].op == "R" and trace[0].lpa == 2 and trace[0].npages == 1
        assert trace[1].op == "W" and trace[1].lpa == 3 and trace[1].npages == 2

    def test_parse_respects_page_size(self):
        trace = parse_msr_trace(io.StringIO(self.SAMPLE), page_size=8192)
        assert trace[0].lpa == 1
        # 8192 bytes at offset 12288 span bytes 12288-20479, which cross the
        # 16384 boundary: two 8 KB pages, not size // page_size == 1.
        assert trace[1].npages == 2

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            parse_msr_trace(io.StringIO("1,2,3\n"))

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            parse_msr_trace(io.StringIO("1,h,0,Trim,0,4096,0\n"))

    def test_max_requests(self):
        trace = parse_msr_trace(io.StringIO(self.SAMPLE), max_requests=1)
        assert len(trace) == 1

    def test_unaligned_request_crossing_page_boundary_counts_both_pages(self):
        # 4096 bytes starting at offset 2048 touch pages 0 and 1.
        trace = parse_msr_trace(io.StringIO("1,h,0,Read,2048,4096,0\n"))
        assert trace[0].lpa == 0
        assert trace[0].npages == 2

    def test_page_span_from_first_and_last_byte(self):
        # 8192 bytes at offset 4097 touch pages 1, 2 and 3.
        trace = parse_msr_trace(io.StringIO("1,h,0,Write,4097,8192,0\n"))
        assert trace[0].lpa == 1
        assert trace[0].npages == 3
        # An aligned request is unchanged by the boundary math.
        aligned = parse_msr_trace(io.StringIO("1,h,0,Write,4096,8192,0\n"))
        assert aligned[0].lpa == 1
        assert aligned[0].npages == 2

    def test_timestamps_rebased_to_first_arrival_in_microseconds(self):
        trace = parse_msr_trace(io.StringIO(self.SAMPLE))
        assert trace[0].timestamp_us == 0.0
        # Delta of the two filetime stamps: 13,792,362 ticks = 1,379,236.2 us,
        # exact — the rebase happens in integer ticks, so the 100 ns arrival
        # resolution survives float64 conversion.
        assert trace[1].timestamp_us == pytest.approx(1_379_236.2)

    def test_write_and_reparse_round_trip(self):
        original = Trace("t", [IORequest("W", 7, 3), IORequest("R", 100, 1)])
        buffer = io.StringIO()
        write_msr_trace(original, buffer)
        buffer.seek(0)
        parsed = parse_msr_trace(buffer)
        assert [(r.op, r.lpa, r.npages) for r in parsed] == [
            (r.op, r.lpa, r.npages) for r in original
        ]
