#!/usr/bin/env python3
"""Replay a block trace (MSR-Cambridge CSV format or a built-in synthetic one).

Run with::

    python examples/trace_replay.py --workload MSR-prxy --ftl LeaFTL
    python examples/trace_replay.py --trace /path/to/msr/hm_0.csv --ftl DFTL

If you have the original MSR-Cambridge / FIU traces, point ``--trace`` at a
CSV file and the exact same pipeline the paper used (trace → simulator →
statistics) runs on the real input; otherwise one of the built-in synthetic
stand-ins is generated.
"""

from __future__ import annotations

import argparse

from repro.analysis.memory import format_bytes
from repro.analysis.report import print_report, render_table
from repro.experiments.common import (
    ALL_WORKLOADS,
    ExperimentSetup,
    build_ssd,
    warmup_ssd,
    workload_for_setup,
)
from repro.workloads.parser import parse_msr_trace


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="MSR-prxy", choices=ALL_WORKLOADS,
                        help="built-in synthetic workload to generate")
    parser.add_argument("--trace", default=None,
                        help="path to an MSR-format CSV trace (overrides --workload)")
    parser.add_argument("--ftl", default="LeaFTL", choices=["DFTL", "SFTL", "LeaFTL"])
    parser.add_argument("--gamma", type=int, default=0)
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--max-requests", type=int, default=50_000)
    parser.add_argument("--no-warmup", action="store_true")
    parser.add_argument("--open-loop", action="store_true",
                        help="admit requests at their trace timestamps instead "
                             "of completion-driven (closed-loop) replay")
    parser.add_argument("--time-scale", type=float, default=1.0,
                        help="multiplier on inter-arrival times in open-loop "
                             "replay (0.5 doubles the arrival rate)")
    parser.add_argument("--interarrival-us", type=float, default=20.0,
                        help="arrival spacing stamped onto synthetic traces "
                             "when replaying open-loop")
    args = parser.parse_args()

    setup = ExperimentSetup(gamma=args.gamma, request_scale=args.scale,
                            warmup=not args.no_warmup,
                            replay_mode="open" if args.open_loop else "closed",
                            time_scale=args.time_scale,
                            open_loop_interarrival_us=args.interarrival_us)

    if args.trace:
        trace = parse_msr_trace(args.trace, name=args.trace,
                                page_size=setup.page_size,
                                max_requests=args.max_requests)
        trace = trace.scaled_to(setup.ssd_config().logical_pages)
    else:
        trace = workload_for_setup(args.workload, setup)

    print(f"trace: {trace.name}  requests={len(trace)}  "
          f"read_ratio={trace.read_ratio:.2f}  footprint={trace.footprint_pages()} pages")

    ssd = build_ssd(args.ftl, setup)
    if setup.warmup:
        print("warming up the device ...")
        warmup_ssd(ssd, setup)
    if args.open_loop and not trace.has_timestamps():
        trace = trace.with_interarrival(setup.open_loop_interarrival_us)
    if args.open_loop and not trace.timestamps_sorted():
        # Real captures sometimes interleave completion records out of
        # order; open-loop replay refuses unsorted arrivals, so repair.
        print("note: trace timestamps out of order; sorting by arrival time")
        trace = trace.sorted_by_timestamp()
    mode = "open-loop" if args.open_loop else "closed-loop"
    print(f"replaying through {args.ftl} ({mode}) ...")
    stats = ssd.run(trace)

    rows = [
        ["mean read latency (us)", round(stats.read_latency.mean_us, 1)],
        ["p99 read latency (us)", round(stats.read_latency.percentile(99), 1)],
        ["cache hit ratio", round(stats.cache_hit_ratio, 3)],
        ["mapping table (resident)", format_bytes(ssd.ftl.resident_bytes())],
        ["mapping table (full)", format_bytes(ssd.ftl.full_mapping_bytes())],
        ["write amplification", round(stats.write_amplification, 3)],
        ["misprediction ratio", f"{100 * stats.misprediction_ratio:.2f}%"],
        ["GC invocations", stats.gc_invocations],
        ["simulated time (s)", round(stats.simulated_time_us / 1e6, 2)],
        ["clipped pages", stats.clipped_pages],
    ]
    if args.open_loop:
        rows.append(["max outstanding (backlog)", stats.max_outstanding_requests])
    print_report(render_table(["metric", "value"], rows,
                              title=f"{trace.name} on {args.ftl}"))


if __name__ == "__main__":
    main()
