"""The host frontend: NCQ-style request admission at a configurable depth.

Real hosts do not wait for a request to complete before sending the next
one — they keep up to ``queue_depth`` commands outstanding (SATA NCQ: 32,
NVMe: far more).  The frontend models that closed-loop behaviour on top of
the event loop:

1. the first ``queue_depth`` trace requests are admitted immediately;
2. each admitted request is issued to the device at its admission time; the
   device reserves channel time and reports the completion time;
3. a completion frees one slot, admitting the next trace request *at the
   completion time* — so with depth 1 the replay degenerates to the classic
   synchronous simulation, and with depth N foreground requests genuinely
   overlap each other and the background flush/GC traffic their
   predecessors triggered.

The device is duck-typed: anything with
``submit(op, lpa, npages, at_us) -> finish_us`` works.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.sim.events import Event, EventLoop

#: One host request: ("R" | "W", first LPA, page count).
Request = Tuple[str, int, int]


@dataclass
class FrontendStats:
    """Counters describing one frontend run."""

    submitted: int = 0
    completed: int = 0
    max_outstanding: int = 0
    #: Completion time of the last request (us).
    finished_at_us: float = 0.0


class HostFrontend:
    """Admits trace requests into the device at a bounded queue depth."""

    def __init__(self, device, loop: EventLoop, queue_depth: int = 1) -> None:
        if queue_depth < 1:
            raise ValueError("queue_depth must be at least 1")
        self._device = device
        self._loop = loop
        self._queue_depth = queue_depth
        self._source: Optional[Iterator[Request]] = None
        self._outstanding = 0
        self.stats = FrontendStats()

    @property
    def queue_depth(self) -> int:
        return self._queue_depth

    @property
    def outstanding(self) -> int:
        return self._outstanding

    # ------------------------------------------------------------------ #
    # Replay
    # ------------------------------------------------------------------ #
    def run(self, requests: Iterable[Request]) -> FrontendStats:
        """Replay ``requests`` to completion; returns the frontend stats."""
        self._source = iter(requests)
        for _ in range(self._queue_depth):
            if not self._admit(self._loop.now_us):
                break
        self._loop.run()
        return self.stats

    # ------------------------------------------------------------------ #
    # Event handlers
    # ------------------------------------------------------------------ #
    def _admit(self, at_us: float) -> bool:
        assert self._source is not None
        request = next(self._source, None)
        if request is None:
            return False
        self._loop.schedule(at_us, "request_issue", self._issue, payload=request)
        return True

    def _issue(self, event: Event) -> None:
        op, lpa, npages = event.payload  # type: ignore[misc]
        self._outstanding += 1
        self.stats.submitted += 1
        if self._outstanding > self.stats.max_outstanding:
            self.stats.max_outstanding = self._outstanding
        finish = self._device.submit(op, lpa, npages, at_us=event.time_us)
        self._loop.schedule(finish, "request_complete", self._complete)

    def _complete(self, event: Event) -> None:
        self._outstanding -= 1
        self.stats.completed += 1
        if event.time_us > self.stats.finished_at_us:
            self.stats.finished_at_us = event.time_us
        self._admit(event.time_us)


def interleave_streams(*streams: Iterable[Request]) -> Iterator[Request]:
    """Round-robin merge of several request streams (multi-tenant mixes).

    Each tenant's stream keeps its internal order; exhausted streams drop
    out.  Combined with ``queue_depth > 1`` this is how a shared device
    serving several workloads at once is simulated.
    """
    iterators: List[Iterator[Request]] = [iter(stream) for stream in streams]
    while iterators:
        still_live: List[Iterator[Request]] = []
        for iterator in iterators:
            item = next(iterator, None)
            if item is None:
                continue
            yield item
            still_live.append(iterator)
        iterators = still_live
