"""Ideal page-level mapping: the textbook one-entry-per-page FTL.

This is the upper bound used throughout the paper as the reference point for
memory footprint: every mapped LPA costs ``entry_bytes`` (8 bytes: 4-byte LPA
+ 4-byte PPA) of DRAM, and every lookup is an O(1) dictionary access with no
extra flash traffic.  It is unconstrained by any DRAM budget, so it is useful
as ground truth in tests and as the denominator in memory-reduction figures.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.ftl.base import FTL, TranslationResult


class PageLevelFTL(FTL):
    """A fully-resident page-level mapping table."""

    name = "PageMap"

    def __init__(self, entry_bytes: int = 8) -> None:
        super().__init__(mapping_budget_bytes=None)
        if entry_bytes <= 0:
            raise ValueError("entry_bytes must be positive")
        self._entry_bytes = entry_bytes
        self._table: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # FTL interface
    # ------------------------------------------------------------------ #
    def translate(self, lpa: int) -> TranslationResult:
        self.stats.lookups += 1
        return TranslationResult(ppa=self._table.get(lpa))

    def translate_range(self, lpa: int, npages: int) -> List[TranslationResult]:
        """Resolve a contiguous run with one probe of the flat table.

        The fully-resident table needs no per-page structure walks, so the
        whole run counts as a single lookup — the batched lower bound every
        other scheme is compared against.
        """
        if npages <= 0:
            raise ValueError("npages must be positive")
        self.stats.lookups += 1
        return [
            TranslationResult(ppa=self._table.get(page))
            for page in range(lpa, lpa + npages)
        ]

    def update_batch(self, mappings: Sequence[Tuple[int, int]]) -> None:
        for lpa, ppa in mappings:
            self._table[lpa] = ppa
            self.stats.updates += 1

    def exists(self, lpa: int) -> bool:
        return lpa in self._table

    def invalidate(self, lpa: int) -> None:
        self._table.pop(lpa, None)

    def resident_bytes(self) -> int:
        return len(self._table) * self._entry_bytes

    def full_mapping_bytes(self) -> int:
        return len(self._table) * self._entry_bytes

    def mapped_lpa_count(self) -> Optional[int]:
        return len(self._table)

    def rebuild_from_oob(self, mappings: Sequence[Tuple[int, int]]) -> None:
        self._table = dict(mappings)
