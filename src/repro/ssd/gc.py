"""Garbage collection: pluggable victim policies and the background pipeline.

LeaFTL preserves the conventional GC of modern SSDs (Section 3.6 of the
paper): when the free-block ratio drops below a threshold, victim blocks are
selected, their valid pages migrated to freshly allocated blocks and the
victims erased.  This module owns the *policy* side — when to collect, which
blocks to pick — and the *scheduling* side of background collection; the SSD
model (:class:`repro.ssd.ssd.SimulatedSSD`) performs the page movement,
relearns the affected mappings and erases the victims.

Victim policies (all behind the :class:`GCPolicy` interface):

``greedy``
    Fewest-valid-pages-first — minimises migration traffic *now*.  The
    classic default; tends to thrash on skewed workloads because recently
    written (hot) blocks with momentarily few valid pages get collected just
    before their remaining pages are overwritten anyway.
``cost_benefit``
    The LFS cost-benefit score ``age * (1 - u) / (1 + u)`` where ``u`` is
    the block's valid-page ratio and ``age`` counts array-wide operations
    since the block last changed: old, mostly-invalid blocks are collected
    first, while hot blocks are given time to accumulate more invalid pages.
``d_choices``
    Samples ``d`` random candidates and takes the one with the fewest valid
    pages — the "power of d choices" approximation of greedy that real
    controllers use when scanning every block's metadata per invocation is
    too expensive.  Deterministically seeded.

Every policy skips victims with **no reclaimable space**: migrating a fully
valid block consumes exactly as many pages as erasing it frees, so such an
invocation would burn migration bandwidth for zero net gain.  Only below the
*hard watermark* — free blocks critically low — are fully-valid victims
allowed (the device must make forward progress even if only wear-moving).

Background collection (:class:`BackgroundGCController`) runs the same
migrate/erase mechanism as a pipeline of events on the simulator's event
loop: one victim in flight at a time, staged as read → program → erase, each
stage issued at the previous stage's completion.  Foreground requests that
arrive between stages reserve the NAND channels first, so a read waits for
at most one in-flight stage instead of a whole multi-victim reclaim burst —
this is what flattens the GC-interference tail latencies.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.flash.allocator import BlockAllocator
from repro.flash.flash_array import FlashArray
from repro.sim.events import PRIORITY_GC

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.sim.events import Event
    from repro.ssd.ssd import SimulatedSSD

#: Victim-policy names accepted by :func:`make_gc_policy`.
GC_POLICIES = ("greedy", "cost_benefit", "d_choices")


@dataclass
class GCPolicyConfig:
    """Thresholds controlling garbage collection."""

    #: Start GC when the free-block ratio drops below this value.
    threshold: float = 0.15
    #: Stop GC once the free-block ratio recovers to this value.
    restore: float = 0.25
    #: Upper bound of victims processed per invocation (keeps pauses short).
    max_victims_per_invocation: int = 64
    #: Critically-low free-block ratio: below it host writes are throttled
    #: behind an urgent synchronous reclaim, and victim selection may fall
    #: back to fully-valid blocks as a last resort.  ``None`` (the default)
    #: derives it from the threshold — ``min(0.04, threshold / 2)`` — so any
    #: valid threshold yields a valid watermark.
    hard_watermark: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold < self.restore <= 1.0:
            raise ValueError("require 0 < threshold < restore <= 1")
        if self.max_victims_per_invocation <= 0:
            raise ValueError("max_victims_per_invocation must be positive")
        if self.hard_watermark is None:
            self.hard_watermark = min(0.04, self.threshold / 2.0)
        if not 0.0 < self.hard_watermark < self.threshold:
            raise ValueError("require 0 < hard_watermark < threshold")


class GCPolicy(abc.ABC):
    """Victim-selection policy: decides *when* and *which*, never *how*."""

    #: Name the policy registers under (reports, :func:`make_gc_policy`).
    name: str = "base"

    def __init__(self, config: Optional[GCPolicyConfig] = None) -> None:
        self.config = config or GCPolicyConfig()

    def should_collect(self, allocator: BlockAllocator) -> bool:
        """True when the free-block ratio fell below the GC threshold."""
        return allocator.free_ratio() < self.config.threshold

    def should_stop(self, allocator: BlockAllocator) -> bool:
        """True when enough free blocks have been reclaimed."""
        return allocator.free_ratio() >= self.config.restore

    def below_hard_watermark(self, allocator: BlockAllocator) -> bool:
        """True when free blocks are critically low (urgent reclaim regime)."""
        return allocator.free_ratio() < self.config.hard_watermark

    def eligible_victims(
        self, flash: FlashArray, allocator: BlockAllocator, urgent: bool = False
    ) -> List[int]:
        """Candidates that would reclaim space if collected.

        Fully-valid blocks are zero-progress victims — migrating them
        consumes exactly the pages their erase frees — so they are excluded
        unless the device is below the hard watermark (``urgent``) *and* no
        better candidate exists.
        """
        candidates = allocator.gc_candidates()
        pages_per_block = flash.geometry.pages_per_block
        reclaimable = [
            block
            for block in candidates
            if flash.valid_page_count(block) < pages_per_block
        ]
        if reclaimable or not urgent:
            return reclaimable
        return candidates

    @abc.abstractmethod
    def select_victims(
        self, flash: FlashArray, allocator: BlockAllocator, urgent: bool = False
    ) -> List[int]:
        """Victim blocks for one invocation, best candidates first."""


class GreedyGCPolicy(GCPolicy):
    """Greedy (min-valid-pages-first) victim selection."""

    name = "greedy"

    def select_victims(
        self, flash: FlashArray, allocator: BlockAllocator, urgent: bool = False
    ) -> List[int]:
        """Candidate blocks ordered by ascending valid-page count.

        Blocks with zero valid pages come first (they can be erased without
        any migration); the list is truncated to the per-invocation limit.
        """
        candidates = self.eligible_victims(flash, allocator, urgent)
        ordered = flash.blocks_by_valid_pages(candidates)
        return ordered[: self.config.max_victims_per_invocation]


class CostBenefitGCPolicy(GCPolicy):
    """LFS cost-benefit victim selection (Rosenblum & Ousterhout).

    Scores each candidate as ``age * (1 - u) / (1 + u)`` — the space freed
    per unit migration cost, weighted by how long the block has been stable.
    Old, mostly-invalid blocks win; hot blocks that are still accumulating
    invalidations are deferred until collecting them is cheaper.
    """

    name = "cost_benefit"

    def select_victims(
        self, flash: FlashArray, allocator: BlockAllocator, urgent: bool = False
    ) -> List[int]:
        candidates = self.eligible_victims(flash, allocator, urgent)
        pages_per_block = flash.geometry.pages_per_block

        def score(block: int) -> float:
            utilization = flash.valid_page_count(block) / pages_per_block
            return flash.block_age(block) * (1.0 - utilization) / (1.0 + utilization)

        ordered = sorted(candidates, key=lambda block: (-score(block), block))
        return ordered[: self.config.max_victims_per_invocation]


class DChoicesGCPolicy(GCPolicy):
    """Sampled greedy: each victim is the best of ``d`` random candidates.

    Approximates greedy selection without scanning every block's metadata —
    the classic "power of d choices" trade-off.  The sampling RNG is seeded,
    so replays remain deterministic.
    """

    name = "d_choices"

    def __init__(
        self,
        config: Optional[GCPolicyConfig] = None,
        d: int = 8,
        seed: int = 17,
    ) -> None:
        super().__init__(config)
        if d <= 0:
            raise ValueError("d must be positive")
        self.d = d
        self._rng = random.Random(seed)

    def select_victims(
        self, flash: FlashArray, allocator: BlockAllocator, urgent: bool = False
    ) -> List[int]:
        pool = self.eligible_victims(flash, allocator, urgent)
        victims: List[int] = []
        limit = min(self.config.max_victims_per_invocation, len(pool))
        while pool and len(victims) < limit:
            sample = self._rng.sample(pool, min(self.d, len(pool)))
            best = min(sample, key=lambda b: (flash.valid_page_count(b), b))
            victims.append(best)
            pool.remove(best)
        return victims


def make_gc_policy(
    name: str, config: Optional[GCPolicyConfig] = None, **kwargs: object
) -> GCPolicy:
    """Instantiate a victim policy by name (see :data:`GC_POLICIES`)."""
    key = name.replace("-", "_").lower()
    if key == "greedy":
        return GreedyGCPolicy(config)
    if key == "cost_benefit":
        return CostBenefitGCPolicy(config)
    if key == "d_choices":
        return DChoicesGCPolicy(config, **kwargs)  # type: ignore[arg-type]
    raise ValueError(f"unknown GC policy {name!r}; known: {GC_POLICIES}")


class BackgroundGCController:
    """Drives garbage collection as an event pipeline overlapping host I/O.

    One victim block is in flight at a time, staged through three events:

    1. **read** — the victim's valid pages are read (reserving their channel
       through the NAND scheduler at the event's timestamp);
    2. **program** — at the reads' completion, the still-valid LPAs are
       re-scanned (host overwrites racing the migration are skipped) and
       programmed into the cold write stream;
    3. **erase** — at the programs' completion the victim is erased and
       returned to the free pool, and the next pipeline step is scheduled.

    Because each stage only reserves NAND time when its event fires,
    foreground requests issued between stages take their place in the
    channel FCFS order ahead of the *next* GC stage — the yielding that
    bounds GC interference to roughly one stage instead of a whole
    multi-victim reclaim burst.  The controller stops once the policy's
    restore watermark is reached (or no eligible victim remains).
    """

    def __init__(self, device: "SimulatedSSD", policy: GCPolicy) -> None:
        self._device = device
        self.policy = policy
        self._running = False
        self._pending: List[int] = []
        self._in_flight: Optional[int] = None

    @property
    def running(self) -> bool:
        """True while the pipeline has events in flight."""
        return self._running

    @property
    def in_flight(self) -> Optional[int]:
        """The victim block currently mid-pipeline, if any."""
        return self._in_flight

    @property
    def backlog(self) -> int:
        """Victim blocks selected but not yet erased (queued + in flight)."""
        return len(self._pending) + (1 if self._in_flight is not None else 0)

    # ------------------------------------------------------------------ #
    # Activation
    # ------------------------------------------------------------------ #
    def maybe_start(self, at_us: float) -> bool:
        """Kick off a background run if one is due; returns ``running``."""
        device = self._device
        if self._running:
            return True
        if device._loop is None or not self.policy.should_collect(device.allocator):
            return False
        self._running = True
        device.stats.gc_invocations += 1
        device.stats.gc_background_runs += 1
        device._loop.schedule(
            at_us, "gc_step", self._select_step, priority=PRIORITY_GC
        )
        return True

    # ------------------------------------------------------------------ #
    # Pipeline stages
    # ------------------------------------------------------------------ #
    def _select_step(self, event: "Event") -> None:
        device = self._device
        self._in_flight = None
        if self.policy.should_stop(device.allocator):
            self._running = False
            self._pending.clear()
            return
        victim = self._next_victim()
        if victim is None:
            self._running = False
            return
        self._in_flight = victim
        device.stats.gc_victim_blocks += 1
        self._read_stage(victim, event.time_us)

    def _next_victim(self) -> Optional[int]:
        device = self._device
        urgent = self.policy.below_hard_watermark(device.allocator)
        queue = self._pending
        if not queue:
            queue = list(
                self.policy.select_victims(device.flash, device.allocator, urgent=urgent)
            )
        while queue:
            block = queue.pop(0)
            if self._collectable(block):
                self._pending = queue
                return block
        self._pending = []
        return None

    def _collectable(self, block: int) -> bool:
        """Re-validate a victim at fire time (state may have moved on)."""
        device = self._device
        return (
            not device.allocator.is_active(block)
            and not device.flash.block_is_free(block)
        )

    def _read_stage(self, block: int, now_us: float) -> None:
        """Stage 1: read the victim's valid pages."""
        device = self._device
        read_finish = now_us
        for ppa in device.flash.valid_ppas_of_block(block):
            read_finish = max(read_finish, device.flash.read_page(ppa, now_us=now_us))
            device.stats.gc_page_reads += 1
        device._loop.schedule(
            read_finish, "gc_program", self._program_stage,
            payload=block, priority=PRIORITY_GC,
        )

    def _program_stage(self, event: "Event") -> None:
        """Stage 2: migrate the still-valid LPAs into the cold stream."""
        device = self._device
        block: int = event.payload  # type: ignore[assignment]
        # Re-scan validity: pages the host overwrote since the read stage
        # are stale now and must not be migrated (their read was wasted
        # bandwidth, which is exactly what happens in a real controller).
        lpas = sorted(
            {
                device.flash.lpa_of(ppa)
                for ppa in device.flash.valid_ppas_of_block(block)
            }
        )
        finish = event.time_us
        if lpas:
            finish = device._program_batch(lpas, purpose="gc", at_us=event.time_us)
        device._loop.schedule(
            finish, "gc_erase", self._erase_stage, payload=block, priority=PRIORITY_GC
        )

    def _erase_stage(self, event: "Event") -> None:
        """Stage 3: erase the drained victim, then pipeline the next one."""
        device = self._device
        block: int = event.payload  # type: ignore[assignment]
        finish = event.time_us
        if (
            not device.flash.block_is_free(block)
            and device.flash.valid_page_count(block) == 0
        ):
            finish = device.flash.erase_block(block, now_us=event.time_us)
            device.stats.gc_block_erases += 1
            device.allocator.release_block(block)
        self._in_flight = None
        device._loop.schedule(
            finish, "gc_step", self._select_step, priority=PRIORITY_GC
        )
