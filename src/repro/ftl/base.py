"""The FTL interface shared by the baselines and LeaFTL.

An FTL owns the logical-to-physical mapping table.  The SSD model
(:class:`repro.ssd.ssd.SimulatedSSD`) is responsible for everything else —
flash state, write buffering, data caching, GC and wear leveling — and talks
to the FTL through this interface:

* :meth:`FTL.translate` resolves an LPA to a PPA for the read path, and
  reports any flash accesses the resolution itself required (translation
  page fetches in DFTL/SFTL, out-of-band corrections in LeaFTL);
* :meth:`FTL.translate_range` resolves a *contiguous run* of LPAs — the
  page span of one multi-page host command — in a single batch;
* :meth:`FTL.update_batch` records a batch of freshly programmed
  ``(LPA, PPA)`` mappings after a write-buffer flush or a GC migration;
* :meth:`FTL.resident_bytes` / :meth:`FTL.full_mapping_bytes` report the
  DRAM footprint, which drives the data-cache sizing.

The ``translate_range`` contract
--------------------------------

``translate_range(lpa, npages)`` returns one :class:`TranslationResult`
per page of ``[lpa, lpa + npages)``, in LPA order, and must resolve the
run against the *same* mapping state ``translate`` would see (page ``i``'s
result may not reflect updates applied after the call began).  What makes
it more than a convenience loop is the accounting contract:

* ``stats.lookups`` is charged **once per mapping-structure resolution**,
  not once per page: one learned-segment walk that covers the whole run
  (LeaFTL), one translation-page visit that serves every entry on that
  page (DFTL/SFTL), one table probe for the whole run (PageMapFTL).
  A contiguous 8-page read served by a single learned segment therefore
  grows ``stats.lookups`` by 1, not 8.
* translation-page flash traffic is batched the same way: a DFTL/SFTL
  run that misses on a translation page charges **one**
  ``translation_page_reads`` for all of its entries in the run, plus
  whatever dirty evictions the admission forced.

The abstract base provides a per-page fallback so third-party FTLs keep
working; every built-in FTL overrides it with a genuinely batched
implementation.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(slots=True)
class TranslationResult:
    """Outcome of a single LPA→PPA translation.

    Attributes
    ----------
    ppa:
        The physical page address, or ``None`` if the LPA has never been
        written (the host is reading unwritten space).
    translation_flash_reads:
        Flash page reads the FTL performed to resolve the mapping (e.g. a
        DFTL translation-page fetch or a LeaFTL misprediction correction).
    translation_flash_writes:
        Flash page writes triggered by the resolution (e.g. eviction of a
        dirty DFTL translation page).
    mispredicted:
        True when a learned segment returned an inaccurate PPA that had to
        be corrected through the OOB reverse mapping (LeaFTL only).
    levels_searched:
        Number of log-structure levels inspected (LeaFTL only; 0 otherwise).
    """

    ppa: Optional[int]
    translation_flash_reads: int = 0
    translation_flash_writes: int = 0
    mispredicted: bool = False
    levels_searched: int = 0


@dataclass
class FTLStats:
    """Counters common to every FTL implementation."""

    lookups: int = 0
    updates: int = 0
    translation_page_reads: int = 0
    translation_page_writes: int = 0
    mispredictions: int = 0

    def reset(self) -> None:
        self.lookups = 0
        self.updates = 0
        self.translation_page_reads = 0
        self.translation_page_writes = 0
        self.mispredictions = 0


class FTL(abc.ABC):
    """Abstract base class of all flash translation layers."""

    #: Human-readable scheme name used in reports and benchmark tables.
    name: str = "ftl"

    def __init__(self, mapping_budget_bytes: Optional[int] = None) -> None:
        #: Maximum bytes of DRAM the mapping structures may occupy
        #: (``None`` means unlimited — used by memory-footprint studies).
        self.mapping_budget_bytes = mapping_budget_bytes
        self.stats = FTLStats()

    # ------------------------------------------------------------------ #
    # Address translation
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def translate(self, lpa: int) -> TranslationResult:
        """Resolve ``lpa`` to a physical page address for the read path."""

    def translate_range(self, lpa: int, npages: int) -> List[TranslationResult]:
        """Resolve the contiguous run ``[lpa, lpa + npages)`` in one batch.

        Returns one :class:`TranslationResult` per page, in LPA order.  See
        the module docstring for the accounting contract; this fallback
        simply loops :meth:`translate` (per-page charging), and every
        built-in FTL overrides it with a batched resolution.
        """
        if npages <= 0:
            raise ValueError("npages must be positive")
        return [self.translate(lpa + offset) for offset in range(npages)]

    @abc.abstractmethod
    def update_batch(self, mappings: Sequence[Tuple[int, int]]) -> None:
        """Record freshly written ``(lpa, ppa)`` pairs (buffer flush or GC).

        The pairs arrive in programming order: when the write buffer is
        flushed LPA-sorted (the default), both LPAs and PPAs are ascending.
        """

    def update(self, lpa: int, ppa: int) -> None:
        """Record a single mapping; convenience wrapper over update_batch."""
        self.update_batch([(lpa, ppa)])

    @abc.abstractmethod
    def exists(self, lpa: int) -> bool:
        """True when the FTL has a mapping for ``lpa``."""

    # ------------------------------------------------------------------ #
    # Memory accounting
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def resident_bytes(self) -> int:
        """Bytes of controller DRAM the mapping structures currently occupy."""

    @abc.abstractmethod
    def full_mapping_bytes(self) -> int:
        """Bytes needed to keep the *entire* mapping structure in DRAM.

        This is the quantity compared in Figures 15 and 19 of the paper: it
        ignores any caching budget and measures how compactly each scheme
        can represent all live mappings.
        """

    # ------------------------------------------------------------------ #
    # Hooks with default implementations
    # ------------------------------------------------------------------ #
    def invalidate(self, lpa: int) -> None:
        """Forget the mapping for ``lpa`` (TRIM).  Optional."""

    def maintenance(self) -> None:
        """Periodic background work (e.g. LeaFTL segment compaction)."""

    def mapped_lpa_count(self) -> Optional[int]:
        """Number of live LPAs the FTL believes are mapped, if tracked."""
        return None

    def rebuild_from_oob(self, mappings: Sequence[Tuple[int, int]]) -> None:
        """Reconstruct the mapping table from an OOB reverse-mapping scan.

        ``mappings`` holds the ``(lpa, ppa)`` pair of every VALID flash page
        in PPA order — the ground truth a post-crash scan recovers from the
        durable substrate.  Implementations must discard ALL in-DRAM mapping
        state (a power failure already destroyed it) and rebuild from the
        pairs alone, without charging translation counters: the recovery
        driver accounts the scan's flash reads itself, and the rebuild is a
        pure in-memory reconstruction.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support OOB-scan recovery"
        )

    def describe(self) -> Dict[str, float]:
        """Implementation-specific metrics for reports (may be extended)."""
        return {
            "lookups": float(self.stats.lookups),
            "updates": float(self.stats.updates),
            "translation_page_reads": float(self.stats.translation_page_reads),
            "translation_page_writes": float(self.stats.translation_page_writes),
            "mispredictions": float(self.stats.mispredictions),
            "resident_bytes": float(self.resident_bytes()),
            "full_mapping_bytes": float(self.full_mapping_bytes()),
        }
