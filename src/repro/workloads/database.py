"""Database / filesystem workload generators (real-SSD evaluation, Table 2).

The paper validates LeaFTL on a real open-channel SSD with FileBench (OLTP,
CompFlow) and BenchBase-on-MySQL (TPC-C, AuctionMark, SEATS) running on
ext4.  Those workloads cannot run inside this repository, so each generator
below models the block-level traffic such an application produces on top of
a filesystem:

* **TPC-C**: skewed random point updates to table/index pages, a strictly
  sequential redo log, and occasional page-split bursts (strided writes).
* **AuctionMark**: similar to TPC-C but with a larger read fraction and a
  hotter skew (popular auctions).
* **SEATS**: read-dominated point lookups with periodic batch updates.
* **OLTP (FileBench)**: many small synchronous writes to data files plus a
  sequential log and moderate reads.
* **CompFlow (FileBench)**: large sequential file reads and writes typical
  of a computation pipeline, with a small metadata-update component.

Each generator emits a :class:`repro.workloads.trace.Trace` and is
deterministic given its seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from repro.workloads.synthetic import zipf_lpa
from repro.workloads.trace import IORequest, READ, Trace, WRITE


@dataclass(frozen=True)
class DatabaseProfile:
    """Parameters shared by the database-style generators."""

    name: str
    #: Pages of the database/file region (tables + indexes).
    data_pages: int
    #: Pages reserved at the top of the address space for the log.
    log_pages: int
    #: Total number of requests to generate.
    num_requests: int
    #: Fraction of requests that are reads.
    read_ratio: float
    #: Fraction of write requests that append to the log.
    log_write_fraction: float
    #: Zipf skew of point accesses.
    zipf_alpha: float
    #: Mean pages per table scan / batch read.
    mean_scan_pages: int
    #: Fraction of reads that are scans (rest are point reads).
    scan_fraction: float
    #: Pages per B-tree node (page-split bursts write this many strided pages).
    node_pages: int = 4
    #: Fraction of data writes that are page-split bursts.
    split_fraction: float = 0.15
    seed: int = 31

    @property
    def total_pages(self) -> int:
        return self.data_pages + self.log_pages


DATABASE_PROFILES: Dict[str, DatabaseProfile] = {
    "TPCC": DatabaseProfile(
        name="TPCC",
        data_pages=240_000,
        log_pages=40_000,
        num_requests=60_000,
        read_ratio=0.45,
        log_write_fraction=0.35,
        zipf_alpha=0.8,
        mean_scan_pages=16,
        scan_fraction=0.2,
        seed=31,
    ),
    "AMark": DatabaseProfile(
        name="AMark",
        data_pages=200_000,
        log_pages=30_000,
        num_requests=60_000,
        read_ratio=0.55,
        log_write_fraction=0.30,
        zipf_alpha=0.9,
        mean_scan_pages=12,
        scan_fraction=0.25,
        seed=32,
    ),
    "SEATS": DatabaseProfile(
        name="SEATS",
        data_pages=180_000,
        log_pages=25_000,
        num_requests=60_000,
        read_ratio=0.70,
        log_write_fraction=0.30,
        zipf_alpha=0.85,
        mean_scan_pages=10,
        scan_fraction=0.30,
        seed=33,
    ),
    "OLTP": DatabaseProfile(
        name="OLTP",
        data_pages=160_000,
        log_pages=30_000,
        num_requests=60_000,
        read_ratio=0.40,
        log_write_fraction=0.40,
        zipf_alpha=0.75,
        mean_scan_pages=8,
        scan_fraction=0.15,
        seed=34,
    ),
    "CompF": DatabaseProfile(
        name="CompF",
        data_pages=280_000,
        log_pages=10_000,
        num_requests=60_000,
        read_ratio=0.50,
        log_write_fraction=0.05,
        zipf_alpha=0.4,
        mean_scan_pages=64,
        scan_fraction=0.7,
        split_fraction=0.05,
        seed=35,
    ),
}

DATABASE_WORKLOAD_NAMES: List[str] = list(DATABASE_PROFILES)

#: Human-readable descriptions mirroring Table 2 of the paper.
DATABASE_WORKLOAD_DESCRIPTIONS: Dict[str, str] = {
    "OLTP": "Transactional benchmark in the FileBench suite.",
    "CompF": "File accesses in a computation flow (FileBench CompFlow).",
    "TPCC": "Online transaction queries in warehouses (BenchBase TPC-C).",
    "AMark": "Activity queries in an auction site (BenchBase AuctionMark).",
    "SEATS": "Airline ticketing system queries (BenchBase SEATS).",
}


class DatabaseWorkload:
    """Generates block-level traffic shaped like a database on a filesystem."""

    def __init__(self, profile: DatabaseProfile) -> None:
        self.profile = profile
        self._rng = random.Random(profile.seed)
        self._log_head = profile.data_pages
        #: Extents written so far (used to target reads at live data).
        self._written_extents: List[int] = []

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def generate(self) -> Trace:
        profile = self.profile
        requests: List[IORequest] = []
        reads_emitted = 0
        while len(requests) < profile.num_requests:
            total = len(requests) or 1
            behind_on_reads = reads_emitted / total < profile.read_ratio
            if behind_on_reads and self._written_extents:
                requests.append(self._read())
                reads_emitted += 1
            else:
                requests.extend(self._write())
        return Trace(profile.name, requests[: profile.num_requests])

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    def _read(self) -> IORequest:
        profile = self.profile
        rng = self._rng
        if rng.random() < profile.scan_fraction:
            start = rng.choice(self._written_extents)
            npages = max(1, int(rng.expovariate(1.0 / profile.mean_scan_pages)))
            return IORequest(READ, start, min(npages, 128))
        if rng.random() < 0.6:
            # Re-read a recently touched record (buffer-pool style locality).
            lpa = rng.choice(self._written_extents)
        else:
            lpa = zipf_lpa(rng, profile.data_pages, profile.zipf_alpha)
        return IORequest(READ, lpa, 1)

    # ------------------------------------------------------------------ #
    # Writes
    # ------------------------------------------------------------------ #
    def _write(self) -> List[IORequest]:
        profile = self.profile
        rng = self._rng
        if rng.random() < profile.log_write_fraction:
            return [self._log_append()]
        if rng.random() < profile.split_fraction:
            return self._page_split()
        return [self._point_update()]

    def _log_append(self) -> IORequest:
        profile = self.profile
        rng = self._rng
        npages = rng.randint(1, 8)
        if self._log_head + npages >= profile.total_pages:
            self._log_head = profile.data_pages
        request = IORequest(WRITE, self._log_head, npages)
        self._log_head += npages
        return request

    def _point_update(self) -> IORequest:
        profile = self.profile
        lpa = zipf_lpa(self._rng, profile.data_pages, profile.zipf_alpha)
        self._remember(lpa)
        return IORequest(WRITE, lpa, self._rng.randint(1, 2))

    def _page_split(self) -> List[IORequest]:
        """A B-tree node split: several node-sized writes at a regular stride."""
        profile = self.profile
        rng = self._rng
        base = zipf_lpa(rng, profile.data_pages, profile.zipf_alpha / 2)
        stride = profile.node_pages * rng.randint(2, 4)
        count = rng.randint(4, 16)
        requests = []
        for i in range(count):
            lpa = base + i * stride
            if lpa + profile.node_pages >= profile.data_pages:
                break
            requests.append(IORequest(WRITE, lpa, profile.node_pages))
            self._remember(lpa)
        return requests or [self._point_update()]

    def _remember(self, lpa: int) -> None:
        self._written_extents.append(lpa)
        if len(self._written_extents) > 1024:
            del self._written_extents[: len(self._written_extents) // 2]


def database_profile(name: str) -> DatabaseProfile:
    if name not in DATABASE_PROFILES:
        raise KeyError(
            f"unknown database workload {name!r}; known: {DATABASE_WORKLOAD_NAMES}"
        )
    return DATABASE_PROFILES[name]


def database_workload(name: str, request_scale: float = 1.0) -> Trace:
    """Generate the trace of one database-style workload."""
    profile = database_profile(name)
    if request_scale != 1.0:
        profile = DatabaseProfile(
            **{
                **profile.__dict__,
                "num_requests": max(100, int(profile.num_requests * request_scale)),
            }
        )
    return DatabaseWorkload(profile).generate()
