"""Sim-time request/GC/NAND tracing with Chrome trace-event export.

The :class:`Tracer` hangs off the event loop's observer hook
(:meth:`repro.sim.events.EventLoop.chain_observer`) and reconstructs what
the discrete-event simulation *did* — per-request lifecycle spans from
``request_issue`` to ``request_complete``, the background GC pipeline's
read / migrate / erase stages, translation-page flash traffic and (via the
NAND scheduler's probe hook) every channel-bus reservation — into a file
``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_ load
directly.

Design constraints, in order:

* **Never perturb the simulation.**  The tracer schedules no events,
  reserves no resources and reads only simulated clocks (simlint SIM001
  applies to this module), so ``repro.verify`` digests are identical with
  tracing on or off.
* **Deterministic output.**  Spans are correlated by object identity
  *internally*, but everything emitted — thread ids, span names, argument
  dictionaries — derives from deterministic slot numbering and request
  fields, so two runs of the same seed export byte-identical JSON.
* **Bounded memory.**  Closed spans and instants land in a ring buffer
  (``deque(maxlen=...)``); a trace of a billion-event replay keeps the
  last ``capacity`` records and counts the rest in :attr:`dropped`.
  Because the ring holds only *closed* spans, eviction can never orphan a
  "B" without its "E": begin/end pairs are generated at export time from
  whole records, so the exported stream is balanced by construction.

Track layout (one process, fixed thread ids):

========  =====================================================
tid       track
========  =====================================================
1         ``device`` — rate-limit retries, checkpoints, instants
2         ``arrivals`` — open-loop request arrivals
3         ``gc`` — background GC pipeline stages
4         ``background`` — flush/GC/wear completion instants
5         ``translate`` — translation-page flash I/O (may overlap)
6         ``recovery`` — power-fail recovery phases (scan / replay)
10 + c    ``ch<c>`` — NAND channel-bus reservations
100 + s   ``io-slot-<s>`` — request lifecycle spans (slot = NCQ slot)
========  =====================================================

Request spans additionally carry the device's critical-path breakdown in
their ``args`` (``breakdown``: component -> microseconds, ``device_us``:
in-device latency) when the device computes one — the raw material of
:mod:`repro.obs.analyze`.
"""

from __future__ import annotations

import heapq
import json
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.sim.events import Event

#: Fixed thread ids of the named tracks (see module docstring).
_TID_DEVICE = 1
_TID_ARRIVALS = 2
_TID_GC = 3
_TID_BACKGROUND = 4
_TID_TRANSLATE = 5
_TID_RECOVERY = 6
_TID_CHANNEL_BASE = 10
_TID_SLOT_BASE = 100

#: Default ring-buffer capacity (closed spans + instants retained).
DEFAULT_TRACE_CAPACITY = 200_000

#: Export sort rank per phase: at equal timestamps, span *ends* must
#: precede span *begins* on the same track for begin/end nesting to hold.
_PHASE_RANK = {"E": 0, "i": 1, "X": 1, "B": 2}


class Tracer:
    """Reconstructs lifecycle spans from the processed-event stream."""

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        #: Closed records: ``(phase, tid, start_us, dur_us, name, args)``
        #: where phase is "span" (export as B/E), "x" (export as X) or
        #: "instant" (export as i).  dur_us is 0.0 for instants.
        self._records: Deque[Tuple[str, int, float, float, str, Optional[Dict[str, Any]]]] = deque(
            maxlen=capacity
        )
        self._appended = 0
        #: id(request) -> (slot, issue_ts, name, args) for in-flight spans.
        self._active: Dict[int, Tuple[int, float, str, Dict[str, Any]]] = {}
        #: Min-heap of freed NCQ slot numbers (smallest reused first, so
        #: slot assignment is a deterministic function of the event order).
        self._free_slots: List[int] = []
        self._next_slot = 0
        self.max_slots = 0
        #: Open GC stage: ``(span name, start_ts, victim block)`` or None.
        self._gc_open: Optional[Tuple[str, float, Optional[int]]] = None
        #: ``id(request)`` of the most recently issued request.  The device
        #: submits synchronously inside the ``request_issue`` callback (the
        #: tracer's observer runs first), so a breakdown arriving mid-submit
        #: belongs to this span; any completion clears it.
        self._last_issued: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def recorded(self) -> int:
        """Records currently retained in the ring buffer."""
        return len(self._records)

    @property
    def dropped(self) -> int:
        """Records evicted by the ring buffer's capacity bound."""
        return self._appended - len(self._records)

    # ------------------------------------------------------------------ #
    # Record plumbing
    # ------------------------------------------------------------------ #
    def _add(
        self,
        phase: str,
        tid: int,
        start_us: float,
        dur_us: float,
        name: str,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        self._records.append((phase, tid, start_us, dur_us, name, args))
        self._appended += 1

    # ------------------------------------------------------------------ #
    # Event-loop observer
    # ------------------------------------------------------------------ #
    def observe(self, event: Event) -> None:
        """Event-loop observer: dispatch on the event kind.

        Attach via :meth:`repro.sim.events.EventLoop.chain_observer`; runs
        before the event's callback, while its payload is still intact.
        """
        kind = event.kind
        if kind == "request_issue":
            self._on_issue(event)
        elif kind == "request_complete":
            self._on_complete(event)
        elif kind == "request_arrival":
            self._on_arrival(event)
        elif kind in ("gc_step", "gc_program", "gc_erase"):
            self._on_gc(kind, event)
        elif kind.endswith("_done"):
            self._add("instant", _TID_BACKGROUND, event.time_us, 0.0, kind)
        else:
            self._add("instant", _TID_DEVICE, event.time_us, 0.0, kind)

    @staticmethod
    def _request_of(payload: Any) -> Tuple[Any, Optional[Any], Optional[float]]:
        """``(request, queue, ready_us)`` from either frontend's payload.

        Single-queue frontends carry the bare ``IORequest``; the
        multi-queue frontend carries ``(queue, request, ready_us)``.
        """
        if isinstance(payload, tuple):
            if len(payload) == 3:
                queue, request, ready_us = payload
                return request, queue, ready_us
            if len(payload) == 2:
                queue, request = payload
                return request, queue, None
        return payload, None, None

    def _on_issue(self, event: Event) -> None:
        request, queue, ready_us = self._request_of(event.payload)
        if request is None:
            return
        if self._free_slots:
            slot = heapq.heappop(self._free_slots)
        else:
            slot = self._next_slot
            self._next_slot += 1
            self.max_slots = self._next_slot
        op = getattr(request, "op", "?")
        args: Dict[str, Any] = {
            "lpa": getattr(request, "lpa", -1),
            "npages": getattr(request, "npages", 0),
        }
        if queue is not None:
            args["queue"] = getattr(queue, "name", str(queue))
        if ready_us is not None:
            args["queue_wait_us"] = max(0.0, event.time_us - ready_us)
        self._active[id(request)] = (slot, event.time_us, op, args)
        self._last_issued = id(request)

    def _on_complete(self, event: Event) -> None:
        request, _queue, _ready_us = self._request_of(event.payload)
        if request is None:
            return
        self._last_issued = None
        opened = self._active.pop(id(request), None)
        if opened is None:
            return
        slot, start, name, args = opened
        self._add("span", _TID_SLOT_BASE + slot, start, event.time_us - start, name, args)
        heapq.heappush(self._free_slots, slot)

    def _on_arrival(self, event: Event) -> None:
        request, queue, _ready = self._request_of(event.payload)
        name = getattr(request, "op", "arrival")
        args: Optional[Dict[str, Any]] = None
        if queue is not None:
            args = {"queue": getattr(queue, "name", str(queue))}
        self._add("instant", _TID_ARRIVALS, event.time_us, 0.0, name, args)

    def _on_gc(self, kind: str, event: Event) -> None:
        """GC pipeline state machine (one victim in flight at a time).

        ``gc_step`` selects (closing the previous victim's erase stage),
        ``gc_program`` fires at the reads' completion (closing ``gc_read``),
        ``gc_erase`` fires at the programs' completion (closing
        ``gc_migrate``).  A stage left open when the pipeline stops is
        simply never closed — and therefore never exported.
        """
        now = event.time_us
        block = event.payload if isinstance(event.payload, int) else None
        open_stage = self._gc_open
        if open_stage is not None:
            name, start, open_block = open_stage
            expected = {"gc_program": "gc_read", "gc_erase": "gc_migrate", "gc_step": "gc_erase"}[kind]
            if name == expected:
                args = None if open_block is None else {"block": open_block}
                self._add("span", _TID_GC, start, now - start, name, args)
        if kind == "gc_step":
            self._gc_open = ("gc_read", now, None)
        elif kind == "gc_program":
            self._gc_open = ("gc_migrate", now, block)
        else:  # gc_erase
            self._gc_open = ("gc_erase", now, block)

    # ------------------------------------------------------------------ #
    # Out-of-band probes (no event exists for these)
    # ------------------------------------------------------------------ #
    def nand_op(self, channel: int, start_us: float, finish_us: float) -> None:
        """NAND scheduler probe: one channel-bus reservation.

        Install as :attr:`repro.sim.nand.NANDScheduler.probe`.  Channel-bus
        reservations never overlap within a channel, but an op issued at a
        busy instant *starts* in the past relative to later records, so
        these export as "X" complete events (no nesting requirement).
        """
        self._add("x", _TID_CHANNEL_BASE + channel, start_us, finish_us - start_us, "nand")

    def note_translation(
        self, start_us: float, finish_us: float, reads: int, writes: int, foreground: bool
    ) -> None:
        """Translation-page flash I/O performed by the FTL (DFTL/SFTL).

        Foreground fetches are spans serial with the host read; background
        charges complete at their channels, so they render as instants.
        """
        args = {"reads": reads, "writes": writes}
        if foreground and finish_us > start_us:
            self._add("x", _TID_TRANSLATE, start_us, finish_us - start_us, "translate", args)
        else:
            self._add("instant", _TID_TRANSLATE, start_us, 0.0, "translate", args)

    def note_request_breakdown(
        self, components: Dict[str, float], total_us: float
    ) -> None:
        """Critical-path components of the request the device is serving.

        Called from inside :meth:`repro.ssd.ssd.SimulatedSSD.submit`, i.e.
        during the ``request_issue`` callback that follows :meth:`_on_issue`
        — the components attach to the span opened there.  Submissions that
        opened no span (the serial fast path, open-loop device replay)
        are silently dropped: there is no span to annotate.
        """
        last = self._last_issued
        if last is None:
            return
        opened = self._active.get(last)
        if opened is None:
            return
        args = opened[3]
        args["device_us"] = total_us
        if components:
            args["breakdown"] = dict(components)

    def note_recovery(
        self,
        name: str,
        start_us: float,
        finish_us: float,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """A power-fail recovery phase ran (:func:`repro.ssd.recovery.recover`).

        ``name`` is ``"recovery_scan"`` (full OOB scan) or
        ``"recovery_replay"`` (checkpoint restore + delta replay); the span
        covers the recovery I/O makespan on the ``recovery`` track.
        """
        self._add(
            "x", _TID_RECOVERY, start_us, max(0.0, finish_us - start_us), name, args
        )

    def note_checkpoint(self, start_us: float, finish_us: float, pages: int) -> None:
        """A mapping checkpoint was persisted (``MappingCheckpointer.take``)."""
        self._add(
            "x",
            _TID_DEVICE,
            start_us,
            max(0.0, finish_us - start_us),
            "checkpoint",
            {"pages": pages},
        )

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    @staticmethod
    def _thread_name(tid: int) -> str:
        if tid == _TID_DEVICE:
            return "device"
        if tid == _TID_ARRIVALS:
            return "arrivals"
        if tid == _TID_GC:
            return "gc"
        if tid == _TID_BACKGROUND:
            return "background"
        if tid == _TID_TRANSLATE:
            return "translate"
        if tid == _TID_RECOVERY:
            return "recovery"
        if _TID_CHANNEL_BASE <= tid < _TID_SLOT_BASE:
            return f"ch{tid - _TID_CHANNEL_BASE}"
        return f"io-slot-{tid - _TID_SLOT_BASE}"

    def trace_events(self) -> List[Dict[str, Any]]:
        """The Chrome trace-event list (metadata first, then sorted events).

        Events are ordered by ``(ts, phase rank, record order)`` with ends
        before begins at equal timestamps, so per-track begin/end stacks
        balance and nest; timestamps are the simulated microsecond clock.
        """
        keyed: List[Tuple[float, int, int, Dict[str, Any]]] = []
        tids = set()
        order = 0
        for phase, tid, start, dur, name, args in self._records:
            tids.add(tid)
            if phase == "span" and dur > 0.0:
                begin: Dict[str, Any] = {
                    "name": name, "ph": "B", "ts": start, "pid": 1, "tid": tid,
                }
                if args:
                    begin["args"] = args
                keyed.append((start, _PHASE_RANK["B"], order, begin))
                keyed.append(
                    (start + dur, _PHASE_RANK["E"], order + 1,
                     {"name": name, "ph": "E", "ts": start + dur, "pid": 1, "tid": tid})
                )
                order += 2
                continue
            if phase == "instant" or dur <= 0.0:
                entry = {
                    "name": name, "ph": "i", "ts": start, "pid": 1, "tid": tid, "s": "t",
                }
                if args:
                    entry["args"] = args
                keyed.append((start, _PHASE_RANK["i"], order, entry))
            else:
                entry = {
                    "name": name, "ph": "X", "ts": start, "dur": dur, "pid": 1, "tid": tid,
                }
                if args:
                    entry["args"] = args
                keyed.append((start, _PHASE_RANK["X"], order, entry))
            order += 1
        keyed.sort(key=lambda item: (item[0], item[1], item[2]))
        events: List[Dict[str, Any]] = [
            {
                "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
                "args": {"name": self._thread_name(tid)},
            }
            for tid in sorted(tids)
        ]
        events.extend(entry for _, _, _, entry in keyed)
        return events

    def to_chrome_trace(self) -> Dict[str, Any]:
        """The full Chrome trace object (load in chrome://tracing/Perfetto)."""
        return {
            "traceEvents": self.trace_events(),
            "displayTimeUnit": "ms",
            "otherData": {
                "clock": "simulated-us",
                "recorded": self.recorded,
                "dropped": self.dropped,
            },
        }

    def export_json(self, path: str) -> None:
        """Write the trace to ``path`` (deterministic bytes given a seed)."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome_trace(), handle, sort_keys=True, separators=(",", ":"))
            handle.write("\n")
