"""Event-driven simulation engine: event loop, NAND scheduling, host frontend.

This package supplies the concurrency substrate of the SSD model:

* :class:`repro.sim.events.EventLoop` — deterministic time-ordered queue;
* :class:`repro.sim.nand.NANDScheduler` — per-channel-bus / per-die timing;
* :class:`repro.sim.frontend.HostFrontend` — NCQ-style request admission.

:class:`repro.ssd.ssd.SimulatedSSD` uses these pieces when its
``queue_depth`` option exceeds 1 (or when the event engine is forced),
letting foreground reads genuinely overlap background flush and GC traffic.
"""

from repro.sim.events import Event, EventLoop, SimulationLimitError
from repro.sim.frontend import (
    FrontendStats,
    HostFrontend,
    OpenLoopFrontend,
    interleave_streams,
)
from repro.sim.nand import NANDScheduler, TIMING_MODELS

__all__ = [
    "Event",
    "EventLoop",
    "SimulationLimitError",
    "FrontendStats",
    "HostFrontend",
    "OpenLoopFrontend",
    "NANDScheduler",
    "TIMING_MODELS",
    "interleave_streams",
]
