"""Differential property test: GC-heavy replay vs an in-memory oracle.

Randomized overwrite-skewed workloads on a small, low-over-provisioning
device (GC constantly active) are replayed through every FTL scheme, across
queue depths and both GC scheduling modes.  An in-memory oracle tracks which
logical pages the host has written; after the replay the device must agree
with it on every read-back:

* reads of written pages resolve to a live flash page holding that LPA
  (strict mode raises on any unrecoverable translation, and the simulator
  verifies every translated read against the OOB reverse mapping);
* reads of never-written pages — and only those — are served as unmapped;
* the device's ground-truth page map covers exactly the oracle's pages, and
  flash validity accounting matches it page for page.

This is the harness that catches lost mappings, double-invalidations and
stale-migration bugs in the GC pipeline, whichever mapping scheme is active.
"""

from __future__ import annotations

import random
import zlib

import pytest

from repro.config import DRAMBudget, LeaFTLConfig, SSDConfig
from repro.core.leaftl import LeaFTL
from repro.ftl.dftl import DFTL
from repro.ftl.pagemap import PageLevelFTL
from repro.ftl.sftl import SFTL
from repro.ssd.ssd import SimulatedSSD, SSDOptions

#: Small device with little spare space: the workload keeps GC active.
CONFIG = SSDConfig.tiny(capacity_bytes=24 * 1024 * 1024, overprovisioning=0.10)

FTL_FACTORIES = {
    "LeaFTL-g4": lambda: LeaFTL(LeaFTLConfig(gamma=4, compaction_interval_writes=20_000)),
    "DFTL": lambda: DFTL(mapping_budget_bytes=64 * 1024),
    "SFTL": lambda: SFTL(mapping_budget_bytes=64 * 1024),
    "PageMap": lambda: PageLevelFTL(),
}


def gc_heavy_workload(seed: int, footprint: int, num_requests: int):
    """A fill pass + an overwrite-skewed mix; returns the oracle alongside.

    Writes are Zipf-like skewed (hot head), so block validity drains
    unevenly — the regime where victim selection and migration races
    actually matter.  Reads target previously written pages; the expected
    number of unmapped page reads (spans running past written data) is
    computed against the oracle while generating.
    """
    rng = random.Random(seed)
    requests = []
    written: set[int] = set()
    written_list: list[int] = []
    expected_unmapped = 0

    for lpa in range(0, footprint - 8, 8):
        requests.append(("W", lpa, 8))
        written.update(range(lpa, lpa + 8))
        written_list.append(lpa)

    for _ in range(num_requests):
        if rng.random() < 0.65 or not written_list:
            span = rng.randint(1, 8)
            lpa = int((rng.random() ** 4) * (footprint - span))
            requests.append(("W", lpa, span))
            written.update(range(lpa, lpa + span))
            written_list.append(lpa)
        else:
            span = rng.randint(1, 4)
            lpa = rng.choice(written_list)
            requests.append(("R", lpa, span))
            expected_unmapped += sum(
                1 for page in range(lpa, lpa + span) if page not in written
            )
    return requests, written, expected_unmapped


@pytest.mark.parametrize("gc_mode", ["sync", "background"])
@pytest.mark.parametrize("queue_depth", [1, 8])
@pytest.mark.parametrize("ftl_name", sorted(FTL_FACTORIES))
def test_gc_heavy_replay_agrees_with_oracle(ftl_name, queue_depth, gc_mode):
    # str hashes are salted per process; CRC32 keeps the per-combination
    # workload seed stable across runs and machines.
    seed = zlib.crc32(f"{ftl_name}/{queue_depth}/{gc_mode}".encode()) & 0xFFFF
    footprint = int(CONFIG.logical_pages * 0.9)
    requests, written, expected_unmapped = gc_heavy_workload(
        seed=seed, footprint=footprint, num_requests=2000
    )

    options = SSDOptions(
        queue_depth=queue_depth,
        gc_mode=gc_mode,
        # Background GC needs the event loop even at depth 1.
        engine="events" if gc_mode == "background" else "auto",
    )
    ssd = SimulatedSSD(
        CONFIG,
        FTL_FACTORIES[ftl_name](),
        dram_budget=DRAMBudget(dram_bytes=CONFIG.dram_size),
        options=options,
    )
    stats = ssd.run(requests)

    # The workload really kept GC busy (otherwise this test proves nothing).
    assert stats.gc_invocations > 0
    assert stats.gc_page_writes > 0
    if gc_mode == "background":
        assert stats.gc_background_runs > 0

    # Unmapped reads match the oracle exactly: no written page was lost and
    # no unwritten page was conjured, at any queue depth / GC mode.
    assert stats.unmapped_reads == expected_unmapped

    # Ground-truth page map covers exactly the oracle's pages...
    assert set(ssd._current_ppa) == written
    # ...and flash validity accounting agrees page for page.
    total_valid = sum(
        ssd.flash.valid_page_count(block)
        for block in range(ssd.flash.geometry.total_blocks)
    )
    assert total_valid == len(written)

    # Read back a sample of written pages through the FTL under test:
    # strict mode raises on unrecoverable translations, and none may be
    # served as unmapped.
    rng = random.Random(seed + 1)
    before = ssd.stats.unmapped_reads
    for lpa in rng.sample(sorted(written), 200):
        ssd.read(lpa)
    assert ssd.stats.unmapped_reads == before
