"""Synthetic workload generation.

The paper evaluates LeaFTL on MSR-Cambridge and FIU block traces (simulator)
and on FileBench/BenchBase database workloads (real SSD).  Those traces are
not redistributable, so this module generates synthetic traces whose *access
patterns* exercise the same code paths and reproduce the qualitative
properties the paper reports:

* long strictly-sequential runs (pattern A in Figure 1) — condensable by
  both SFTL and LeaFTL;
* regular strided runs (pattern B) — condensable only by LeaFTL's accurate
  segments;
* irregular, approximately-linear runs (pattern C) — condensable only by
  LeaFTL's approximate segments (gamma > 0);
* skewed random accesses (hotspots) — the worst case, where LeaFTL degrades
  to single-point segments;
* read/write mixes and footprints that differ per named workload profile.

Every generator is deterministic given its seed.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.workloads.trace import IORequest, READ, Trace, WRITE


# --------------------------------------------------------------------------- #
# Low-level pattern generators
# --------------------------------------------------------------------------- #
def sequential_run(start_lpa: int, length: int) -> List[int]:
    """Pattern A: ``length`` consecutive LPAs."""
    return list(range(start_lpa, start_lpa + length))

def strided_run(start_lpa: int, stride: int, count: int) -> List[int]:
    """Pattern B: ``count`` LPAs separated by a regular ``stride``."""
    return list(range(start_lpa, start_lpa + stride * count, stride))

def jittered_run(
    start_lpa: int, length: int, rng: random.Random, skip_probability: float = 0.2
) -> List[int]:
    """Pattern C: a mostly-sequential run with irregular small gaps.

    The resulting LPAs are monotonically increasing but not regularly
    spaced; fitted against consecutive PPAs they stay within a small error
    bound, which is exactly what approximate segments capture.
    """
    lpas: List[int] = []
    lpa = start_lpa
    for _ in range(length):
        lpas.append(lpa)
        lpa += 1
        if rng.random() < skip_probability:
            lpa += rng.randint(1, 3)
    return lpas

def zipf_lpa(rng: random.Random, footprint: int, alpha: float) -> int:
    """A Zipf-skewed LPA in ``[0, footprint)`` (smaller LPAs are hotter).

    Uses the inverse-CDF approximation ``u^(1/(1-alpha))`` which is cheap
    and adequate for generating hotspot traffic.
    """
    if alpha <= 0.0:
        return rng.randrange(footprint)
    exponent = 1.0 / (1.0 - min(alpha, 0.99))
    u = rng.random()
    position = int((u ** exponent) * footprint)
    return min(footprint - 1, position)


# --------------------------------------------------------------------------- #
# Profiles
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class WorkloadProfile:
    """Knobs describing a synthetic workload's access-pattern mix.

    The four pattern fractions apply to *write* traffic; reads follow the
    written working set with the configured skew (so that reads mostly hit
    previously written, cache-able data, as in the original traces).
    """

    name: str
    #: Distinct LPAs the workload touches.
    footprint_pages: int
    #: Total number of requests to generate.
    num_requests: int
    #: Fraction of requests that are reads.
    read_ratio: float
    #: Write-pattern mix; the four fractions should sum to 1.
    sequential_fraction: float = 0.4
    strided_fraction: float = 0.2
    jittered_fraction: float = 0.2
    random_fraction: float = 0.2
    #: Mean length (pages) of sequential / jittered runs.
    mean_run_length: int = 32
    #: Stride values used by strided runs.
    strides: Tuple[int, ...] = (2, 3, 4, 8)
    #: Mean number of points in a strided run.
    mean_stride_count: int = 24
    #: Zipf skew of random accesses and point reads (0 = uniform).
    zipf_alpha: float = 0.7
    #: Mean request size in pages for reads.
    mean_read_pages: int = 8
    #: Random seed (combined with the name for determinism).
    seed: int = 1

    def __post_init__(self) -> None:
        total = (
            self.sequential_fraction
            + self.strided_fraction
            + self.jittered_fraction
            + self.random_fraction
        )
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"pattern fractions of {self.name} sum to {total}, not 1")
        if not 0.0 <= self.read_ratio <= 1.0:
            raise ValueError("read_ratio must be in [0, 1]")
        if self.footprint_pages <= 0 or self.num_requests <= 0:
            raise ValueError("footprint_pages and num_requests must be positive")

    def scaled(self, request_scale: float = 1.0, footprint_scale: float = 1.0) -> "WorkloadProfile":
        """A copy with the request count and footprint scaled."""
        return WorkloadProfile(
            name=self.name,
            footprint_pages=max(1024, int(self.footprint_pages * footprint_scale)),
            num_requests=max(100, int(self.num_requests * request_scale)),
            read_ratio=self.read_ratio,
            sequential_fraction=self.sequential_fraction,
            strided_fraction=self.strided_fraction,
            jittered_fraction=self.jittered_fraction,
            random_fraction=self.random_fraction,
            mean_run_length=self.mean_run_length,
            strides=self.strides,
            mean_stride_count=self.mean_stride_count,
            zipf_alpha=self.zipf_alpha,
            mean_read_pages=self.mean_read_pages,
            seed=self.seed,
        )


class SyntheticWorkload:
    """Generates a :class:`Trace` from a :class:`WorkloadProfile`."""

    def __init__(self, profile: WorkloadProfile) -> None:
        self.profile = profile
        # Python's str hash is salted per process (PYTHONHASHSEED), so it
        # would make every process generate a different trace; CRC32 keeps
        # the name-derived seed stable across runs and machines.
        name_hash = zlib.crc32(profile.name.encode("utf-8"))
        self._rng = random.Random((name_hash & 0xFFFF) ^ profile.seed)
        #: Regions written so far; reads are drawn from them.
        self._written_regions: List[Tuple[int, int]] = []

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def generate(self) -> Trace:
        """Produce the full trace for this profile.

        Reads and writes are interleaved so that the *request-level* read
        ratio converges to the profile's ``read_ratio`` even though write
        bursts emit several requests per decision.
        """
        profile = self.profile
        requests: List[IORequest] = []
        reads_emitted = 0
        while len(requests) < profile.num_requests:
            total = len(requests) or 1
            behind_on_reads = reads_emitted / total < profile.read_ratio
            if behind_on_reads and self._written_regions:
                emitted = self._read_request()
                reads_emitted += len(emitted)
            else:
                emitted = self._write_request()
            requests.extend(emitted)
        return Trace(profile.name, requests[: profile.num_requests])

    # ------------------------------------------------------------------ #
    # Writes
    # ------------------------------------------------------------------ #
    def _write_request(self) -> List[IORequest]:
        profile = self.profile
        rng = self._rng
        choice = rng.random()
        if choice < profile.sequential_fraction:
            lpas = self._sequential_write()
        elif choice < profile.sequential_fraction + profile.strided_fraction:
            lpas = self._strided_write()
        elif (
            choice
            < profile.sequential_fraction
            + profile.strided_fraction
            + profile.jittered_fraction
        ):
            lpas = self._jittered_write()
        else:
            lpas = self._random_write()
        if not lpas:
            return []
        self._remember_region(min(lpas), max(lpas))
        return self._lpas_to_requests(lpas, WRITE)

    def _sequential_write(self) -> List[int]:
        length = max(1, int(self._rng.expovariate(1.0 / self.profile.mean_run_length)))
        length = min(length, 512)
        start = self._pick_start(length)
        return sequential_run(start, length)

    def _strided_write(self) -> List[int]:
        stride = self._rng.choice(self.profile.strides)
        count = max(2, int(self._rng.expovariate(1.0 / self.profile.mean_stride_count)))
        count = min(count, 256 // stride if stride else 256)
        start = self._pick_start(stride * count)
        return strided_run(start, stride, count)

    def _jittered_write(self) -> List[int]:
        length = max(2, int(self._rng.expovariate(1.0 / self.profile.mean_run_length)))
        length = min(length, 256)
        start = self._pick_start(length * 2)
        return jittered_run(start, length, self._rng)

    def _random_write(self) -> List[int]:
        count = self._rng.randint(1, 4)
        footprint = self.profile.footprint_pages
        return [
            zipf_lpa(self._rng, footprint, self.profile.zipf_alpha) for _ in range(count)
        ]

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    def _read_request(self) -> List[IORequest]:
        profile = self.profile
        rng = self._rng
        region_start, region_end = rng.choice(self._written_regions)
        span = max(1, region_end - region_start + 1)
        npages = max(1, int(rng.expovariate(1.0 / profile.mean_read_pages)))
        npages = min(npages, 64)
        if rng.random() < 0.75:
            # Locality read within a recently written region (these regions
            # are small and hot, so they reward a larger data cache).
            lpa = region_start + rng.randrange(span)
        else:
            # Skewed point read over the whole footprint.
            lpa = zipf_lpa(rng, profile.footprint_pages, profile.zipf_alpha)
        return [IORequest(READ, lpa, npages)]

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _pick_start(self, span: int) -> int:
        footprint = self.profile.footprint_pages
        upper = max(1, footprint - span - 1)
        if self._rng.random() < 0.3 and self._written_regions:
            # Revisit an existing region (overwrite traffic).
            region_start, _ = self._rng.choice(self._written_regions)
            return min(region_start, upper)
        return self._rng.randrange(upper)

    def _remember_region(self, start: int, end: int) -> None:
        self._written_regions.append((start, end))
        if len(self._written_regions) > 512:
            del self._written_regions[: len(self._written_regions) // 2]

    def _lpas_to_requests(self, lpas: Sequence[int], op: str) -> List[IORequest]:
        """Coalesce consecutive LPAs into multi-page requests."""
        requests: List[IORequest] = []
        run_start = lpas[0]
        previous = lpas[0]
        for lpa in lpas[1:]:
            if lpa == previous + 1:
                previous = lpa
                continue
            requests.append(IORequest(op, run_start, previous - run_start + 1))
            run_start = lpa
            previous = lpa
        requests.append(IORequest(op, run_start, previous - run_start + 1))
        return requests


def generate(profile: WorkloadProfile) -> Trace:
    """Convenience wrapper: build the trace for ``profile``."""
    return SyntheticWorkload(profile).generate()
