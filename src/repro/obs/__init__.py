"""Observability: sim-time tracing, metrics time-series, counter registry.

Three always-available, zero-cost-when-disabled layers over the simulator:

* :mod:`repro.obs.tracing` — :class:`Tracer` reconstructs per-request /
  GC / NAND lifecycle spans from the event stream and exports Chrome
  trace-event JSON (load in Perfetto or ``chrome://tracing``);
* :mod:`repro.obs.metrics` — :class:`MetricsSampler` snapshots device
  gauges on a simulated-time interval into a columnar series (CSV/JSON);
* :mod:`repro.obs.registry` — :func:`device_snapshot` walks every
  registered ``*Stats`` dataclass into one flat namespaced
  :class:`CounterSnapshot` with a delta API.

Two pure post-processing layers turn those artifacts into explanations:

* :mod:`repro.obs.analyze` — per-percentile critical-path latency
  attribution (:func:`analyze_artifacts`), tail-blame clustering, the
  per-namespace SLO scorecard (:func:`namespace_scorecard`) and the run
  differ (:func:`diff_runs` / :func:`diff_counters`);
* :mod:`repro.obs.report` — deterministic markdown renderers for the
  analyzer and differ reports.

Enable per run via ``SSDOptions(telemetry="on")`` /
``ExperimentSetup(telemetry="on")`` or :func:`attach_telemetry`; run
``python -m repro.obs run --scenario multi_tenant --out DIR`` for a
ready-made traced scenario, then ``python -m repro.obs analyze DIR`` and
``python -m repro.obs diff DIR_A DIR_B`` over the artifacts.  Observers
never perturb scheduling: ``repro.verify`` digests are identical with
telemetry on or off.
"""

from repro.obs.analyze import (
    ArtifactError,
    analyze_artifacts,
    attribute_requests,
    diff_counters,
    diff_metrics,
    diff_runs,
    load_artifacts,
    namespace_scorecard,
    request_spans,
    tail_blame,
)
from repro.obs.metrics import DEFAULT_METRICS_INTERVAL_US, MetricsSampler
from repro.obs.registry import (
    CounterSnapshot,
    EXCLUDED_FIELDS,
    REGISTERED_STATS,
    device_snapshot,
    snapshot_stats,
)
from repro.obs.session import (
    TELEMETRY_MODES,
    Telemetry,
    TelemetryConfig,
    attach_telemetry,
)
from repro.obs.report import render_diff, render_report
from repro.obs.tracing import DEFAULT_TRACE_CAPACITY, Tracer

__all__ = [
    "ArtifactError",
    "CounterSnapshot",
    "DEFAULT_METRICS_INTERVAL_US",
    "DEFAULT_TRACE_CAPACITY",
    "EXCLUDED_FIELDS",
    "MetricsSampler",
    "REGISTERED_STATS",
    "TELEMETRY_MODES",
    "Telemetry",
    "TelemetryConfig",
    "Tracer",
    "analyze_artifacts",
    "attach_telemetry",
    "attribute_requests",
    "device_snapshot",
    "diff_counters",
    "diff_metrics",
    "diff_runs",
    "load_artifacts",
    "namespace_scorecard",
    "render_diff",
    "render_report",
    "request_spans",
    "snapshot_stats",
    "tail_blame",
]
