#!/usr/bin/env python3
"""Guided tour of the device telemetry layer (``repro.obs``).

Run with::

    PYTHONPATH=src python examples/telemetry_tour.py [--out telemetry/]

A simulator answers "how much" with its end-of-run counters; telemetry
answers "when" and "where".  This example runs the GC-contended
two-tenant verify scenario with all three collectors enabled and walks
through what each one saw:

* **Tracer** — per-request lifecycle spans, NAND bus occupations and
  the GC pipeline, exported as Chrome trace-event JSON.  Open the
  written ``trace.json`` at https://ui.perfetto.dev to scrub through
  the run on the simulated-microsecond clock.
* **MetricsSampler** — gauge time-series on a fixed sim-time interval;
  the free-block dip and channel-busy spike of a GC burst line up with
  the latency spike the tenants observed.
* **Counter registry** — every ``*Stats`` dataclass flattened into one
  namespaced snapshot with a delta API; the tour prints the counters
  that moved during the measured phase (via the run differ's
  ``diff_counters``).
* **Analyzer** (``repro.obs.analyze``) — the same artifacts
  post-processed into explanations: per-percentile critical-path
  latency attribution, tail-blame clustering and the per-namespace SLO
  scorecard, rendered into ``report.md`` next to the raw artifacts.

Everything here is observational: running this with telemetry on
produces bit-identical ``repro.verify`` digests to a plain run.
"""

from __future__ import annotations

import argparse
import os

from repro.experiments.multi_tenant import (
    build_tenant_host,
    reader_tenant,
    writer_tenant,
)
from repro.obs import (
    analyze_artifacts,
    attach_telemetry,
    device_snapshot,
    diff_counters,
    render_report,
    request_spans,
)
from repro.verify import VERIFY_ARBITER, verify_scenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default="telemetry",
        help="directory for trace/metrics/counters artifacts (default telemetry/)",
    )
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=1234)
    args = parser.parse_args()

    scenario = verify_scenario(seed=args.seed, scale=args.scale)
    ssd, host = build_tenant_host(scenario, VERIFY_ARBITER)
    telemetry = attach_telemetry(ssd, "on", host=host)
    before = device_snapshot(ssd, host=host)

    print("== Running the GC-contended two-tenant scenario (telemetry on) ==")
    host.run([reader_tenant(scenario), writer_tenant(scenario)])

    tracer = telemetry.tracer
    print(f"\n== Tracer: {tracer.recorded} records "
          f"({tracer.dropped} dropped by the ring buffer) ==")
    requests = []
    open_spans = {}
    for event in tracer.trace_events():
        if event["ph"] == "B" and event["name"] in ("R", "W"):
            open_spans[event["tid"]] = event
        elif event["ph"] == "E" and event["tid"] in open_spans:
            begin = open_spans.pop(event["tid"])
            requests.append((event["ts"] - begin["ts"], begin))
    for duration, begin in sorted(requests, reverse=True, key=lambda r: r[0])[:3]:
        print(f"  longest {begin['name']} request: {duration:.0f} us "
              f"at t={begin['ts']:.0f} us ({begin['args']})")

    sampler = telemetry.sampler
    print(f"\n== MetricsSampler: {sampler.samples} samples every "
          f"{sampler.interval_us:.0f} sim-us ==")
    free = sampler.series("free_blocks")
    busy = sampler.series("ch0_busy_frac")
    print(f"  free blocks: start {free[0]:.0f}, min {min(free):.0f}, "
          f"end {free[-1]:.0f}")
    print(f"  ch0 busy fraction: peak {max(busy):.2f}")
    print(f"  final sampled WAF {sampler.last('waf'):.3f} == "
          f"scalar stats WAF {ssd.stats.write_amplification:.3f}")

    after = device_snapshot(ssd, host=host)
    # The run differ doubles as a "what moved" lens within one run: diff
    # the before/after snapshots with base=0 semantics for new activity.
    diff = diff_counters(before.as_dict(), after.as_dict(), rel_threshold=0.05)
    movers = [
        row for row in diff["changed"] if not row["counter"].endswith("_us")
    ]
    print(f"\n== Counter registry: {len(movers)} counters moved ==")
    for row in movers[:12]:
        print(f"  {row['counter']:40s} {row['delta']:+.0f}")
    if len(movers) > 12:
        print(f"  ... and {len(movers) - 12} more")

    print("\n== Analyzer: where did the time go? ==")
    spans = request_spans(tracer.trace_events())
    report = analyze_artifacts(
        {
            "trace_events": tracer.trace_events(),
            "counters": after.delta(before).as_dict(),
            "metrics": None,
        }
    )
    for op, table in report["requests"]["ops"].items():
        p99 = table["levels"]["p99"]
        shares = ", ".join(
            f"{component} {entry['share']:.0%}"
            for component, entry in p99["components"].items()
            if entry["share"] >= 0.05
        )
        print(f"  {op}: p99 {p99['latency_us']:.0f} us — {shares}")
    top = report["tail_blame"]["clusters"][0]
    print(
        f"  tail blame: {top['component']} dominates {top['count']} of the "
        f"{report['tail_blame']['top_k']} slowest requests "
        f"({len(spans)} spans analyzed)"
    )

    os.makedirs(args.out, exist_ok=True)
    written = telemetry.write_artifacts(args.out)
    report_path = os.path.join(args.out, "report.md")
    with open(report_path, "w", encoding="utf-8") as handle:
        handle.write(render_report(report))
    written["report"] = report_path
    print("\n== Artifacts ==")
    for name, path in sorted(written.items()):
        print(f"  {name:12s} {path}")
    print("\nLoad the trace at https://ui.perfetto.dev — requests on "
          "io-slot tracks, NAND ops on chN tracks, GC on the gc track.  "
          "Re-analyze any artifact directory with `python -m repro.obs "
          "analyze DIR` and compare two runs with `python -m repro.obs "
          "diff DIR_A DIR_B`.")


if __name__ == "__main__":
    main()
