"""Record one replay-performance point into the in-tree trajectory file.

ROADMAP calls out that CI uploads benchmark JSONs as artifacts but tracks
nothing in-tree, so a perf regression (or win) has no committed baseline
to diff against.  This helper fills that gap: it measures simulator
*host* throughput — wall-clock events/sec and IOs/sec, not simulated
time — for the standard replay configurations, and appends the result to
``BENCH_replay.json`` at the repo root.  Commit the updated file with
any PR that materially changes replay performance::

    PYTHONPATH=src python benchmarks/record_trajectory.py --label "PR 6"

The configurations cover the three engines a replay can take plus the
multi-queue host path:

* ``qd1_serial``      — synchronous fast path (queue depth 1);
* ``qd8_events``      — closed-loop event engine at queue depth 8;
* ``open_loop``       — open-loop (timestamped) admission;
* ``multiqueue_wrr``  — two tenants through the WRR-arbitrated host
  interface with background GC.

Wall-clock reads are deliberate and confined to this script: simlint's
SIM001 bans them inside ``src/repro`` (simulated time only), while
measurement harnesses outside the simulator are exactly where they
belong.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

REPO = Path(__file__).resolve().parent.parent
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

from repro.experiments.common import (  # noqa: E402
    ExperimentSetup,
    build_ssd,
    precondition,
    steady_state_workload,
)
from repro.ssd.ssd import SimulatedSSD  # noqa: E402

DEFAULT_OUTPUT = REPO / "BENCH_replay.json"

#: Workload size at scale 1.0 (per configuration).
BASE_REQUESTS = 12_000


def _device(scheme: str = "LeaFTL", **overrides: object) -> SimulatedSSD:
    setup = ExperimentSetup(
        capacity_bytes=96 * 1024 * 1024,
        channels=4,
        dies_per_channel=4,
        pages_per_block=64,
        dram_bytes=1 * 1024 * 1024,
        warmup=False,
        **overrides,  # type: ignore[arg-type]
    )
    return build_ssd(scheme, setup)


def _aged_device(scale: float, **overrides: object) -> Tuple[SimulatedSSD, list]:
    """A preconditioned device plus its steady-state request list."""
    ssd = _device(**overrides)
    footprint = precondition(ssd, seed=11)
    requests = steady_state_workload(
        footprint, max(500, int(BASE_REQUESTS * scale)), seed=23, read_ratio=0.4
    )
    ssd.quiesce()
    ssd.begin_measurement()
    return ssd, requests


def _measure(run: Callable[[], SimulatedSSD]) -> Dict[str, object]:
    """Time one replay; returns wall-clock throughput metrics.

    Work counts come from the counter registry (one namespaced snapshot
    of every stats object) rather than hand-picked fields, so the
    denominator set stays in sync with whatever the simulator counts.
    The full snapshot rides along under ``counters`` so the perf smoke
    gate (``check_perf_smoke.py``) can diff a failing measurement against
    the committed baseline counter-by-counter via ``repro.obs.analyze``.
    """
    from repro.obs.registry import device_snapshot

    started = time.perf_counter()
    ssd = run()
    elapsed = max(time.perf_counter() - started, 1e-9)
    counters = device_snapshot(ssd)
    requests = counters["ssd.requests_completed"]
    events = counters["ssd.events_processed"]
    pages = counters["ssd.host_reads"] + counters["ssd.host_writes"]
    return {
        "wall_seconds": round(elapsed, 4),
        "requests": requests,
        "events": events,
        "ios_per_sec": round(requests / elapsed, 1),
        "events_per_sec": round(events / elapsed, 1),
        "pages_per_sec": round(pages / elapsed, 1),
        "counters": counters.as_dict(),
    }


def attribution_summary(scale: float = 0.4, seed: int = 1234) -> Dict[str, object]:
    """Latency-attribution fingerprint of the instrumented verify scenario.

    Runs the traced multi-tenant scenario once and reduces its request
    spans to the per-op p99 attribution plus the tail-blame clusters —
    the 'where does the time go' companion to the raw throughput numbers,
    so a committed trajectory point records not just how fast the replay
    was but which component dominated its tail.
    """
    from repro.obs import attribute_requests, request_spans, tail_blame
    from repro.obs.__main__ import run_multi_tenant

    ssd, telemetry = run_multi_tenant(scale=scale, seed=seed)
    spans = request_spans(telemetry.tracer.trace_events())
    attribution = attribute_requests(spans)
    summary: Dict[str, object] = {"scale": scale, "seed": seed, "ops": {}}
    for op, table in attribution["ops"].items():
        p99 = table["levels"]["p99"]
        summary["ops"][op] = {  # type: ignore[index]
            "count": table["count"],
            "p99_latency_us": round(p99["latency_us"], 3),
            "p99_dominant": p99["dominant"],
            "p99_shares": {
                component: round(entry["share"], 4)
                for component, entry in p99["components"].items()
                if entry["share"] >= 0.01
            },
        }
    blame = tail_blame(spans)
    summary["tail_blame"] = [
        {
            "component": cluster["component"],
            "count": cluster["count"],
            "mean_latency_us": round(cluster["mean_latency_us"], 3),
        }
        for cluster in blame["clusters"]
    ]
    return summary


def bench_qd1_serial(scale: float) -> Dict[str, object]:
    ssd, requests = _aged_device(scale, queue_depth=1)

    def run() -> SimulatedSSD:
        ssd.run(requests)
        return ssd

    return _measure(run)


def bench_qd8_events(scale: float) -> Dict[str, object]:
    ssd, requests = _aged_device(scale, queue_depth=8)

    def run() -> SimulatedSSD:
        ssd.run(requests)
        return ssd

    return _measure(run)


def bench_open_loop(scale: float) -> Dict[str, object]:
    from repro.workloads.trace import IORequest, Trace

    ssd, requests = _aged_device(scale, queue_depth=8, replay_mode="open")
    stamped = Trace(
        "open",
        [
            IORequest(op, lpa, npages, timestamp_us=index * 20.0)
            for index, (op, lpa, npages) in enumerate(requests)
        ],
    )

    def run() -> SimulatedSSD:
        ssd.run(stamped, replay_mode="open")
        return ssd

    return _measure(run)


def bench_multiqueue_wrr(scale: float) -> Dict[str, object]:
    from repro.verify import VERIFY_ARBITER, verify_scenario
    from repro.experiments.multi_tenant import (
        build_tenant_host,
        reader_tenant,
        writer_tenant,
    )

    scenario = verify_scenario(seed=1234, scale=scale)
    ssd, host = build_tenant_host(scenario, VERIFY_ARBITER)
    tenants = [reader_tenant(scenario), writer_tenant(scenario)]

    def run() -> SimulatedSSD:
        host.run(tenants)
        return ssd

    return _measure(run)


CONFIGS: Dict[str, Callable[[float], Dict[str, object]]] = {
    "qd1_serial": bench_qd1_serial,
    "qd8_events": bench_qd8_events,
    "open_loop": bench_open_loop,
    "multiqueue_wrr": bench_multiqueue_wrr,
}


def _profiled(name: str, bench: Callable[[float], Dict[str, object]], scale: float) -> Dict[str, object]:
    """Run one config under cProfile and print its top-25 cumulative functions.

    The wall-clock numbers of a profiled run are inflated by instrumentation
    overhead (roughly 2-3x), which is why ``--profile`` never writes to the
    trajectory file — the printout is for perf work, not the baseline.
    """
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    result = bench(scale)
    profiler.disable()
    print(f"  --- {name}: top 25 by cumulative time (instrumented) ---", flush=True)
    pstats.Stats(profiler).sort_stats("cumulative").print_stats(25)
    return result


def record(
    label: str,
    scale: float,
    output: Path,
    dry_run: bool = False,
    profile: bool = False,
) -> Dict[str, object]:
    entry: Dict[str, object] = {
        "recorded_at": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "label": label,
        "scale": scale,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "configs": {},
    }
    for name, bench in CONFIGS.items():
        print(f"  measuring {name} ...", flush=True)
        if profile:
            entry["configs"][name] = _profiled(name, bench, scale)  # type: ignore[index]
        else:
            entry["configs"][name] = bench(scale)  # type: ignore[index]
    print("  measuring attribution ...", flush=True)
    entry["attribution"] = attribution_summary()
    if not dry_run:
        history = {"runs": []}
        if output.exists():
            history = json.loads(output.read_text())
        history["runs"].append(entry)
        output.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")
    return entry


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Append a replay-throughput measurement to BENCH_replay.json"
    )
    parser.add_argument(
        "--label", default="", help="free-form tag for this point (e.g. a PR number)"
    )
    parser.add_argument(
        "--scale", type=float, default=1.0, help="request-count scale factor"
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, help="trajectory file to append to"
    )
    parser.add_argument(
        "--dry-run", action="store_true", help="measure and print, do not write"
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run each config under cProfile and print its top-25 cumulative "
        "functions; implies --dry-run (instrumented timings are inflated)",
    )
    args = parser.parse_args(argv)
    entry = record(
        args.label,
        args.scale,
        args.output,
        dry_run=args.dry_run or args.profile,
        profile=args.profile,
    )
    print(json.dumps(entry, indent=2, sort_keys=True))
    if not (args.dry_run or args.profile):
        print(f"appended to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
