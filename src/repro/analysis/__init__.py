"""Analysis helpers: latency statistics, memory accounting, report formatting."""

from repro.analysis.latency import (
    histogram_cdf,
    latency_cdf,
    normalize,
    percentile,
    speedup,
    value_at_cdf,
)
from repro.analysis.memory import (
    format_bytes,
    geometric_mean,
    normalized_size,
    reduction_factor,
    reduction_table,
)
from repro.analysis.report import print_report, render_series, render_table

__all__ = [
    "histogram_cdf",
    "latency_cdf",
    "normalize",
    "percentile",
    "speedup",
    "value_at_cdf",
    "format_bytes",
    "geometric_mean",
    "normalized_size",
    "reduction_factor",
    "reduction_table",
    "print_report",
    "render_series",
    "render_table",
]
