"""Flash block allocation with hot/cold write-stream separation.

The allocator owns the free-block pool and hands out *active* blocks that the
write path programs sequentially.  Three properties matter for LeaFTL:

* a flush of the LPA-sorted write buffer receives **consecutive PPAs** inside
  one (or a few) freshly allocated blocks, which is what lets the piecewise
  linear regression learn long segments (Section 3.3 of the paper);
* allocation is wear-aware: among free blocks of the chosen channel the one
  with the lowest erase count is preferred, supporting wear leveling;
* writes are tagged with a **stream**: host data ("hot") and GC/wear-leveling
  migrations ("cold") land in separate open blocks, so short-lived host pages
  never share a block with long-lived migrated pages.  Each stream keeps its
  open block across flushes and fills it to the end before opening another,
  which both avoids wasting the tail of partially-filled blocks and gives
  GC victims a coherent lifetime profile (the separation that makes
  cost-benefit victim selection meaningful).

The allocator also tracks which blocks are candidates for garbage collection
(fully programmed, not free, not currently active).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.flash.flash_array import FlashArray

#: Write streams recognised by the allocator.  Host writes are "hot";
#: GC and wear-leveling migrations are "cold".
STREAMS = ("hot", "cold")


class OutOfSpaceError(RuntimeError):
    """Raised when no free block can satisfy an allocation request."""


@dataclass
class AllocationStats:
    """Counters describing allocator activity."""

    blocks_allocated: int = 0
    blocks_reclaimed: int = 0


class BlockAllocator:
    """Round-robin, wear-aware free block allocator with write streams."""

    def __init__(self, flash: FlashArray) -> None:
        self._flash = flash
        self._geometry = flash.geometry
        channels = self._geometry.channels
        # Insertion-ordered pools (dict keys, values unused): iteration order
        # is the deterministic insert history, never hash-table layout —
        # allocation decisions made by iterating these structures are
        # bit-reproducible across runs and Python builds (simlint SIM003).
        self._free_blocks: List[Dict[int, None]] = [{} for _ in range(channels)]
        self._active_blocks: Dict[int, None] = {}
        #: Open (partially programmed, still active) block of each stream.
        self._stream_blocks: Dict[str, int] = {}
        self._next_channel = 0
        self.stats = AllocationStats()

        for block in range(self._geometry.total_blocks):
            channel = self._geometry.block_to_channel(block)
            self._free_blocks[channel][block] = None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def total_blocks(self) -> int:
        return self._geometry.total_blocks

    def free_block_count(self) -> int:
        """Number of blocks currently in the free pool."""
        return sum(len(pool) for pool in self._free_blocks)

    def free_ratio(self) -> float:
        """Fraction of all blocks that are free."""
        return self.free_block_count() / self._geometry.total_blocks

    def is_active(self, block: int) -> bool:
        return block in self._active_blocks

    def stream_block(self, stream: str) -> Optional[int]:
        """The stream's currently open block, or ``None``."""
        return self._stream_blocks.get(stream)

    def gc_candidates(self) -> List[int]:
        """Blocks eligible for garbage collection.

        A block is a candidate when it has been (fully or partially)
        programmed, is not in the free pool and is not an active block that
        the write path is still filling.
        """
        free: Dict[int, None] = {}
        for pool in self._free_blocks:
            free.update(pool)
        candidates = []
        for block in range(self._geometry.total_blocks):
            if block in free or block in self._active_blocks:
                continue
            if self._flash.write_pointer(block) == 0:
                continue
            candidates.append(block)
        return candidates

    # ------------------------------------------------------------------ #
    # Allocation / reclamation
    # ------------------------------------------------------------------ #
    def allocate_block(
        self, channel: Optional[int] = None, stream: Optional[str] = None
    ) -> int:
        """Take a block out of the free pool and mark it active.

        When ``channel`` is ``None`` the allocator places the block by
        stream: the hot (host) stream rotates across channels to spread
        programs — and therefore later reads — over the whole array, while
        the cold (migration) stream asks the NAND scheduler for the
        least-busy channel so background traffic contends as little as
        possible with foreground reads.  Within the chosen channel the
        least-worn free block is returned.
        """
        channels = self._geometry.channels
        order: List[int]
        if channel is not None:
            order = [channel]
        elif stream == "cold":
            with_free = [ch for ch in range(channels) if self._free_blocks[ch]]
            if not with_free:
                raise OutOfSpaceError("no free flash block available")
            best = self._flash.scheduler.least_busy_channel(with_free)
            order = [best] + [ch for ch in with_free if ch != best]
        else:
            order = [(self._next_channel + i) % channels for i in range(channels)]
            self._next_channel = (self._next_channel + 1) % channels

        for ch in order:
            pool = self._free_blocks[ch]
            if not pool:
                continue
            # Least-worn block; erase-count ties break to the lowest block id
            # (an explicit total order — tie-breaking must never fall back to
            # container iteration order, which is what made the old set-based
            # pools fragile).
            block = min(pool, key=lambda b: (self._flash.erase_count(b), b))
            del pool[block]
            self._active_blocks[block] = None
            self.stats.blocks_allocated += 1
            return block
        raise OutOfSpaceError("no free flash block available")

    def frontier(self, stream: str) -> Tuple[int, int, int]:
        """The stream's programming frontier: ``(block, next_ppa, room)``.

        Returns the open block of ``stream``, the PPA of its next free page
        and the number of pages left in it, opening a fresh block when the
        stream has none or the current one is full.  The write path programs
        ``room``-bounded chunks at the frontier, which keeps the consecutive
        PPA property learned segments depend on while filling every block to
        the end.
        """
        if stream not in STREAMS:
            raise ValueError(f"unknown stream {stream!r}; known: {STREAMS}")
        block = self._stream_blocks.get(stream)
        if block is None or self._flash.block_is_full(block):
            if block is not None:
                self.seal_block(block)
                self._stream_blocks.pop(stream, None)
            block = self.allocate_block(stream=stream)
            self._stream_blocks[stream] = block
        pointer = self._flash.write_pointer(block)
        next_ppa = self._geometry.first_ppa_of_block(block) + pointer
        return block, next_ppa, self._geometry.pages_per_block - pointer

    def seal_if_full(self, block: int) -> None:
        """Seal ``block`` (and release its stream slot) once fully written."""
        if not self._flash.block_is_full(block):
            return
        self.seal_block(block)
        for stream, open_block in list(self._stream_blocks.items()):
            if open_block == block:
                del self._stream_blocks[stream]

    def seal_block(self, block: int) -> None:
        """Mark an active block as fully written (no longer active)."""
        self._active_blocks.pop(block, None)

    def release_block(self, block: int) -> None:
        """Return an erased block to the free pool (after GC erase)."""
        if not self._flash.block_is_free(block):
            raise ValueError(f"block {block} is not erased; cannot release")
        channel = self._geometry.block_to_channel(block)
        self._active_blocks.pop(block, None)
        for stream, open_block in list(self._stream_blocks.items()):
            if open_block == block:  # pragma: no cover - defensive
                del self._stream_blocks[stream]
        self._free_blocks[channel][block] = None
        self.stats.blocks_reclaimed += 1

    # ------------------------------------------------------------------ #
    # Power-fail recovery
    # ------------------------------------------------------------------ #
    def rebuild_from_flash(self) -> None:
        """Re-derive every pool from durable flash state after a power loss.

        The free pool, the active set and the open stream blocks are all
        DRAM state; after a crash only the flash substrate is trustworthy.
        Erased blocks (write pointer 0, no valid pages) return to the free
        pool in block order — the same deterministic insert history a fresh
        allocator would build.  Every programmed block, including a block a
        stream left partially filled, comes back *sealed*: NAND open-block
        rules make appending to a partially programmed block after power
        loss unsafe, so recovery writes start on fresh blocks and GC
        reclaims the partial ones.
        """
        for pool in self._free_blocks:
            pool.clear()
        self._active_blocks.clear()
        self._stream_blocks.clear()
        self._next_channel = 0
        for block in range(self._geometry.total_blocks):
            if self._flash.block_is_free(block):
                channel = self._geometry.block_to_channel(block)
                self._free_blocks[channel][block] = None

    # ------------------------------------------------------------------ #
    # Wear statistics
    # ------------------------------------------------------------------ #
    def wear_imbalance(self) -> float:
        """Max-minus-min erase count across all blocks (0 = perfectly even)."""
        counts = self._flash.erase_counts()
        return float(max(counts) - min(counts)) if counts else 0.0
