#!/usr/bin/env python3
"""Quickstart: build an SSD with LeaFTL, run a small workload, inspect results.

Run with::

    python examples/quickstart.py

The example builds a small simulated SSD with the learned FTL (gamma = 4),
writes a few access patterns (sequential, strided, random), reads them back,
and prints what the learned mapping table looks like afterwards — how many
segments were learned, how much DRAM they need compared with a page-level
table, and how the device performed.
"""

from __future__ import annotations

import random

from repro import DRAMBudget, LeaFTL, LeaFTLConfig, SSDConfig, SimulatedSSD
from repro.analysis.memory import format_bytes


def main() -> None:
    # 1. A laptop-sized device: 4 GB, 16 channels, 4 KB pages.
    config = SSDConfig.small()
    ftl = LeaFTL(LeaFTLConfig(gamma=4, compaction_interval_writes=100_000))
    ssd = SimulatedSSD(config, ftl, dram_budget=DRAMBudget(dram_bytes=config.dram_size))

    rng = random.Random(42)

    # 2. Write three access patterns the paper's Figure 1 motivates.
    print("writing: 64 MB sequential file ...")
    for lpa in range(0, 16_384, 64):
        ssd.process("W", lpa, 64)

    print("writing: strided records (every 4th page) ...")
    for lpa in range(100_000, 140_000, 4):
        ssd.write(lpa)

    print("writing: scattered hot updates ...")
    for _ in range(20_000):
        ssd.write(200_000 + rng.randrange(50_000))

    # 3. Read everything back (a mix of the three regions).
    print("reading back ...")
    for _ in range(20_000):
        region = rng.random()
        if region < 0.4:
            ssd.read(rng.randrange(16_384))
        elif region < 0.7:
            ssd.read(100_000 + 4 * rng.randrange(10_000))
        else:
            ssd.read(200_000 + rng.randrange(50_000))
    ssd.flush()

    # 4. Inspect the learned mapping table.
    stats = ssd.stats
    table = ftl.table
    accurate, approximate = table.segment_type_counts()
    page_level_bytes = len(ssd._current_ppa) * 8

    print("\n=== learned mapping table ===")
    print(f"segments learned        : {table.segment_count()}")
    print(f"  accurate / approximate: {accurate} / {approximate}")
    print(f"LPA groups              : {table.group_count()}")
    print(f"mapping table size      : {format_bytes(ftl.resident_bytes())}")
    print(f"page-level table size   : {format_bytes(page_level_bytes)}")
    print(f"memory reduction        : {page_level_bytes / max(1, ftl.resident_bytes()):.1f}x")

    print("\n=== device statistics ===")
    print(f"host reads / writes     : {stats.host_reads} / {stats.host_writes}")
    print(f"cache hit ratio         : {stats.cache_hit_ratio:.2%}")
    print(f"mean read latency       : {stats.read_latency.mean_us:.1f} us")
    print(f"p99 read latency        : {stats.read_latency.percentile(99):.1f} us")
    print(f"misprediction ratio     : {stats.misprediction_ratio:.2%}")
    print(f"write amplification     : {stats.write_amplification:.2f}")
    print(f"GC invocations          : {stats.gc_invocations}")


if __name__ == "__main__":
    main()
