"""Wear leveling policy (Section 3.6 of the paper).

LeaFTL keeps the throttling-and-swapping wear-leveling approach of existing
FTLs: when the erase-count spread between the most and least worn blocks
exceeds a threshold, data in cold blocks (blocks that have barely been
erased and hold long-lived data) is migrated so that the cold blocks become
available for hot data, evening out wear.  After a swap the mappings of the
migrated pages are relearned and inserted into the mapping table, exactly
like a GC migration.

The policy only picks the blocks; the SSD performs the migration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.flash.allocator import BlockAllocator
from repro.flash.flash_array import FlashArray


@dataclass
class WearLevelingConfig:
    """Thresholds controlling static wear leveling."""

    #: Trigger when (max erase count - min erase count) exceeds this value.
    imbalance_threshold: int = 8
    #: Check wear at most once every this many block erases (throttling).
    check_interval_erases: int = 64
    #: Number of cold blocks migrated per invocation.
    blocks_per_invocation: int = 1

    def __post_init__(self) -> None:
        if self.imbalance_threshold <= 0:
            raise ValueError("imbalance_threshold must be positive")
        if self.check_interval_erases <= 0:
            raise ValueError("check_interval_erases must be positive")
        if self.blocks_per_invocation <= 0:
            raise ValueError("blocks_per_invocation must be positive")


class WearLeveler:
    """Static wear leveling by cold-block migration."""

    def __init__(self, config: Optional[WearLevelingConfig] = None) -> None:
        self.config = config or WearLevelingConfig()
        self._erases_at_last_check = 0

    def due(self, flash: FlashArray) -> bool:
        """Throttle predicate: enough erases since the last acknowledged check.

        Pure — probing ``due()`` never consumes the throttle window, so a
        caller that checks and then decides *not* to level (e.g. because the
        wear is balanced) keeps asking on subsequent flushes.  Call
        :meth:`acknowledge` when a leveling pass actually runs.
        """
        erases = flash.counters.block_erases
        return erases - self._erases_at_last_check >= self.config.check_interval_erases

    def acknowledge(self, flash: FlashArray) -> None:
        """Restart the throttle window (a leveling pass is running now)."""
        self._erases_at_last_check = flash.counters.block_erases

    def imbalanced(self, flash: FlashArray) -> bool:
        counts = flash.erase_counts()
        return (max(counts) - min(counts)) > self.config.imbalance_threshold

    def select_cold_blocks(
        self, flash: FlashArray, allocator: BlockAllocator
    ) -> List[int]:
        """Cold victim blocks: least-erased, fully written, holding valid data."""
        candidates = [
            block
            for block in allocator.gc_candidates()
            if flash.valid_page_count(block) > 0
        ]
        candidates.sort(key=lambda b: (flash.erase_count(b), -flash.valid_page_count(b)))
        return candidates[: self.config.blocks_per_invocation]
