"""SFTL: spatial-locality-aware FTL (Jiang et al., MSST 2011).

SFTL observes that workloads contain long strictly-sequential runs, so inside
each translation page the mapping can be condensed into *runs*: a run is a
maximal set of consecutive LPAs mapped to consecutive PPAs and is stored as a
single ``(start_lpa, start_ppa, length)`` descriptor instead of one entry per
page.  Translation pages are cached in DRAM in condensed form with LRU
replacement under the DRAM budget.

Compared with DFTL, SFTL shrinks the table for sequential workloads but —
unlike LeaFTL — it cannot condense strided or approximately-linear patterns,
which is exactly the gap Figure 15 of the paper quantifies (LeaFTL is another
2.9x smaller on average).

Implementation notes
---------------------
Run counts are maintained incrementally: each translation page tracks its
number of entries and the number of "continuities" (pairs of adjacent LPAs
whose PPAs are also adjacent); the run count is ``entries - continuities``.
This keeps updates O(1) and memory accounting exact without rescanning.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.config import SFTLConfig
from repro.ftl.base import FTL, TranslationResult


@dataclass
class _TranslationPage:
    """Condensed state of one translation page."""

    entries: Dict[int, int] = field(default_factory=dict)
    continuities: int = 0

    @property
    def run_count(self) -> int:
        return len(self.entries) - self.continuities


class SFTL(FTL):
    """Spatial-locality-aware FTL with run-condensed translation pages."""

    name = "SFTL"

    def __init__(
        self,
        mapping_budget_bytes: Optional[int] = None,
        config: Optional[SFTLConfig] = None,
        entries_per_translation_page: int = 512,
    ) -> None:
        super().__init__(mapping_budget_bytes=mapping_budget_bytes)
        self._config = config or SFTLConfig()
        self._entries_per_tp = entries_per_translation_page
        self._pages: Dict[int, _TranslationPage] = {}
        #: LRU of cached translation pages: tp_id -> dirty flag.
        self._cached: "OrderedDict[int, bool]" = OrderedDict()
        #: Sum of run counts over cached translation pages (for budgeting).
        self._cached_runs = 0
        #: Sum of run counts over all translation pages.
        self._total_runs = 0

    # ------------------------------------------------------------------ #
    # Translation-page helpers
    # ------------------------------------------------------------------ #
    @property
    def config(self) -> SFTLConfig:
        return self._config

    def _tp_of(self, lpa: int) -> int:
        return lpa // self._entries_per_tp

    def _is_continuous(self, page: _TranslationPage, left: int, right: int) -> bool:
        return (
            left in page.entries
            and right in page.entries
            and page.entries[left] + 1 == page.entries[right]
        )

    def _set_entry(self, lpa: int, ppa: int) -> None:
        """Install ``lpa -> ppa`` keeping run counters exact."""
        tp_id = self._tp_of(lpa)
        page = self._pages.setdefault(tp_id, _TranslationPage())
        runs_before = page.run_count

        # Remove the continuity contributions around the old value.
        if lpa in page.entries:
            if self._is_continuous(page, lpa - 1, lpa):
                page.continuities -= 1
            if self._is_continuous(page, lpa, lpa + 1):
                page.continuities -= 1
        page.entries[lpa] = ppa
        if self._is_continuous(page, lpa - 1, lpa):
            page.continuities += 1
        if self._is_continuous(page, lpa, lpa + 1):
            page.continuities += 1

        delta = page.run_count - runs_before
        self._total_runs += delta
        if tp_id in self._cached:
            self._cached_runs += delta

    def _remove_entry(self, lpa: int) -> None:
        tp_id = self._tp_of(lpa)
        page = self._pages.get(tp_id)
        if page is None or lpa not in page.entries:
            return
        runs_before = page.run_count
        if self._is_continuous(page, lpa - 1, lpa):
            page.continuities -= 1
        if self._is_continuous(page, lpa, lpa + 1):
            page.continuities -= 1
        del page.entries[lpa]
        delta = page.run_count - runs_before
        self._total_runs += delta
        if tp_id in self._cached:
            self._cached_runs += delta
        if not page.entries:
            self._drop_from_cache(tp_id)
            del self._pages[tp_id]

    # ------------------------------------------------------------------ #
    # Cache management
    # ------------------------------------------------------------------ #
    def _budget_runs(self) -> Optional[int]:
        if self.mapping_budget_bytes is None:
            return None
        return max(1, self.mapping_budget_bytes // self._config.run_bytes)

    def _drop_from_cache(self, tp_id: int) -> None:
        if tp_id in self._cached:
            del self._cached[tp_id]
            self._cached_runs -= self._pages[tp_id].run_count

    def _admit(self, tp_id: int, dirty: bool) -> Tuple[int, int]:
        """Bring ``tp_id`` into the cache; return (flash_reads, flash_writes)."""
        reads = 0
        writes = 0
        if tp_id in self._cached:
            self._cached[tp_id] = self._cached[tp_id] or dirty
            self._cached.move_to_end(tp_id)
        else:
            self._cached[tp_id] = dirty
            self._cached.move_to_end(tp_id)
            self._cached_runs += self._pages[tp_id].run_count
        limit = self._budget_runs()
        if limit is None:
            return reads, writes
        while self._cached_runs > limit and len(self._cached) > 1:
            victim, victim_dirty = self._cached.popitem(last=False)
            self._cached_runs -= self._pages[victim].run_count
            if victim_dirty:
                writes += 1
                self.stats.translation_page_writes += 1
        return reads, writes

    # ------------------------------------------------------------------ #
    # FTL interface
    # ------------------------------------------------------------------ #
    def translate(self, lpa: int) -> TranslationResult:
        self.stats.lookups += 1
        tp_id = self._tp_of(lpa)
        page = self._pages.get(tp_id)
        if page is None or lpa not in page.entries:
            return TranslationResult(ppa=None)

        reads = 0
        writes = 0
        if tp_id not in self._cached:
            # Miss: fetch the condensed translation page from flash.
            reads += 1
            self.stats.translation_page_reads += 1
            extra_reads, extra_writes = self._admit(tp_id, dirty=False)
            reads += extra_reads
            writes += extra_writes
        else:
            self._cached.move_to_end(tp_id)
        return TranslationResult(
            ppa=page.entries[lpa],
            translation_flash_reads=reads,
            translation_flash_writes=writes,
        )

    def translate_range(self, lpa: int, npages: int) -> List[TranslationResult]:
        """Resolve a contiguous run, one condensed-page admission per chunk.

        The run is split at translation-page boundaries; the first mapped
        entry of a chunk admits its condensed translation page (one flash
        read on a cache miss) and that page then serves every other entry of
        the chunk for free.  ``stats.lookups`` is charged once per chunk.
        """
        if npages <= 0:
            raise ValueError("npages must be positive")
        results: List[TranslationResult] = []
        start = lpa
        end = lpa + npages
        while start < end:
            tp_id = self._tp_of(start)
            chunk_end = min(end, (tp_id + 1) * self._entries_per_tp)
            self.stats.lookups += 1
            page = self._pages.get(tp_id)
            admitted = False
            for entry in range(start, chunk_end):
                if page is None or entry not in page.entries:
                    results.append(TranslationResult(ppa=None))
                    continue
                reads = 0
                writes = 0
                if not admitted:
                    admitted = True
                    if tp_id not in self._cached:
                        reads += 1
                        self.stats.translation_page_reads += 1
                        extra_reads, extra_writes = self._admit(tp_id, dirty=False)
                        reads += extra_reads
                        writes += extra_writes
                    else:
                        self._cached.move_to_end(tp_id)
                results.append(
                    TranslationResult(
                        ppa=page.entries[entry],
                        translation_flash_reads=reads,
                        translation_flash_writes=writes,
                    )
                )
            start = chunk_end
        return results

    def update_batch(self, mappings: Sequence[Tuple[int, int]]) -> None:
        touched: Set[int] = set()
        for lpa, ppa in mappings:
            self._set_entry(lpa, ppa)
            touched.add(self._tp_of(lpa))
            self.stats.updates += 1
        for tp_id in touched:
            self._admit(tp_id, dirty=True)

    def exists(self, lpa: int) -> bool:
        page = self._pages.get(self._tp_of(lpa))
        return page is not None and lpa in page.entries

    def invalidate(self, lpa: int) -> None:
        self._remove_entry(lpa)

    def rebuild_from_oob(self, mappings: Sequence[Tuple[int, int]]) -> None:
        """Rebuild the condensed translation pages from an OOB scan.

        All DRAM state (the cached-page LRU and its run accounting) is
        dropped; the condensed pages are reconstructed entry by entry so the
        incremental run counters come out exact.  Like the other rebuilds
        this is charge-free — the recovery driver models the scan cost.
        """
        self._pages = {}
        self._cached = OrderedDict()
        self._cached_runs = 0
        self._total_runs = 0
        for lpa, ppa in mappings:
            self._set_entry(lpa, ppa)

    # ------------------------------------------------------------------ #
    # Memory accounting
    # ------------------------------------------------------------------ #
    def resident_bytes(self) -> int:
        return (
            self._cached_runs * self._config.run_bytes
            + len(self._cached) * self._config.page_header_bytes
        )

    def full_mapping_bytes(self) -> int:
        return (
            self._total_runs * self._config.run_bytes
            + len(self._pages) * self._config.page_header_bytes
        )

    def mapped_lpa_count(self) -> Optional[int]:
        return sum(len(page.entries) for page in self._pages.values())

    def run_count(self) -> int:
        """Total condensed runs across all translation pages."""
        return self._total_runs
