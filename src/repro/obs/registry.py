"""The unified counter registry: every ``*Stats`` counter, one namespace.

The simulator's statistics live in nine dataclasses scattered across the
package (:class:`~repro.ssd.stats.SSDStats`, the per-FTL stats, cache /
write-buffer / allocator counters, per-frontend and per-namespace stats).
Before this module, every consumer — the experiment harness, the perf
trajectory recorder, ad-hoc report code — hand-picked fields and merged
``summary()`` dictionaries, so newly added counters routinely missed every
export (``checkpoint_page_writes`` shipped a whole PR before any report
showed it).

The registry walks the stats objects generically instead:

* every ``int``/``float`` dataclass field is exported as
  ``<prefix>.<field>`` (e.g. ``ssd.gc_page_writes``);
* every numeric ``@property`` is exported the same way (derived metrics
  like ``ssd.write_amplification`` come along for free);
* :class:`~repro.ssd.stats.LatencyRecorder` fields expand into
  ``.count`` / ``.mean_us`` / ``.p50_us`` / ``.p95_us`` / ``.p99_us`` /
  ``.max_us``;
* any other field type must appear in :data:`EXCLUDED_FIELDS` with a
  reason, or the walk raises ``TypeError``.

The static-analysis side of the same contract is simlint rule **SIM007**,
which parses :data:`REGISTERED_STATS` / :data:`EXCLUDED_FIELDS` out of this
file and flags any ``*Stats`` dataclass (or field) the registry cannot
reach — so a counter added anywhere in the package is export-visible or a
lint failure, never silently missing.

Both tables below are **pure literals**: SIM007 reads them with ``ast``,
so computed keys would be invisible to the lint gate.
"""

from __future__ import annotations

import dataclasses
import inspect
import json
from typing import Any, Dict, Mapping, Optional

from repro.ssd.stats import LatencyRecorder

#: ``*Stats`` dataclass name -> counter-namespace prefix.  Every stats
#: dataclass in ``src/repro`` must appear here (enforced by SIM007).
#: ``NamespaceStats`` instances are per-tenant, so their prefix is extended
#: with the namespace name: ``ns.<tenant>.<field>``.
REGISTERED_STATS = {
    "SSDStats": "ssd",
    "FTLStats": "ftl",
    "LeaFTLStats": "leaftl",
    "MappingTableStats": "mapping_table",
    "CacheStats": "cache",
    "WriteBufferStats": "write_buffer",
    "AllocationStats": "allocator",
    "FrontendStats": "frontend",
    "NamespaceStats": "ns",
}

#: ``(class name, field name) -> reason`` for fields the registry may skip.
#: Every entry must explain what covers the data instead; SIM007 treats any
#: non-numeric, non-LatencyRecorder field missing from this table as an
#: unexported counter.
EXCLUDED_FIELDS = {
    ("SSDStats", "mapping_bytes_samples"): (
        "raw per-flush sample list; the registry exports the "
        "mean_mapping_bytes/peak_mapping_bytes aggregate properties"
    ),
    ("LeaFTLStats", "levels_histogram"): (
        "levels-searched histogram (Figure 23a); the aggregate is exported "
        "as mapping_table.mean_levels_per_lookup"
    ),
}

#: LatencyRecorder expansion: suffix -> extractor.
_LATENCY_SUFFIXES = (
    ("count", lambda r: float(r.count)),
    ("total_us", lambda r: r.total_us),
    ("mean_us", lambda r: r.mean_us),
    ("p50_us", lambda r: r.percentile(50)),
    ("p95_us", lambda r: r.percentile(95)),
    ("p99_us", lambda r: r.percentile(99)),
    ("max_us", lambda r: r.max_us),
)


def snapshot_stats(stats: Any, prefix: str) -> Dict[str, float]:
    """Walk one stats object into flat ``<prefix>.<name>`` counters.

    Fields come first (declaration order), then numeric properties in
    alphabetical order — both deterministic, so two snapshots of identical
    state serialize byte-identically.
    """
    cls = type(stats)
    if not dataclasses.is_dataclass(stats):
        raise TypeError(f"{cls.__name__} is not a dataclass; cannot snapshot")
    counters: Dict[str, float] = {}
    for field in dataclasses.fields(stats):
        if (cls.__name__, field.name) in EXCLUDED_FIELDS:
            continue
        value = getattr(stats, field.name)
        key = f"{prefix}.{field.name}"
        if isinstance(value, LatencyRecorder):
            for suffix, extract in _LATENCY_SUFFIXES:
                counters[f"{key}.{suffix}"] = extract(value)
        elif isinstance(value, bool):
            counters[key] = float(value)
        elif isinstance(value, (int, float)):
            counters[key] = float(value)
        else:
            raise TypeError(
                f"{cls.__name__}.{field.name} ({type(value).__name__}) is not "
                "registry-exportable; make it numeric or add an "
                "EXCLUDED_FIELDS entry explaining what covers it"
            )
    for name, member in inspect.getmembers(cls, lambda m: isinstance(m, property)):
        value = getattr(stats, name)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            counters[f"{prefix}.{name}"] = float(value)
    return counters


@dataclasses.dataclass(frozen=True)
class CounterSnapshot:
    """One flat, namespaced snapshot of device counters with a delta API."""

    counters: Mapping[str, float]

    def __getitem__(self, key: str) -> float:
        return self.counters[key]

    def get(self, key: str, default: float = 0.0) -> float:
        return self.counters.get(key, default)

    def __len__(self) -> int:
        return len(self.counters)

    def __contains__(self, key: str) -> bool:
        return key in self.counters

    def keys(self):
        return sorted(self.counters)

    def as_dict(self) -> Dict[str, float]:
        """Key-sorted plain dictionary (stable serialization order)."""
        return {key: self.counters[key] for key in sorted(self.counters)}

    def delta(self, earlier: "CounterSnapshot") -> "CounterSnapshot":
        """Per-key difference ``self - earlier`` (missing keys count as 0).

        The union of both key sets is kept, so a counter that only exists
        in one snapshot (say, a namespace added mid-run) still shows up.
        """
        keys = set(self.counters) | set(earlier.counters)
        return CounterSnapshot(
            {
                key: self.counters.get(key, 0.0) - earlier.counters.get(key, 0.0)
                for key in keys
            }
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)


def device_snapshot(ssd: Any, host: Any = None) -> CounterSnapshot:
    """Snapshot every registered counter reachable from one device.

    ``ssd`` is duck-typed (:class:`repro.ssd.ssd.SimulatedSSD`); ``host``
    optionally adds per-tenant ``ns.<name>.*`` counters from a
    :class:`repro.host.interface.HostInterface`.  A few live device gauges
    that no stats dataclass owns (free blocks, wear imbalance, resident
    mapping bytes) are exported under ``device.*``.
    """
    counters: Dict[str, float] = {}
    counters.update(snapshot_stats(ssd.stats, REGISTERED_STATS["SSDStats"]))
    counters.update(snapshot_stats(ssd.ftl.stats, REGISTERED_STATS["FTLStats"]))
    lea_stats = getattr(ssd.ftl, "lea_stats", None)
    if lea_stats is not None:
        counters.update(snapshot_stats(lea_stats, REGISTERED_STATS["LeaFTLStats"]))
    table_stats = getattr(getattr(ssd.ftl, "table", None), "stats", None)
    if table_stats is not None:
        counters.update(
            snapshot_stats(table_stats, REGISTERED_STATS["MappingTableStats"])
        )
    counters.update(snapshot_stats(ssd.cache.stats, REGISTERED_STATS["CacheStats"]))
    counters.update(
        snapshot_stats(ssd.write_buffer.stats, REGISTERED_STATS["WriteBufferStats"])
    )
    counters.update(
        snapshot_stats(ssd.allocator.stats, REGISTERED_STATS["AllocationStats"])
    )
    counters["device.free_blocks"] = float(ssd.allocator.free_block_count())
    counters["device.free_block_ratio"] = ssd.allocator.free_ratio()
    counters["device.wear_imbalance"] = ssd.allocator.wear_imbalance()
    counters["device.cache_capacity_pages"] = float(ssd.cache.capacity_pages)
    counters["device.mapping_resident_bytes"] = float(ssd.ftl.resident_bytes())
    counters["device.write_buffer_pages"] = float(len(ssd.write_buffer))
    if host is not None:
        ns_prefix = REGISTERED_STATS["NamespaceStats"]
        for name, namespace in sorted(host.namespaces.items()):
            prefix = f"{ns_prefix}.{name}"
            counters.update(snapshot_stats(namespace.stats, prefix))
            # Namespace configuration gauges: SLO thresholds and QoS
            # weights, so downstream consumers (the health scorecard in
            # repro.obs.analyze) can judge the counters against the SLOs
            # from the snapshot alone.  Absent SLOs export as 0.0.
            counters[f"{prefix}.slo_read_us"] = float(namespace.slo_read_us or 0.0)
            counters[f"{prefix}.slo_write_us"] = float(namespace.slo_write_us or 0.0)
            counters[f"{prefix}.weight"] = float(namespace.weight)
            counters[f"{prefix}.priority"] = float(namespace.priority)
    return CounterSnapshot(counters)
