"""Figure 24: misprediction ratio of flash page accesses vs gamma.

The paper reports that most workloads stay below a 10% misprediction ratio
even at gamma = 16, because many segments remain accurate and not every
entry of an approximate segment mispredicts; gamma = 0 never mispredicts.
"""

from __future__ import annotations

from repro.analysis.report import print_report, render_series
from repro.experiments.performance import misprediction_ratios

from benchmarks.conftest import perf_setup, run_once

WORKLOADS = ("MSR-hm", "FIU-mail", "TPCC")
GAMMAS = (0, 4, 16)


def test_fig24_misprediction_ratio(benchmark):
    setup = perf_setup()
    table = run_once(benchmark, misprediction_ratios, WORKLOADS, GAMMAS, setup)

    print_report(render_series(
        "Figure 24: misprediction ratio (%) of translated flash accesses",
        {wl: {f"gamma={g}": round(v, 2) for g, v in row.items()} for wl, row in table.items()},
    ))

    for workload, row in table.items():
        assert row[0] == 0.0, f"{workload}: gamma=0 must never mispredict"
        assert row[16] <= 35.0, f"{workload}: misprediction ratio {row[16]}% too high"
