"""Multi-tenant QoS experiments: noisy neighbors, arbitration, rate limits.

The scenario every experiment here builds on: one device, two namespaces.

* **reader** — a latency-sensitive tenant issuing steady, Zipf-skewed
  open-loop reads over its (pre-filled) namespace, with a read SLO;
* **writer** — a noisy neighbor streaming bursts of large sequential
  writes into the other namespace.

The writer's damage travels two paths: its queued commands occupy device
slots and (without arbitration) the shared submission queue ahead of the
reader's arrivals, and its buffered flushes plus the GC they trigger keep
the flash channels busy under the reader's data reads.  Submission-queue
arbitration can undo the first path entirely and most of the second's
queueing component — which is precisely what :func:`noisy_neighbor_sweep`
quantifies, arbiter by arbiter, against the reader's solo run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence, Tuple

from repro.experiments.common import ExperimentSetup, build_ssd, reset_measurement
from repro.host.arbiter import ARBITERS, TokenBucket
from repro.obs.registry import CounterSnapshot, device_snapshot
from repro.host.interface import HostInterface
from repro.ssd.ssd import SimulatedSSD
from repro.workloads.multi_tenant import (
    TenantWorkload,
    fill_namespace,
    latency_sensitive_reader,
    sequential_writer,
)

#: Arbiters compared by the sweep, baseline (no QoS) first.
ARBITER_CHOICES: Tuple[str, ...] = ARBITERS


@dataclass(frozen=True)
class NoisyNeighborScenario:
    """Device + tenant parameters of the noisy-neighbor experiments.

    The defaults are sized so the whole sweep (solo + four arbiters) runs
    in seconds: a small 8-channel device, a reader namespace large enough
    to defeat the data cache, and a writer whose bursts transiently exceed
    the device's flush bandwidth without permanently saturating it.
    """

    scheme: str = "LeaFTL"
    capacity_bytes: int = 192 * 1024 * 1024
    page_size: int = 4096
    channels: int = 8
    #: Many dies per channel keep the program *bus* share small
    #: (``write_latency / dies``), so flush bursts contend with reads
    #: through queueing rather than monopolising the buses outright —
    #: the regime where admission arbitration has leverage.
    dies_per_channel: int = 32
    pages_per_block: int = 64
    dram_bytes: int = 2 * 1024 * 1024
    #: Small write buffer: short flush batches keep per-channel busy
    #: windows brief (a flush programs its open block serially).
    write_buffer_bytes: int = 128 * 1024
    #: Device slots (NVMe queue depth shared by all tenants).  Modest on
    #: purpose: every slot a writer command holds has its flush chained
    #: onto the channel reservations, so deep queues let the noisy
    #: neighbor reserve the NAND far ahead of the reader's arrivals.
    queue_depth: int = 4
    gamma: int = 4
    #: GC scheduling of the device under test (``"sync"`` or
    #: ``"background"``); the determinism harness runs the background
    #: pipeline so its event interleaving is covered by the double run.
    gc_mode: str = "sync"

    # Reader tenant (latency-sensitive).
    reader_pages: int = 8192
    reader_requests: int = 2000
    reader_interarrival_us: float = 150.0
    reader_npages: int = 16
    reader_zipf_alpha: float = 0.9
    reader_weight: int = 8
    reader_slo_us: float = 1000.0
    reader_seed: int = 101

    # Writer tenant (noisy neighbor).
    writer_requests: int = 640
    writer_npages: int = 32
    writer_interarrival_us: float = 30.0
    writer_burst_length: int = 32
    writer_burst_gap_us: float = 15_000.0
    #: Fraction of the writer namespace pre-filled during warm-up.
    writer_prefill_fraction: float = 0.1

    def setup(self, arbiter: str) -> ExperimentSetup:
        return ExperimentSetup(
            capacity_bytes=self.capacity_bytes,
            page_size=self.page_size,
            channels=self.channels,
            dies_per_channel=self.dies_per_channel,
            pages_per_block=self.pages_per_block,
            dram_bytes=self.dram_bytes,
            write_buffer_bytes=self.write_buffer_bytes,
            queue_depth=self.queue_depth,
            gamma=self.gamma,
            arbiter=arbiter,
            gc_mode=self.gc_mode,
            warmup=False,
        )

    def scaled(self, **overrides: object) -> "NoisyNeighborScenario":
        return replace(self, **overrides)  # type: ignore[arg-type]


def build_tenant_host(
    scenario: NoisyNeighborScenario, arbiter: str
) -> Tuple[SimulatedSSD, HostInterface]:
    """A warmed-up device with reader/writer namespaces carved out.

    Warm-up runs *through the host interface* (closed-loop sequential
    fills), so the multi-queue admission path is exercised end to end;
    statistics are then reset so the measured phase reports steady state
    only.
    """
    ssd = build_ssd(scenario.scheme, scenario.setup(arbiter))
    host = HostInterface(ssd)
    host.add_namespace(
        "reader",
        size_pages=scenario.reader_pages,
        weight=scenario.reader_weight,
        priority=0,
        slo_read_us=scenario.reader_slo_us,
    )
    host.add_namespace("writer", weight=1, priority=1)
    writer_fill = int(
        host.namespace("writer").size_pages * scenario.writer_prefill_fraction
    )
    fills = [
        TenantWorkload("reader", fill_namespace(scenario.reader_pages), mode="closed"),
    ]
    if writer_fill > 0:
        fills.append(
            TenantWorkload("writer", fill_namespace(writer_fill), mode="closed")
        )
    host.run(fills)
    ssd.quiesce()
    reset_measurement(ssd)
    host.reset_stats()
    return ssd, host


def reader_tenant(scenario: NoisyNeighborScenario) -> TenantWorkload:
    return TenantWorkload(
        "reader",
        latency_sensitive_reader(
            scenario.reader_pages,
            scenario.reader_requests,
            interarrival_us=scenario.reader_interarrival_us,
            zipf_alpha=scenario.reader_zipf_alpha,
            npages=scenario.reader_npages,
            seed=scenario.reader_seed,
        ),
        mode="open",
    )


def writer_tenant(scenario: NoisyNeighborScenario) -> TenantWorkload:
    writer_pages = max(
        scenario.writer_npages,
        (scenario.capacity_bytes // scenario.page_size) - scenario.reader_pages,
    )
    return TenantWorkload(
        "writer",
        sequential_writer(
            writer_pages,
            scenario.writer_requests,
            npages=scenario.writer_npages,
            interarrival_us=scenario.writer_interarrival_us,
            burst_length=scenario.writer_burst_length,
            burst_gap_us=scenario.writer_burst_gap_us,
        ),
        mode="open",
    )


def _scorecard(
    delta: Dict[str, float], after: "CounterSnapshot"
) -> Dict[str, object]:
    """Per-namespace SLO health over the measured phase.

    The activity counts come from the measured-phase *delta* (so warmup
    violations don't pollute the burn rate) while the configuration
    gauges (SLO thresholds, weights) come from the absolute end snapshot
    — a delta zeroes unchanged gauges out.
    """
    from repro.obs.analyze import namespace_scorecard

    card = namespace_scorecard(delta, gauges=after.as_dict())
    return card["namespaces"]  # type: ignore[no-any-return]


def run_noisy_neighbor(
    arbiter: str,
    scenario: Optional[NoisyNeighborScenario] = None,
    include_writer: bool = True,
) -> Dict[str, Dict[str, object]]:
    """One cell: tenant -> metrics under the given arbiter.

    ``include_writer=False`` is the solo baseline: the reader alone on the
    (identically warmed-up) device — its p99 is the isolation yardstick.
    """
    scenario = scenario or NoisyNeighborScenario()
    ssd, host = build_tenant_host(scenario, arbiter)
    tenants = [reader_tenant(scenario)]
    if include_writer:
        tenants.append(writer_tenant(scenario))
    before = device_snapshot(ssd, host=host)
    result = host.run(tenants)
    table = result.summary()
    # Registry delta over the measured phase: every device counter (GC
    # traffic, WAF inputs, cache behaviour, ...) rides along generically
    # instead of the old hand-picked summary() merging.
    after = device_snapshot(ssd, host=host)
    table["device"] = after.delta(before).as_dict()
    table["scorecard"] = _scorecard(table["device"], after)
    return table


def noisy_neighbor_sweep(
    arbiters: Sequence[str] = ARBITER_CHOICES,
    scenario: Optional[NoisyNeighborScenario] = None,
) -> Dict[str, Dict[str, Dict[str, object]]]:
    """arbiter -> tenant -> metrics, plus the reader's ``"solo"`` baseline.

    The isolation claim the QoS benchmark pins: under weighted-round-robin
    or strict-priority arbitration the reader's p99 (measured against
    arrival times, so submission-queue waiting counts) stays within a small
    constant factor of its solo p99, while FIFO shared-queue admission
    lets the writer's bursts inflate it by orders of magnitude.
    """
    scenario = scenario or NoisyNeighborScenario()
    table: Dict[str, Dict[str, Dict[str, object]]] = {
        "solo": run_noisy_neighbor(
            "round_robin", scenario, include_writer=False
        )
    }
    for arbiter in arbiters:
        table[arbiter] = run_noisy_neighbor(arbiter, scenario)
    return table


def rate_limit_comparison(
    scenario: Optional[NoisyNeighborScenario] = None,
    writer_bandwidth_pages_per_s: float = 60_000.0,
    arbiter: str = "round_robin",
) -> Dict[str, Dict[str, Dict[str, object]]]:
    """Token-bucket QoS: the same scenario with and without a writer cap.

    Arbitration shares the *admission* fairly but cannot stop an admitted
    write burst from flooding the write buffer and flash channels; a
    bandwidth token bucket on the writer namespace throttles the burst at
    the source.  Returns ``{"uncapped": ..., "capped": ...}`` tenant
    metric tables; expect the capped writer to show rate-limit deferrals
    and the reader a lower p99.
    """
    scenario = scenario or NoisyNeighborScenario()
    table: Dict[str, Dict[str, Dict[str, object]]] = {}
    for label, capped in (("uncapped", False), ("capped", True)):
        ssd, host = build_tenant_host(scenario, arbiter)
        if capped:
            host.namespace("writer").limiters.append(
                TokenBucket(
                    writer_bandwidth_pages_per_s,
                    burst=scenario.writer_npages * 4,
                    unit="pages",
                )
            )
        before = device_snapshot(ssd, host=host)
        result = host.run([reader_tenant(scenario), writer_tenant(scenario)])
        cell = result.summary()
        after = device_snapshot(ssd, host=host)
        cell["device"] = after.delta(before).as_dict()
        cell["scorecard"] = _scorecard(cell["device"], after)
        table[label] = cell
    return table
