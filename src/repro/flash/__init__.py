"""Flash substrate: geometry, NAND array with OOB metadata, block allocation."""

from repro.flash.allocator import BlockAllocator, OutOfSpaceError
from repro.flash.flash_array import FlashArray, FlashCounters, FlashError, PageState
from repro.flash.geometry import FlashGeometry, PageAddress
from repro.flash.oob import (
    LPA_ENTRY_BYTES,
    OOBArea,
    max_neighbor_entries,
    required_oob_bytes,
    validate_gamma_fits_oob,
)

__all__ = [
    "BlockAllocator",
    "OutOfSpaceError",
    "FlashArray",
    "FlashCounters",
    "FlashError",
    "PageState",
    "FlashGeometry",
    "PageAddress",
    "OOBArea",
    "LPA_ENTRY_BYTES",
    "max_neighbor_entries",
    "required_oob_bytes",
    "validate_gamma_fits_oob",
]
