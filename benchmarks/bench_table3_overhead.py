"""Table 3: overhead of segment learning and LPA lookup.

The paper measures 9.8-10.8 us to learn a batch of 256 mappings and
40-68 ns per LPA lookup on an ARM Cortex-A72.  This benchmark measures the
same operations on the host CPU (absolute numbers differ; the claim that the
learning cost is negligible relative to the 256 flash programs it rides on —
0.02% of the write latency — is what the assertion checks).
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.report import print_report, render_table
from repro.config import LeaFTLConfig, SSDConfig
from repro.core.mapping_table import LogStructuredMappingTable
from repro.core.plr import PLRLearner


def batch_of_256(gamma_seed: int = 0):
    """A learning batch shaped like a buffer flush: mixed patterns, sorted."""
    rng = random.Random(gamma_seed)
    lpas = set()
    base = 0
    while len(lpas) < 256:
        kind = rng.random()
        start = base + rng.randrange(0, 64)
        if kind < 0.5:
            lpas.update(range(start, start + 32))
        elif kind < 0.8:
            lpas.update(range(start, start + 64, rng.choice((2, 4))))
        else:
            lpas.update(start + rng.randrange(0, 256) for _ in range(8))
        base += 256
    lpas = sorted(lpas)[:256]
    return [(lpa, 10_000 + i) for i, lpa in enumerate(lpas)]


@pytest.mark.parametrize("gamma", [0, 1, 4])
def test_table3_learning_time(benchmark, gamma):
    learner = PLRLearner(gamma=gamma)
    batch = batch_of_256(gamma)

    benchmark(learner.learn, batch)

    learn_us = benchmark.stats.stats.mean * 1e6
    flash_cost_us = 256 * SSDConfig().write_latency_us
    print_report(render_table(
        ["metric", "value", "paper (ARM A72)"],
        [["gamma", gamma, gamma],
         ["learning time per 256 mappings (us)", round(learn_us, 1), "9.8-10.8"],
         ["share of the 256 flash programs (%)", round(100 * learn_us / flash_cost_us, 3), "0.02"]],
        title="Table 3: segment learning overhead"))
    # Learning must remain negligible vs the flash programs it accompanies.
    assert learn_us < 0.05 * flash_cost_us


@pytest.mark.parametrize("gamma", [0, 4])
def test_table3_lookup_time(benchmark, gamma):
    table = LogStructuredMappingTable(LeaFTLConfig(gamma=gamma))
    rng = random.Random(3)
    ppa = 0
    for _ in range(100):
        batch = batch_of_256(rng.randrange(10_000))
        table.update([(lpa, ppa + i) for i, (lpa, _) in enumerate(batch)])
        ppa += len(batch)
    probes = [rng.randrange(0, 30_000) for _ in range(2000)]

    def lookup_all():
        for lpa in probes:
            table.lookup(lpa)

    benchmark(lookup_all)
    per_lookup_ns = benchmark.stats.stats.mean / len(probes) * 1e9
    print_report(render_table(
        ["metric", "value", "paper (ARM A72)"],
        [["gamma", gamma, gamma],
         ["lookup time per LPA (ns)", round(per_lookup_ns, 1), "40.2-67.5"]],
        title="Table 3: LPA lookup overhead"))
    # A lookup must stay far below the 20 us flash read it precedes.
    assert per_lookup_ns < 0.5 * SSDConfig().read_latency_us * 1000
