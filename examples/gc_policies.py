#!/usr/bin/env python3
"""Garbage-collection policies and background GC on an aged device.

Run with::

    python examples/gc_policies.py

Two experiments, both on devices aged into GC steady state with
``precondition()`` (sequential fill + Zipf-skewed overwrites — the WiscSee
recipe that makes WAF and GC-interference numbers representative):

1. **Aging sweep** — replays the same overwrite-heavy mix for every GC
   victim policy (greedy, cost-benefit, d-choices) at several
   over-provisioning ratios.  The classic trend appears: more spare blocks
   mean victims shed more valid pages before collection, so WAF falls as
   over-provisioning grows — for every policy.

2. **GC scheduling** — replays the identical contended workload (queue
   depth 8) with the synchronous reclaim loop and with the background GC
   pipeline.  Synchronous GC reserves a whole multi-victim migration burst
   at one instant, so foreground reads landing mid-reclaim queue behind all
   of it; the background pipeline stages one victim at a time (read →
   program → erase events) between host requests, which flattens the read
   tail while deferring — not skipping — collection.  The hard-watermark
   column shows how long host writes were throttled when the pipeline fell
   behind a write burst.
"""

from __future__ import annotations

from repro.experiments.performance import aging_sweep, gc_mode_comparison

OP_RATIOS = (0.08, 0.16, 0.28)
POLICIES = ("greedy", "cost_benefit", "d_choices")


def print_aging_sweep() -> None:
    print("=== steady-state WAF by GC policy and over-provisioning ===")
    table = aging_sweep(op_ratios=OP_RATIOS, policies=POLICIES)
    header = f"{'policy':>14} " + " ".join(f"{f'OP {op:.0%}':>12}" for op in OP_RATIOS)
    print(header)
    print("-" * len(header))
    for policy, row in table.items():
        cells = " ".join(f"{row[op]['waf']:>12.3f}" for op in OP_RATIOS)
        print(f"{policy:>14} {cells}")
    print()
    print("p99 read latency (us) at the same cells:")
    for policy, row in table.items():
        cells = " ".join(f"{row[op]['read_p99_us']:>12.0f}" for op in OP_RATIOS)
        print(f"{policy:>14} {cells}")


def print_gc_modes() -> None:
    print("\n=== synchronous vs background GC (aged device, queue depth 8) ===")
    table = gc_mode_comparison()
    keys = (
        ("read_mean_us", "read mean us"),
        ("read_p99_us", "read p99 us"),
        ("waf", "WAF"),
        ("gc_page_writes", "GC page writes"),
        ("gc_write_throttle_us", "write throttle us"),
    )
    header = f"{'metric':>18} {'sync':>14} {'background':>14}"
    print(header)
    print("-" * len(header))
    for key, label in keys:
        print(
            f"{label:>18} {table['sync'][key]:>14.1f} "
            f"{table['background'][key]:>14.1f}"
        )


def main() -> None:
    print_aging_sweep()
    print_gc_modes()


if __name__ == "__main__":
    main()
