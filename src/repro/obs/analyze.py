"""Turn telemetry artifacts into explanations: attribution, diffs, health.

:mod:`repro.obs` collects *what happened* — request spans, gauge series,
counter snapshots.  This module answers *why*:

* :func:`request_spans` / :func:`attribute_requests` — walk each completed
  request's trace span into an exact additive critical-path breakdown
  (queue/arbitration wait, translation, DRAM service, NAND service, GC
  interference, channel contention, flush backpressure, misprediction
  extra reads) and aggregate per-percentile attribution tables: "the p99
  read spends 78% of its latency waiting on GC".
* :func:`tail_blame` — cluster the top-k slowest requests by their
  dominant component, naming the subsystem responsible for the tail.
* :func:`diff_counters` / :func:`diff_metrics` / :func:`diff_runs` — a
  thresholded, structured regression report between two runs' counter
  snapshots (reusing :meth:`repro.obs.registry.CounterSnapshot.delta`)
  and metric series aligned on sim-time.
* :func:`namespace_scorecard` — per-namespace SLO health: burn rate
  against an error budget, violation windows over sim-time, and device
  saturation gauges from the metrics series.

Everything here is pure post-processing over artifacts (or live collector
objects): no simulator state is touched, outputs contain no wall-clock
timestamps or absolute paths, and every aggregate iterates in sorted or
canonical-component order — two same-seed runs analyze to byte-identical
JSON.  The exactness contract: for every request span, the components
(including the explicit ``other_us`` residual) sum to its end-to-end
latency up to float rounding; the residual itself stays within a few ULPs
because the device records components from the same additions that built
the latency.
"""

from __future__ import annotations

import json
import math
import os
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

#: Canonical component order (report columns, tie-breaks, merge order).
COMPONENT_ORDER: Tuple[str, ...] = (
    "queue_wait_us",
    "translate_us",
    "dram_us",
    "nand_us",
    "chan_wait_us",
    "gc_wait_us",
    "flush_wait_us",
    "extra_read_us",
    "other_us",
)

#: Human-readable component labels for rendered reports.
COMPONENT_LABELS: Dict[str, str] = {
    "queue_wait_us": "queue/arbitration wait",
    "translate_us": "translation I/O",
    "dram_us": "DRAM service",
    "nand_us": "NAND service",
    "chan_wait_us": "channel contention",
    "gc_wait_us": "GC interference",
    "flush_wait_us": "flush backpressure",
    "extra_read_us": "misprediction extra reads",
    "other_us": "other/residual",
}

#: Default SLO error budget: the tolerated violation fraction.  A burn
#: rate of 1.0 means violations arrive exactly at budget; >1 eats into it.
DEFAULT_SLO_ERROR_BUDGET = 0.01

#: Default relative-change threshold of the run differ.
DEFAULT_DIFF_THRESHOLD = 0.05

#: Default top-k of the tail-blame clustering.
DEFAULT_TAIL_K = 12

#: Default violation-window width (sim-us) of the scorecard.
DEFAULT_WINDOW_US = 1000.0


class ArtifactError(ValueError):
    """A telemetry artifact is missing, truncated or malformed."""


# --------------------------------------------------------------------------- #
# Artifact loading
# --------------------------------------------------------------------------- #
def _load_json(path: str) -> Any:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except OSError as exc:
        raise ArtifactError(f"{path}: unreadable ({exc})") from exc
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"{path}: invalid JSON ({exc})") from exc


def load_artifacts(dirpath: str) -> Dict[str, Any]:
    """Load a telemetry artifact directory written by ``write_artifacts``.

    Returns ``{"trace_events": [...] | None, "metrics": {...} | None,
    "counters": {...} | None}`` — each ``None`` when the run did not
    produce that artifact.  Raises :class:`ArtifactError` when the
    directory does not exist, holds no artifacts at all, or any present
    artifact fails to parse.
    """
    if not os.path.isdir(dirpath):
        raise ArtifactError(f"{dirpath}: not a directory")
    out: Dict[str, Any] = {"trace_events": None, "metrics": None, "counters": None}
    trace_path = os.path.join(dirpath, "trace.json")
    if os.path.exists(trace_path):
        payload = _load_json(trace_path)
        events = payload.get("traceEvents") if isinstance(payload, dict) else None
        if not isinstance(events, list):
            raise ArtifactError(f"{trace_path}: no traceEvents list")
        out["trace_events"] = events
    metrics_path = os.path.join(dirpath, "metrics.json")
    if os.path.exists(metrics_path):
        payload = _load_json(metrics_path)
        if not isinstance(payload, dict) or "series" not in payload:
            raise ArtifactError(f"{metrics_path}: no series object")
        out["metrics"] = payload
    counters_path = os.path.join(dirpath, "counters.json")
    if os.path.exists(counters_path):
        payload = _load_json(counters_path)
        if not isinstance(payload, dict):
            raise ArtifactError(f"{counters_path}: not a counter mapping")
        out["counters"] = payload
    if all(value is None for value in out.values()):
        raise ArtifactError(
            f"{dirpath}: no telemetry artifacts "
            "(expected trace.json / metrics.json / counters.json)"
        )
    return out


# --------------------------------------------------------------------------- #
# Span extraction
# --------------------------------------------------------------------------- #
def _thread_names(events: Sequence[Mapping[str, Any]]) -> Dict[Any, str]:
    names: Dict[Any, str] = {}
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            args = event.get("args") or {}
            names[event.get("tid")] = str(args.get("name", ""))
    return names


def _ordered_components(components: Mapping[str, float]) -> Dict[str, float]:
    """Canonical component order first, then any unknown keys sorted."""
    ordered: Dict[str, float] = {}
    for key in COMPONENT_ORDER:
        if key in components:
            ordered[key] = float(components[key])
    for key in sorted(components):
        if key not in ordered:
            ordered[key] = float(components[key])
    return ordered


def request_spans(events: Sequence[Mapping[str, Any]]) -> List[Dict[str, Any]]:
    """Completed request spans with exact additive component breakdowns.

    Walks the Chrome trace-event list for B/E pairs on ``io-slot-*``
    tracks.  Each returned span carries::

        op            "R" / "W"
        queue         namespace name (None on single-queue replays)
        start_us      issue timestamp (device clock)
        device_us     in-device latency (span duration)
        latency_us    end-to-end latency = queue wait + device latency
        components    ordered component -> us dict summing to latency_us

    ``components`` always includes an ``other_us`` residual — the span
    duration minus the device-recorded components — so the breakdown sums
    to the end-to-end latency by construction even for traces recorded
    without device breakdowns (there the whole duration is ``other_us``).
    """
    names = _thread_names(events)
    open_spans: Dict[Any, Mapping[str, Any]] = {}
    spans: List[Dict[str, Any]] = []
    for event in events:
        phase = event.get("ph")
        if phase not in ("B", "E"):
            continue
        tid = event.get("tid")
        if not names.get(tid, "").startswith("io-slot-"):
            continue
        if phase == "B":
            open_spans[tid] = event
            continue
        begin = open_spans.pop(tid, None)
        if begin is None:
            continue
        args = begin.get("args") or {}
        device_us = float(event.get("ts", 0.0)) - float(begin.get("ts", 0.0))
        queue_wait = float(args.get("queue_wait_us", 0.0))
        breakdown = args.get("breakdown") or {}
        components: Dict[str, float] = {}
        if queue_wait > 0.0:
            components["queue_wait_us"] = queue_wait
        for key, value in breakdown.items():
            components[key] = components.get(key, 0.0) + float(value)
        recorded = math.fsum(float(v) for v in breakdown.values())
        components["other_us"] = device_us - recorded
        spans.append(
            {
                "op": str(begin.get("name", "?")),
                "queue": args.get("queue"),
                "start_us": float(begin.get("ts", 0.0)),
                "device_us": device_us,
                "latency_us": queue_wait + device_us,
                "components": _ordered_components(components),
            }
        )
    return spans


def recovery_summary(
    events: Optional[Sequence[Mapping[str, Any]]],
) -> List[Dict[str, Any]]:
    """Recovery-phase spans (``recovery_scan`` / ``recovery_replay``)."""
    if not events:
        return []
    names = _thread_names(events)
    phases: List[Dict[str, Any]] = []
    for event in events:
        if event.get("ph") != "X" or names.get(event.get("tid")) != "recovery":
            continue
        entry: Dict[str, Any] = {
            "phase": str(event.get("name", "?")),
            "start_us": float(event.get("ts", 0.0)),
            "makespan_us": float(event.get("dur", 0.0)),
        }
        args = event.get("args")
        if args:
            entry.update({key: args[key] for key in sorted(args)})
        phases.append(entry)
    return phases


def gc_stage_summary(
    events: Optional[Sequence[Mapping[str, Any]]],
) -> Dict[str, Dict[str, float]]:
    """Total occupancy per background-GC pipeline stage (``gc`` track)."""
    if not events:
        return {}
    names = _thread_names(events)
    totals: Dict[str, Dict[str, float]] = {}
    open_begin: Dict[str, float] = {}
    for event in events:
        if names.get(event.get("tid")) != "gc":
            continue
        phase = event.get("ph")
        name = str(event.get("name", "?"))
        if phase == "B":
            open_begin[name] = float(event.get("ts", 0.0))
        elif phase == "E" and name in open_begin:
            start = open_begin.pop(name)
            entry = totals.setdefault(name, {"count": 0.0, "total_us": 0.0})
            entry["count"] += 1.0
            entry["total_us"] += float(event.get("ts", 0.0)) - start
    return {name: totals[name] for name in sorted(totals)}


# --------------------------------------------------------------------------- #
# Attribution
# --------------------------------------------------------------------------- #
def percentile_value(sorted_values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sequence."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(pct / 100.0 * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


def _component_means(spans: Sequence[Mapping[str, Any]]) -> Dict[str, Dict[str, float]]:
    """Per-component mean microseconds and share of mean latency."""
    if not spans:
        return {}
    count = len(spans)
    sums: Dict[str, float] = {}
    for span in spans:
        for key, value in span["components"].items():
            sums[key] = sums.get(key, 0.0) + value
    mean_total = math.fsum(s["latency_us"] for s in spans) / count
    out: Dict[str, Dict[str, float]] = {}
    for key in _ordered_components(sums):
        mean = sums[key] / count
        share = mean / mean_total if mean_total > 0.0 else 0.0
        out[key] = {"mean_us": mean, "share": share}
    return out


def dominant_component(components: Mapping[str, float]) -> str:
    """The largest component; canonical order breaks exact ties."""
    best_key = "other_us"
    best_value = -math.inf
    for key in _ordered_components(components):
        value = components[key]
        if value > best_value:
            best_key, best_value = key, value
    return best_key


def attribute_requests(
    spans: Sequence[Mapping[str, Any]],
    percentiles: Sequence[float] = (50.0, 95.0, 99.0),
) -> Dict[str, Any]:
    """Per-op, per-percentile attribution tables.

    For each op, the ``all`` level averages every request; each ``p<N>``
    level averages the requests at or above that latency percentile
    (nearest rank) — "what does the p99 cohort spend its time on".
    """
    ops: Dict[str, Any] = {}
    for op in sorted({str(s["op"]) for s in spans}):
        group = sorted(
            (s for s in spans if s["op"] == op),
            key=lambda s: (s["latency_us"], s["start_us"]),
        )
        latencies = [s["latency_us"] for s in group]
        levels: Dict[str, Any] = {
            "all": {
                "latency_us": math.fsum(latencies) / len(latencies),
                "count": len(group),
                "components": _component_means(group),
            }
        }
        levels["all"]["dominant"] = dominant_component(
            {k: v["mean_us"] for k, v in levels["all"]["components"].items()}
        )
        for pct in percentiles:
            threshold = percentile_value(latencies, pct)
            tail = [s for s in group if s["latency_us"] >= threshold]
            components = _component_means(tail)
            levels[f"p{pct:g}"] = {
                "latency_us": threshold,
                "count": len(tail),
                "components": components,
                "dominant": dominant_component(
                    {k: v["mean_us"] for k, v in components.items()}
                ),
            }
        ops[op] = {"count": len(group), "levels": levels}
    return {"requests": len(spans), "ops": ops}


def tail_blame(
    spans: Sequence[Mapping[str, Any]], top_k: int = DEFAULT_TAIL_K
) -> Dict[str, Any]:
    """Cluster the top-k slowest requests by their dominant component."""
    ranked = sorted(
        spans, key=lambda s: (-s["latency_us"], s["start_us"], s["op"])
    )[: max(0, top_k)]
    details: List[Dict[str, Any]] = []
    clusters: Dict[str, List[Dict[str, Any]]] = {}
    for span in ranked:
        components = span["components"]
        dominant = dominant_component(components)
        latency = span["latency_us"]
        share = components.get(dominant, 0.0) / latency if latency > 0.0 else 0.0
        detail = {
            "op": span["op"],
            "queue": span["queue"],
            "start_us": span["start_us"],
            "latency_us": latency,
            "dominant": dominant,
            "dominant_share": share,
            "components": dict(components),
        }
        details.append(detail)
        clusters.setdefault(dominant, []).append(detail)
    cluster_rows = [
        {
            "component": component,
            "count": len(members),
            "mean_latency_us": math.fsum(m["latency_us"] for m in members)
            / len(members),
            "mean_share": math.fsum(m["dominant_share"] for m in members)
            / len(members),
            "ops": sorted({m["op"] for m in members}),
            "queues": sorted({str(m["queue"]) for m in members if m["queue"]}),
        }
        for component, members in clusters.items()
    ]
    cluster_rows.sort(key=lambda row: (-row["count"], row["component"]))
    return {"top_k": len(ranked), "clusters": cluster_rows, "requests": details}


# --------------------------------------------------------------------------- #
# SLO / health scorecard
# --------------------------------------------------------------------------- #
def _merge_windows(
    buckets: Mapping[int, int], window_us: float
) -> List[Dict[str, float]]:
    """Merge adjacent violating buckets into ``[start, end)`` windows."""
    windows: List[Dict[str, float]] = []
    for bucket in sorted(buckets):
        count = float(buckets[bucket])
        start = bucket * window_us
        if windows and windows[-1]["end_us"] == start:
            windows[-1]["end_us"] = start + window_us
            windows[-1]["violations"] += count
        else:
            windows.append(
                {"start_us": start, "end_us": start + window_us, "violations": count}
            )
    return windows


def _saturation(metrics: Mapping[str, Any]) -> Dict[str, Any]:
    """Device saturation gauges summarized from the metrics series."""
    series: Mapping[str, List[float]] = metrics.get("series", {})
    out: Dict[str, Any] = {"samples": len(series.get("time_us", []))}
    free = series.get("free_block_ratio")
    if free:
        out["min_free_block_ratio"] = min(free)
    gc_running = series.get("gc_running")
    if gc_running:
        out["gc_running_fraction"] = sum(
            1 for value in gc_running if value > 0.0
        ) / len(gc_running)
    backlog = series.get("gc_backlog")
    if backlog:
        out["max_gc_backlog"] = max(backlog)
    fill = series.get("write_buffer_fill")
    if fill:
        out["max_write_buffer_fill"] = max(fill)
    busy_peaks = [
        max(values)
        for column, values in sorted(series.items())
        if column.startswith("ch") and column.endswith("_busy_frac") and values
    ]
    if busy_peaks:
        out["max_channel_busy_frac"] = max(busy_peaks)
    inflight = {
        column[len("ns_") : -len("_inflight")]: max(values)
        for column, values in sorted(series.items())
        if column.startswith("ns_") and column.endswith("_inflight") and values
    }
    if inflight:
        out["max_inflight"] = inflight
    return out


def namespace_scorecard(
    counters: Mapping[str, float],
    gauges: Optional[Mapping[str, float]] = None,
    metrics: Optional[Mapping[str, Any]] = None,
    spans: Optional[Sequence[Mapping[str, Any]]] = None,
    window_us: float = DEFAULT_WINDOW_US,
    error_budget: float = DEFAULT_SLO_ERROR_BUDGET,
) -> Dict[str, Any]:
    """Per-namespace SLO health from a counter snapshot (or delta).

    ``counters`` supplies the activity counts (pass a measured-phase
    *delta* to score just that phase); ``gauges`` supplies configuration
    gauges (SLO thresholds, weights) that a delta would zero out —
    defaults to ``counters`` itself, which is right for absolute
    snapshots.  ``spans`` (from :func:`request_spans`) adds sim-time
    violation windows; ``metrics`` adds device saturation gauges.
    """
    if error_budget <= 0.0:
        raise ValueError("error_budget must be positive")
    gauges = counters if gauges is None else gauges
    names = sorted(
        {
            key.split(".")[1]
            for key in counters
            if key.startswith("ns.") and key.count(".") >= 2
        }
    )
    card: Dict[str, Any] = {"error_budget": error_budget, "namespaces": {}}
    for name in names:
        prefix = f"ns.{name}."

        def count(field: str) -> float:
            return float(counters.get(prefix + field, 0.0))

        completed = count("completed")
        violations = count("slo_violations_read") + count("slo_violations_write")
        violation_rate = violations / completed if completed > 0.0 else 0.0
        burn_rate = violation_rate / error_budget
        if burn_rate < 1.0:
            status = "ok"
        elif burn_rate < 10.0:
            status = "warning"
        else:
            status = "critical"
        slo_read = float(gauges.get(prefix + "slo_read_us", 0.0))
        slo_write = float(gauges.get(prefix + "slo_write_us", 0.0))
        entry: Dict[str, Any] = {
            "submitted": count("submitted"),
            "completed": completed,
            "slo_read_us": slo_read,
            "slo_write_us": slo_write,
            "slo_violations": violations,
            "violation_rate": violation_rate,
            "burn_rate": burn_rate,
            "status": status,
            "mean_queue_wait_us": (
                count("queue_wait_us") / completed if completed > 0.0 else 0.0
            ),
            "read_p99_us": count("read_latency.p99_us"),
            "write_p99_us": count("write_latency.p99_us"),
            "rate_limit_deferrals": count("rate_limit_deferrals"),
        }
        if spans:
            buckets: Dict[int, int] = {}
            for span in spans:
                if span.get("queue") != name:
                    continue
                slo = slo_read if span["op"] == "R" else slo_write
                if slo <= 0.0 or span["latency_us"] <= slo:
                    continue
                finish = span["start_us"] + span["device_us"]
                bucket = int(finish // window_us)
                buckets[bucket] = buckets.get(bucket, 0) + 1
            entry["violation_windows"] = _merge_windows(buckets, window_us)
        card["namespaces"][name] = entry
    if metrics is not None:
        card["saturation"] = _saturation(metrics)
    return card


# --------------------------------------------------------------------------- #
# The analyzer entry point
# --------------------------------------------------------------------------- #
def analyze_artifacts(
    artifacts: Mapping[str, Any], top_k: int = DEFAULT_TAIL_K
) -> Dict[str, Any]:
    """One structured report over a loaded artifact directory.

    ``artifacts`` is :func:`load_artifacts` output (or a dict with live
    ``trace_events`` / ``metrics`` / ``counters`` values).  The report
    contains no paths or wall-clock data, so two same-seed runs produce
    byte-identical JSON.
    """
    events = artifacts.get("trace_events")
    counters = artifacts.get("counters")
    metrics = artifacts.get("metrics")
    spans = request_spans(events) if events else []
    report: Dict[str, Any] = {
        "schema": "repro.obs.analyze/1",
        "requests": attribute_requests(spans),
        "tail_blame": tail_blame(spans, top_k=top_k),
        "recovery": recovery_summary(events),
        "gc_stages": gc_stage_summary(events),
    }
    if counters is not None:
        report["scorecard"] = namespace_scorecard(
            counters, metrics=metrics, spans=spans
        )
    return report


# --------------------------------------------------------------------------- #
# Run differ
# --------------------------------------------------------------------------- #
def _relative(delta: float, base: float) -> Optional[float]:
    return delta / abs(base) if base != 0.0 else None


def diff_counters(
    base: Mapping[str, float],
    current: Mapping[str, float],
    rel_threshold: float = DEFAULT_DIFF_THRESHOLD,
    abs_floor: float = 1e-9,
) -> Dict[str, Any]:
    """Thresholded counter diff: which counters moved, worst first.

    A counter is reported when it moved by more than ``abs_floor`` and
    either its base was zero (any appearance is significant) or its
    relative change reaches ``rel_threshold``.  Rows sort by descending
    relative magnitude (new counters first), then key.
    """
    changed: List[Dict[str, Any]] = []
    keys = sorted(set(base) | set(current))
    for key in keys:
        base_value = float(base.get(key, 0.0))
        current_value = float(current.get(key, 0.0))
        delta = current_value - base_value
        if abs(delta) <= abs_floor:
            continue
        rel = _relative(delta, base_value)
        if rel is not None and abs(rel) < rel_threshold:
            continue
        changed.append(
            {
                "counter": key,
                "base": base_value,
                "current": current_value,
                "delta": delta,
                "rel": rel,
            }
        )
    changed.sort(
        key=lambda row: (
            -(abs(row["rel"]) if row["rel"] is not None else math.inf),
            row["counter"],
        )
    )
    return {"threshold": rel_threshold, "compared": len(keys), "changed": changed}


def diff_metrics(
    base: Optional[Mapping[str, Any]],
    current: Optional[Mapping[str, Any]],
    rel_threshold: float = DEFAULT_DIFF_THRESHOLD,
) -> Dict[str, Any]:
    """Diff two metric series aligned on shared ``time_us`` samples."""
    if base is None or current is None:
        return {"threshold": rel_threshold, "aligned_samples": 0, "changed": []}
    base_series: Mapping[str, List[float]] = base.get("series", {})
    current_series: Mapping[str, List[float]] = current.get("series", {})
    base_times = base_series.get("time_us", [])
    current_times = current_series.get("time_us", [])
    shared = sorted(set(base_times) & set(current_times))
    if not shared:
        return {"threshold": rel_threshold, "aligned_samples": 0, "changed": []}
    base_index = {t: i for i, t in enumerate(base_times)}
    current_index = {t: i for i, t in enumerate(current_times)}
    changed: List[Dict[str, Any]] = []
    columns = sorted((set(base_series) & set(current_series)) - {"time_us"})
    for column in columns:
        base_values = [base_series[column][base_index[t]] for t in shared]
        current_values = [current_series[column][current_index[t]] for t in shared]
        max_abs = max(
            abs(c - b) for b, c in zip(base_values, current_values)
        )
        if max_abs <= 0.0:
            continue
        base_mean = math.fsum(base_values) / len(shared)
        current_mean = math.fsum(current_values) / len(shared)
        delta = current_mean - base_mean
        rel = _relative(delta, base_mean)
        if rel is not None and abs(rel) < rel_threshold:
            continue
        changed.append(
            {
                "column": column,
                "base_mean": base_mean,
                "current_mean": current_mean,
                "delta_mean": delta,
                "rel": rel,
                "max_abs_diff": max_abs,
            }
        )
    changed.sort(
        key=lambda row: (
            -(abs(row["rel"]) if row["rel"] is not None else math.inf),
            row["column"],
        )
    )
    return {
        "threshold": rel_threshold,
        "aligned_samples": len(shared),
        "changed": changed,
    }


def diff_runs(
    dir_a: str, dir_b: str, rel_threshold: float = DEFAULT_DIFF_THRESHOLD
) -> Dict[str, Any]:
    """Structured regression report between two artifact directories.

    ``dir_a`` is the base run, ``dir_b`` the candidate.  Requires both
    runs to have ``counters.json``; metric series are compared when both
    runs sampled them.  The report carries no paths, so diffing a run
    against itself is byte-stable (and empty).
    """
    base = load_artifacts(dir_a)
    current = load_artifacts(dir_b)
    if base["counters"] is None or current["counters"] is None:
        raise ArtifactError("both runs need counters.json to diff")
    counters = diff_counters(
        base["counters"], current["counters"], rel_threshold=rel_threshold
    )
    metrics = diff_metrics(
        base["metrics"], current["metrics"], rel_threshold=rel_threshold
    )
    return {
        "schema": "repro.obs.diff/1",
        "threshold": rel_threshold,
        "significant": bool(counters["changed"] or metrics["changed"]),
        "counters": counters,
        "metrics": metrics,
    }
