"""Mapping-table memory-footprint experiments (Figures 15 and 19).

These experiments measure how many DRAM bytes each FTL scheme needs to hold
the mapping of a workload's entire working set — no DRAM budget, no warm-up,
no timing — which is exactly what Figure 15 (LeaFTL vs DFTL vs SFTL) and
Figure 19 (LeaFTL with different gamma) compare.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.analysis.memory import geometric_mean, reduction_factor
from repro.experiments.common import (
    ExperimentSetup,
    SIMULATOR_WORKLOADS,
    oob_size_for_gamma,
    run_experiment,
    workload_for_setup,
)


def memory_setup(gamma: int = 0, request_scale: float = 0.25) -> ExperimentSetup:
    """A setup tailored to footprint measurements (no warm-up, no budget)."""
    return ExperimentSetup(
        gamma=gamma,
        oob_size=oob_size_for_gamma(gamma),
        warmup=False,
        request_scale=request_scale,
        # A large DRAM so no scheme is budget-limited: we want the size each
        # scheme *needs*, not the size it was allowed.
        dram_bytes=512 * 1024 * 1024,
        # Compact often enough (relative to the scaled-down traces) that the
        # footprint reflects the paper's periodically-compacted steady state.
        compaction_interval_writes=25_000,
    )


def mapping_footprints(
    workloads: Sequence[str] = tuple(SIMULATOR_WORKLOADS),
    schemes: Sequence[str] = ("DFTL", "SFTL", "LeaFTL"),
    gamma: int = 0,
    request_scale: float = 0.25,
) -> Dict[str, Dict[str, int]]:
    """workload -> scheme -> full mapping-table bytes (Figure 15 input)."""
    setup = memory_setup(gamma=gamma, request_scale=request_scale)
    results: Dict[str, Dict[str, int]] = {}
    for workload in workloads:
        trace = workload_for_setup(workload, setup)
        per_scheme: Dict[str, int] = {}
        for scheme in schemes:
            outcome = run_experiment(workload, scheme, setup, trace=trace)
            per_scheme[scheme] = outcome.mapping_full_bytes
        results[workload] = per_scheme
    return results


def memory_reduction_summary(
    footprints: Dict[str, Dict[str, int]], target: str = "LeaFTL"
) -> Dict[str, Dict[str, float]]:
    """Per-workload reduction factors of ``target`` vs every other scheme."""
    summary: Dict[str, Dict[str, float]] = {}
    for workload, by_scheme in footprints.items():
        summary[workload] = {
            f"vs {scheme}": reduction_factor(size, by_scheme[target])
            for scheme, size in by_scheme.items()
            if scheme != target
        }
    return summary


def average_reduction(
    footprints: Dict[str, Dict[str, int]], baseline: str, target: str = "LeaFTL"
) -> float:
    """Geometric-mean reduction of ``target`` vs ``baseline`` across workloads."""
    factors = [
        reduction_factor(by_scheme[baseline], by_scheme[target])
        for by_scheme in footprints.values()
    ]
    return geometric_mean(factors)


def gamma_sweep_footprints(
    workloads: Sequence[str],
    gammas: Sequence[int] = (0, 1, 4, 16),
    request_scale: float = 0.25,
) -> Dict[str, Dict[int, int]]:
    """workload -> gamma -> LeaFTL mapping bytes (Figure 19 input)."""
    results: Dict[str, Dict[int, int]] = {}
    for workload in workloads:
        per_gamma: Dict[int, int] = {}
        for gamma in gammas:
            setup = memory_setup(gamma=gamma, request_scale=request_scale)
            trace = workload_for_setup(workload, setup)
            outcome = run_experiment(workload, "LeaFTL", setup, trace=trace)
            per_gamma[gamma] = outcome.mapping_full_bytes
        results[workload] = per_gamma
    return results
