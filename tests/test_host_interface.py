"""Tests for the multi-queue host interface: namespaces, arbiters, QoS.

Covers four layers:

* arbitration policies in isolation (deterministic grant orders);
* token buckets (refill arithmetic, burst clamping);
* namespaces (carving, overlap rejection, translation, clipping);
* the full frontend: single-namespace replay must match the classic
  ``HostFrontend`` path bit-for-bit, and rate limits must shape admission.
"""

from __future__ import annotations

import random

import pytest

from repro.config import SSDConfig
from repro.host.arbiter import (
    ARBITERS,
    FifoArbiter,
    RoundRobinArbiter,
    StrictPriorityArbiter,
    TokenBucket,
    WeightedRoundRobinArbiter,
    make_arbiter,
)
from repro.host.interface import HostInterface, MultiQueueFrontend, SubmissionQueue
from repro.host.namespace import Namespace
from repro.sim.events import EventLoop
from repro.ssd.ssd import SSDOptions
from tests.conftest import make_ssd


class _FakeQueue:
    """Minimal stand-in implementing the arbitrated-queue protocol."""

    def __init__(self, name, weight=1, priority=0, head=(0.0, 0)):
        self.name = name
        self.weight = weight
        self.priority = priority
        self._head = head

    def head_key(self):
        return self._head


class TestArbiters:
    def test_make_arbiter_knows_every_name(self):
        for name in ARBITERS:
            assert make_arbiter(name).name == name
        with pytest.raises(ValueError):
            make_arbiter("lottery")

    def test_fifo_picks_earliest_head(self):
        a = _FakeQueue("a", head=(10.0, 3))
        b = _FakeQueue("b", head=(5.0, 7))
        arbiter = FifoArbiter()
        arbiter.bind([a, b])
        assert arbiter.select([a, b]) is b

    def test_fifo_breaks_time_ties_by_enqueue_order(self):
        a = _FakeQueue("a", head=(5.0, 9))
        b = _FakeQueue("b", head=(5.0, 2))
        arbiter = FifoArbiter()
        arbiter.bind([a, b])
        assert arbiter.select([a, b]) is b

    def test_round_robin_cycles(self):
        queues = [_FakeQueue(n) for n in "abc"]
        arbiter = RoundRobinArbiter()
        arbiter.bind(queues)
        grants = [arbiter.select(queues).name for _ in range(6)]
        assert grants == ["a", "b", "c", "a", "b", "c"]

    def test_round_robin_skips_ineligible(self):
        a, b, c = (_FakeQueue(n) for n in "abc")
        arbiter = RoundRobinArbiter()
        arbiter.bind([a, b, c])
        assert arbiter.select([a, b, c]) is a
        # b has gone idle: the rotation moves on to c, then wraps.
        assert arbiter.select([a, c]) is c
        assert arbiter.select([a, c]) is a

    def test_weighted_round_robin_grants_proportionally(self):
        heavy = _FakeQueue("heavy", weight=3)
        light = _FakeQueue("light", weight=1)
        arbiter = WeightedRoundRobinArbiter()
        arbiter.bind([heavy, light])
        grants = [arbiter.select([heavy, light]).name for _ in range(8)]
        assert grants.count("heavy") == 6
        assert grants.count("light") == 2

    def test_weighted_round_robin_is_work_conserving(self):
        heavy = _FakeQueue("heavy", weight=3)
        light = _FakeQueue("light", weight=1)
        arbiter = WeightedRoundRobinArbiter()
        arbiter.bind([heavy, light])
        # Only the light queue has work: it gets every grant.
        grants = [arbiter.select([light]).name for _ in range(5)]
        assert grants == ["light"] * 5

    def test_strict_priority_always_prefers_urgent(self):
        urgent = _FakeQueue("urgent", priority=0, head=(99.0, 9))
        background = _FakeQueue("bg", priority=2, head=(1.0, 1))
        arbiter = StrictPriorityArbiter()
        arbiter.bind([urgent, background])
        for _ in range(3):
            assert arbiter.select([urgent, background]) is urgent

    def test_strict_priority_fifo_within_class(self):
        first = _FakeQueue("first", priority=1, head=(5.0, 1))
        second = _FakeQueue("second", priority=1, head=(5.0, 2))
        arbiter = StrictPriorityArbiter()
        arbiter.bind([first, second])
        assert arbiter.select([second, first]) is first


class TestTokenBucket:
    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(0.0, 1.0)
        with pytest.raises(ValueError):
            TokenBucket(100.0, 0.5)
        with pytest.raises(ValueError):
            TokenBucket(100.0, 1.0, unit="bytes")

    def test_burst_then_refill(self):
        bucket = TokenBucket(1_000_000.0, burst=2.0)  # 1 token/us
        assert bucket.try_consume(1.0, 0.0)
        assert bucket.try_consume(1.0, 0.0)
        assert not bucket.try_consume(1.0, 0.0)
        # One microsecond later one token has accrued.
        assert bucket.try_consume(1.0, 1.0)

    def test_available_at_reports_refill_time(self):
        bucket = TokenBucket(1_000_000.0, burst=4.0)
        bucket.try_consume(4.0, 0.0)
        eta = bucket.available_at(2.0, 0.0)
        assert eta == pytest.approx(2.0, abs=1e-3)
        assert bucket.can_admit(2.0, eta)

    def test_page_cost_clamped_to_burst(self):
        bucket = TokenBucket(1000.0, burst=8.0, unit="pages")
        assert bucket.cost_of(64) == 8.0
        assert bucket.cost_of(2) == 2.0


class TestNamespace:
    def test_translate_relocates_and_clips(self):
        ns = Namespace("t", base_lpa=100, size_pages=50)
        assert ns.translate(0, 4) == (100, 4)
        assert ns.translate(48, 8) == (148, 2)
        assert ns.stats.clipped_pages == 6
        with pytest.raises(ValueError):
            ns.translate(50, 1)

    def test_slo_violations_counted(self):
        ns = Namespace("t", 0, 10, slo_read_us=100.0)
        ns.record_completion("R", 50.0)
        ns.record_completion("R", 150.0)
        ns.record_completion("W", 10_000.0)  # no write SLO configured
        assert ns.stats.slo_violations == 1

    def test_host_carves_disjoint_namespaces(self):
        ssd = make_ssd()
        host = HostInterface(ssd)
        a = host.add_namespace("a", size_pages=1000)
        b = host.add_namespace("b", size_pages=2000)
        assert (a.base_lpa, a.size_pages) == (0, 1000)
        assert b.base_lpa == 1000
        with pytest.raises(ValueError):
            host.add_namespace("c", base_lpa=500, size_pages=10)
        with pytest.raises(ValueError):
            host.add_namespace("a2", base_lpa=0, size_pages=10)

    def test_last_namespace_takes_remaining_space(self):
        ssd = make_ssd()
        host = HostInterface(ssd)
        host.add_namespace("a", size_pages=1000)
        rest = host.add_namespace("rest")
        assert rest.size_pages == ssd.config.logical_pages - 1000
        assert host.free_pages() == 0
        with pytest.raises(ValueError):
            host.add_namespace("overflow", size_pages=1)

    def test_oversized_namespace_rejected(self):
        ssd = make_ssd()
        host = HostInterface(ssd)
        with pytest.raises(ValueError):
            host.add_namespace("big", size_pages=ssd.config.logical_pages + 1)


def _mixed_requests(seed, count, footprint):
    rng = random.Random(seed)
    requests = []
    for _ in range(count):
        start = rng.randrange(footprint)
        if rng.random() < 0.4:
            requests.append(("W", start, rng.randint(1, 32)))
        else:
            requests.append(("R", start, rng.randint(1, 8)))
    return requests


_CONFIG = SSDConfig.tiny(capacity_bytes=128 * 1024 * 1024)
_FOOTPRINT = 28_000


def _contended_workload():
    fill = [("W", lpa, 64) for lpa in range(0, _FOOTPRINT, 64)]
    overwrite = [("W", lpa, 64) for lpa in range(0, _FOOTPRINT, 128)]
    return fill + overwrite + _mixed_requests(7, 1500, _FOOTPRINT)


def _stats_signature(ssd):
    stats = ssd.stats
    return (
        stats.read_latency.count,
        stats.read_latency.total_us,
        stats.read_latency.max_us,
        stats.write_latency.count,
        stats.write_latency.total_us,
        stats.data_page_writes,
        stats.gc_page_reads,
        stats.gc_page_writes,
        stats.gc_invocations,
        stats.gc_block_erases,
        stats.buffer_flushes,
        stats.buffer_hits,
        stats.cache_hits,
        stats.mispredictions,
        stats.read_stall_us,
        stats.simulated_time_us,
        stats.events_processed,
        stats.requests_submitted,
        stats.requests_completed,
        stats.max_outstanding_requests,
        ssd.flash.counters.page_reads,
        ssd.flash.counters.page_writes,
        ssd.flash.counters.block_erases,
    )


class TestSingleNamespaceEquivalence:
    """Acceptance: the host interface is a strict generalisation.

    One whole-device namespace + one closed-loop queue must replay
    *bit-for-bit* like the classic ``HostFrontend`` path — same latencies,
    same flash counters, same event count — for every arbiter (with one
    queue they are all trivially equivalent).
    """

    @pytest.mark.parametrize("arbiter", ARBITERS)
    def test_matches_host_frontend_exactly(self, arbiter):
        requests = _contended_workload()
        baseline = make_ssd(
            gamma=4, config=_CONFIG, options=SSDOptions(queue_depth=8)
        )
        baseline.run(requests)

        ssd = make_ssd(gamma=4, config=_CONFIG, options=SSDOptions(queue_depth=8))
        host = HostInterface(ssd, arbiter=arbiter, queue_depth=8)
        host.add_namespace("all")
        result = host.run({"all": requests})

        assert _stats_signature(baseline) == _stats_signature(ssd)
        assert result.namespaces["all"].completed == len(requests)

    def test_matches_event_engine_at_depth_one(self):
        """Transitively pins serial equivalence: test_sim pins serial ==
        events at depth 1; here host == events at depth 1, stat for stat."""
        requests = _contended_workload()
        baseline = make_ssd(
            gamma=4,
            config=_CONFIG,
            options=SSDOptions(engine="events", queue_depth=1),
        )
        baseline.run(requests)

        ssd = make_ssd(gamma=4, config=_CONFIG, options=SSDOptions(queue_depth=1))
        host = HostInterface(ssd, queue_depth=1)
        host.add_namespace("all")
        host.run({"all": requests})

        assert _stats_signature(baseline) == _stats_signature(ssd)


class TestMultiQueueFrontend:
    def test_namespace_translation_applied(self):
        ssd = make_ssd()
        host = HostInterface(ssd, queue_depth=2)
        host.add_namespace("a", size_pages=1024)
        host.add_namespace("b", size_pages=1024)
        host.run(
            {
                "a": [("W", 0, 4), ("R", 0, 4)],
                "b": [("W", 0, 4), ("R", 0, 4)],
            }
        )
        # Both tenants wrote "their" LPA 0; the device saw disjoint pages.
        assert ssd.stats.host_write_pages == 8
        assert ssd._current_ppa  # device LPAs 0..3 and 1024..1027 live
        written = sorted(ssd._current_ppa)
        assert written[:4] == [0, 1, 2, 3]
        assert written[4:] == [1024, 1025, 1026, 1027]

    def test_requests_clipped_at_namespace_not_device(self):
        ssd = make_ssd()
        host = HostInterface(ssd, queue_depth=1)
        ns = host.add_namespace("small", size_pages=64)
        host.add_namespace("rest")
        host.run({"small": [("W", 60, 8)]})
        assert ns.stats.clipped_pages == 4
        # The device itself saw a fully in-bounds request.
        assert ssd.stats.clipped_pages == 0
        assert ssd.stats.host_write_pages == 4

    def test_unknown_namespace_rejected(self):
        ssd = make_ssd()
        host = HostInterface(ssd)
        host.add_namespace("a", size_pages=64)
        with pytest.raises(KeyError):
            host.run({"ghost": [("W", 0, 1)]})

    def test_empty_tenant_set_rejected(self):
        ssd = make_ssd()
        host = HostInterface(ssd)
        host.add_namespace("a", size_pages=64)
        with pytest.raises(ValueError):
            host.run({})

    def test_iops_limit_paces_admission(self):
        ssd = make_ssd()
        host = HostInterface(ssd, queue_depth=4)
        ns = host.add_namespace(
            "capped", size_pages=4096, iops_limit=1000.0, iops_burst=2.0
        )
        result = host.run({"capped": [("W", i * 4, 4) for i in range(50)]})
        # 50 requests at 1000 IOPS (burst 2) need ~48 ms of simulated time.
        assert ssd.stats.simulated_time_us >= 47_000.0
        assert ns.stats.rate_limit_deferrals > 0
        assert result.namespaces["capped"].completed == 50

    def test_bandwidth_limit_charges_pages(self):
        ssd = make_ssd()
        host = HostInterface(ssd, queue_depth=4)
        host.add_namespace(
            "capped",
            size_pages=4096,
            bandwidth_pages_per_s=1_000_000.0,
            bandwidth_burst_pages=8.0,
        )
        host.run({"capped": [("W", i * 8, 8) for i in range(100)]})
        # 800 pages at 1 page/us with burst 8: at least ~790 us of pacing.
        assert ssd.stats.simulated_time_us >= 790.0

    def test_deferrals_counted_once_per_request(self):
        """One deferred admission = one count, however many retries it takes."""
        ssd = make_ssd()
        host = HostInterface(ssd, queue_depth=4)
        ns = host.add_namespace(
            "capped", size_pages=4096, iops_limit=1_000_000.0, iops_burst=1.0
        )
        host.run({"capped": [("W", i * 4, 1) for i in range(10)]})
        # The first request rides the burst token; the other nine are each
        # deferred exactly once while their token accrues.
        assert ns.stats.rate_limit_deferrals == 9

    def test_short_throttle_not_delayed_by_long_throttle(self):
        """A pending distant retry must not swallow an earlier-needed one.

        Tenant "slow" exhausts its burst and refills only after ~100 ms,
        parking a retry far in the future.  Tenant "quick" then needs a
        retry just ~1 us after its own arrival — it must be admitted on
        its own refill clock, not slow's.
        """
        from repro.workloads.trace import IORequest, Trace

        ssd = make_ssd()
        host = HostInterface(ssd, queue_depth=4)
        slow = host.add_namespace(
            "slow", size_pages=1024, iops_limit=10.0, iops_burst=1.0
        )
        quick = host.add_namespace(
            "quick", size_pages=1024, iops_limit=1_000_000.0, iops_burst=1.0
        )
        quick_trace = Trace(
            "quick",
            [
                IORequest("W", 0, 1, timestamp_us=100.0),
                IORequest("W", 1, 1, timestamp_us=101.0),
            ],
        )
        result = host.run(
            {"slow": [("W", 0, 1), ("W", 1, 1)], "quick": quick_trace}
        )
        assert result.namespaces["quick"].completed == 2
        # slow's second request really did wait for its distant refill...
        assert slow.stats.write_latency.max_us > 90_000.0
        # ...while quick's second was admitted on its ~1 us refill, not
        # parked behind slow's ~100 ms retry.
        assert quick.stats.write_latency.max_us < 5_000.0

    def test_unlimited_tenant_not_deferred(self):
        ssd = make_ssd()
        host = HostInterface(ssd, queue_depth=4)
        ns = host.add_namespace("free", size_pages=4096)
        host.run({"free": [("W", i * 4, 4) for i in range(50)]})
        assert ns.stats.rate_limit_deferrals == 0

    def test_open_loop_queue_waits_counted(self):
        """Arrival-to-completion latency includes submission-queue wait."""
        ssd = make_ssd()
        host = HostInterface(ssd, queue_depth=1)
        host.add_namespace("t", size_pages=4096)
        from repro.workloads.trace import IORequest, Trace

        # Two reads arriving back-to-back: the second queues behind the
        # first (depth 1), so its recorded latency exceeds service time.
        trace = Trace(
            "t",
            [
                IORequest("W", 0, 64, timestamp_us=0.0),
                IORequest("W", 64, 64, timestamp_us=1.0),
            ],
        )
        result = host.run({"t": trace})
        ns = result.namespaces["t"]
        assert ns.completed == 2
        assert ns.queue_wait_us > 0.0

    def test_invalid_constructor_arguments(self):
        ssd = make_ssd()
        with pytest.raises(ValueError):
            HostInterface(ssd, arbiter="lottery")
        loop = EventLoop()
        ns = Namespace("t", 0, 64)
        queue = SubmissionQueue(ns, [])
        with pytest.raises(ValueError):
            MultiQueueFrontend(ssd, loop, [queue], make_arbiter("fifo"), 0)
        with pytest.raises(ValueError):
            MultiQueueFrontend(ssd, loop, [], make_arbiter("fifo"), 1)
        with pytest.raises(ValueError):
            SubmissionQueue(ns, [], mode="warp")

    def test_ssd_options_carry_default_arbiter(self):
        ssd = make_ssd(options=SSDOptions(arbiter="strict_priority"))
        host = HostInterface(ssd)
        assert host.arbiter_name == "strict_priority"
        with pytest.raises(ValueError):
            make_ssd(options=SSDOptions(arbiter="warp"))
