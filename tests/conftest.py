"""Shared pytest fixtures."""

from __future__ import annotations

import random

import pytest

from dataclasses import replace

from repro.config import DRAMBudget, LeaFTLConfig, SSDConfig
from repro.core.leaftl import LeaFTL
from repro.flash.oob import required_oob_bytes
from repro.ssd.ssd import SimulatedSSD


@pytest.fixture
def tiny_config() -> SSDConfig:
    """A small device that keeps unit tests fast."""
    return SSDConfig.tiny()


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)


def make_ssd(
    ftl=None,
    config: SSDConfig | None = None,
    gamma: int = 0,
    dram_bytes: int | None = None,
    **ssd_kwargs,
) -> SimulatedSSD:
    """Build a small SSD with the given FTL (LeaFTL by default)."""
    config = config or SSDConfig.tiny()
    if ftl is None:
        ftl = LeaFTL(LeaFTLConfig(gamma=gamma, compaction_interval_writes=10_000))
    # Provision a spare area large enough for the FTL's reverse-mapping
    # window: the default 128-byte OOB holds gamma <= 15, so gamma = 16
    # tests get the next standard spare size (256 bytes) automatically.
    window = getattr(ftl, "oob_window", lambda: 0)()
    while required_oob_bytes(window) > config.oob_size:
        config = replace(config, oob_size=config.oob_size * 2)
    budget = DRAMBudget(dram_bytes=dram_bytes or config.dram_size)
    return SimulatedSSD(config=config, ftl=ftl, dram_budget=budget, **ssd_kwargs)


@pytest.fixture
def tiny_leaftl_ssd() -> SimulatedSSD:
    return make_ssd()
