"""Multi-tenant QoS benchmark: noisy-neighbor isolation by arbiter.

Not a paper figure — this exercises the NVMe-style multi-queue host
interface grown on top of the reproduction (namespaces, submission-queue
arbitration, token buckets) and pins the isolation headline:

* FIFO shared-queue admission (the no-QoS baseline every single-frontend
  simulator implicitly uses) lets a bursty sequential writer inflate a
  latency-sensitive reader's p99 far beyond its solo run;
* weighted-round-robin and strict-priority arbitration keep that p99
  within a small constant factor (<= 3x) of solo;
* a token-bucket bandwidth cap on the writer namespace recovers the
  reader's tail even under plain round-robin.

Scale the tenant request counts with ``REPRO_BENCH_SCALE`` (floored so the
p99 estimates stay meaningful at smoke scale).
"""

from __future__ import annotations

from repro.analysis.report import print_report, render_series
from repro.experiments.multi_tenant import (
    NoisyNeighborScenario,
    noisy_neighbor_sweep,
    rate_limit_comparison,
)

from benchmarks.conftest import bench_scale, run_once

#: Acceptance bound pinned by tests/test_multi_tenant_qos.py as well.
ISOLATION_FACTOR = 3.0

ARBITERS = ("fifo", "round_robin", "weighted_round_robin", "strict_priority")


def _scenario() -> NoisyNeighborScenario:
    scale = bench_scale()
    base = NoisyNeighborScenario()
    return base.scaled(
        reader_requests=max(800, int(base.reader_requests * scale)),
        writer_requests=max(256, int(base.writer_requests * scale)),
    )


def _render(table) -> None:
    print_report(
        render_series(
            "Multi-tenant QoS: reader latency by arbiter",
            {
                arbiter: {
                    "p50_us": round(table[arbiter]["reader"]["read_p50_us"], 1),
                    "p99_us": round(table[arbiter]["reader"]["read_p99_us"], 1),
                    "slo_viol": table[arbiter]["reader"]["slo_violations"],
                    "writer_p99_us": round(
                        table[arbiter]
                        .get("writer", {})
                        .get("write_p99_us", 0.0),
                        1,
                    ),
                }
                for arbiter in ("solo",) + ARBITERS
            },
        )
    )


def test_noisy_neighbor_isolation(benchmark):
    scenario = _scenario()
    table = run_once(
        benchmark, noisy_neighbor_sweep, arbiters=ARBITERS, scenario=scenario
    )
    _render(table)

    solo_p99 = table["solo"]["reader"]["read_p99_us"]
    assert solo_p99 > 0.0
    # QoS arbiters isolate the latency-sensitive tenant...
    for arbiter in ("weighted_round_robin", "strict_priority"):
        assert table[arbiter]["reader"]["read_p99_us"] <= ISOLATION_FACTOR * solo_p99
    # ...the shared queue demonstrably does not...
    assert table["fifo"]["reader"]["read_p99_us"] > ISOLATION_FACTOR * solo_p99
    # ...and nobody's work was dropped to get there.
    for arbiter in ARBITERS:
        assert table[arbiter]["writer"]["completed"] == scenario.writer_requests


def test_writer_rate_limit_recovers_reader_tail(benchmark):
    scenario = _scenario()
    table = run_once(benchmark, rate_limit_comparison, scenario=scenario)

    print_report(
        render_series(
            "Token-bucket QoS: bandwidth-capping the writer",
            {
                label: {
                    "reader_p99_us": round(row["reader"]["read_p99_us"], 1),
                    "writer_p99_us": round(row["writer"]["write_p99_us"], 1),
                    "deferrals": row["writer"]["rate_limit_deferrals"],
                }
                for label, row in table.items()
            },
        )
    )

    assert table["capped"]["writer"]["rate_limit_deferrals"] > 0
    assert (
        table["capped"]["reader"]["read_p99_us"]
        < table["uncapped"]["reader"]["read_p99_us"]
    )
