"""Tests for the LRU data cache and the controller write buffer."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.ssd.cache import LRUDataCache
from repro.ssd.write_buffer import WriteBuffer


class TestLRUDataCache:
    def test_hit_and_miss_accounting(self):
        cache = LRUDataCache(capacity_pages=2)
        assert not cache.lookup(1)
        cache.insert(1)
        assert cache.lookup(1)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_ratio == pytest.approx(0.5)

    def test_lru_eviction_order(self):
        cache = LRUDataCache(capacity_pages=2)
        cache.insert(1)
        cache.insert(2)
        cache.lookup(1)          # 1 becomes most recently used
        evicted = cache.insert(3)
        assert evicted == [(2, False)]
        assert 1 in cache and 3 in cache and 2 not in cache

    def test_dirty_flag_upgrade_and_clean(self):
        cache = LRUDataCache(capacity_pages=4)
        cache.insert(1, dirty=False)
        cache.insert(1, dirty=True)
        cache.resize(0)  # evict everything
        cache.resize(4)
        cache.insert(2, dirty=True)
        cache.mark_clean(2)
        evicted = cache.resize(0)
        assert evicted == [(2, False)]

    def test_resize_shrink_evicts_lru_first(self):
        cache = LRUDataCache(capacity_pages=4)
        for lpa in range(4):
            cache.insert(lpa)
        evicted = cache.resize(2)
        assert [lpa for lpa, _ in evicted] == [0, 1]
        assert len(cache) == 2

    def test_zero_capacity_never_stores(self):
        cache = LRUDataCache(capacity_pages=0)
        cache.insert(1)
        assert not cache.lookup(1)
        assert len(cache) == 0

    def test_invalidate(self):
        cache = LRUDataCache(capacity_pages=2)
        cache.insert(7)
        assert cache.invalidate(7)
        assert not cache.invalidate(7)

    @given(st.lists(st.integers(min_value=0, max_value=50), max_size=300), st.integers(min_value=1, max_value=16))
    @settings(max_examples=50, deadline=None)
    def test_capacity_never_exceeded(self, accesses, capacity):
        cache = LRUDataCache(capacity_pages=capacity)
        for lpa in accesses:
            if not cache.lookup(lpa):
                cache.insert(lpa)
            assert len(cache) <= capacity


class TestWriteBuffer:
    def test_add_and_drain_sorted(self):
        buffer = WriteBuffer(capacity_pages=8)
        for lpa in (78, 32, 33, 76, 115, 34, 38):
            buffer.add(lpa)
        assert buffer.drain() == [32, 33, 34, 38, 76, 78, 115]
        assert len(buffer) == 0

    def test_unsorted_drain_preserves_arrival_order(self):
        buffer = WriteBuffer(capacity_pages=8, sort_on_flush=False)
        order = [78, 32, 33, 76, 115, 34, 38]
        for lpa in order:
            buffer.add(lpa)
        assert buffer.drain() == order

    def test_overwrite_absorbed(self):
        buffer = WriteBuffer(capacity_pages=4)
        buffer.add(5)
        buffer.add(5)
        assert len(buffer) == 1
        assert buffer.stats.overwrites == 1

    def test_is_full(self):
        buffer = WriteBuffer(capacity_pages=2)
        buffer.add(1)
        assert not buffer.is_full
        buffer.add(2)
        assert buffer.is_full

    def test_partial_drain(self):
        buffer = WriteBuffer(capacity_pages=16)
        for lpa in range(10):
            buffer.add(lpa)
        first = buffer.drain(max_pages=4)
        assert first == [0, 1, 2, 3]
        assert len(buffer) == 6

    def test_membership(self):
        buffer = WriteBuffer(capacity_pages=4)
        buffer.add(9)
        assert 9 in buffer and 1 not in buffer

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            WriteBuffer(capacity_pages=0)


class TestWriteBufferPartialDrain:
    """Partial-drain semantics: max_pages interacting with sort_on_flush."""

    def test_sorted_partial_drain_takes_lowest_lpas(self):
        buffer = WriteBuffer(capacity_pages=16)
        for lpa in (9, 3, 12, 1, 7):
            buffer.add(lpa)
        assert buffer.drain(max_pages=2) == [1, 3]
        assert len(buffer) == 3
        assert 9 in buffer and 1 not in buffer
        assert buffer.drain() == [7, 9, 12]

    def test_unsorted_partial_drain_takes_arrival_order(self):
        buffer = WriteBuffer(capacity_pages=16, sort_on_flush=False)
        for lpa in (9, 3, 12, 1, 7):
            buffer.add(lpa)
        assert buffer.drain(max_pages=2) == [9, 3]
        assert buffer.drain(max_pages=2) == [12, 1]
        assert buffer.drain() == [7]

    def test_partial_drain_larger_than_content_takes_all(self):
        buffer = WriteBuffer(capacity_pages=8)
        buffer.add(2)
        buffer.add(1)
        assert buffer.drain(max_pages=10) == [1, 2]
        assert len(buffer) == 0

    def test_stats_after_partial_drains(self):
        buffer = WriteBuffer(capacity_pages=16)
        for lpa in range(10):
            buffer.add(lpa)
        buffer.drain(max_pages=4)
        buffer.drain(max_pages=4)
        buffer.drain()
        assert buffer.stats.flushes == 3
        assert buffer.stats.pages_flushed == 10
        assert buffer.stats.writes == 10

    def test_draining_empty_buffer_is_not_a_flush(self):
        buffer = WriteBuffer(capacity_pages=4)
        assert buffer.drain() == []
        assert buffer.stats.flushes == 0
        assert buffer.stats.pages_flushed == 0

    def test_rewrite_after_partial_drain_buffers_again(self):
        buffer = WriteBuffer(capacity_pages=8)
        buffer.add(1)
        buffer.add(2)
        buffer.drain(max_pages=1)   # drains LPA 1
        buffer.add(1)               # no longer buffered: not an overwrite
        assert buffer.stats.overwrites == 0
        assert sorted([2, 1]) == buffer.drain()
