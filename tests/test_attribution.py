"""Latency attribution, run differ and scorecard tests.

The analyzer's load-bearing claim: for every completed request, the
critical-path component breakdown (queue wait, translation, DRAM, NAND,
channel contention, GC interference, flush backpressure, extra reads,
residual) sums *exactly* to the end-to-end latency.  That additivity is
property-tested here across the paths that produce spans — the
GC-contended multi-tenant run, a qd8 steady-state replay, and a
qd1-forced-events replay — alongside determinism of the analyzer output,
the differ's threshold semantics, tail-blame's FIFO diagnosis, the
recovery spans, and the SLO scorecard.
"""

from __future__ import annotations

import json
import math
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
if str(REPO) not in sys.path:
    sys.path.insert(0, str(REPO))

from repro.config import SSDConfig
from repro.experiments.multi_tenant import (
    NoisyNeighborScenario,
    build_tenant_host,
    reader_tenant,
    writer_tenant,
)
from repro.ftl.pagemap import PageLevelFTL
from repro.obs import (
    analyze_artifacts,
    attach_telemetry,
    attribute_requests,
    device_snapshot,
    diff_counters,
    diff_metrics,
    namespace_scorecard,
    render_diff,
    render_report,
    request_spans,
    tail_blame,
)
from repro.obs.__main__ import run_multi_tenant, run_steady_state
from repro.ssd.recovery import recover
from repro.ssd.ssd import SimulatedSSD, SSDOptions

SEED = 1234

#: fsum of device-recorded float additions vs the latency built from the
#: same additions: anything beyond a few ULPs of accumulated rounding is
#: a real accounting bug, not float noise.
ADDITIVITY_TOL_US = 1e-6


def spans_of(telemetry):
    return request_spans(telemetry.tracer.trace_events())


def assert_additive(spans):
    assert spans, "run produced no request spans"
    for span in spans:
        total = math.fsum(span["components"].values())
        assert total == pytest.approx(span["latency_us"], abs=ADDITIVITY_TOL_US)
        assert span["components"]["other_us"] == pytest.approx(
            0.0, abs=ADDITIVITY_TOL_US
        ), "device breakdown left unexplained time"
        for key, value in span["components"].items():
            assert value >= -ADDITIVITY_TOL_US, f"negative component {key}"


@pytest.fixture(scope="module")
def multi_tenant_run():
    """GC-contended two-tenant verify scenario under WRR (scale 0.5)."""
    return run_multi_tenant(scale=0.5, seed=SEED)


class TestAdditivity:
    def test_multi_tenant_breakdowns_sum_to_latency(self, multi_tenant_run):
        _ssd, telemetry = multi_tenant_run
        assert_additive(spans_of(telemetry))

    def test_qd8_steady_state_breakdowns_sum_to_latency(self):
        _ssd, telemetry = run_steady_state(scale=0.1, seed=SEED)
        assert_additive(spans_of(telemetry))

    def test_qd1_forced_events_breakdowns_sum_to_latency(self):
        ssd = SimulatedSSD(
            SSDConfig.tiny(),
            PageLevelFTL(),
            options=SSDOptions(queue_depth=1, engine="events", telemetry="trace"),
        )
        # Small enough that no span is evicted from the tracer's ring
        # buffer; overwrites within a narrow region still force flushes.
        pages = min(512, ssd.config.logical_pages // 2)
        requests = [("W", (3 * i) % pages, 2) for i in range(3000)]
        requests += [("R", (7 * i) % pages, 2) for i in range(1000)]
        ssd.run(requests)
        spans = spans_of(ssd.telemetry)
        assert len(spans) == len(requests)
        assert_additive(spans)

    def test_components_cover_gc_interference(self, multi_tenant_run):
        # The GC-contended scenario must actually attribute some time to
        # contention components, not explain everything as NAND service.
        _ssd, telemetry = multi_tenant_run
        spans = spans_of(telemetry)
        contended = sum(
            span["components"].get("queue_wait_us", 0.0)
            + span["components"].get("gc_wait_us", 0.0)
            + span["components"].get("chan_wait_us", 0.0)
            + span["components"].get("flush_wait_us", 0.0)
            for span in spans
        )
        assert contended > 0.0


class TestAttribution:
    def test_percentile_levels_and_dominant(self, multi_tenant_run):
        _ssd, telemetry = multi_tenant_run
        attribution = attribute_requests(spans_of(telemetry))
        assert set(attribution["ops"]) == {"R", "W"}
        for table in attribution["ops"].values():
            levels = table["levels"]
            assert set(levels) == {"all", "p50", "p95", "p99"}
            assert levels["p50"]["latency_us"] <= levels["p99"]["latency_us"]
            assert levels["p99"]["count"] >= 1
            for level in levels.values():
                assert level["dominant"] in level["components"]
                share_total = math.fsum(
                    entry["share"] for entry in level["components"].values()
                )
                assert share_total == pytest.approx(1.0, abs=1e-9)

    def test_tail_blame_ranks_slowest(self, multi_tenant_run):
        _ssd, telemetry = multi_tenant_run
        spans = spans_of(telemetry)
        blame = tail_blame(spans, top_k=10)
        assert blame["top_k"] == 10
        latencies = [request["latency_us"] for request in blame["requests"]]
        assert latencies == sorted(latencies, reverse=True)
        assert sum(cluster["count"] for cluster in blame["clusters"]) == 10
        cutoff = sorted((s["latency_us"] for s in spans), reverse=True)[9]
        assert min(latencies) >= cutoff

    def test_fifo_noisy_neighbor_blames_contention_not_nand(self):
        """The acceptance diagnosis: under FIFO admission the reader's
        p99 is queueing/GC interference, not NAND service time."""
        scenario = NoisyNeighborScenario().scaled(
            reader_requests=300, writer_requests=120
        )
        ssd, host = build_tenant_host(scenario, "fifo")
        telemetry = attach_telemetry(ssd, "trace", host=host)
        host.run([reader_tenant(scenario), writer_tenant(scenario)])
        spans = spans_of(telemetry)
        attribution = attribute_requests(spans)
        p99 = attribution["ops"]["R"]["levels"]["p99"]
        contention = {"queue_wait_us", "gc_wait_us", "chan_wait_us", "flush_wait_us"}
        assert p99["dominant"] in contention
        assert p99["dominant"] not in {"nand_us", "dram_us", "translate_us"}
        blame = tail_blame(spans)
        assert blame["clusters"][0]["component"] in contention


class TestDeterminism:
    def test_analyzer_output_byte_identical_across_runs(self):
        payloads = []
        for _ in range(2):
            ssd, telemetry = run_multi_tenant(scale=0.25, seed=SEED)
            report = analyze_artifacts(
                {
                    "trace_events": telemetry.tracer.trace_events(),
                    "counters": device_snapshot(ssd).as_dict(),
                    "metrics": None,
                }
            )
            payloads.append(json.dumps(report, sort_keys=True))
        assert payloads[0] == payloads[1]

    def test_self_diff_reports_nothing(self, multi_tenant_run):
        ssd, _telemetry = multi_tenant_run
        counters = device_snapshot(ssd).as_dict()
        diff = diff_counters(counters, counters)
        assert diff["changed"] == []

    def test_markdown_renders_without_paths(self, multi_tenant_run):
        ssd, telemetry = multi_tenant_run
        report = analyze_artifacts(
            {
                "trace_events": telemetry.tracer.trace_events(),
                "counters": device_snapshot(ssd).as_dict(),
                "metrics": None,
            }
        )
        markdown = render_report(report)
        assert "# Device report" in markdown
        assert "Latency attribution" in markdown
        assert str(REPO) not in markdown


class TestRecoverySpans:
    def _crashed_device(self):
        ssd = SimulatedSSD(
            SSDConfig.tiny(), PageLevelFTL(), options=SSDOptions(telemetry="trace")
        )
        pages = ssd.config.logical_pages // 2
        ssd.run([("W", lpa, 1) for lpa in range(pages)])
        ssd.power_fail()
        return ssd

    def test_oob_scan_emits_recovery_span(self):
        ssd = self._crashed_device()
        result = recover(ssd, mode="oob_scan")
        events = ssd.telemetry.tracer.trace_events()
        names = {
            event.get("tid"): event["args"]["name"]
            for event in events
            if event.get("ph") == "M" and event.get("name") == "thread_name"
        }
        spans = [
            event
            for event in events
            if event.get("ph") == "X" and names.get(event.get("tid")) == "recovery"
        ]
        assert len(spans) == 1
        span = spans[0]
        assert span["name"] == "recovery_scan"
        assert span["dur"] == pytest.approx(result.recovery_time_us)
        assert span["args"]["flash_reads"] == result.flash_reads
        assert span["args"]["recovered_lpas"] == result.recovered_lpas

    def test_analyzer_surfaces_recovery_phase(self):
        ssd = self._crashed_device()
        recover(ssd, mode="oob_scan")
        report = analyze_artifacts(
            {
                "trace_events": ssd.telemetry.tracer.trace_events(),
                "counters": None,
                "metrics": None,
            }
        )
        phases = report["recovery"]
        assert [phase["phase"] for phase in phases] == ["recovery_scan"]
        assert phases[0]["makespan_us"] > 0.0

    def test_recovery_without_telemetry_emits_nothing(self):
        ssd = SimulatedSSD(SSDConfig.tiny(), PageLevelFTL())
        pages = ssd.config.logical_pages // 4
        ssd.run([("W", lpa, 1) for lpa in range(pages)])
        ssd.power_fail()
        result = recover(ssd, mode="oob_scan")
        assert result.recovered_lpas == pages
        assert ssd.telemetry is None


class TestDiffer:
    def test_threshold_and_sort(self):
        base = {"a": 100.0, "b": 100.0, "c": 0.0, "d": 5.0}
        current = {"a": 104.0, "b": 150.0, "c": 3.0, "d": 5.0}
        diff = diff_counters(base, current, rel_threshold=0.05)
        changed = {row["counter"]: row for row in diff["changed"]}
        assert "a" not in changed  # +4% is under the 5% threshold
        assert "d" not in changed  # unchanged
        assert changed["b"]["rel"] == pytest.approx(0.5)
        assert changed["c"]["rel"] is None  # new activity: always reported
        # New counters (rel None) sort ahead of finite relative changes.
        assert [row["counter"] for row in diff["changed"]] == ["c", "b"]
        assert diff["compared"] == 4

    def test_union_of_keys(self):
        diff = diff_counters({"only_base": 2.0}, {"only_current": 3.0})
        counters = {row["counter"]: row for row in diff["changed"]}
        assert counters["only_base"]["delta"] == -2.0
        assert counters["only_current"]["base"] == 0.0

    def test_metrics_alignment_on_shared_sim_time(self):
        base = {
            "series": {
                "time_us": [0.0, 1000.0, 2000.0],
                "free_blocks": [10.0, 8.0, 6.0],
                "waf": [1.0, 1.0, 1.0],
            }
        }
        # The candidate ran longer: only the shared prefix aligns.
        current = {
            "series": {
                "time_us": [0.0, 1000.0, 2000.0, 3000.0],
                "free_blocks": [10.0, 4.0, 2.0, 1.0],
                "waf": [1.0, 1.0, 1.0, 2.0],
            }
        }
        diff = diff_metrics(base, current, rel_threshold=0.05)
        assert diff["aligned_samples"] == 3
        changed = {row["column"]: row for row in diff["changed"]}
        assert "waf" not in changed  # identical over the aligned window
        assert changed["free_blocks"]["rel"] < 0.0

    def test_render_diff_mentions_threshold(self):
        diff = {
            "schema": "repro.obs.diff/1",
            "threshold": 0.05,
            "significant": False,
            "counters": {"threshold": 0.05, "compared": 3, "changed": []},
            "metrics": {"threshold": 0.05, "aligned_samples": 0, "changed": []},
        }
        markdown = render_diff(diff)
        assert "5.0%" in markdown
        assert "No counter moved" in markdown


class TestScorecard:
    def _counters(self, completed, violations, slo=1000.0):
        return {
            "ns.reader.submitted": completed,
            "ns.reader.completed": completed,
            "ns.reader.slo_violations_read": violations,
            "ns.reader.slo_violations_write": 0.0,
            "ns.reader.slo_read_us": slo,
            "ns.reader.slo_write_us": 0.0,
            "ns.reader.queue_wait_us": 500.0 * completed,
            "ns.reader.read_latency.p99_us": 2000.0,
            "ns.reader.write_latency.p99_us": 0.0,
            "ns.reader.rate_limit_deferrals": 0.0,
        }

    def test_burn_rate_statuses(self):
        # Budget 1% of 1000 requests: burn = violations / 10.
        for violations, status in ((5.0, "ok"), (50.0, "warning"), (500.0, "critical")):
            card = namespace_scorecard(self._counters(1000.0, violations))
            entry = card["namespaces"]["reader"]
            assert entry["status"] == status, (violations, entry)
        assert card["namespaces"]["reader"]["burn_rate"] == pytest.approx(50.0)

    def test_gauges_survive_delta_zeroing(self):
        # A measured-phase delta zeroes the SLO gauges; the absolute end
        # snapshot supplies them instead.
        delta = self._counters(1000.0, 20.0, slo=0.0)
        gauges = {"ns.reader.slo_read_us": 1000.0, "ns.reader.slo_write_us": 0.0}
        card = namespace_scorecard(delta, gauges=gauges)
        assert card["namespaces"]["reader"]["slo_read_us"] == 1000.0

    def test_violation_windows_merge_adjacent(self):
        spans = [
            {
                "op": "R",
                "queue": "reader",
                "start_us": start,
                "device_us": 10.0,
                "latency_us": 5000.0,
                "components": {},
            }
            for start in (100.0, 1100.0, 5100.0)
        ]
        card = namespace_scorecard(
            self._counters(3.0, 3.0), spans=spans, window_us=1000.0
        )
        windows = card["namespaces"]["reader"]["violation_windows"]
        assert [(w["start_us"], w["end_us"]) for w in windows] == [
            (0.0, 2000.0),
            (5000.0, 6000.0),
        ]

    def test_experiment_tables_carry_scorecard(self):
        from repro.experiments.multi_tenant import run_noisy_neighbor

        scenario = NoisyNeighborScenario().scaled(
            reader_requests=200, writer_requests=80
        )
        table = run_noisy_neighbor("weighted_round_robin", scenario)
        assert set(table["scorecard"]) == {"reader", "writer"}
        for entry in table["scorecard"].values():
            assert entry["status"] in ("ok", "warning", "critical")
            assert entry["slo_violations"] >= 0.0
        # The reader's SLO gauge came from the absolute snapshot, not the
        # (zeroed) measured-phase delta.
        assert table["scorecard"]["reader"]["slo_read_us"] == scenario.reader_slo_us
