"""SSD substrate: cache, write buffer, GC, wear leveling and the device model."""

from repro.ssd.cache import CacheStats, LRUDataCache
from repro.ssd.gc import GCPolicyConfig, GreedyGCPolicy
from repro.ssd.ssd import SimulatedSSD, SimulationError, SSDOptions
from repro.ssd.stats import LatencyRecorder, SSDStats
from repro.ssd.wear_leveling import WearLeveler, WearLevelingConfig
from repro.ssd.write_buffer import WriteBuffer, WriteBufferStats

__all__ = [
    "CacheStats",
    "LRUDataCache",
    "GCPolicyConfig",
    "GreedyGCPolicy",
    "SimulatedSSD",
    "SimulationError",
    "SSDOptions",
    "LatencyRecorder",
    "SSDStats",
    "WearLeveler",
    "WearLevelingConfig",
    "WriteBuffer",
    "WriteBufferStats",
]
