"""Block-trace representation used by the workload generators and the parser.

A trace is an ordered list of page-granular I/O requests.  The SSD model
consumes ``(op, lpa, npages)`` tuples; :class:`Trace` adds the metadata the
experiment harness needs (name, footprint, read/write mix) and convenience
constructors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

READ = "R"
WRITE = "W"

#: Anything the simulator can replay: a full request object, or the legacy
#: bare tuple (which carries no arrival timestamp).
ReplayItem = Union["IORequest", Tuple[str, int, int]]


def as_request(item: ReplayItem) -> "IORequest":
    """Coerce a replay item to an :class:`IORequest`.

    Tuples get a zero timestamp — replaying them open-loop degenerates to
    simultaneous arrival.
    """
    if isinstance(item, IORequest):
        return item
    op, lpa, npages = item
    return IORequest(op, lpa, npages)


@dataclass(frozen=True, slots=True)
class IORequest:
    """One host request at flash-page granularity."""

    op: str
    lpa: int
    npages: int = 1
    timestamp_us: float = 0.0

    def __post_init__(self) -> None:
        if self.op not in (READ, WRITE):
            raise ValueError(f"op must be 'R' or 'W', got {self.op!r}")
        if self.lpa < 0:
            raise ValueError("lpa must be non-negative")
        if self.npages <= 0:
            raise ValueError("npages must be positive")

    @property
    def is_read(self) -> bool:
        return self.op == READ

    @property
    def is_write(self) -> bool:
        return self.op == WRITE

    def pages(self) -> Iterator[int]:
        """The LPAs this request touches."""
        return iter(range(self.lpa, self.lpa + self.npages))

    def as_tuple(self) -> Tuple[str, int, int]:
        return (self.op, self.lpa, self.npages)


class Trace:
    """An ordered sequence of I/O requests with summary statistics."""

    def __init__(self, name: str, requests: Sequence[IORequest]) -> None:
        self.name = name
        self._requests: List[IORequest] = list(requests)

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._requests)

    def __iter__(self) -> Iterator[IORequest]:
        return iter(self._requests)

    def __getitem__(self, index: int) -> IORequest:
        return self._requests[index]

    def requests(self) -> List[IORequest]:
        return list(self._requests)

    def as_tuples(self) -> Iterator[Tuple[str, int, int]]:
        """The format consumed by :meth:`repro.ssd.ssd.SimulatedSSD.run`."""
        for request in self._requests:
            yield request.as_tuple()

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_tuples(
        cls, name: str, tuples: Iterable[Tuple[str, int, int]]
    ) -> "Trace":
        return cls(name, [IORequest(op, lpa, npages) for op, lpa, npages in tuples])

    def truncated(self, max_requests: int) -> "Trace":
        """A copy limited to the first ``max_requests`` requests."""
        return Trace(self.name, self._requests[:max_requests])

    def scaled_to(self, logical_pages: int) -> "Trace":
        """Clamp every request inside a device of ``logical_pages`` pages."""
        clamped: List[IORequest] = []
        for request in self._requests:
            lpa = request.lpa % logical_pages
            npages = min(request.npages, logical_pages - lpa)
            clamped.append(
                IORequest(request.op, lpa, max(1, npages), request.timestamp_us)
            )
        return Trace(self.name, clamped)

    def concatenated(self, other: "Trace", name: Optional[str] = None) -> "Trace":
        return Trace(name or f"{self.name}+{other.name}", self._requests + other._requests)

    def has_timestamps(self) -> bool:
        """True when at least one request carries a non-zero arrival time.

        Timestamps are non-negative, so an ordering comparison against the
        zero default avoids exact float equality (simlint SIM004).
        """
        return any(r.timestamp_us > 0.0 for r in self._requests)

    def timestamps_sorted(self) -> bool:
        """True when arrival timestamps are non-decreasing in trace order."""
        return all(
            earlier.timestamp_us <= later.timestamp_us
            for earlier, later in zip(self._requests, self._requests[1:])
        )

    def sorted_by_timestamp(self) -> "Trace":
        """A copy ordered by arrival time (stable for equal timestamps).

        Open-loop replay refuses traces whose timestamps run backwards
        (raw multi-queue captures sometimes interleave out of order);
        sorting restores a valid arrival process while preserving the
        relative order of same-timestamp requests.
        """
        ordered = sorted(self._requests, key=lambda request: request.timestamp_us)
        return Trace(self.name, ordered)

    def with_interarrival(self, interarrival_us: float) -> "Trace":
        """A copy stamped with uniform arrival times (open-loop replay).

        The synthetic workload generators produce order-only traces; this
        assigns request ``i`` the timestamp ``i * interarrival_us`` so they
        can be replayed open-loop at a controlled arrival rate.  Traces that
        already carry timestamps (e.g. parsed MSR traces) keep them — use
        ``SSDOptions.time_scale`` to speed those up or down instead.
        """
        if interarrival_us < 0.0:
            raise ValueError("interarrival_us must be non-negative")
        if self.has_timestamps():
            return Trace(self.name, self._requests)
        stamped = [
            IORequest(r.op, r.lpa, r.npages, timestamp_us=i * interarrival_us)
            for i, r in enumerate(self._requests)
        ]
        return Trace(self.name, stamped)

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    @property
    def read_requests(self) -> int:
        return sum(1 for r in self._requests if r.is_read)

    @property
    def write_requests(self) -> int:
        return sum(1 for r in self._requests if r.is_write)

    @property
    def read_pages(self) -> int:
        return sum(r.npages for r in self._requests if r.is_read)

    @property
    def write_pages(self) -> int:
        return sum(r.npages for r in self._requests if r.is_write)

    @property
    def read_ratio(self) -> float:
        total = len(self._requests)
        return self.read_requests / total if total else 0.0

    def footprint_pages(self) -> int:
        """Number of distinct LPAs touched by the trace."""
        touched = set()
        for request in self._requests:
            touched.update(range(request.lpa, request.lpa + request.npages))
        return len(touched)

    def written_footprint_pages(self) -> int:
        """Number of distinct LPAs written by the trace."""
        touched = set()
        for request in self._requests:
            if request.is_write:
                touched.update(range(request.lpa, request.lpa + request.npages))
        return len(touched)

    def max_lpa(self) -> int:
        return max((r.lpa + r.npages - 1 for r in self._requests), default=0)

    def summary(self) -> Dict[str, float]:
        return {
            "requests": float(len(self)),
            "read_ratio": self.read_ratio,
            "read_pages": float(self.read_pages),
            "write_pages": float(self.write_pages),
            "footprint_pages": float(self.footprint_pages()),
            "max_lpa": float(self.max_lpa()),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Trace({self.name!r}, requests={len(self)})"
