"""Figure 18: latency distribution of storage accesses for the OLTP workload.

The paper shows that LeaFTL does not increase the tail latency while the
higher cache hit ratio reduces the latency of many accesses.
"""

from __future__ import annotations

from repro.analysis.report import print_report, render_series
from repro.experiments.performance import latency_distribution

from benchmarks.conftest import perf_setup, run_once


def test_fig18_oltp_latency_cdf(benchmark):
    setup = perf_setup(dram_policy="cache_reserved")
    cdf = run_once(benchmark, latency_distribution, "OLTP", setup)

    print_report(render_series(
        "Figure 18: OLTP read latency (us) at CDF points",
        {scheme: {f"{p:g}%": round(v, 1) for p, v in points.items()}
         for scheme, points in cdf.items()},
    ))

    # LeaFTL's tail (99.9th percentile) stays within 1.5x of the baselines.
    assert cdf["LeaFTL"][99.9] <= 1.5 * max(cdf["DFTL"][99.9], cdf["SFTL"][99.9], 1.0)
    # And the median-ish latency is no worse than DFTL's.
    assert cdf["LeaFTL"][60.0] <= cdf["DFTL"][60.0] + 1.0
