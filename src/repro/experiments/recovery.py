"""Crash-recovery experiment: recovery time and checkpoint cost vs interval.

The paper stores LeaFTL's learned mapping in DRAM and relies on the durable
OOB reverse mappings to survive power loss.  This experiment quantifies the
trade the checkpointing design makes explicit:

* a **full OOB scan** needs no checkpoints (zero write amplification
  overhead) but reads every programmed page's spare area at recovery time;
* **checkpoint + replay** pays periodic checkpoint page writes (visible in
  the WAF) to bound the post-crash scan to the pages programmed since the
  last image.

Sweeping the checkpoint interval maps the frontier: short intervals buy
fast recovery with a higher WAF, long intervals degrade toward the full
scan.  The crash itself lands mid-write-burst via
:class:`repro.ssd.recovery.CrashTimer`, so the measured state is a device
caught with GC in flight — not a convenient idle one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import DRAMBudget, LeaFTLConfig, SSDConfig
from repro.core.leaftl import LeaFTL
from repro.ssd.recovery import (
    CrashTimer,
    PowerFailure,
    RecoveryResult,
    attach_checkpointer,
    recover,
)
from repro.ssd.ssd import SimulatedSSD, SSDOptions

#: Checkpoint intervals (data pages between images) swept by the benchmark.
DEFAULT_INTERVALS = (256, 1024, 4096)


@dataclass(frozen=True)
class RecoveryScenario:
    """Workload + crash point for one recovery measurement."""

    capacity_bytes: int = 24 * 1024 * 1024
    overprovisioning: float = 0.10
    gamma: int = 4
    #: Overwrite-skewed requests after the sequential fill pass.
    num_requests: int = 2200
    #: Crash at the N-th host request issue (mid-write-burst).
    crash_after_issues: int = 2600
    queue_depth: int = 8
    seed: int = 20

    def ssd_config(self) -> SSDConfig:
        return SSDConfig.tiny(
            capacity_bytes=self.capacity_bytes,
            overprovisioning=self.overprovisioning,
        )


@dataclass(frozen=True)
class RecoveryOutcome:
    """One crashed-and-recovered run, with the costs on both sides."""

    #: ``oob_scan`` or ``checkpoint_replay``.
    mode: str
    #: Checkpoint interval in pages (``None`` for the scan baseline).
    interval_pages: Optional[int]
    recovery_time_us: float
    flash_reads: int
    checkpoint_pages_read: int
    replayed_pages: int
    recovered_lpas: int
    checkpoints_taken: int
    #: Checkpoint flash writes accumulated before the crash.
    checkpoint_page_writes: int
    #: Device WAF at the crash, inclusive of checkpoint writes.
    write_amplification: float


def crash_workload(scenario: RecoveryScenario) -> List[Tuple[str, int, int]]:
    """Sequential fill then Zipf-skewed overwrites (keeps GC busy)."""
    rng = random.Random(scenario.seed)
    config = scenario.ssd_config()
    footprint = int(config.logical_pages * 0.9)
    requests: List[Tuple[str, int, int]] = []
    for lpa in range(0, footprint - 8, 8):
        requests.append(("W", lpa, 8))
    for _ in range(scenario.num_requests):
        span = rng.randint(1, 8)
        lpa = int((rng.random() ** 4) * (footprint - span))
        requests.append(("W", lpa, span))
    return requests


def run_crash_recovery(
    scenario: RecoveryScenario,
    interval_pages: Optional[int] = None,
    mode: str = "oob_scan",
) -> RecoveryOutcome:
    """Run the workload, crash mid-burst, recover, and report the costs.

    ``interval_pages`` enables checkpointing during the run (its writes are
    charged to the WAF whether or not recovery then uses the image);
    ``mode`` picks the recovery strategy.  The post-recovery state is
    sanity-checked against the durability oracle before anything is
    reported — a recovery that lost an acked page would fail loudly here,
    not skew a figure quietly.
    """
    config = scenario.ssd_config()
    ftl = LeaFTL(
        LeaFTLConfig(gamma=scenario.gamma, compaction_interval_writes=20_000)
    )
    ssd = SimulatedSSD(
        config,
        ftl,
        dram_budget=DRAMBudget(dram_bytes=config.dram_size),
        options=SSDOptions(
            queue_depth=scenario.queue_depth, gc_mode="background", engine="events"
        ),
    )
    checkpointer = None
    if interval_pages is not None:
        checkpointer = attach_checkpointer(ssd, interval_pages=interval_pages)

    timer = CrashTimer(
        after_kind="request_issue", kind_count=scenario.crash_after_issues
    )
    ssd.event_observer = timer
    requests = crash_workload(scenario)
    try:
        ssd.run(requests)
    except PowerFailure:
        pass
    if not timer.fired:
        raise RuntimeError(
            "workload finished before the injected crash; raise num_requests "
            "or lower crash_after_issues"
        )
    oracle = ssd.power_fail()
    result: RecoveryResult = recover(ssd, mode=mode)
    if ssd._current_ppa != oracle:
        raise RuntimeError(f"{result.mode} recovery lost acked pages")
    return RecoveryOutcome(
        mode=result.mode,
        interval_pages=interval_pages,
        recovery_time_us=result.recovery_time_us,
        flash_reads=result.flash_reads,
        checkpoint_pages_read=result.checkpoint_pages_read,
        replayed_pages=result.replayed_pages,
        recovered_lpas=result.recovered_lpas,
        checkpoints_taken=checkpointer.checkpoints_taken if checkpointer else 0,
        checkpoint_page_writes=ssd.stats.checkpoint_page_writes,
        write_amplification=ssd.stats.write_amplification,
    )


def recovery_interval_sweep(
    intervals: Sequence[int] = DEFAULT_INTERVALS,
    scenario: Optional[RecoveryScenario] = None,
) -> Dict[str, RecoveryOutcome]:
    """Scan baseline plus checkpoint+replay at each interval.

    Keys: ``"oob_scan"`` for the baseline (no checkpointing at all, so its
    WAF is the checkpoint-free reference), ``"interval=N"`` per sweep
    point.
    """
    scenario = scenario or RecoveryScenario()
    outcomes: Dict[str, RecoveryOutcome] = {
        "oob_scan": run_crash_recovery(scenario, mode="oob_scan")
    }
    for interval in intervals:
        outcomes[f"interval={interval}"] = run_crash_recovery(
            scenario, interval_pages=interval, mode="checkpoint_replay"
        )
    return outcomes
