"""Repository tooling (not shipped with the simulator package)."""
