"""simlint — determinism-and-correctness static analysis for the simulator.

Run from the repository root::

    python -m tools.simlint src/

The rules (see ``python -m tools.simlint --list-rules``):

========  ===================================================================
SIM001    no wall-clock reads inside the device model (simulated time only)
SIM002    randomness must be an injected, explicitly seeded ``Random``
SIM003    no iteration over unordered sets where order feeds behaviour
SIM004    no ``==``/``!=`` between float timestamps (``*_us`` / ``*_s``)
SIM005    no mutable default arguments
SIM006    stats counters are ``+=``-monotone outside ``__init__``/``reset``
========  ===================================================================

Suppress a single finding inline with ``# simlint: disable=SIM003`` on the
offending line; scope rules to paths in ``simlint.toml``.
"""

from tools.simlint.config import RuleConfig, SimlintConfig
from tools.simlint.engine import (
    RULES,
    FileContext,
    Finding,
    ImportMap,
    Rule,
    iter_python_files,
    lint_file,
    register,
)
from tools.simlint import rules as _rules  # noqa: F401  (registers the rules)

__all__ = [
    "RULES",
    "FileContext",
    "Finding",
    "ImportMap",
    "Rule",
    "RuleConfig",
    "SimlintConfig",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "register",
]


def lint_paths(paths, config=None):
    """Lint files/directories; returns a sorted list of findings.

    ``config`` defaults to the ``simlint.toml`` discovered from the first
    path (falling back to an all-defaults configuration).
    """
    from pathlib import Path

    roots = [Path(p) for p in paths]
    if config is None:
        start = roots[0] if roots else Path.cwd()
        config = SimlintConfig.discover(start)
    active = config.active_rules()
    findings = []
    for path in iter_python_files(roots):
        if config.is_excluded(path):
            continue
        applicable = [rule for rule in active if config.rule_applies(rule, path)]
        if not applicable:
            continue
        findings.extend(lint_file(path, config.relpath(path), applicable))
    return sorted(findings)
