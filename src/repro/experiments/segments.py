"""Learned-segment structure experiments (Figures 5, 10, 12 and 20).

These experiments replay workloads through LeaFTL and inspect the learned
mapping table itself: how many LPA→PPA mappings each segment covers
(Figure 5), how large the per-group Conflict Resolution Buffers get
(Figure 10), how many levels the per-group logs grow (Figure 12) and the
accurate/approximate segment mix as gamma grows (Figure 20).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.analysis.latency import percentile
from repro.experiments.common import (
    SIMULATOR_WORKLOADS,
    run_experiment,
    workload_for_setup,
)
from repro.experiments.memory import memory_setup


def segment_length_distribution(
    workloads: Sequence[str] = tuple(SIMULATOR_WORKLOADS),
    gammas: Sequence[int] = (0, 4, 8),
    request_scale: float = 0.25,
) -> Dict[int, List[int]]:
    """gamma -> aggregated list of per-segment covered-mapping counts (Fig. 5)."""
    distribution: Dict[int, List[int]] = {}
    for gamma in gammas:
        lengths: List[int] = []
        setup = memory_setup(gamma=gamma, request_scale=request_scale)
        for workload in workloads:
            trace = workload_for_setup(workload, setup)
            outcome = run_experiment(workload, "LeaFTL", setup, trace=trace)
            lengths.extend(outcome.segment_lengths)
        distribution[gamma] = lengths
    return distribution


def length_histogram(lengths: Sequence[int], buckets: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048)) -> Dict[int, float]:
    """Cumulative share of segments whose length is <= each bucket (Fig. 5 y-axis)."""
    if not lengths:
        return {bucket: 0.0 for bucket in buckets}
    total = len(lengths)
    return {
        bucket: 100.0 * sum(1 for value in lengths if value <= bucket) / total
        for bucket in buckets
    }


def crb_size_distribution(
    workloads: Sequence[str] = tuple(SIMULATOR_WORKLOADS),
    gamma: int = 4,
    request_scale: float = 0.25,
) -> Dict[str, Tuple[float, float]]:
    """workload -> (average CRB bytes, 99th-percentile CRB bytes) (Figure 10)."""
    setup = memory_setup(gamma=gamma, request_scale=request_scale)
    results: Dict[str, Tuple[float, float]] = {}
    for workload in workloads:
        trace = workload_for_setup(workload, setup)
        outcome = run_experiment(workload, "LeaFTL", setup, trace=trace)
        sizes = [size for size in outcome.crb_sizes]
        if not sizes:
            results[workload] = (0.0, 0.0)
            continue
        results[workload] = (sum(sizes) / len(sizes), percentile(sizes, 99))
    return results


def level_distribution(
    workloads: Sequence[str] = tuple(SIMULATOR_WORKLOADS),
    gamma: int = 0,
    request_scale: float = 0.25,
) -> Dict[str, Tuple[float, float]]:
    """workload -> (average levels per group, 99th percentile) (Figure 12)."""
    setup = memory_setup(gamma=gamma, request_scale=request_scale)
    results: Dict[str, Tuple[float, float]] = {}
    for workload in workloads:
        trace = workload_for_setup(workload, setup)
        outcome = run_experiment(workload, "LeaFTL", setup, trace=trace)
        counts = outcome.level_counts
        if not counts:
            results[workload] = (0.0, 0.0)
            continue
        results[workload] = (sum(counts) / len(counts), percentile(counts, 99))
    return results


def segment_type_shares(
    workloads: Sequence[str] = tuple(SIMULATOR_WORKLOADS),
    gammas: Sequence[int] = (0, 1, 4, 16),
    request_scale: float = 0.25,
) -> Dict[int, Tuple[float, float]]:
    """gamma -> (accurate %, approximate %) across all workloads (Figure 20)."""
    shares: Dict[int, Tuple[float, float]] = {}
    for gamma in gammas:
        accurate = 0
        approximate = 0
        setup = memory_setup(gamma=gamma, request_scale=request_scale)
        for workload in workloads:
            trace = workload_for_setup(workload, setup)
            outcome = run_experiment(workload, "LeaFTL", setup, trace=trace)
            acc, apx = outcome.segment_type_counts
            accurate += acc
            approximate += apx
        total = accurate + approximate
        if total == 0:
            shares[gamma] = (0.0, 0.0)
        else:
            shares[gamma] = (100.0 * accurate / total, 100.0 * approximate / total)
    return shares
