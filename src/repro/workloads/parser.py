"""Parser for MSR-Cambridge-format block traces.

The MSR Cambridge traces (and the FIU traces re-published in the same
format) are CSV files with one request per line::

    Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime

where ``Timestamp`` is in Windows filetime units (100 ns ticks),
``Type`` is ``Read`` or ``Write``, ``Offset`` and ``Size`` are in bytes.
If you have access to the original traces, this parser converts them into
the page-granular :class:`repro.workloads.trace.Trace` the simulator
replays, so the synthetic stand-ins can be swapped for the real inputs
without touching the rest of the pipeline.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.workloads.trace import IORequest, READ, Trace, WRITE

#: Windows filetime ticks per microsecond.
_TICKS_PER_US = 10


class TraceParseError(ValueError):
    """Raised when a trace line cannot be interpreted."""


def parse_msr_line(line: str, page_size: int) -> Optional[IORequest]:
    """Parse one CSV line; returns ``None`` for empty/comment lines."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    fields = stripped.split(",")
    if len(fields) < 6:
        raise TraceParseError(f"expected at least 6 CSV fields, got {len(fields)}: {line!r}")
    timestamp_raw, _host, _disk, op_raw, offset_raw, size_raw = fields[:6]
    op_name = op_raw.strip().lower()
    if op_name in ("read", "r"):
        op = READ
    elif op_name in ("write", "w"):
        op = WRITE
    else:
        raise TraceParseError(f"unknown operation {op_raw!r} in line {line!r}")
    try:
        offset = int(offset_raw)
        size = int(size_raw)
        timestamp = float(timestamp_raw) / _TICKS_PER_US if timestamp_raw else 0.0
    except ValueError as exc:
        raise TraceParseError(f"non-numeric field in line {line!r}") from exc
    if size <= 0:
        size = page_size
    lpa = offset // page_size
    npages = max(1, -(-size // page_size))
    return IORequest(op, lpa, npages, timestamp_us=timestamp)


def parse_msr_trace(
    source: Union[str, Path, io.TextIOBase, Iterable[str]],
    name: str = "msr-trace",
    page_size: int = 4096,
    max_requests: Optional[int] = None,
) -> Trace:
    """Parse an MSR-format CSV trace from a path, file object or line iterable."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return parse_msr_trace(handle, name=name, page_size=page_size, max_requests=max_requests)

    requests: List[IORequest] = []
    for line in source:
        request = parse_msr_line(line, page_size)
        if request is None:
            continue
        requests.append(request)
        if max_requests is not None and len(requests) >= max_requests:
            break
    return Trace(name, requests)


def write_msr_trace(trace: Trace, destination: Union[str, Path, io.TextIOBase], page_size: int = 4096) -> None:
    """Write a trace back out in MSR CSV format (inverse of the parser)."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8", newline="") as handle:
            write_msr_trace(trace, handle, page_size=page_size)
            return
    writer = csv.writer(destination)
    for request in trace:
        writer.writerow(
            [
                int(request.timestamp_us * _TICKS_PER_US),
                "host0",
                0,
                "Read" if request.is_read else "Write",
                request.lpa * page_size,
                request.npages * page_size,
                0,
            ]
        )
