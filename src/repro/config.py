"""SSD configuration used across the simulator.

The default values mirror Table 1 of the LeaFTL paper (ASPLOS 2023):

=====================  ==========
Parameter              Value
=====================  ==========
Capacity               2 TB
Flash page size        4 KB
DRAM size              1 GB
Read latency           20 us
Channels               16
OOB size               128 B
Pages per block        256
Write latency          200 us
Erase latency          1.5 ms
Overprovisioning       20 %
=====================  ==========

The real-SSD prototype of the paper (Section 3.9) uses a second
configuration: 1 TB capacity, 16 KB pages, 16 channels, 256 pages/block.
Both are available as constructors on :class:`SSDConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

KB = 1024
MB = 1024 * KB
GB = 1024 * MB
TB = 1024 * GB

#: Microseconds per second, used when converting latencies.
US_PER_S = 1_000_000


@dataclass(frozen=True)
class SSDConfig:
    """Immutable description of the simulated SSD hardware.

    All sizes are in bytes and all latencies in microseconds.  Derived
    quantities (page counts, block counts, ...) are exposed as properties
    so that a configuration stays internally consistent when a field is
    overridden via :meth:`scaled`.
    """

    #: Usable (logical) capacity exposed to the host, in bytes.
    capacity_bytes: int = 2 * TB
    #: Flash page size in bytes.
    page_size: int = 4 * KB
    #: Number of flash pages in one flash block.
    pages_per_block: int = 256
    #: Number of independent flash channels.
    channels: int = 16
    #: Flash dies per channel; programs/erases on different dies overlap, so
    #: a program only occupies its channel for ``write_latency / dies``.
    dies_per_channel: int = 8
    #: Out-of-band metadata bytes available per flash page.
    oob_size: int = 128
    #: DRAM available to the controller (mapping table + data cache), bytes.
    dram_size: int = 1 * GB
    #: Fraction of raw capacity reserved as over-provisioning space.
    overprovisioning: float = 0.20
    #: Flash page read latency (microseconds).
    read_latency_us: float = 20.0
    #: Flash page program latency (microseconds).
    write_latency_us: float = 200.0
    #: Flash block erase latency (microseconds).
    erase_latency_us: float = 1500.0
    #: DRAM access latency used for cache hits (microseconds).
    dram_latency_us: float = 1.0
    #: Size of the controller write buffer used to batch flash programs.
    write_buffer_bytes: int = 8 * MB
    #: GC is triggered when the free-block ratio drops below this threshold.
    gc_threshold: float = 0.15
    #: GC stops once the free-block ratio is restored above this level.
    gc_restore: float = 0.25
    #: Maximum host commands the device keeps outstanding (NCQ depth).  The
    #: effective replay concurrency is ``min(ncq_depth, options.queue_depth)``.
    ncq_depth: int = 32

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if self.page_size <= 0 or self.page_size % 512:
            raise ValueError("page_size must be a positive multiple of 512")
        if self.pages_per_block <= 0:
            raise ValueError("pages_per_block must be positive")
        if self.channels <= 0:
            raise ValueError("channels must be positive")
        if self.dies_per_channel <= 0:
            raise ValueError("dies_per_channel must be positive")
        if not 0.0 <= self.overprovisioning < 1.0:
            raise ValueError("overprovisioning must be in [0, 1)")
        if not 0.0 < self.gc_threshold < self.gc_restore <= 1.0:
            raise ValueError("require 0 < gc_threshold < gc_restore <= 1")
        if self.ncq_depth <= 0:
            raise ValueError("ncq_depth must be positive")

    # ------------------------------------------------------------------ #
    # Derived geometry
    # ------------------------------------------------------------------ #
    @property
    def block_size(self) -> int:
        """Bytes in one flash block."""
        return self.page_size * self.pages_per_block

    @property
    def logical_pages(self) -> int:
        """Number of logical pages (LPAs) exposed to the host."""
        return self.capacity_bytes // self.page_size

    @property
    def physical_pages(self) -> int:
        """Number of physical flash pages, including over-provisioning."""
        raw = int(self.capacity_bytes / (1.0 - self.overprovisioning))
        pages = raw // self.page_size
        # Round up to an integer number of blocks per channel.
        pages_per_channel = -(-pages // self.channels)
        blocks_per_channel = -(-pages_per_channel // self.pages_per_block)
        return blocks_per_channel * self.pages_per_block * self.channels

    @property
    def total_blocks(self) -> int:
        """Total number of flash blocks in the device."""
        return self.physical_pages // self.pages_per_block

    @property
    def blocks_per_channel(self) -> int:
        """Flash blocks attached to each channel."""
        return self.total_blocks // self.channels

    @property
    def pages_per_channel(self) -> int:
        """Physical pages attached to each channel."""
        return self.blocks_per_channel * self.pages_per_block

    @property
    def write_buffer_pages(self) -> int:
        """Number of flash pages that fit in the controller write buffer."""
        return max(1, self.write_buffer_bytes // self.page_size)

    # ------------------------------------------------------------------ #
    # Convenience constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def paper_simulator(cls, **overrides: object) -> "SSDConfig":
        """The Table 1 simulator configuration (2 TB, 4 KB pages, 1 GB DRAM)."""
        return replace(cls(), **overrides)  # type: ignore[arg-type]

    @classmethod
    def paper_prototype(cls, **overrides: object) -> "SSDConfig":
        """The open-channel SSD prototype (1 TB, 16 KB pages, Section 3.9)."""
        base = cls(
            capacity_bytes=1 * TB,
            page_size=16 * KB,
            pages_per_block=256,
            channels=16,
            dram_size=256 * MB,
        )
        return replace(base, **overrides)  # type: ignore[arg-type]

    @classmethod
    def small(cls, **overrides: object) -> "SSDConfig":
        """A laptop-scale configuration for tests and examples.

        4 GB capacity keeps trace replay fast while preserving the same
        geometry ratios (16 channels, 256 pages/block) as the paper's setup.
        """
        base = cls(
            capacity_bytes=4 * GB,
            page_size=4 * KB,
            pages_per_block=256,
            channels=16,
            dram_size=16 * MB,
            write_buffer_bytes=1 * MB,
        )
        return replace(base, **overrides)  # type: ignore[arg-type]

    @classmethod
    def tiny(cls, **overrides: object) -> "SSDConfig":
        """A minimal configuration for unit tests (256 MB, 4 channels)."""
        base = cls(
            capacity_bytes=256 * MB,
            page_size=4 * KB,
            pages_per_block=64,
            channels=4,
            dram_size=2 * MB,
            write_buffer_bytes=256 * KB,
        )
        return replace(base, **overrides)  # type: ignore[arg-type]

    def scaled(self, **overrides: object) -> "SSDConfig":
        """Return a copy of this configuration with ``overrides`` applied."""
        return replace(self, **overrides)  # type: ignore[arg-type]


@dataclass(frozen=True)
class LeaFTLConfig:
    """Tunables of the learned mapping table.

    The paper sets ``gamma = 0`` by default (Section 3.9) and evaluates
    gamma in {0, 1, 4, 16} in the sensitivity analysis (Figures 19-21).
    """

    #: Error bound of approximate segments (gamma in the paper).
    gamma: int = 0
    #: Number of contiguous LPAs per group (Section 3.2 uses 256).
    group_size: int = 256
    #: Compact the mapping table after this many host writes (Section 3.7).
    compaction_interval_writes: int = 1_000_000
    #: Bytes charged per learned segment (S_LPA 1B + L 1B + K 2B + I 4B).
    segment_bytes: int = 8
    #: Per-level bookkeeping overhead charged in the memory model, bytes.
    level_overhead_bytes: int = 4

    def __post_init__(self) -> None:
        if self.gamma < 0:
            raise ValueError("gamma must be non-negative")
        if self.group_size <= 0 or self.group_size > 256:
            raise ValueError("group_size must be in (0, 256] to fit 1-byte offsets")
        if self.compaction_interval_writes <= 0:
            raise ValueError("compaction_interval_writes must be positive")


@dataclass(frozen=True)
class DFTLConfig:
    """Tunables of the DFTL baseline (Gupta et al., ASPLOS 2009)."""

    #: Bytes per cached mapping entry (4 B LPA + 4 B PPA).
    entry_bytes: int = 8
    #: Number of mapping entries stored in one translation page.
    entries_per_translation_page: int = 512


@dataclass(frozen=True)
class SFTLConfig:
    """Tunables of the SFTL baseline (Jiang et al., MSST 2011)."""

    #: Bytes per condensed run descriptor.
    run_bytes: int = 8
    #: Bytes per single-page (non-sequential) entry.
    entry_bytes: int = 8
    #: Fixed per-translation-page header (run index / bitmap) in bytes.
    page_header_bytes: int = 16


@dataclass
class DRAMBudget:
    """How the controller DRAM is split between mapping table and data cache.

    Figure 16 of the paper evaluates two policies:

    * ``mapping_first`` — the mapping table may consume (almost) all DRAM;
      whatever is left goes to the data cache.
    * ``cache_reserved`` — at least ``reserved_cache_fraction`` of DRAM is
      always kept for the data cache (the paper reserves 20 %).
    """

    dram_bytes: int
    policy: str = "mapping_first"
    reserved_cache_fraction: float = 0.20
    #: Minimum data-cache size in bytes regardless of the policy.
    min_cache_bytes: int = 64 * KB

    def __post_init__(self) -> None:
        if self.dram_bytes <= 0:
            raise ValueError("dram_bytes must be positive")
        if self.policy not in ("mapping_first", "cache_reserved"):
            raise ValueError("policy must be 'mapping_first' or 'cache_reserved'")
        if not 0.0 <= self.reserved_cache_fraction < 1.0:
            raise ValueError("reserved_cache_fraction must be in [0, 1)")

    def cache_bytes(self, mapping_bytes: int) -> int:
        """Data-cache capacity given the current mapping-table footprint."""
        if self.policy == "cache_reserved":
            reserved = int(self.dram_bytes * self.reserved_cache_fraction)
        else:
            reserved = 0
        available = self.dram_bytes - mapping_bytes
        return max(self.min_cache_bytes, max(reserved, available))

    def mapping_budget(self) -> int:
        """Maximum bytes the mapping table may occupy under this policy."""
        if self.policy == "cache_reserved":
            return max(0, int(self.dram_bytes * (1.0 - self.reserved_cache_fraction)))
        return max(0, self.dram_bytes - self.min_cache_bytes)
