"""Learned index segments (Section 3.2 of the paper).

A segment is a linear model ``PPA = ceil(K * offset + I)`` covering an LPA
interval ``[S_LPA, S_LPA + L]`` inside one 256-LPA group, where ``offset`` is
the LPA's position within its group.  On the device a segment is encoded in
8 bytes:

=========  =====  =======================================================
Field      Bytes  Meaning
=========  =====  =======================================================
``S_LPA``  1      offset of the first covered LPA within its group
``L``      1      last covered LPA minus ``S_LPA`` (0 = single point)
``K``      2      slope as an IEEE float16; the least-significant bit of
                  the encoding stores the segment type (0 = accurate,
                  1 = approximate)
``I``      4      intercept
=========  =====  =======================================================

Two segment types exist:

* **accurate** segments predict the exact PPA for every covered LPA; their
  covered LPAs form a regular stride (``S, S + 1/K, S + 2/K, ...``), so
  membership is a modulo test;
* **approximate** segments guarantee the prediction is within the error
  bound ``[-gamma, +gamma]``; their covered LPAs are irregular, so
  membership is resolved through the per-group Conflict Resolution Buffer.

The Python object keeps the slope quantized exactly as the 2-byte encoding
would (float16 with the type bit forced), so mispredictions in the simulator
match what the real 8-byte encoding produces.  The intercept is kept at full
float64 precision internally; on the device it is anchored at the group base
and stored in 4 bytes, which this model treats as lossless.

Float16 conversions go through :mod:`struct`'s IEEE ``'e'`` format, which is
bit-identical to ``numpy.float16`` round-to-nearest-even (exhaustively
checked in the test suite) — this keeps the learned-index core importable,
and the whole simulator runnable, without numpy.
"""

from __future__ import annotations

import math
import struct
from typing import Iterator, List

#: Number of contiguous LPAs covered by one group (Section 3.2).
GROUP_SIZE = 256

#: DRAM bytes charged per segment (the 8-byte encoding above).
SEGMENT_BYTES = 8

#: Bytes per segment in the lossless checkpoint encoding (``<BBHd``): the
#: device format keeps the intercept anchored at the group base in 4 bytes,
#: which the model treats as lossless; a checkpoint must restore the exact
#: float64 intercept so post-recovery predictions are bit-identical, so it
#: spends 8 intercept bytes instead.
CHECKPOINT_SEGMENT_BYTES = 12

#: Sentinel for ``length`` marking a segment as removable after a merge
#: (Algorithm 2 sets ``L = -1``).
REMOVABLE = -1

_pack_half = struct.Struct("<e").pack
_pack_bits = struct.Struct("<H").pack
_unpack_half = struct.Struct("<e").unpack
_unpack_bits = struct.Struct("<H").unpack


def _float16_bits(value: float) -> int:
    """The uint16 bit pattern of ``value`` rounded to IEEE float16."""
    return _unpack_bits(_pack_half(value))[0]


def _bits_to_float(bits: int) -> float:
    return _unpack_half(_pack_bits(bits))[0]


#: Memo of ``quantize_slope`` results.  Keys conflate ``-0.0``/``0.0``
#: (equal hash and value), which is harmless: both quantize identically.
_QUANTIZE_CACHE: dict = {}

#: Memo of the per-slope stride (``ceil(1 / K)``) computed in ``__init__``.
_STRIDE_CACHE: dict = {}


def quantize_slope(slope: float, accurate: bool) -> float:
    """Quantize ``slope`` to float16 and embed the segment-type bit.

    The least-significant mantissa bit encodes the type (0 = accurate,
    1 = approximate), exactly as in Section 3.2 of the paper.  For accurate
    segments the quantized slope is additionally forced to be **not larger**
    than the true slope so that ``ceil`` never overshoots the next stride
    point; this is what keeps accurate segments exact after quantization.
    """
    key = (slope, accurate)
    cached = _QUANTIZE_CACHE.get(key)
    if cached is not None:
        return cached
    if slope < 0.0:
        raise ValueError("segment slopes are non-negative")
    if slope == 0.0:
        # 0.0 has an all-zero encoding whose LSB already marks "accurate";
        # an approximate single-point segment uses the smallest subnormal.
        value = 0.0 if accurate else _bits_to_float(1)
    else:
        bits = _float16_bits(slope)
        if accurate:
            # Round toward zero if float16 rounding went up.
            if _bits_to_float(bits) > slope:
                bits -= 1
            # Force the type bit to 0, which can only decrease the magnitude.
            bits &= ~1
        else:
            bits |= 1
        value = _bits_to_float(bits)
    if len(_QUANTIZE_CACHE) > 8192:
        _QUANTIZE_CACHE.clear()
    _QUANTIZE_CACHE[key] = value
    return value


def slope_is_accurate(slope: float) -> bool:
    """Decode the segment type from the slope's float16 encoding."""
    return (_float16_bits(slope) & 1) == 0


class Segment:
    """A learned index segment within one LPA group.

    ``slope`` (and therefore the stride of an accurate segment) is immutable
    after construction — merges only ever trim ``start_lpa``/``length`` — so
    the stride is computed once and cached in the ``stride`` slot.
    """

    __slots__ = (
        "group_base",
        "start_lpa",
        "length",
        "slope",
        "intercept",
        "accurate",
        "stride",
    )

    def __init__(
        self,
        group_base: int,
        start_lpa: int,
        length: int,
        slope: float,
        intercept: float,
        accurate: bool,
    ) -> None:
        if start_lpa < group_base or start_lpa + (length if length > 0 else 0) >= group_base + GROUP_SIZE:
            raise ValueError(
                f"segment [{start_lpa}, {start_lpa + length}] does not fit in group "
                f"starting at {group_base}"
            )
        if length > GROUP_SIZE - 1:
            raise ValueError("segment length exceeds one group")
        self.group_base = group_base
        self.start_lpa = start_lpa
        self.length = length
        self.slope = slope
        self.intercept = intercept
        self.accurate = accurate
        #: LPA step between covered points of an accurate segment
        #: (``ceil(1 / K)``; 1 for single points and zero slopes).
        stride = _STRIDE_CACHE.get(slope)
        if stride is None:
            stride = 1 if slope == 0.0 else int(math.ceil(1.0 / slope))
            if len(_STRIDE_CACHE) > 8192:
                _STRIDE_CACHE.clear()
            _STRIDE_CACHE[slope] = stride
        self.stride = stride

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_anchor(
        cls,
        group_base: int,
        start_lpa: int,
        length: int,
        raw_slope: float,
        anchor_lpa: int,
        anchor_ppa: int,
        accurate: bool,
        intercept_shift: float = 0.0,
    ) -> "Segment":
        """Build a segment whose model passes (near) the anchor point.

        The intercept is derived so that ``predict(anchor_lpa)`` equals
        ``anchor_ppa`` (plus an optional ``intercept_shift`` used by the
        learner to centre rounding errors of approximate segments).
        """
        slope = quantize_slope(raw_slope, accurate)
        anchor_offset = anchor_lpa - group_base
        intercept = anchor_ppa - slope * anchor_offset + intercept_shift
        return cls(
            group_base=group_base,
            start_lpa=start_lpa,
            length=length,
            slope=slope,
            intercept=intercept,
            accurate=accurate,
        )

    @classmethod
    def single_point(cls, group_base: int, lpa: int, ppa: int) -> "Segment":
        """The degenerate segment for a random write: L = 0, K = 0, I = PPA."""
        return cls(
            group_base=group_base,
            start_lpa=lpa,
            length=0,
            slope=0.0,
            intercept=float(ppa),
            accurate=True,
        )

    # ------------------------------------------------------------------ #
    # Interval & membership
    # ------------------------------------------------------------------ #
    @property
    def end_lpa(self) -> int:
        """Last LPA of the covered interval (inclusive)."""
        length = self.length
        return self.start_lpa + (length if length > 0 else 0)

    @property
    def is_removable(self) -> bool:
        return self.length == REMOVABLE

    def mark_removable(self) -> None:
        self.length = REMOVABLE

    @property
    def is_single_point(self) -> bool:
        return self.length == 0

    def covers(self, lpa: int) -> bool:
        """True when ``lpa`` falls inside the segment's LPA interval."""
        length = self.length
        start = self.start_lpa
        return length != REMOVABLE and start <= lpa <= start + (length if length > 0 else 0)

    def overlaps(self, other: "Segment") -> bool:
        """True when the LPA intervals of the two segments intersect."""
        if self.is_removable or other.is_removable:
            return False
        return self.start_lpa <= other.end_lpa and other.start_lpa <= self.end_lpa

    def overlaps_range(self, start_lpa: int, end_lpa: int) -> bool:
        length = self.length
        if length == REMOVABLE:
            return False
        start = self.start_lpa
        return start <= end_lpa and start_lpa <= start + (length if length > 0 else 0)

    def has_lpa_accurate(self, lpa: int) -> bool:
        """Membership test for accurate segments (Algorithm 2, ``has_lpa``).

        An accurate segment covers the regularly strided LPAs
        ``S, S + stride, S + 2*stride, ...`` within its interval.
        """
        length = self.length
        start = self.start_lpa
        if length == REMOVABLE or lpa < start:
            return False
        if length <= 0:
            return lpa == start
        if lpa > start + length:
            return False
        return (lpa - start) % self.stride == 0

    def covered_lpas_accurate(self) -> Iterator[int]:
        """Iterate the LPAs an accurate segment encodes (from its metadata)."""
        if not self.accurate:
            raise ValueError("only accurate segments can enumerate LPAs from metadata")
        return iter(self.covered_lpas_accurate_list())

    def covered_lpas_accurate_list(self) -> List[int]:
        """The LPAs an accurate segment encodes, as a list (hot-path form).

        Equivalent to ``list(covered_lpas_accurate())`` but built with a
        single C-level ``range`` expansion — the merge procedure calls this
        for every victim candidate, so avoiding the generator matters.
        """
        length = self.length
        if length == REMOVABLE:
            return []
        start = self.start_lpa
        if length == 0:
            return [start]
        return list(range(start, start + length + 1, self.stride))

    # ------------------------------------------------------------------ #
    # Prediction
    # ------------------------------------------------------------------ #
    def predict(self, lpa: int) -> int:
        """``PPA = ceil(K * offset + I)`` where offset is group-relative."""
        offset = lpa - self.group_base
        return int(math.ceil(self.slope * offset + self.intercept))

    # ------------------------------------------------------------------ #
    # 8-byte encoding
    # ------------------------------------------------------------------ #
    def to_bytes(self) -> bytes:
        """Serialize to the 8-byte on-device format.

        Layout: ``<BBHi`` — start offset (1 B), length (1 B), float16 slope
        bits (2 B), intercept as a rounded signed 32-bit integer (4 B).
        """
        if self.is_removable:
            raise ValueError("cannot encode a removable segment")
        offset = self.start_lpa - self.group_base
        slope_bits = _float16_bits(self.slope)
        intercept = int(round(self.intercept))
        return struct.pack("<BBHi", offset, self.length, slope_bits, intercept)

    @classmethod
    def from_bytes(cls, data: bytes, group_base: int) -> "Segment":
        """Decode the 8-byte format (inverse of :meth:`to_bytes`)."""
        if len(data) != SEGMENT_BYTES:
            raise ValueError(f"expected {SEGMENT_BYTES} bytes, got {len(data)}")
        offset, length, slope_bits, intercept = struct.unpack("<BBHi", data)
        slope = _bits_to_float(slope_bits)
        return cls(
            group_base=group_base,
            start_lpa=group_base + offset,
            length=length,
            slope=slope,
            intercept=float(intercept),
            accurate=(slope_bits & 1) == 0,
        )

    def to_checkpoint_bytes(self) -> bytes:
        """Serialize losslessly for a mapping checkpoint (``<BBHd``).

        Identical to :meth:`to_bytes` except the intercept keeps its full
        float64 value: a restored segment must predict bit-identically to
        the one that was checkpointed.  The device-format footprint
        (:data:`SEGMENT_BYTES`) is what checkpoint flash writes are charged
        at; this wider encoding exists only for exact restoration.
        """
        if self.is_removable:
            raise ValueError("cannot encode a removable segment")
        offset = self.start_lpa - self.group_base
        slope_bits = _float16_bits(self.slope)
        return struct.pack("<BBHd", offset, self.length, slope_bits, self.intercept)

    @classmethod
    def from_checkpoint_bytes(cls, data: bytes, group_base: int) -> "Segment":
        """Decode the checkpoint format (inverse of :meth:`to_checkpoint_bytes`)."""
        if len(data) != CHECKPOINT_SEGMENT_BYTES:
            raise ValueError(
                f"expected {CHECKPOINT_SEGMENT_BYTES} bytes, got {len(data)}"
            )
        offset, length, slope_bits, intercept = struct.unpack("<BBHd", data)
        slope = _bits_to_float(slope_bits)
        return cls(
            group_base=group_base,
            start_lpa=group_base + offset,
            length=length,
            slope=slope,
            intercept=intercept,
            accurate=(slope_bits & 1) == 0,
        )

    # ------------------------------------------------------------------ #
    # Misc
    # ------------------------------------------------------------------ #
    def memory_bytes(self) -> int:
        """DRAM bytes charged for this segment."""
        return SEGMENT_BYTES

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "acc" if self.accurate else "apx"
        return (
            f"Segment({kind}, [{self.start_lpa}, {self.end_lpa}], "
            f"K={self.slope:.4f}, I={self.intercept:.2f})"
        )


def group_base_of(lpa: int, group_size: int = GROUP_SIZE) -> int:
    """The base LPA of the group that contains ``lpa``."""
    return (lpa // group_size) * group_size


def group_id_of(lpa: int, group_size: int = GROUP_SIZE) -> int:
    """The group index that contains ``lpa``."""
    return lpa // group_size
