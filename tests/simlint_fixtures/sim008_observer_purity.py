# Fixture for SIM008 (observer-purity).  See sim001 fixture for the
# marker convention.  NOT imported — parsed by simlint only.


class BadObserver:
    def __init__(self, ssd):
        self.ssd = ssd
        self.seen = 0

    def observe(self, event):
        self.seen += 1  # own state: allowed
        event.consumed = True  # expect: SIM008

    def tamper(self, ssd):
        ssd.clock = 0.0  # expect: SIM008

    def tamper_nested(self):
        self.ssd.stats.host_reads = 0  # expect: SIM008

    def tamper_augmented(self, device):
        device.events_processed += 1  # expect: SIM008

    def tamper_annotated(self, device):
        device.telemetry: object = None  # expect: SIM008

    def tamper_tuple(self, device):
        device.mode, count = "off", 0  # expect: SIM008
        return count

    def drive_submit(self, ssd, request):
        return ssd.submit(*request)  # expect: SIM008

    def drive_crash(self, device):
        device.power_fail()  # expect: SIM008

    def drive_loop(self, loop):
        loop.run()  # expect: SIM008

    def sanctioned_attach(self, ssd):
        ssd.telemetry = self  # simlint: disable=SIM008


class OkObserver:
    def __init__(self):
        self.active = {}
        self.rows = []

    def observe(self, event, counters):
        self.active[id(event)] = event  # subscript on own state
        counters["events"] = counters.get("events", 0) + 1
        self.rows.append(event)

    def export(self, handle, payload):
        handle.write(payload)  # file I/O, not a sim mutator

    def peek(self, device):
        free: float  # bare annotation, no assignment
        free = device.free_ratio()
        return free
