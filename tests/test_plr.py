"""Tests for the greedy error-bounded piecewise linear regression learner."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.plr import PLRLearner, learn_segments
from repro.core.segment import GROUP_SIZE


def verify_error_bound(learned, mappings, gamma):
    """Every learned segment must predict its LPAs within gamma."""
    truth = dict(mappings)
    for item in learned:
        for lpa in item.lpas:
            error = abs(item.segment.predict(lpa) - truth[lpa])
            limit = 0 if item.segment.accurate else gamma
            assert error <= limit, (
                f"segment {item.segment} predicts {item.segment.predict(lpa)} "
                f"for LPA {lpa}, truth {truth[lpa]}, gamma {gamma}"
            )


def covered_lpas(learned):
    out = []
    for item in learned:
        out.extend(item.lpas)
    return out


class TestSequentialPatterns:
    def test_single_sequential_run_is_one_segment(self):
        mappings = [(lpa, 1000 + lpa) for lpa in range(100)]
        learned = learn_segments(mappings, gamma=0)
        assert len(learned) == 1
        assert learned[0].accurate
        assert len(learned[0].lpas) == 100

    def test_strided_run_is_one_accurate_segment(self):
        mappings = [(10 + 4 * i, 500 + i) for i in range(30)]
        learned = learn_segments(mappings, gamma=0)
        assert len(learned) == 1
        assert learned[0].accurate
        verify_error_bound(learned, mappings, 0)

    def test_figure1_example_segments(self):
        # Pattern A: sequential; pattern B: regular stride 2.
        pattern_a = [(30 + i, 155 + i) for i in range(5)]
        pattern_b = [(60 + 2 * i, 200 + i) for i in range(5)]
        learned_a = learn_segments(pattern_a, gamma=0)
        learned_b = learn_segments(pattern_b, gamma=0)
        assert len(learned_a) == 1 and learned_a[0].accurate
        assert len(learned_b) == 1 and learned_b[0].accurate

    def test_irregular_pattern_needs_gamma(self):
        # Pattern C of Figure 1: irregular stride, only learnable approximately.
        lpas = [80, 82, 83, 84, 87]
        mappings = [(lpa, 304 + i) for i, lpa in enumerate(lpas)]
        exact = learn_segments(mappings, gamma=0)
        relaxed = learn_segments(mappings, gamma=4)
        assert len(relaxed) < len(exact)
        verify_error_bound(relaxed, mappings, 4)


class TestRandomPatterns:
    def test_random_mappings_become_single_points(self):
        rng = random.Random(7)
        lpas = rng.sample(range(0, 200, 7), 20)
        mappings = [(lpa, rng.randrange(10**6)) for lpa in sorted(lpas)]
        learned = learn_segments(mappings, gamma=0)
        # Memory never exceeds page-level mapping: at most one segment each.
        assert len(learned) <= len(mappings)
        verify_error_bound(learned, mappings, 0)

    def test_all_lpas_covered_exactly_once(self):
        rng = random.Random(11)
        lpas = sorted(rng.sample(range(1000), 300))
        mappings = [(lpa, 5000 + i) for i, lpa in enumerate(lpas)]
        learned = learn_segments(mappings, gamma=4)
        assert sorted(covered_lpas(learned)) == lpas


class TestLearnerProperties:
    def test_duplicate_lpas_rejected(self):
        with pytest.raises(ValueError):
            learn_segments([(1, 10), (1, 11)], gamma=0)

    def test_empty_batch(self):
        assert learn_segments([], gamma=0) == []

    def test_negative_gamma_rejected(self):
        with pytest.raises(ValueError):
            PLRLearner(gamma=-1)

    def test_segments_never_span_groups(self):
        mappings = [(250 + i, 900 + i) for i in range(12)]  # crosses LPA 256
        learned = learn_segments(mappings, gamma=0)
        for item in learned:
            assert item.segment.end_lpa < item.segment.group_base + GROUP_SIZE
            assert item.segment.start_lpa >= item.segment.group_base
        assert sorted(covered_lpas(learned)) == [lpa for lpa, _ in mappings]

    def test_segment_count_decreases_with_gamma(self):
        rng = random.Random(3)
        mappings = []
        ppa = 0
        lpa = 0
        while lpa < 2000:
            mappings.append((lpa, ppa))
            ppa += 1
            lpa += rng.choice((1, 1, 1, 2, 3))
        counts = {}
        for gamma in (0, 4, 8):
            counts[gamma] = len(learn_segments(mappings, gamma=gamma))
            verify_error_bound(learn_segments(mappings, gamma=gamma), mappings, gamma)
        assert counts[4] <= counts[0]
        assert counts[8] <= counts[4]

    @given(
        gamma=st.sampled_from([0, 1, 4, 16]),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_error_bound_is_hard_guarantee(self, gamma, seed):
        """Property: for any monotonic batch, predictions stay within gamma."""
        rng = random.Random(seed)
        lpa = rng.randrange(0, 5000)
        mappings = []
        ppa = rng.randrange(0, 100_000)
        for _ in range(rng.randint(1, 300)):
            mappings.append((lpa, ppa))
            lpa += rng.choice((1, 1, 2, 3, 5, 17))
            ppa += 1
        learned = learn_segments(mappings, gamma=gamma)
        verify_error_bound(learned, mappings, gamma)
        assert sorted(covered_lpas(learned)) == [l for l, _ in mappings]

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_random_ppas_error_bound(self, seed):
        """Even non-monotonic PPAs (worst case) respect the bound."""
        rng = random.Random(seed)
        lpas = sorted(rng.sample(range(3000), rng.randint(1, 200)))
        mappings = [(lpa, rng.randrange(10**6)) for lpa in lpas]
        for gamma in (0, 4):
            learned = learn_segments(mappings, gamma=gamma)
            verify_error_bound(learned, mappings, gamma)


class TestConfiguredGroupSize:
    """Regression: the cone must stop at the *configured* group span.

    ``_extend_cone`` used to cap segment spans with the module constant
    ``GROUP_SIZE`` (256) instead of ``self.group_size``, so learners
    configured with a smaller group size could grow cones past their group
    boundary.
    """

    def test_extend_cone_stops_at_configured_group_span(self):
        learner = PLRLearner(gamma=0, group_size=64)
        # A perfectly linear run: the cone alone never closes, so only the
        # group-span cap can stop it.
        points = [(lpa, 1000 + lpa) for lpa in range(200)]
        end, _low, _high = learner._extend_cone(points, 0)
        assert points[end - 1][0] - points[0][0] <= 63

    def test_extend_cone_default_group_size_unchanged(self):
        learner = PLRLearner(gamma=0)
        points = [(lpa, 1000 + lpa) for lpa in range(300)]
        end, _low, _high = learner._extend_cone(points, 0)
        assert points[end - 1][0] - points[0][0] == GROUP_SIZE - 1

    def test_learning_with_group_size_64(self):
        learner = PLRLearner(gamma=4, group_size=64)
        mappings = [(lpa, 2000 + lpa) for lpa in range(256)]
        learned = learner.learn(mappings)
        # 256 sequential LPAs split into (at least) four 64-LPA groups.
        assert len(learned) >= 4
        for item in learned:
            assert item.segment.group_base % 64 == 0
            assert item.segment.end_lpa - item.segment.start_lpa <= 63
        verify_error_bound(learned, mappings, 4)
        assert sorted(covered_lpas(learned)) == [lpa for lpa, _ in mappings]
