"""Latency analysis helpers (Figures 16-18 and 21-23)."""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

def percentile(samples: Sequence[float], pct: float) -> float:
    """The ``pct``-th percentile of ``samples`` (nearest-rank)."""
    if not samples:
        return 0.0
    if not 0.0 <= pct <= 100.0:
        raise ValueError("pct must be within [0, 100]")
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, int(round(pct / 100.0 * (len(ordered) - 1))))
    return ordered[rank]

def latency_cdf(
    samples: Sequence[float],
    points: Sequence[float] = (0.0, 30.0, 60.0, 90.0, 99.0, 99.9),
) -> Dict[float, float]:
    """Latency values at the given CDF points (Figure 18's x-axis)."""
    return {p: percentile(samples, p) for p in points}

def normalize(values: Mapping[str, float], baseline_key: str) -> Dict[str, float]:
    """Normalize a metric to one scheme (lower is better in the paper's plots).

    ``values`` maps scheme name to the raw metric (e.g. mean latency); the
    result divides every value by the baseline's, so the baseline becomes 1.0.
    """
    if baseline_key not in values:
        raise KeyError(f"baseline {baseline_key!r} missing from {sorted(values)}")
    baseline = values[baseline_key]
    if baseline == 0:
        return {key: 0.0 for key in values}
    return {key: value / baseline for key, value in values.items()}

def speedup(values: Mapping[str, float], over: str, of: str) -> float:
    """How much faster ``of`` is than ``over`` (ratio of the latencies)."""
    if values.get(of, 0.0) == 0.0:
        return 0.0
    return values[over] / values[of]

def histogram_cdf(histogram: Mapping[int, int]) -> List[tuple]:
    """Convert a value->count histogram into (value, cumulative fraction) pairs."""
    total = sum(histogram.values())
    if total == 0:
        return []
    cumulative = 0
    points = []
    for value in sorted(histogram):
        cumulative += histogram[value]
        points.append((value, cumulative / total))
    return points

def value_at_cdf(histogram: Mapping[int, int], fraction: float) -> int:
    """Smallest histogram value whose cumulative share reaches ``fraction``."""
    points = histogram_cdf(histogram)
    for value, cum in points:
        if cum >= fraction:
            return value
    return points[-1][0] if points else 0
