"""Tests for the GC and wear-leveling policies in isolation."""

from __future__ import annotations

import pytest

from repro.config import SSDConfig
from repro.flash.allocator import BlockAllocator
from repro.flash.flash_array import FlashArray
from repro.ssd.gc import GCPolicyConfig, GreedyGCPolicy
from repro.ssd.wear_leveling import WearLeveler, WearLevelingConfig


@pytest.fixture
def flash():
    return FlashArray(SSDConfig.tiny())


class TestGCPolicy:
    def test_thresholds_validated(self):
        with pytest.raises(ValueError):
            GCPolicyConfig(threshold=0.5, restore=0.4)
        with pytest.raises(ValueError):
            GCPolicyConfig(max_victims_per_invocation=0)

    def test_should_collect_tracks_free_ratio(self, flash):
        allocator = BlockAllocator(flash)
        policy = GreedyGCPolicy(GCPolicyConfig(threshold=0.5, restore=0.6))
        assert not policy.should_collect(allocator)
        total = allocator.total_blocks
        for _ in range(int(total * 0.6)):
            allocator.allocate_block()
        assert policy.should_collect(allocator)
        assert not policy.should_stop(allocator)

    def test_greedy_victim_order(self, flash):
        allocator = BlockAllocator(flash)
        policy = GreedyGCPolicy()
        blocks = [allocator.allocate_block() for _ in range(3)]
        valid_counts = (5, 1, 3)
        for block, valid in zip(blocks, valid_counts):
            base = flash.geometry.first_ppa_of_block(block)
            for offset in range(valid + 2):
                flash.program_page(base + offset, lpa=offset)
            for offset in range(2):  # invalidate two pages in each block
                flash.invalidate_page(base + offset)
            allocator.seal_block(block)
        victims = policy.select_victims(flash, allocator)
        ordered_valid = [flash.valid_page_count(b) for b in victims]
        assert ordered_valid == sorted(ordered_valid)

    def test_victim_limit(self, flash):
        allocator = BlockAllocator(flash)
        policy = GreedyGCPolicy(GCPolicyConfig(max_victims_per_invocation=2))
        for _ in range(5):
            block = allocator.allocate_block()
            base = flash.geometry.first_ppa_of_block(block)
            flash.program_page(base, lpa=0)
            allocator.seal_block(block)
        assert len(policy.select_victims(flash, allocator)) == 2


class TestWearLeveler:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            WearLevelingConfig(imbalance_threshold=0)

    def test_due_throttling(self, flash):
        leveler = WearLeveler(WearLevelingConfig(check_interval_erases=4))
        assert not leveler.due(flash)
        flash.counters.block_erases = 10
        assert leveler.due(flash)
        # Immediately after a check it is throttled again.
        assert not leveler.due(flash)

    def test_imbalance_detection(self, flash):
        leveler = WearLeveler(WearLevelingConfig(imbalance_threshold=2))
        assert not leveler.imbalanced(flash)
        # Erase one block many times to create imbalance.
        block = 0
        for _ in range(4):
            flash.erase_block(block)
        assert leveler.imbalanced(flash)

    def test_cold_block_selection_prefers_low_erase_counts(self, flash):
        allocator = BlockAllocator(flash)
        leveler = WearLeveler()
        blocks = [allocator.allocate_block() for _ in range(3)]
        for index, block in enumerate(blocks):
            base = flash.geometry.first_ppa_of_block(block)
            flash.program_page(base, lpa=index)
            allocator.seal_block(block)
        # Age one of the *other* free blocks so counts differ.
        cold = leveler.select_cold_blocks(flash, allocator)
        assert cold
        assert flash.valid_page_count(cold[0]) > 0
