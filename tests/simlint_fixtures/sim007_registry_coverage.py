# Fixture for SIM007 (registry-coverage).  See sim001 fixture for the
# marker convention.  NOT imported — parsed by simlint only.  The rule
# resolves REGISTERED_STATS/EXCLUDED_FIELDS from the real registry at
# src/repro/obs/registry.py, so "registered" names below are real ones.
from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class OrphanStats:  # expect: SIM007
    lookups: int = 0
    hits: int = 0


@dataclass
class CacheStats:  # registered name: the class itself is fine...
    hits: int = 0
    misses: int = 0
    eviction_log: List[int] = field(default_factory=list)  # expect: SIM007


@dataclass
class WriteBufferStats:  # registered
    writes: int = 0
    flushes: int = 0
    fill_history: Dict[int, int] = field(default_factory=dict)  # simlint: disable=SIM007


@dataclass
class SSDStats:  # registered, and this non-numeric field is in EXCLUDED_FIELDS
    host_reads: int = 0
    mapping_bytes_samples: List[int] = field(default_factory=list)


@dataclass
class FrontendStats:  # registered, all-numeric: clean
    submitted: int = 0
    completed: int = 0
    finished_at_us: float = 0.0


class RuntimeStats:  # not a dataclass: the registry cannot walk it anyway
    def __init__(self) -> None:
        self.samples: List[float] = []


@dataclass
class TraceCursor:  # name does not end in "Stats": out of scope
    offsets: List[int] = field(default_factory=list)
