"""Differential crash-recovery tests: power-fail at arbitrary points, then
prove the rebuilt mapping agrees with the durability oracle.

The oracle is the last-acked flash location of every LPA, captured by
``power_fail()`` from the ground-truth page map an instant before all DRAM
state is discarded.  Whatever recovery path runs afterwards — full OOB
scan for any FTL, or checkpoint + replay for LeaFTL — the recovered device
must:

* reconstruct the ground-truth validity map bit-exactly (``_current_ppa``
  equals the oracle — acked data is never lost, unacked in-flight writes
  may be lost but never torn);
* translate every acked LPA back to live data (strict mode raises on any
  unrecoverable translation, and the read path verifies each translated
  read against the durable OOB reverse mapping);
* keep serving new writes correctly after recovery.

Crashes land mid-write-burst, mid-GC-migration and at idle, across all
four FTL schemes.
"""

from __future__ import annotations

import random
import zlib

import pytest

from repro.config import DRAMBudget, LeaFTLConfig, SSDConfig
from repro.core.leaftl import LeaFTL
from repro.ftl.dftl import DFTL
from repro.ftl.pagemap import PageLevelFTL
from repro.ftl.sftl import SFTL
from repro.ssd.recovery import (
    CrashTimer,
    MappingCheckpointer,
    PowerFailure,
    attach_checkpointer,
    recover,
)
from repro.ssd.ssd import SimulatedSSD, SSDOptions

#: Small, low-OP device: GC stays active, so mid-GC crashes are reachable.
CONFIG = SSDConfig.tiny(capacity_bytes=24 * 1024 * 1024, overprovisioning=0.10)

FTL_FACTORIES = {
    "LeaFTL-g4": lambda: LeaFTL(LeaFTLConfig(gamma=4, compaction_interval_writes=20_000)),
    "DFTL": lambda: DFTL(mapping_budget_bytes=64 * 1024),
    "SFTL": lambda: SFTL(mapping_budget_bytes=64 * 1024),
    "PageMap": lambda: PageLevelFTL(),
}

#: Crash triggers: mid-write-burst (N-th host issue), mid-GC-migration
#: (N-th GC pipeline event), idle (after the replay fully drains).
CRASH_POINTS = {
    "mid_write": ("request_issue", 2600),
    "mid_gc": ("gc", 40),
    "idle": None,
}


def overwrite_workload(seed: int, num_requests: int = 2200):
    rng = random.Random(seed)
    footprint = int(CONFIG.logical_pages * 0.9)
    requests = []
    for lpa in range(0, footprint - 8, 8):
        requests.append(("W", lpa, 8))
    for _ in range(num_requests):
        span = rng.randint(1, 8)
        lpa = int((rng.random() ** 4) * (footprint - span))
        requests.append(("W", lpa, span))
    return requests


def build_ssd(ftl_name: str) -> SimulatedSSD:
    return SimulatedSSD(
        CONFIG,
        FTL_FACTORIES[ftl_name](),
        dram_budget=DRAMBudget(dram_bytes=CONFIG.dram_size),
        options=SSDOptions(queue_depth=8, gc_mode="background", engine="events"),
    )


def crash(ssd: SimulatedSSD, requests, crash_point: str):
    """Run until the injected crash (or to idle), then power-fail.

    Returns the durability oracle: LPA -> last-acked PPA.
    """
    trigger = CRASH_POINTS[crash_point]
    if trigger is None:
        ssd.run(requests)
        return ssd.power_fail()
    kind, count = trigger
    timer = CrashTimer(after_kind=kind, kind_count=count)
    ssd.event_observer = timer
    with pytest.raises(PowerFailure):
        ssd.run(requests)
    assert timer.fired
    return ssd.power_fail()


def assert_recovered(ssd: SimulatedSSD, oracle, seed: int) -> None:
    """Post-recovery invariants common to both recovery modes."""
    # Bit-exact durability: the rebuilt ground truth IS the oracle.
    assert ssd._current_ppa == oracle
    # Every acked LPA reads back through the FTL under test; strict mode
    # raises on unrecoverable translations and the read path verifies the
    # translated PPA against the durable OOB reverse mapping.
    rng = random.Random(seed + 1)
    sample = rng.sample(sorted(oracle), min(250, len(oracle)))
    before = ssd.stats.unmapped_reads
    for lpa in sample:
        ssd.read(lpa)
    assert ssd.stats.unmapped_reads == before
    # The device keeps working: new writes land and translate.
    for lpa in sample[:20]:
        ssd.write(lpa)
    for lpa in sample[:20]:
        ssd.read(lpa)
    assert ssd.stats.unmapped_reads == before


@pytest.mark.parametrize("crash_point", sorted(CRASH_POINTS))
@pytest.mark.parametrize("ftl_name", sorted(FTL_FACTORIES))
def test_oob_scan_recovery(ftl_name, crash_point):
    seed = zlib.crc32(f"recovery/{ftl_name}/{crash_point}".encode()) & 0xFFFF
    requests = overwrite_workload(seed)
    ssd = build_ssd(ftl_name)
    oracle = crash(ssd, requests, crash_point)
    assert oracle, "workload must have acked writes before the crash"
    assert ssd.stats.power_failures == 1

    result = recover(ssd, mode="oob_scan")
    assert result.mode == "oob_scan"
    # The scan reads every programmed page's OOB — VALID and INVALID alike.
    programmed = sum(
        len(ssd.flash.programmed_ppas_of_block(block))
        for block in range(ssd.flash.geometry.total_blocks)
    )
    assert result.flash_reads == programmed
    assert result.recovered_lpas == len(oracle)
    assert result.recovery_time_us > 0
    assert_recovered(ssd, oracle, seed)


@pytest.mark.parametrize("crash_point", sorted(CRASH_POINTS))
def test_checkpoint_replay_recovery(crash_point):
    seed = zlib.crc32(f"recovery/ckpt/{crash_point}".encode()) & 0xFFFF
    requests = overwrite_workload(seed)
    ssd = build_ssd("LeaFTL-g4")
    checkpointer = attach_checkpointer(ssd, interval_pages=512)
    oracle = crash(ssd, requests, crash_point)
    assert checkpointer.checkpoints_taken > 0
    assert ssd.stats.checkpoint_page_writes > 0

    result = recover(ssd, mode="checkpoint_replay")
    assert result.mode == "checkpoint_replay"
    assert result.checkpoint_pages_read == checkpointer.image.pages
    # Replay touches only the pages programmed since the last checkpoint.
    # Mid-run that is a strict subset; at idle the post-crash GC drain can
    # have recycled every block, legitimately forcing a full replay.
    programmed = sum(
        len(ssd.flash.programmed_ppas_of_block(block))
        for block in range(ssd.flash.geometry.total_blocks)
    )
    assert result.flash_reads <= programmed
    if crash_point != "idle":
        assert result.flash_reads < programmed
    assert_recovered(ssd, oracle, seed)


def test_checkpoint_recovery_faster_than_scan():
    """The headline claim: checkpoint+replay beats the full OOB scan.

    Both devices run with checkpointing enabled (checkpoint writes occupy
    channels and shift GC timing, so a checkpointed and an unadorned device
    diverge physically); only the recovery strategy differs.  Identical
    runs crash at the identical event, so the comparison is apples to
    apples: same durable flash state, two ways to rebuild from it.
    """
    seed = 1234
    requests = overwrite_workload(seed)

    def crashed_device() -> SimulatedSSD:
        ssd = build_ssd("LeaFTL-g4")
        attach_checkpointer(ssd, interval_pages=512)
        ssd.event_observer = CrashTimer(after_kind="request_issue", kind_count=2600)
        with pytest.raises(PowerFailure):
            ssd.run(requests)
        return ssd

    ssd_scan = crashed_device()
    oracle_scan = ssd_scan.power_fail()
    scan = recover(ssd_scan, mode="oob_scan")

    ssd_ckpt = crashed_device()
    oracle_ckpt = ssd_ckpt.power_fail()
    ckpt = recover(ssd_ckpt, mode="checkpoint_replay")

    # Same crash point, same durable contents recovered either way.
    assert oracle_scan == oracle_ckpt
    assert ssd_scan._current_ppa == ssd_ckpt._current_ppa
    assert ckpt.flash_reads < scan.flash_reads
    assert ckpt.recovery_time_us < scan.recovery_time_us


def test_checkpoint_falls_back_to_scan_before_first_image():
    """Crash before any checkpoint: replay mode degrades to the OOB scan."""
    ssd = build_ssd("LeaFTL-g4")
    attach_checkpointer(ssd, interval_pages=10**9)
    ssd.write(0)
    ssd.write(1)
    ssd.finalize_replay()
    oracle = ssd.power_fail()
    result = recover(ssd, mode="checkpoint_replay")
    assert result.mode == "oob_scan"
    assert ssd._current_ppa == oracle


def test_unacked_writes_may_be_lost_but_never_torn():
    """In-flight (unacked) writes vanish cleanly: the write buffer is DRAM
    and discards at the crash; flash holds no partial page for them."""
    ssd = build_ssd("PageMap")
    # Buffered but never flushed: fewer pages than the flush threshold.
    ssd.write(7)
    assert len(ssd.write_buffer) > 0
    oracle = ssd.power_fail()
    assert oracle == {}
    assert ssd.stats.buffered_pages_lost > 0
    result = recover(ssd, mode="oob_scan")
    assert result.recovered_lpas == 0
    # The lost write is simply unmapped — not torn, not half-present.
    before = ssd.stats.unmapped_reads
    ssd.read(7)
    assert ssd.stats.unmapped_reads == before + 1


def test_checkpointer_requires_serializable_ftl():
    ssd = build_ssd("PageMap")
    with pytest.raises(ValueError):
        attach_checkpointer(ssd)


def test_attach_checkpointer_validates_interval():
    ssd = build_ssd("LeaFTL-g4")
    with pytest.raises(ValueError):
        MappingCheckpointer(ssd, interval_pages=0)
