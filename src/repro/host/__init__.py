"""NVMe-style multi-queue host interface: namespaces, arbitration, QoS.

This package is the layer *above* the device model: it carves one
:class:`repro.ssd.ssd.SimulatedSSD` into disjoint namespaces, gives each
tenant its own submission queue, and arbitrates which queue's head request
is admitted every time a device slot frees — round-robin, weighted
round-robin or strict priority, optionally throttled by per-namespace
token buckets (IOPS / bandwidth caps).

* :mod:`repro.host.namespace` — namespaces + per-tenant statistics;
* :mod:`repro.host.arbiter` — arbitration policies and token buckets;
* :mod:`repro.host.interface` — submission queues, the multi-queue
  admission frontend, and the user-facing :class:`HostInterface`.
"""

from repro.host.arbiter import (
    ARBITERS,
    Arbiter,
    FifoArbiter,
    RoundRobinArbiter,
    StrictPriorityArbiter,
    TokenBucket,
    WeightedRoundRobinArbiter,
    make_arbiter,
)
from repro.host.interface import (
    HostInterface,
    HostRunResult,
    MultiQueueFrontend,
    QUEUE_MODES,
    SubmissionQueue,
)
from repro.host.namespace import Namespace, NamespaceStats

__all__ = [
    "ARBITERS",
    "Arbiter",
    "FifoArbiter",
    "RoundRobinArbiter",
    "StrictPriorityArbiter",
    "TokenBucket",
    "WeightedRoundRobinArbiter",
    "make_arbiter",
    "HostInterface",
    "HostRunResult",
    "MultiQueueFrontend",
    "QUEUE_MODES",
    "SubmissionQueue",
    "Namespace",
    "NamespaceStats",
]
