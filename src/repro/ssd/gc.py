"""Garbage collection policy (Section 3.6 of the paper).

LeaFTL preserves the conventional GC policy of modern SSDs: when the free
block ratio drops below a threshold, the *greedy* policy picks the candidate
blocks with the fewest valid pages (minimising migration traffic), migrates
their valid pages to freshly allocated blocks and erases them.

The policy layer here is deliberately separate from the mechanism (which
lives in :class:`repro.ssd.ssd.SimulatedSSD`): the policy decides *when* to
collect and *which* blocks to collect; the SSD performs the page movement,
relearns the affected mappings and erases the victims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.flash.allocator import BlockAllocator
from repro.flash.flash_array import FlashArray


@dataclass
class GCPolicyConfig:
    """Thresholds controlling garbage collection."""

    #: Start GC when the free-block ratio drops below this value.
    threshold: float = 0.15
    #: Stop GC once the free-block ratio recovers to this value.
    restore: float = 0.25
    #: Upper bound of victims processed per invocation (keeps pauses short).
    max_victims_per_invocation: int = 64

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold < self.restore <= 1.0:
            raise ValueError("require 0 < threshold < restore <= 1")
        if self.max_victims_per_invocation <= 0:
            raise ValueError("max_victims_per_invocation must be positive")


class GreedyGCPolicy:
    """Greedy (min-valid-pages-first) victim selection."""

    def __init__(self, config: GCPolicyConfig | None = None) -> None:
        self.config = config or GCPolicyConfig()

    def should_collect(self, allocator: BlockAllocator) -> bool:
        """True when the free-block ratio fell below the GC threshold."""
        return allocator.free_ratio() < self.config.threshold

    def should_stop(self, allocator: BlockAllocator) -> bool:
        """True when enough free blocks have been reclaimed."""
        return allocator.free_ratio() >= self.config.restore

    def select_victims(
        self, flash: FlashArray, allocator: BlockAllocator
    ) -> List[int]:
        """Candidate blocks ordered by ascending valid-page count.

        Blocks with zero valid pages come first (they can be erased without
        any migration); the list is truncated to the per-invocation limit.
        """
        candidates = allocator.gc_candidates()
        ordered = flash.blocks_by_valid_pages(candidates)
        return ordered[: self.config.max_victims_per_invocation]
