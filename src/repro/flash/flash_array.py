"""The NAND flash array: page state machine, OOB storage and access counters.

The array models the FTL-visible behaviour of NAND flash:

* pages are written out-of-place — a page must be FREE to be programmed and
  must be erased (at block granularity) before it can be programmed again;
* each block has an erase counter (used for wear-leveling studies and the
  write-amplification figure);
* each page has an OOB area storing reverse mappings (see
  :mod:`repro.flash.oob`);
* every read/program/erase is accounted per channel so the SSD model can
  compute request latencies under channel parallelism.

The array does not store page payloads — the simulator is trace-driven and
only address translation correctness matters.  Each valid page remembers the
LPA it holds, which doubles as its "content" for verification purposes.

Hot-state layout
----------------

Page and block state live in flat parallel arrays rather than per-page enum
objects: page lifecycle codes in a ``bytearray`` (0 = FREE, 1 = VALID,
2 = INVALID), reverse LPAs in an ``array('q')`` with ``-1`` as the
no-mapping sentinel, and per-block counters in plain integer lists.  One
flash block occupies a contiguous PPA range (see
:mod:`repro.flash.geometry`), so block-granular operations are slice
operations, ``valid_page_count`` is an O(1) counter read, and
``valid_ppas_of_block`` is a vectorized ``flatnonzero`` over the block's
slice when numpy is available (with a bit-identical scalar scan fallback).
The :class:`PageState` enum remains the public vocabulary of the API.
"""

from __future__ import annotations

import enum
from array import array
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.compat import HAVE_NUMPY, np
from repro.config import SSDConfig
from repro.flash.geometry import FlashGeometry
from repro.flash.oob import OOBArea
from repro.sim.nand import NANDScheduler


class PageState(enum.Enum):
    """Lifecycle of a flash page."""

    FREE = "free"
    VALID = "valid"
    INVALID = "invalid"


#: Page-state byte codes used in the flat state array.
_FREE, _VALID, _INVALID = 0, 1, 2
_CODE_TO_STATE = (PageState.FREE, PageState.VALID, PageState.INVALID)

#: Reverse-LPA sentinel meaning "page holds no mapping".
_NO_LPA = -1


class FlashError(RuntimeError):
    """Raised when an operation violates NAND flash constraints."""


@dataclass
class FlashCounters:
    """Aggregate operation counters for the whole array."""

    page_reads: int = 0
    page_writes: int = 0
    block_erases: int = 0
    oob_reads: int = 0

    def reset(self) -> None:
        self.page_reads = 0
        self.page_writes = 0
        self.block_erases = 0
        self.oob_reads = 0


class FlashArray:
    """A multi-channel NAND flash array with per-channel time accounting."""

    def __init__(
        self, config: SSDConfig, scheduler: Optional[NANDScheduler] = None
    ) -> None:
        self._config = config
        self._geometry = FlashGeometry(config)
        total_pages = self._geometry.total_pages
        total_blocks = self._geometry.total_blocks

        self._state = bytearray(total_pages)  # all _FREE
        self._lpa = array("q", [_NO_LPA]) * total_pages
        self._oob: Dict[int, OOBArea] = {}
        # Per-block parallel counters (indexed by global block id).
        self._erase_count: List[int] = [0] * total_blocks
        self._valid_pages: List[int] = [0] * total_blocks
        #: Next page offset to program (NAND requires in-order programming).
        self._write_pointer: List[int] = [0] * total_blocks
        #: Array-wide logical op-clock value of the last state change.
        self._last_modified_op: List[int] = [0] * total_blocks

        # Cached geometry scalars (block PPA ranges are contiguous).
        self._pages_per_block = config.pages_per_block
        self._pages_per_channel = config.pages_per_channel
        self._blocks_per_channel = config.blocks_per_channel
        self._dies_per_channel = config.dies_per_channel
        # Erase resets a block's slice wholesale; programming a run marks
        # its slice valid wholesale.
        self._free_states = bytes(self._pages_per_block)
        self._valid_states = bytes([_VALID]) * self._pages_per_block
        self._free_lpas = array("q", [_NO_LPA]) * self._pages_per_block
        # Zero-copy numpy view over the page-state bytes (the bytearray is
        # never resized, so the view stays valid for the array's lifetime).
        self._state_np = (
            np.frombuffer(self._state, dtype=np.uint8) if HAVE_NUMPY else None
        )

        self._scheduler = scheduler or NANDScheduler(
            config.channels, config.dies_per_channel
        )
        self.counters = FlashCounters()
        #: Logical clock: increments on every program/invalidate/erase.  It
        #: orders block modifications without depending on simulated time,
        #: so block ages are identical across replay engines.
        self._op_clock = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def geometry(self) -> FlashGeometry:
        return self._geometry

    @property
    def config(self) -> SSDConfig:
        return self._config

    def page_state(self, ppa: int) -> PageState:
        return _CODE_TO_STATE[self._state[ppa]]

    def is_free(self, ppa: int) -> bool:
        """Cheap FREE test for the hot read path (no enum construction)."""
        return self._state[ppa] == _FREE

    def lpa_of(self, ppa: int) -> Optional[int]:
        """Reverse mapping stored in the page (None if FREE/never written)."""
        lpa = self._lpa[ppa]
        return None if lpa == _NO_LPA else lpa

    def oob_of(self, ppa: int) -> Optional[OOBArea]:
        """The OOB contents of ``ppa`` (None if the page was never written).

        Pages programmed through the gamma-0 run path have no stored entry:
        their OOB is exactly ``OOBArea(lpa, [lpa])``, synthesized here from
        the LPA array (which, like the OOB, survives invalidation and is
        cleared by erase).
        """
        oob = self._oob.get(ppa)
        if oob is not None:
            return oob
        lpa = self._lpa[ppa]
        if lpa == _NO_LPA:
            return None
        return OOBArea(lpa=lpa, neighbor_lpas=[lpa])

    def erase_count(self, block: int) -> int:
        return self._erase_count[block]

    def block_age(self, block: int) -> int:
        """Logical age: array-wide operations since the block last changed.

        A block that has not been programmed, invalidated or erased for many
        operations holds cold data; cost-benefit GC weighs this age against
        the migration cost of the block's valid pages.
        """
        return self._op_clock - self._last_modified_op[block]

    def valid_page_count(self, block: int) -> int:
        return self._valid_pages[block]

    def write_pointer(self, block: int) -> int:
        """Next programmable page offset within ``block``."""
        return self._write_pointer[block]

    def block_is_full(self, block: int) -> bool:
        return self._write_pointer[block] >= self._pages_per_block

    def block_is_free(self, block: int) -> bool:
        """True when every page of the block is FREE (freshly erased)."""
        return self._write_pointer[block] == 0 and self._valid_pages[block] == 0

    def valid_ppas_of_block(self, block: int) -> List[int]:
        """All VALID PPAs in ``block`` (ascending order)."""
        start = block * self._pages_per_block
        stop = start + self._pages_per_block
        if self._state_np is not None:
            return (np.flatnonzero(self._state_np[start:stop] == _VALID) + start).tolist()
        block_states = self._state[start:stop]
        return [start + offset for offset, code in enumerate(block_states) if code == _VALID]

    # ------------------------------------------------------------------ #
    # Durable-state scan API (power-fail recovery)
    # ------------------------------------------------------------------ #
    def programmed_ppas_of_block(self, block: int) -> range:
        """All PPAs of ``block`` that have been programmed since its erase.

        Invalidation never frees a page, so the programmed region of a block
        is exactly the pages below its write pointer — an O(1) durable fact a
        recovery scan can enumerate without probing page states one by one.
        Both VALID and INVALID pages are included (their OOB reverse
        mappings survive until erase).
        """
        start = block * self._pages_per_block
        return range(start, start + self._write_pointer[block])

    def block_generations(self) -> List[Tuple[int, int]]:
        """Per-block ``(erase_count, write_pointer)`` snapshot.

        Both components are durable (they are properties of the flash
        substrate itself), and together they order a block's history: a
        changed erase count means the block was recycled since the snapshot,
        while a grown write pointer under the same erase count means pages
        were appended.  Checkpoint-based recovery diffs two snapshots to
        find exactly the pages programmed since the checkpoint.
        """
        return list(zip(self._erase_count, self._write_pointer))

    def read_oob_run(self, ppas: Iterable[int], now_us: float = 0.0) -> float:
        """Read the OOB of several pages of ONE block; returns last finish.

        The recovery scan's bulk primitive: like :meth:`read_oob`, each OOB
        read costs a full page read (the spare area cannot be sensed without
        activating the page), but the whole per-block burst is one scheduler
        reservation.  Programmed-but-INVALID pages are readable — their
        reverse mappings are exactly what a scan must see to distinguish
        stale copies.
        """
        run = list(ppas)
        if not run:
            return now_us
        state = self._state
        for ppa in run:
            if state[ppa] == _FREE:
                raise FlashError(f"OOB read of unwritten page ppa={ppa}")
        count = len(run)
        self.counters.oob_reads += count
        first = run[0]
        within = first % self._pages_per_channel
        return self._scheduler.reserve_run(
            first // self._pages_per_channel,
            now_us,
            self._config.read_latency_us,
            count,
            die=(within // self._pages_per_block) % self._dies_per_channel,
        )

    @property
    def scheduler(self) -> NANDScheduler:
        """The NAND scheduler arbitrating channel-bus and die occupancy."""
        return self._scheduler

    def channel_busy_until(self, channel: int) -> float:
        """Simulated time (us) until which ``channel``'s bus is occupied."""
        return self._scheduler.busy_until(channel)

    # ------------------------------------------------------------------ #
    # Time accounting
    # ------------------------------------------------------------------ #
    def occupy_channel(self, channel: int, now_us: float, duration_us: float) -> float:
        """Schedule an operation on ``channel`` and return its finish time.

        Exposed so the SSD model can charge channel time for logically
        modelled traffic (e.g. DFTL translation-page I/O) that does not go
        through a specific data page.
        """
        return self._scheduler.reserve(channel, now_us, duration_us)

    # ------------------------------------------------------------------ #
    # Flash operations
    # ------------------------------------------------------------------ #
    def read_page(self, ppa: int, now_us: float = 0.0) -> float:
        """Read a flash page; returns the completion time in microseconds.

        Reading a FREE page is allowed by hardware but flagged here because
        it always indicates an FTL bug in the simulator.
        """
        if self._state[ppa] == _FREE:
            raise FlashError(f"read of unwritten page ppa={ppa}")
        self.counters.page_reads += 1
        within = ppa % self._pages_per_channel
        return self._scheduler.reserve(
            ppa // self._pages_per_channel,
            now_us,
            self._config.read_latency_us,
            die=(within // self._pages_per_block) % self._dies_per_channel,
        )

    def read_page_run(self, ppas: List[int], now_us: float = 0.0) -> float:
        """Read several pages of ONE block back to back; returns last finish.

        Equivalent to sequential :meth:`read_page` calls at the same
        ``now_us`` (identical float timing chain).  All pages must lie in
        the same block — the caller's contract — so they share a channel
        and a die and the whole burst is one scheduler reservation.  This
        is the GC migration read path: a victim's valid pages in one call.
        """
        if not ppas:
            return now_us
        state = self._state
        for ppa in ppas:
            if state[ppa] == _FREE:
                raise FlashError(f"read of unwritten page ppa={ppa}")
        count = len(ppas)
        self.counters.page_reads += count
        first = ppas[0]
        within = first % self._pages_per_channel
        return self._scheduler.reserve_run(
            first // self._pages_per_channel,
            now_us,
            self._config.read_latency_us,
            count,
            die=(within // self._pages_per_block) % self._dies_per_channel,
        )

    def read_oob(self, ppa: int, now_us: float = 0.0) -> float:
        """Read only the OOB of a page (modelled with full page-read latency).

        Real devices cannot read the spare area without activating the page,
        so the latency equals a page read; the separate counter lets the
        benchmarks attribute the cost to misprediction handling.
        """
        if self._state[ppa] == _FREE:
            raise FlashError(f"OOB read of unwritten page ppa={ppa}")
        self.counters.oob_reads += 1
        return self._reserve_read(ppa, now_us)

    def _reserve_read(self, ppa: int, now_us: float) -> float:
        """Schedule a page-sized read on ``ppa``'s channel and die."""
        within = ppa % self._pages_per_channel
        return self._scheduler.reserve(
            ppa // self._pages_per_channel,
            now_us,
            self._config.read_latency_us,
            die=(within // self._pages_per_block) % self._dies_per_channel,
        )

    def program_page(
        self,
        ppa: int,
        lpa: int,
        oob: Optional[OOBArea] = None,
        now_us: float = 0.0,
    ) -> float:
        """Program a FREE page with the data of ``lpa``.

        NAND constraints enforced:

        * the page must be FREE;
        * pages within a block must be programmed in ascending order.
        """
        if self._state[ppa] != _FREE:
            raise FlashError(
                f"program of non-free page ppa={ppa} ({_CODE_TO_STATE[self._state[ppa]]})"
            )
        pages_per_block = self._pages_per_block
        block = ppa // pages_per_block
        offset = ppa - block * pages_per_block
        if offset != self._write_pointer[block]:
            raise FlashError(
                f"out-of-order program in block {block}: offset {offset}, "
                f"expected {self._write_pointer[block]}"
            )

        self._state[ppa] = _VALID
        self._lpa[ppa] = lpa
        self._oob[ppa] = oob if oob is not None else OOBArea(lpa=lpa)
        self._valid_pages[block] += 1
        self._write_pointer[block] = offset + 1
        self._op_clock += 1
        self._last_modified_op[block] = self._op_clock
        self.counters.page_writes += 1
        # Programs proceed inside a die; the channel bus is only occupied for
        # the data transfer share, so concurrent programs on other dies
        # overlap.  The die itself stays busy for the full program time.
        config = self._config
        occupancy = config.write_latency_us / self._dies_per_channel
        return self._scheduler.reserve(
            ppa // self._pages_per_channel,
            now_us,
            occupancy,
            die=(block % self._blocks_per_channel) % self._dies_per_channel,
            cell_us=config.write_latency_us,
        )

    def program_run(
        self,
        first_ppa: int,
        lpas: List[int],
        old_ppas: List[Optional[int]],
        gamma: int,
        batch_lpas: Dict[int, int],
        now_us: float = 0.0,
    ) -> float:
        """Program a run of consecutive FREE pages of one block in one call.

        Behaves exactly like the per-page sequence the write path used to
        issue — for each run page, ``program_page`` with its OOB neighbour
        window followed by ``invalidate_page`` of the LPA's old copy
        (``old_ppas[i]``, ``None`` when the LPA had no live page) — with the
        op-clock interleave, the OOB contents and the scheduler's float
        timing chain preserved bit for bit.  ``batch_lpas`` maps the run's
        own PPAs to their LPAs so neighbour windows can see pages of the
        same batch regardless of programming order.  Returns the bus
        completion time of the last program.
        """
        count = len(lpas)
        if count == 0:
            return now_us
        pages_per_block = self._pages_per_block
        block = first_ppa // pages_per_block
        offset = first_ppa - block * pages_per_block
        stop = first_ppa + count
        state = self._state
        if stop > (block + 1) * pages_per_block:
            raise FlashError(
                f"program run of {count} pages at ppa={first_ppa} crosses "
                f"the boundary of block {block}"
            )
        if offset != self._write_pointer[block]:
            raise FlashError(
                f"out-of-order program in block {block}: offset {offset}, "
                f"expected {self._write_pointer[block]}"
            )
        for ppa in range(first_ppa, stop):
            if state[ppa] != _FREE:
                raise FlashError(
                    f"program of non-free page ppa={ppa} ({_CODE_TO_STATE[state[ppa]]})"
                )

        state[first_ppa:stop] = self._valid_states[:count]
        self._lpa[first_ppa:stop] = array("q", lpas)
        self._valid_pages[block] += count
        self._write_pointer[block] = offset + count
        self.counters.page_writes += count

        valid_pages = self._valid_pages
        last_modified = self._last_modified_op
        op = self._op_clock
        if gamma:
            oob_store = self._oob
            lpa_arr = self._lpa
            total_pages = self._geometry.total_pages
            batch_lpa = batch_lpas.get
            for index in range(count):
                ppa = first_ppa + index
                lpa = lpas[index]
                # The ±gamma neighbour window (see the write path's OOB
                # contract): pages of the current batch take precedence
                # (batch_lpas values are host LPAs, never None), then
                # whatever flash holds.
                neighbors: List[Optional[int]] = []
                append = neighbors.append
                for neighbor_ppa in range(ppa - gamma, ppa + gamma + 1):
                    if neighbor_ppa == ppa:
                        append(lpa)
                        continue
                    value = batch_lpa(neighbor_ppa)
                    if value is None and 0 <= neighbor_ppa < total_pages:
                        stored = lpa_arr[neighbor_ppa]
                        if stored != _NO_LPA:
                            value = stored
                    append(value)
                oob_store[ppa] = OOBArea(lpa=lpa, neighbor_lpas=neighbors)
                op += 1
                last_modified[block] = op
                old_ppa = old_ppas[index]
                if old_ppa is not None:
                    if state[old_ppa] != _VALID:
                        raise FlashError(
                            f"invalidate of non-valid page ppa={old_ppa}"
                        )
                    state[old_ppa] = _INVALID
                    old_block = old_ppa // pages_per_block
                    valid_pages[old_block] -= 1
                    op += 1
                    last_modified[old_block] = op
        else:
            # gamma == 0: the OOB degenerates to ``OOBArea(lpa, [lpa])``,
            # which :meth:`oob_of` synthesizes on demand from the LPA array
            # (it persists until erase exactly like the stored OOB would),
            # so the hot loop skips the per-page allocation and dict store.
            for index in range(count):
                op += 1
                last_modified[block] = op
                old_ppa = old_ppas[index]
                if old_ppa is not None:
                    if state[old_ppa] != _VALID:
                        raise FlashError(
                            f"invalidate of non-valid page ppa={old_ppa}"
                        )
                    state[old_ppa] = _INVALID
                    old_block = old_ppa // pages_per_block
                    valid_pages[old_block] -= 1
                    op += 1
                    last_modified[old_block] = op
        self._op_clock = op

        config = self._config
        occupancy = config.write_latency_us / self._dies_per_channel
        return self._scheduler.reserve_run(
            first_ppa // self._pages_per_channel,
            now_us,
            occupancy,
            count,
            die=(block % self._blocks_per_channel) % self._dies_per_channel,
            cell_us=config.write_latency_us,
        )

    def invalidate_page(self, ppa: int) -> None:
        """Mark a VALID page as INVALID (its LPA was overwritten or trimmed)."""
        if self._state[ppa] != _VALID:
            raise FlashError(f"invalidate of non-valid page ppa={ppa}")
        self._state[ppa] = _INVALID
        block = ppa // self._pages_per_block
        self._valid_pages[block] -= 1
        self._op_clock += 1
        self._last_modified_op[block] = self._op_clock

    def erase_block(self, block: int, now_us: float = 0.0) -> float:
        """Erase a whole block; all its pages become FREE again."""
        remaining_valid = self._valid_pages[block]
        if remaining_valid:
            raise FlashError(
                f"erase of block {block} with {remaining_valid} valid pages; "
                "GC must migrate valid pages first"
            )
        start = block * self._pages_per_block
        stop = start + self._pages_per_block
        self._state[start:stop] = self._free_states
        self._lpa[start:stop] = self._free_lpas
        oob = self._oob
        if oob:
            for ppa in range(start, stop):
                oob.pop(ppa, None)
        self._erase_count[block] += 1
        self._write_pointer[block] = 0
        self._op_clock += 1
        self._last_modified_op[block] = self._op_clock
        self.counters.block_erases += 1
        config = self._config
        occupancy = config.erase_latency_us / self._dies_per_channel
        return self._scheduler.reserve(
            block // self._blocks_per_channel,
            now_us,
            occupancy,
            die=(block % self._blocks_per_channel) % self._dies_per_channel,
            cell_us=config.erase_latency_us,
        )

    # ------------------------------------------------------------------ #
    # Bulk helpers
    # ------------------------------------------------------------------ #
    def erase_counts(self) -> List[int]:
        """Erase counter of every block (for wear-leveling analysis)."""
        return list(self._erase_count)

    def blocks_by_valid_pages(self, candidates: Iterable[int]) -> List[int]:
        """Sort candidate blocks by ascending valid-page count (greedy GC)."""
        return sorted(candidates, key=self._valid_pages.__getitem__)
