"""Figure 23: LPA lookup overhead of the learned mapping table.

(a) how many levels of the log-structured table a lookup visits (the paper
reports ~90% of lookups resolved at the topmost level and 99% within 10);
(b) the lookup cost relative to the flash access latency (well under 1%).
"""

from __future__ import annotations

from repro.analysis.report import print_report, render_series, render_table
from repro.config import SSDConfig
from repro.experiments.performance import lookup_level_cdf

from benchmarks.conftest import perf_setup, run_once

WORKLOADS = ("MSR-hm", "MSR-prxy", "FIU-mail", "TPCC")

def test_fig23a_levels_per_lookup(benchmark):
    setup = perf_setup()
    table = run_once(benchmark, lookup_level_cdf, WORKLOADS, setup)

    print_report(render_series(
        "Figure 23(a): levels searched per LPA lookup",
        {wl: {k: round(v, 2) for k, v in row.items()} for wl, row in table.items()},
    ))

    for workload, row in table.items():
        if not row:
            continue
        assert row["mean"] < 6, f"{workload}: mean levels {row['mean']} too high"
        assert row["p99"] <= 25

def test_fig23b_lookup_cost_vs_flash_latency(benchmark):
    """Host-side proxy of Figure 23(b): lookup time as % of a flash read."""
    from repro.config import LeaFTLConfig
    from repro.core.mapping_table import LogStructuredMappingTable

    table = LogStructuredMappingTable(LeaFTLConfig(gamma=4))
    import random

    rng = random.Random(1)
    ppa = 0
    for _ in range(200):
        start = rng.randrange(0, 100_000)
        lpas = sorted(set(start + rng.randrange(0, 200) for _ in range(64)))
        table.update([(lpa, ppa + i) for i, lpa in enumerate(lpas)])
        ppa += len(lpas)
    lpas_to_probe = [rng.randrange(0, 100_000) for _ in range(5000)]

    def probe():
        for lpa in lpas_to_probe:
            table.lookup(lpa)

    benchmark(probe)
    per_lookup_us = benchmark.stats.stats.mean / len(lpas_to_probe) * 1e6
    flash_read_us = SSDConfig().read_latency_us
    overhead_pct = 100.0 * per_lookup_us / flash_read_us
    print_report(render_table(
        ["metric", "value"],
        [["lookup latency (us)", round(per_lookup_us, 3)],
         ["flash read latency (us)", flash_read_us],
         ["lookup overhead (% of flash read)", round(overhead_pct, 2)]],
        title="Figure 23(b): LPA lookup overhead (host CPU proxy)"))
    assert per_lookup_us < flash_read_us
