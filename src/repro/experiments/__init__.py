"""Experiment harness: per-figure experiment drivers built on the SSD model."""

from repro.experiments.common import (
    ALL_WORKLOADS,
    ExperimentResult,
    ExperimentSetup,
    REAL_SSD_WORKLOADS,
    SCHEMES,
    SIMULATOR_WORKLOADS,
    bench_scale,
    build_ftl,
    build_ssd,
    run_experiment,
    run_schemes,
    warmup_ssd,
    workload_by_name,
    workload_for_setup,
)

__all__ = [
    "ALL_WORKLOADS",
    "ExperimentResult",
    "ExperimentSetup",
    "REAL_SSD_WORKLOADS",
    "SCHEMES",
    "SIMULATOR_WORKLOADS",
    "bench_scale",
    "build_ftl",
    "build_ssd",
    "run_experiment",
    "run_schemes",
    "warmup_ssd",
    "workload_by_name",
    "workload_for_setup",
]
