"""Tests for the learned segment encoding and prediction semantics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.segment import (
    GROUP_SIZE,
    SEGMENT_BYTES,
    Segment,
    group_base_of,
    group_id_of,
    quantize_slope,
    slope_is_accurate,
)


class TestSlopeQuantization:
    def test_accurate_slope_never_rounds_up(self):
        for stride in range(1, 200):
            slope = quantize_slope(1.0 / stride, accurate=True)
            assert slope <= 1.0 / stride

    def test_type_bit_encodes_segment_kind(self):
        assert slope_is_accurate(quantize_slope(0.37, accurate=True))
        assert not slope_is_accurate(quantize_slope(0.37, accurate=False))

    def test_zero_slope(self):
        assert quantize_slope(0.0, accurate=True) == 0.0
        assert not slope_is_accurate(quantize_slope(0.0, accurate=False))

    def test_negative_slope_rejected(self):
        with pytest.raises(ValueError):
            quantize_slope(-0.1, accurate=True)

    @given(st.floats(min_value=1e-3, max_value=1.0))
    @settings(max_examples=200)
    def test_quantization_error_is_small(self, slope):
        quantized = quantize_slope(slope, accurate=True)
        assert quantized == pytest.approx(slope, rel=2e-3, abs=1e-4)


class TestSegmentPrediction:
    def test_single_point_segment(self):
        segment = Segment.single_point(group_base=0, lpa=42, ppa=777)
        assert segment.predict(42) == 777
        assert segment.is_single_point
        assert segment.accurate
        assert segment.length == 0

    def test_sequential_accurate_segment(self):
        # LPAs 0..3 -> PPAs 32..35 (Figure 6, accurate example).
        segment = Segment.from_anchor(
            group_base=0, start_lpa=0, length=3, raw_slope=1.0,
            anchor_lpa=0, anchor_ppa=32, accurate=True,
        )
        for lpa, expected in zip(range(4), range(32, 36)):
            assert segment.predict(lpa) == expected

    def test_strided_accurate_segment(self):
        # LPAs 0, 2, 4, 6 -> PPAs 100..103 (slope 0.5).
        segment = Segment.from_anchor(
            group_base=0, start_lpa=0, length=6, raw_slope=0.5,
            anchor_lpa=0, anchor_ppa=100, accurate=True,
        )
        assert [segment.predict(lpa) for lpa in (0, 2, 4, 6)] == [100, 101, 102, 103]
        assert segment.stride == 2
        assert segment.has_lpa_accurate(4)
        assert not segment.has_lpa_accurate(3)

    def test_approximate_segment_error_bounded(self):
        # Figure 6 approximate example: LPAs [0, 1, 4, 5] -> PPAs [64..67].
        segment = Segment.from_anchor(
            group_base=0, start_lpa=0, length=5, raw_slope=0.56,
            anchor_lpa=0, anchor_ppa=64, accurate=False,
        )
        truths = {0: 64, 1: 65, 4: 66, 5: 67}
        for lpa, ppa in truths.items():
            assert abs(segment.predict(lpa) - ppa) <= 1

    def test_covered_lpas_accurate_enumeration(self):
        segment = Segment.from_anchor(
            group_base=256, start_lpa=260, length=12, raw_slope=0.25,
            anchor_lpa=260, anchor_ppa=10, accurate=True,
        )
        assert list(segment.covered_lpas_accurate()) == [260, 264, 268, 272]

    def test_group_boundary_enforced(self):
        with pytest.raises(ValueError):
            Segment(group_base=0, start_lpa=250, length=10, slope=1.0, intercept=0.0, accurate=True)

    def test_covers_and_overlaps(self):
        a = Segment(group_base=0, start_lpa=10, length=20, slope=1.0, intercept=0.0, accurate=True)
        b = Segment(group_base=0, start_lpa=25, length=10, slope=1.0, intercept=0.0, accurate=True)
        c = Segment(group_base=0, start_lpa=40, length=5, slope=1.0, intercept=0.0, accurate=True)
        assert a.covers(10) and a.covers(30) and not a.covers(31)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_removable_marking(self):
        segment = Segment.single_point(0, 5, 9)
        segment.mark_removable()
        assert segment.is_removable
        assert not segment.covers(5)


class TestSegmentEncoding:
    def test_eight_byte_encoding(self):
        segment = Segment.from_anchor(
            group_base=512, start_lpa=520, length=100, raw_slope=0.5,
            anchor_lpa=520, anchor_ppa=4000, accurate=True,
        )
        data = segment.to_bytes()
        assert len(data) == SEGMENT_BYTES == 8

    def test_round_trip_preserves_fields(self):
        segment = Segment.from_anchor(
            group_base=1024, start_lpa=1030, length=60, raw_slope=0.25,
            anchor_lpa=1030, anchor_ppa=123456, accurate=False,
        )
        decoded = Segment.from_bytes(segment.to_bytes(), group_base=1024)
        assert decoded.start_lpa == segment.start_lpa
        assert decoded.length == segment.length
        assert decoded.accurate == segment.accurate
        assert decoded.slope == pytest.approx(segment.slope)
        assert decoded.intercept == pytest.approx(segment.intercept, abs=1.0)

    def test_round_trip_single_point_prediction(self):
        segment = Segment.single_point(group_base=0, lpa=17, ppa=999)
        decoded = Segment.from_bytes(segment.to_bytes(), group_base=0)
        assert decoded.predict(17) == 999

    def test_removable_segment_cannot_be_encoded(self):
        segment = Segment.single_point(0, 1, 2)
        segment.mark_removable()
        with pytest.raises(ValueError):
            segment.to_bytes()

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            Segment.from_bytes(b"\x00" * 7, group_base=0)


class TestGroupHelpers:
    @given(st.integers(min_value=0, max_value=10**9))
    def test_group_base_and_id_consistent(self, lpa):
        base = group_base_of(lpa)
        gid = group_id_of(lpa)
        assert base == gid * GROUP_SIZE
        assert base <= lpa < base + GROUP_SIZE
