# Fixture for SIM006 (monotone-stats-counters).  See sim001 fixture for the
# marker convention.  NOT imported — parsed by simlint only.
from dataclasses import dataclass


@dataclass
class ReplayStats:
    requests: int = 0
    pages: int = 0
    wait_us: float = 0.0


class DeviceStats:
    def __init__(self) -> None:
        self.erases = 0
        self.migrations = 0

    def reset(self) -> None:
        # Raw reassignment inside reset() is the sanctioned exception.
        self.erases = 0
        self.migrations = 0

    def reset_measurement(self) -> None:
        self.erases = 0  # reset* prefixed methods are writers too

    def record_erase(self) -> None:
        self.erases += 1  # += increments are the contract

    def bad_overwrite(self) -> None:
        self.erases = 5  # expect: SIM006

    def bad_decrement(self) -> None:
        self.migrations -= 1  # expect: SIM006


def bad_external_write(stats: ReplayStats, total: int) -> None:
    stats.requests = total  # expect: SIM006


def bad_multiply(stats: ReplayStats) -> None:
    stats.pages *= 2  # expect: SIM006


def suppressed(stats: ReplayStats, total: int) -> None:
    stats.requests = total  # simlint: disable=SIM006


def ok_increment(stats: ReplayStats, pages: int) -> None:
    stats.requests += 1
    stats.pages += pages
    stats.wait_us += 1.5


def ok_unrelated_attribute(device) -> None:
    # `stats` itself is not a counter field; swapping the object is fine.
    device.stats = ReplayStats()
