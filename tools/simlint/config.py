"""simlint configuration: path scoping per rule, loaded from ``simlint.toml``.

The config file lives at the repository root and scopes each rule to the
paths where its contract applies (SIM001 to the device model, SIM006 to the
stats modules, ...).  Files are matched by posix-style path prefix relative
to the config root, so ``"src/repro/sim"`` covers the whole package and
``"src/repro/flash/allocator.py"`` exactly one file.

Python 3.11+ parses the file with :mod:`tomllib`; on 3.10 a minimal
built-in parser covers the subset simlint uses (``[section]`` tables,
string lists, strings, booleans) — no third-party TOML dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

try:  # Python 3.11+
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - exercised on py3.10 only
    tomllib = None  # type: ignore[assignment]

from tools.simlint.engine import RULES, Rule

#: Default name of the config file, searched upward from the lint roots.
CONFIG_NAME = "simlint.toml"

#: Directories never linted (match anywhere in the path).
_ALWAYS_EXCLUDED = (".git", "__pycache__")


def _parse_minimal_toml(text: str) -> Dict[str, Dict[str, object]]:
    """Parse the TOML subset simlint.toml uses (py3.10 fallback).

    Supports ``[dotted.section]`` headers, and ``key = value`` where value
    is a string, boolean, integer, or a (possibly multi-line) list of
    strings.  Comments and blank lines are skipped.
    """
    tables: Dict[str, Dict[str, object]] = {}
    current: Dict[str, object] = tables.setdefault("", {})
    pending_key: Optional[str] = None
    pending_items: List[str] = []

    def parse_scalar(token: str) -> object:
        token = token.strip()
        if token.startswith(('"', "'")):
            return token[1:-1]
        if token in ("true", "false"):
            return token == "true"
        return int(token)

    def parse_list_items(body: str) -> List[str]:
        items: List[str] = []
        for piece in body.split(","):
            piece = piece.strip()
            if piece:
                items.append(str(parse_scalar(piece)))
        return items

    for raw in text.splitlines():
        line = raw.split("#", 1)[0].rstrip() if not raw.lstrip().startswith("#") else ""
        if not line.strip():
            continue
        stripped = line.strip()
        if pending_key is not None:
            closing = stripped.endswith("]")
            body = stripped[:-1] if closing else stripped
            pending_items.extend(parse_list_items(body))
            if closing:
                current[pending_key] = pending_items
                pending_key, pending_items = None, []
            continue
        if stripped.startswith("[") and stripped.endswith("]"):
            name = stripped[1:-1].strip().strip('"')
            current = tables.setdefault(name, {})
            continue
        key, _, value = stripped.partition("=")
        key, value = key.strip().strip('"'), value.strip()
        if value.startswith("["):
            body = value[1:]
            if body.rstrip().endswith("]"):
                current[key] = parse_list_items(body.rstrip()[:-1])
            else:
                pending_key, pending_items = key, parse_list_items(body)
        else:
            current[key] = parse_scalar(value)
    return tables


def _load_toml(path: Path) -> Dict[str, object]:
    if tomllib is not None:
        with path.open("rb") as handle:
            return tomllib.load(handle)
    # Fallback: flatten the minimal parser's dotted sections into the same
    # nested-dict shape tomllib produces.
    flat = _parse_minimal_toml(path.read_text(encoding="utf-8"))
    nested: Dict[str, object] = dict(flat.get("", {}))
    for section, values in flat.items():
        if not section:
            continue
        cursor = nested
        for part in section.split("."):
            cursor = cursor.setdefault(part, {})  # type: ignore[assignment]
        cursor.update(values)  # type: ignore[union-attr]
    return nested


@dataclass
class RuleConfig:
    """Per-rule overrides from ``[rules.SIMxxx]`` tables."""

    enabled: bool = True
    paths: Optional[Tuple[str, ...]] = None  # None = the rule's defaults


@dataclass
class SimlintConfig:
    """Resolved configuration: lint roots, exclusions, per-rule scoping."""

    root: Path = field(default_factory=Path.cwd)
    include: Tuple[str, ...] = ("src", "tools")
    exclude: Tuple[str, ...] = ()
    rules: Dict[str, RuleConfig] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "SimlintConfig":
        data = _load_toml(path)
        simlint = data.get("simlint", {})
        if not isinstance(simlint, dict):
            raise ValueError(f"{path}: [simlint] must be a table")
        rules: Dict[str, RuleConfig] = {}
        raw_rules = data.get("rules", {})
        if isinstance(raw_rules, dict):
            for code, overrides in raw_rules.items():
                if not isinstance(overrides, dict):
                    raise ValueError(f"{path}: [rules.{code}] must be a table")
                if code not in RULES:
                    raise ValueError(f"{path}: unknown rule {code!r}")
                paths = overrides.get("paths")
                rules[code] = RuleConfig(
                    enabled=bool(overrides.get("enabled", True)),
                    paths=tuple(paths) if paths is not None else None,
                )
        return cls(
            root=path.parent.resolve(),
            include=tuple(simlint.get("include", ("src", "tools"))),
            exclude=tuple(simlint.get("exclude", ())),
            rules=rules,
        )

    @classmethod
    def discover(cls, start: Path) -> "SimlintConfig":
        """Find ``simlint.toml`` at ``start`` or the nearest ancestor."""
        probe = start.resolve()
        if probe.is_file():
            probe = probe.parent
        for candidate in (probe, *probe.parents):
            config_path = candidate / CONFIG_NAME
            if config_path.is_file():
                return cls.load(config_path)
        return cls(root=probe)

    # ------------------------------------------------------------------ #
    # Scoping
    # ------------------------------------------------------------------ #
    def relpath(self, path: Path) -> str:
        resolved = path.resolve()
        try:
            return resolved.relative_to(self.root).as_posix()
        except ValueError:
            return resolved.as_posix()

    def is_excluded(self, path: Path) -> bool:
        rel = self.relpath(path)
        parts = rel.split("/")
        if any(part in _ALWAYS_EXCLUDED for part in parts):
            return True
        return any(_prefix_match(rel, prefix) for prefix in self.exclude)

    def rule_applies(self, rule: Rule, path: Path) -> bool:
        override = self.rules.get(rule.code)
        if override is not None and not override.enabled:
            return False
        scopes: Sequence[str]
        if override is not None and override.paths is not None:
            scopes = override.paths
        else:
            scopes = rule.default_paths
        rel = self.relpath(path)
        return any(_prefix_match(rel, scope) for scope in scopes)

    def active_rules(self) -> List[Rule]:
        """Instantiate every enabled rule, in code order."""
        active: List[Rule] = []
        for code in sorted(RULES):
            override = self.rules.get(code)
            if override is not None and not override.enabled:
                continue
            active.append(RULES[code]())
        return active


def _prefix_match(rel: str, scope: str) -> bool:
    """``scope`` matches ``rel`` exactly, or as a directory prefix."""
    if scope in ("", "."):
        return True
    scope = scope.rstrip("/")
    return rel == scope or rel.startswith(scope + "/")
