"""Tests for first-class multi-page commands and open-loop replay.

Covers the three layers of the refactor:

* ``FTL.translate_range`` — batched accounting (one lookup per mapping
  structure resolution, one translation-page fetch per chunk) and, above
  all, *equivalence*: the batched results must match per-page ``translate``
  even when newer segments shadow older ones mid-run;
* ``SimulatedSSD.submit`` — multi-page reads are striped across channels
  and complete faster than the serial per-page baseline, while single-page
  replay stays bit-exact with the pre-batching primitives;
* open-loop replay — requests admitted at (scaled) trace timestamps, with
  latency measured against arrival times.
"""

from __future__ import annotations

import random

import pytest

from repro.config import DFTLConfig, LeaFTLConfig
from repro.core.leaftl import LeaFTL
from repro.ftl.base import FTL, TranslationResult
from repro.ftl.dftl import DFTL
from repro.ftl.pagemap import PageLevelFTL
from repro.ftl.sftl import SFTL
from repro.sim.events import EventLoop
from repro.sim.frontend import OpenLoopFrontend
from repro.ssd.ssd import SSDOptions
from repro.workloads.trace import IORequest, Trace
from tests.conftest import make_ssd


# --------------------------------------------------------------------------- #
# translate_range: batched accounting and per-page equivalence
# --------------------------------------------------------------------------- #
class _MiniFTL(FTL):
    """Bare-bones FTL relying on the base-class translate_range fallback."""

    def __init__(self):
        super().__init__()
        self._table = {}

    def translate(self, lpa):
        self.stats.lookups += 1
        return TranslationResult(ppa=self._table.get(lpa))

    def update_batch(self, mappings):
        self._table.update(mappings)

    def exists(self, lpa):
        return lpa in self._table

    def resident_bytes(self):
        return 8 * len(self._table)

    def full_mapping_bytes(self):
        return 8 * len(self._table)


class TestTranslateRangeBase:
    def test_default_fallback_loops_translate(self):
        ftl = _MiniFTL()
        ftl.update_batch([(lpa, 10 + lpa) for lpa in range(4)])
        results = ftl.translate_range(0, 4)
        assert [r.ppa for r in results] == [10, 11, 12, 13]
        assert ftl.stats.lookups == 4  # fallback charges per page

    def test_rejects_non_positive_npages(self):
        ftl = _MiniFTL()
        with pytest.raises(ValueError):
            ftl.translate_range(0, 0)


class TestLeaFTLTranslateRange:
    def _learned_ftl(self, gamma=0):
        ftl = LeaFTL(LeaFTLConfig(gamma=gamma))
        ftl.update_batch([(lpa, 1000 + lpa) for lpa in range(64)])
        return ftl

    def test_contiguous_run_charges_one_lookup(self):
        """Acceptance: an 8-page run on one segment grows lookups by 1."""
        ftl = self._learned_ftl()
        before = ftl.stats.lookups
        results = ftl.translate_range(8, 8)
        assert ftl.stats.lookups - before == 1
        assert [r.ppa for r in results] == [1008 + i for i in range(8)]

    def test_matches_per_page_translate(self):
        ftl = self._learned_ftl(gamma=4)
        batched = ftl.translate_range(0, 64)
        for offset, result in enumerate(batched):
            assert result.ppa == ftl.translate(offset).ppa

    def test_newer_segment_shadows_older_one_mid_run(self):
        """A page overwritten after the initial run must resolve through the
        newer (higher-level) segment, not the stale run segment."""
        ftl = self._learned_ftl()
        ftl.update_batch([(20, 5000)])  # single-point overwrite inside the run
        results = ftl.translate_range(16, 8)
        assert results[4].ppa == 5000
        assert results[3].ppa == 1019
        assert results[5].ppa == 1021

    def test_segment_change_mid_run_charges_per_resolution(self):
        ftl = self._learned_ftl()
        ftl.update_batch([(20, 5000)])
        before = ftl.stats.lookups
        ftl.translate_range(16, 8)
        # Three resolutions: old-segment run, the overwrite, old-segment run.
        assert ftl.stats.lookups - before == 3

    def test_miss_pages_return_none(self):
        ftl = self._learned_ftl()
        results = ftl.translate_range(60, 8)  # 60-63 mapped, 64-67 not
        assert [r.ppa is not None for r in results] == [True] * 4 + [False] * 4

    def test_range_spanning_groups(self):
        ftl = LeaFTL(LeaFTLConfig(gamma=0))
        ftl.update_batch([(lpa, 2000 + lpa) for lpa in range(250, 262)])
        results = ftl.translate_range(250, 12)  # crosses the 256 boundary
        assert [r.ppa for r in results] == [2250 + i for i in range(12)]

    def test_random_history_equivalence(self):
        """Batched and per-page translation agree after a messy history."""
        rng = random.Random(42)
        ftl = LeaFTL(LeaFTLConfig(gamma=4))
        ppa = 0
        for _ in range(60):
            start = rng.randrange(0, 900)
            length = rng.randint(1, 40)
            ftl.update_batch([(lpa, ppa + i) for i, lpa in enumerate(range(start, start + length))])
            ppa += length
        batched = ftl.translate_range(0, 960)
        for lpa, result in enumerate(batched):
            assert result.ppa == ftl.translate(lpa).ppa, f"mismatch at LPA {lpa}"


class TestDFTLTranslateRange:
    def _cold_dftl(self, entries=16, per_tp=4):
        ftl = DFTL(
            mapping_budget_bytes=None,
            config=DFTLConfig(entries_per_translation_page=per_tp),
        )
        for lpa in range(entries):
            ftl._flash_table[lpa] = 100 + lpa  # flash-resident, CMT cold
        return ftl

    def test_one_fetch_serves_all_entries_of_a_translation_page(self):
        ftl = self._cold_dftl()
        before = ftl.stats.translation_page_reads
        results = ftl.translate_range(0, 4)  # all on translation page 0
        assert [r.ppa for r in results] == [100, 101, 102, 103]
        assert ftl.stats.translation_page_reads - before == 1

    def test_lookups_charged_per_translation_page_chunk(self):
        ftl = self._cold_dftl()
        before = ftl.stats.lookups
        ftl.translate_range(0, 8)  # two translation pages
        assert ftl.stats.lookups - before == 2

    def test_matches_per_page_translate(self):
        ftl = self._cold_dftl()
        batched = [r.ppa for r in ftl.translate_range(0, 16)]
        fresh = self._cold_dftl()
        assert batched == [fresh.translate(lpa).ppa for lpa in range(16)]

    def test_unmapped_entries_do_not_fetch(self):
        ftl = self._cold_dftl(entries=2)
        before = ftl.stats.translation_page_reads
        results = ftl.translate_range(4, 4)  # translation page 1: nothing mapped
        assert all(r.ppa is None for r in results)
        assert ftl.stats.translation_page_reads == before


class TestSFTLTranslateRange:
    def test_one_admission_serves_the_chunk(self):
        ftl = SFTL(mapping_budget_bytes=None)
        ftl.update_batch([(lpa, 300 + lpa) for lpa in range(32)])
        before = ftl.stats.lookups
        results = ftl.translate_range(0, 16)
        assert [r.ppa for r in results] == [300 + i for i in range(16)]
        assert ftl.stats.lookups - before == 1  # one condensed-page chunk

    def test_matches_per_page_translate(self):
        ftl = SFTL(mapping_budget_bytes=None)
        ftl.update_batch([(lpa, 300 + 2 * lpa) for lpa in range(0, 40, 2)])
        batched = [r.ppa for r in ftl.translate_range(0, 40)]
        assert batched == [ftl.translate(lpa).ppa for lpa in range(40)]


class TestPageMapTranslateRange:
    def test_single_probe_for_the_run(self):
        ftl = PageLevelFTL()
        ftl.update_batch([(lpa, 40 + lpa) for lpa in range(8)])
        before = ftl.stats.lookups
        results = ftl.translate_range(2, 4)
        assert [r.ppa for r in results] == [42, 43, 44, 45]
        assert ftl.stats.lookups - before == 1


# --------------------------------------------------------------------------- #
# SimulatedSSD.submit: striping, per-page stats, clipping, regression anchor
# --------------------------------------------------------------------------- #
def _fill_blocks(ssd, pages):
    """Fill ``pages`` LPAs via whole-block writes (one block per flush)."""
    per_block = ssd.config.pages_per_block
    for lpa in range(0, pages, per_block):
        ssd.process("W", lpa, per_block)
    ssd.flush()


def _drop_dram_copies(ssd, pages):
    for lpa in range(pages):
        ssd.cache.invalidate(lpa)


class TestMultiPageSubmit:
    def test_striped_read_beats_serial_per_page_baseline(self):
        """Acceptance: a read spanning k channels completes faster than the
        same span issued as serial single-page commands."""
        span = 256  # 4 blocks of 64 pages -> 4 channels in the tiny config

        def run(requests):
            ssd = make_ssd(options=SSDOptions(engine="events"))
            _fill_blocks(ssd, 2048)
            _drop_dram_copies(ssd, span)
            start = ssd.now_us
            ssd.run(requests, drain=False)
            return ssd, ssd.now_us - start

        ssd_batched, batched = run([("R", 0, span)])
        ssd_serial, serial = run([("R", lpa, 1) for lpa in range(span)])
        # Same flash work either way...
        assert (
            ssd_batched.stats.flash_reads_for_host
            == ssd_serial.stats.flash_reads_for_host
        )
        # ...but the batched command overlaps channels.
        assert batched < serial * 0.75
        # The span really striped over more than one channel.
        busy = [
            ssd_batched.flash.channel_busy_until(c)
            for c in range(ssd_batched.config.channels)
        ]
        assert sum(1 for b in busy if b > 0.0) > 1

    def test_multi_page_read_records_per_page_latencies(self):
        ssd = make_ssd()
        _fill_blocks(ssd, 512)
        _drop_dram_copies(ssd, 64)
        before = ssd.stats.read_latency.count
        ssd.process("R", 0, 8)
        assert ssd.stats.read_latency.count - before == 8
        assert ssd.stats.host_read_pages == 8

    def test_leaftl_multi_page_read_resolves_in_one_lookup(self):
        """Acceptance, end to end: the 8-page flash read grows the FTL
        lookup counter by 1, not 8."""
        ssd = make_ssd()
        _fill_blocks(ssd, 512)
        _drop_dram_copies(ssd, 64)
        before = ssd.ftl.stats.lookups
        ssd.process("R", 8, 8)
        assert ssd.ftl.stats.lookups - before == 1

    def test_single_page_replay_is_bit_exact_with_direct_primitives(self):
        """Acceptance: queue_depth=1 single-page replay through the reworked
        submit() reproduces the pre-refactor read()/write() path exactly."""
        rng = random.Random(13)
        ops = []
        for _ in range(3000):
            lpa = rng.randrange(10_000)
            ops.append(("W" if rng.random() < 0.5 else "R", lpa, 1))

        replayed = make_ssd()
        replayed.run(ops)

        direct = make_ssd()
        for op, lpa, _ in ops:
            if op == "W":
                direct.write(lpa)
            else:
                direct.read(lpa)
        direct.flush()
        direct.stats.simulated_time_us = direct._horizon_us()

        def signature(ssd):
            stats = ssd.stats
            return (
                stats.read_latency.count,
                stats.read_latency.total_us,
                stats.read_latency.max_us,
                stats.write_latency.count,
                stats.write_latency.total_us,
                stats.data_page_writes,
                stats.gc_page_reads,
                stats.gc_page_writes,
                stats.buffer_flushes,
                stats.buffer_hits,
                stats.cache_hits,
                stats.simulated_time_us,
                ssd.flash.counters.page_reads,
                ssd.flash.counters.page_writes,
                ssd.ftl.stats.lookups,
            )

        assert signature(replayed) == signature(direct)

    def test_clipped_pages_are_counted(self):
        ssd = make_ssd()
        logical = ssd.config.logical_pages
        ssd.process("W", logical - 2, 8)        # 6 pages run past the end
        assert ssd.stats.clipped_pages == 6
        assert ssd.stats.host_write_pages == 2  # the in-range pages served
        ssd.process("R", logical + 10, 4)       # fully out of range
        assert ssd.stats.clipped_pages == 10
        assert ssd.stats.host_read_pages == 0
        assert ssd.describe()["clipped_pages"] == 10.0

    def test_negative_lpa_rejected_on_every_sub_path(self):
        ssd = make_ssd()
        for op, npages in (("R", 1), ("R", 8), ("W", 1), ("W", 8)):
            with pytest.raises(ValueError):
                ssd.submit(op, -4, npages)

    def test_multi_page_write_still_streams_through_the_buffer(self):
        ssd = make_ssd()
        ssd.process("W", 0, 100)
        assert ssd.stats.host_write_pages == 100
        ssd.flush()
        assert ssd.stats.data_page_writes == 100


# --------------------------------------------------------------------------- #
# Open-loop replay
# --------------------------------------------------------------------------- #
class _RecordingDevice:
    """Fixed-latency device that records issue times."""

    def __init__(self, latency_us=10.0):
        self.latency_us = latency_us
        self.issues = []

    def submit(self, op, lpa, npages, at_us):
        self.issues.append((at_us, op, lpa))
        return at_us + self.latency_us


class TestOpenLoopFrontend:
    def _requests(self, interarrival):
        return [
            IORequest("R", lpa, 1, timestamp_us=1000.0 + lpa * interarrival)
            for lpa in range(4)
        ]

    def test_requests_issued_at_relative_timestamps(self):
        device = _RecordingDevice()
        frontend = OpenLoopFrontend(device, EventLoop())
        stats = frontend.run(self._requests(50.0))
        assert [t for t, _, _ in device.issues] == [0.0, 50.0, 100.0, 150.0]
        assert stats.submitted == stats.completed == 4
        assert stats.max_outstanding == 1  # arrivals slower than service

    def test_time_scale_compresses_arrivals(self):
        device = _RecordingDevice()
        frontend = OpenLoopFrontend(device, EventLoop(), time_scale=0.1)
        frontend.run(self._requests(50.0))
        assert [t for t, _, _ in device.issues] == [0.0, 5.0, 10.0, 15.0]

    def test_admission_does_not_wait_for_completions(self):
        device = _RecordingDevice(latency_us=1000.0)  # far slower than arrivals
        frontend = OpenLoopFrontend(device, EventLoop())
        stats = frontend.run(self._requests(50.0))
        assert [t for t, _, _ in device.issues] == [0.0, 50.0, 100.0, 150.0]
        assert stats.max_outstanding == 4  # the backlog is the measurement

    def test_tuples_degenerate_to_simultaneous_arrival(self):
        device = _RecordingDevice()
        frontend = OpenLoopFrontend(device, EventLoop())
        frontend.run([("R", lpa, 1) for lpa in range(3)])
        assert [t for t, _, _ in device.issues] == [0.0, 0.0, 0.0]

    def test_invalid_time_scale_rejected(self):
        with pytest.raises(ValueError):
            OpenLoopFrontend(_RecordingDevice(), EventLoop(), time_scale=0.0)


class TestOpenLoopReplay:
    def _stamped_trace(self, count=2000, interarrival=5.0, footprint=20_000):
        rng = random.Random(7)
        requests = [
            IORequest(
                "W" if rng.random() < 0.4 else "R",
                rng.randrange(footprint),
                rng.randint(1, 8),
                timestamp_us=i * interarrival,
            )
            for i in range(count)
        ]
        return Trace("stamped", requests)

    def test_run_accepts_io_requests_open_loop(self):
        ssd = make_ssd(options=SSDOptions(replay_mode="open"))
        _fill_blocks(ssd, 20_000)
        ssd.begin_measurement()
        trace = self._stamped_trace()
        stats = ssd.run(trace)
        # The replay cannot finish before the last request arrived.
        last_arrival = trace[-1].timestamp_us - trace[0].timestamp_us
        assert stats.measured_time_us >= last_arrival
        assert stats.events_processed > 0
        assert stats.host_reads + stats.host_writes == sum(
            r.npages for r in trace
        )

    def test_saturation_grows_backlog_and_latency(self):
        def run(interarrival):
            ssd = make_ssd(options=SSDOptions(replay_mode="open"))
            _fill_blocks(ssd, 20_000)
            ssd.begin_measurement()
            ssd.run(self._stamped_trace(interarrival=interarrival))
            return ssd.stats

        relaxed = run(200.0)
        saturated = run(2.0)
        assert saturated.max_outstanding_requests > relaxed.max_outstanding_requests
        assert saturated.read_latency.mean_us > relaxed.read_latency.mean_us

    def test_time_scale_stretches_the_replay(self):
        def run(scale):
            ssd = make_ssd(
                options=SSDOptions(replay_mode="open", time_scale=scale)
            )
            _fill_blocks(ssd, 20_000)
            ssd.begin_measurement()
            return ssd.run(self._stamped_trace(interarrival=100.0))

        slow = run(2.0)
        fast = run(0.5)
        assert slow.measured_time_us > fast.measured_time_us

    def test_open_loop_replay_is_deterministic(self):
        def run():
            ssd = make_ssd(options=SSDOptions(replay_mode="open"))
            _fill_blocks(ssd, 20_000)
            stats = ssd.run(self._stamped_trace())
            return (
                stats.read_latency.total_us,
                stats.write_latency.total_us,
                stats.simulated_time_us,
                stats.max_outstanding_requests,
                ssd.flash.counters.page_reads,
            )

        assert run() == run()

    def test_closed_loop_run_accepts_io_requests_and_traces(self):
        trace = Trace("t", [IORequest("W", lpa, 4) for lpa in range(0, 256, 4)])
        serial = make_ssd()
        serial.run(trace)
        events = make_ssd(options=SSDOptions(queue_depth=4))
        events.run(trace)
        assert serial.stats.host_write_pages == 256
        assert events.stats.host_write_pages == 256

    def test_invalid_replay_mode_rejected(self):
        ssd = make_ssd()
        with pytest.raises(ValueError):
            ssd.run([], replay_mode="looped")
        with pytest.raises(ValueError):
            make_ssd(options=SSDOptions(replay_mode="looped"))
        with pytest.raises(ValueError):
            ssd.run([], replay_mode="open", time_scale=0.0)
