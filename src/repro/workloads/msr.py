"""MSR-Cambridge-like workload profiles (simulator evaluation, Section 4.1).

The paper replays block I/O traces from Microsoft Research Cambridge
enterprise servers: ``hm`` (hardware monitoring), ``src2`` (source control),
``prxy`` (web proxy), ``prn`` (print server) and ``usr`` (user home
directories).  The original traces are not redistributable, so each profile
below is a synthetic stand-in whose read/write mix, footprint, sequentiality
and skew follow the published characterisations of those traces.  They are
deliberately diverse: ``prxy`` is almost write-only with small random
writes, ``usr`` is read-heavy with long sequential runs, ``src2`` sits in
between, etc.  What matters for the reproduction is that the *relative*
behaviour of DFTL / SFTL / LeaFTL across these profiles matches the paper.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.synthetic import SyntheticWorkload, WorkloadProfile
from repro.workloads.trace import Trace

#: Named profiles for the five MSR-like workloads used throughout the paper.
MSR_PROFILES: Dict[str, WorkloadProfile] = {
    "MSR-hm": WorkloadProfile(
        name="MSR-hm",
        footprint_pages=160_000,
        num_requests=60_000,
        read_ratio=0.35,
        sequential_fraction=0.40,
        strided_fraction=0.30,
        jittered_fraction=0.20,
        random_fraction=0.10,
        mean_run_length=40,
        mean_stride_count=28,
        zipf_alpha=0.8,
        seed=11,
    ),
    "MSR-src2": WorkloadProfile(
        name="MSR-src2",
        footprint_pages=220_000,
        num_requests=60_000,
        read_ratio=0.25,
        sequential_fraction=0.50,
        strided_fraction=0.25,
        jittered_fraction=0.15,
        random_fraction=0.10,
        mean_run_length=64,
        mean_stride_count=30,
        zipf_alpha=0.6,
        seed=12,
    ),
    "MSR-prxy": WorkloadProfile(
        name="MSR-prxy",
        footprint_pages=90_000,
        num_requests=60_000,
        read_ratio=0.05,
        sequential_fraction=0.25,
        strided_fraction=0.25,
        jittered_fraction=0.30,
        random_fraction=0.20,
        mean_run_length=20,
        mean_stride_count=20,
        zipf_alpha=0.9,
        seed=13,
    ),
    "MSR-prn": WorkloadProfile(
        name="MSR-prn",
        footprint_pages=260_000,
        num_requests=60_000,
        read_ratio=0.22,
        sequential_fraction=0.45,
        strided_fraction=0.25,
        jittered_fraction=0.20,
        random_fraction=0.10,
        mean_run_length=48,
        mean_stride_count=26,
        zipf_alpha=0.7,
        seed=14,
    ),
    "MSR-usr": WorkloadProfile(
        name="MSR-usr",
        footprint_pages=300_000,
        num_requests=60_000,
        read_ratio=0.55,
        sequential_fraction=0.55,
        strided_fraction=0.25,
        jittered_fraction=0.12,
        random_fraction=0.08,
        mean_run_length=96,
        mean_stride_count=32,
        zipf_alpha=0.6,
        seed=15,
    ),
}

#: Workload names in the order the paper's figures list them.
MSR_WORKLOAD_NAMES: List[str] = list(MSR_PROFILES)


def msr_profile(name: str) -> WorkloadProfile:
    """The profile for an MSR-like workload (``'MSR-hm'``, ``'hm'``, ...)."""
    key = name if name.startswith("MSR-") else f"MSR-{name}"
    if key not in MSR_PROFILES:
        raise KeyError(f"unknown MSR workload {name!r}; known: {MSR_WORKLOAD_NAMES}")
    return MSR_PROFILES[key]


def msr_workload(
    name: str, request_scale: float = 1.0, footprint_scale: float = 1.0
) -> Trace:
    """Generate the trace of one MSR-like workload, optionally scaled down."""
    profile = msr_profile(name).scaled(request_scale, footprint_scale)
    return SyntheticWorkload(profile).generate()
