"""Observability: sim-time tracing, metrics time-series, counter registry.

Three always-available, zero-cost-when-disabled layers over the simulator:

* :mod:`repro.obs.tracing` — :class:`Tracer` reconstructs per-request /
  GC / NAND lifecycle spans from the event stream and exports Chrome
  trace-event JSON (load in Perfetto or ``chrome://tracing``);
* :mod:`repro.obs.metrics` — :class:`MetricsSampler` snapshots device
  gauges on a simulated-time interval into a columnar series (CSV/JSON);
* :mod:`repro.obs.registry` — :func:`device_snapshot` walks every
  registered ``*Stats`` dataclass into one flat namespaced
  :class:`CounterSnapshot` with a delta API.

Enable per run via ``SSDOptions(telemetry="on")`` /
``ExperimentSetup(telemetry="on")`` or :func:`attach_telemetry`; run
``python -m repro.obs run --scenario multi_tenant --out DIR`` for a
ready-made traced scenario.  Observers never perturb scheduling:
``repro.verify`` digests are identical with telemetry on or off.
"""

from repro.obs.metrics import DEFAULT_METRICS_INTERVAL_US, MetricsSampler
from repro.obs.registry import (
    CounterSnapshot,
    EXCLUDED_FIELDS,
    REGISTERED_STATS,
    device_snapshot,
    snapshot_stats,
)
from repro.obs.session import (
    TELEMETRY_MODES,
    Telemetry,
    TelemetryConfig,
    attach_telemetry,
)
from repro.obs.tracing import DEFAULT_TRACE_CAPACITY, Tracer

__all__ = [
    "CounterSnapshot",
    "DEFAULT_METRICS_INTERVAL_US",
    "DEFAULT_TRACE_CAPACITY",
    "EXCLUDED_FIELDS",
    "MetricsSampler",
    "REGISTERED_STATS",
    "TELEMETRY_MODES",
    "Telemetry",
    "TelemetryConfig",
    "Tracer",
    "attach_telemetry",
    "device_snapshot",
    "snapshot_stats",
]
