"""FIU-trace-like workload profiles (simulator evaluation, Section 4.1).

The paper uses two workload traces collected at Florida International
University: ``home`` (user home directories / development activity) and
``mail`` (a departmental mail server).  Both are strongly write-dominated
with heavy overwrite of a comparatively small working set; ``mail`` issues
many small scattered writes (mailbox databases), ``home`` has more
medium-sized, partially sequential writes.  The profiles below are synthetic
stand-ins with those characteristics.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.synthetic import SyntheticWorkload, WorkloadProfile
from repro.workloads.trace import Trace

FIU_PROFILES: Dict[str, WorkloadProfile] = {
    "FIU-home": WorkloadProfile(
        name="FIU-home",
        footprint_pages=120_000,
        num_requests=60_000,
        read_ratio=0.10,
        sequential_fraction=0.35,
        strided_fraction=0.25,
        jittered_fraction=0.25,
        random_fraction=0.15,
        mean_run_length=32,
        mean_stride_count=22,
        zipf_alpha=0.85,
        seed=21,
    ),
    "FIU-mail": WorkloadProfile(
        name="FIU-mail",
        footprint_pages=150_000,
        num_requests=60_000,
        read_ratio=0.08,
        sequential_fraction=0.25,
        strided_fraction=0.25,
        jittered_fraction=0.30,
        random_fraction=0.20,
        mean_run_length=20,
        mean_stride_count=18,
        zipf_alpha=0.9,
        seed=22,
    ),
}

FIU_WORKLOAD_NAMES: List[str] = list(FIU_PROFILES)


def fiu_profile(name: str) -> WorkloadProfile:
    """The profile for an FIU-like workload (``'FIU-home'``, ``'home'``, ...)."""
    key = name if name.startswith("FIU-") else f"FIU-{name}"
    if key not in FIU_PROFILES:
        raise KeyError(f"unknown FIU workload {name!r}; known: {FIU_WORKLOAD_NAMES}")
    return FIU_PROFILES[key]


def fiu_workload(
    name: str, request_scale: float = 1.0, footprint_scale: float = 1.0
) -> Trace:
    """Generate the trace of one FIU-like workload, optionally scaled down."""
    profile = fiu_profile(name).scaled(request_scale, footprint_scale)
    return SyntheticWorkload(profile).generate()
