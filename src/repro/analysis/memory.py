"""Mapping-table memory analysis (Figures 15 and 19)."""

from __future__ import annotations

from typing import Dict, Mapping


def format_bytes(num_bytes: float) -> str:
    """Human-readable byte count (e.g. ``'1.5 MB'``)."""
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or unit == "TB":
            return f"{value:.1f} {unit}"
        value /= 1024.0
    return f"{value:.1f} TB"


def reduction_factor(baseline_bytes: float, candidate_bytes: float) -> float:
    """How many times smaller ``candidate`` is than ``baseline`` (Figure 15's y-axis)."""
    if candidate_bytes <= 0:
        return float("inf") if baseline_bytes > 0 else 1.0
    return baseline_bytes / candidate_bytes


def reduction_table(footprints: Mapping[str, Mapping[str, float]], baseline: str) -> Dict[str, Dict[str, float]]:
    """Per-workload reduction factors of every scheme relative to ``baseline``.

    ``footprints`` maps workload -> scheme -> mapping-table bytes.
    """
    table: Dict[str, Dict[str, float]] = {}
    for workload, by_scheme in footprints.items():
        if baseline not in by_scheme:
            raise KeyError(f"baseline {baseline!r} missing for workload {workload!r}")
        base = by_scheme[baseline]
        table[workload] = {
            scheme: reduction_factor(base, size) for scheme, size in by_scheme.items()
        }
    return table


def normalized_size(footprints: Mapping[str, float], baseline: str) -> Dict[str, float]:
    """Mapping-table size of each configuration normalized to ``baseline``.

    This is the y-axis of Figure 19 (lower is better).
    """
    base = footprints[baseline]
    if base == 0:
        return {key: 0.0 for key in footprints}
    return {key: value / base for key, value in footprints.items()}


def geometric_mean(values) -> float:
    """Geometric mean, used for "on average" claims across workloads."""
    items = [v for v in values if v > 0]
    if not items:
        return 0.0
    product = 1.0
    for value in items:
        product *= value
    return product ** (1.0 / len(items))
