"""CI perf smoke: fail when replay throughput regresses hard.

Measures one replay configuration (default ``qd8_events``) at a reduced
scale and compares wall-clock IOs/sec against the most recent committed
point in ``BENCH_replay.json``.  Exit 1 when the measurement falls more
than ``--max-regression`` (default 30%) below the baseline::

    PYTHONPATH=src python benchmarks/check_perf_smoke.py --scale 0.25

Calibration notes, so the threshold is read honestly:

* the committed baseline is recorded at scale 1.0; a reduced-scale run
  measures *higher* IOs/sec (less accumulated GC/aging work per
  request), so the headroom is asymmetric in the safe direction —
  the gate trips on structural regressions (losing a fast path,
  accidental O(n^2) reintroduction), not on noise;
* same-machine run-to-run variance is roughly +/-10%, and CI runners
  differ from the machine that recorded the baseline, which is why the
  threshold is 30% rather than 10%.

Tighten ``--max-regression`` only after re-recording the baseline on
the infrastructure that runs this check.

A tripped gate explains itself: the failure path diffs the measurement's
counter snapshot against the committed baseline's (via
``repro.obs.analyze.diff_counters``) and compares the p99
latency-attribution shares against the committed fingerprint, so the
failure output names which counters and which latency component moved
rather than just "slower".  Baselines recorded before counters and
attribution were stored degrade to a note suggesting a re-record.

The power-fail machinery (``repro.ssd.recovery``) is exercised by its
own tests and determinism scenario, not here: with no crash timer
attached and no checkpointer installed, the hooks on the replay hot
path reduce to one ``is None`` check per buffer flush and a pre-existing
per-event observer indirection, so a disabled recovery subsystem costs
this gate nothing measurable.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "benchmarks"))

from record_trajectory import CONFIGS, DEFAULT_OUTPUT, attribution_summary  # noqa: E402


def baseline_run(trajectory: Path) -> dict:
    history = json.loads(trajectory.read_text())
    if not history.get("runs"):
        raise SystemExit(f"{trajectory} has no recorded runs to compare against")
    return history["runs"][-1]


def baseline_ios_per_sec(trajectory: Path, config: str) -> float:
    last = baseline_run(trajectory)
    try:
        return float(last["configs"][config]["ios_per_sec"])
    except KeyError as error:
        raise SystemExit(
            f"baseline run {last.get('label')!r} has no {config}/ios_per_sec"
        ) from error


def explain_regression(baseline: dict, config: str, measured: dict) -> None:
    """Attribute a tripped gate: which counters and which latency component.

    Prints a thresholded counter diff between the committed baseline's
    stored snapshot and the failing measurement (work-mix changes show up
    here: extra GC, lost cache hits, misprediction storms), then compares
    the p99 latency-attribution shares against the committed fingerprint.
    Baselines recorded before counters/attribution were stored degrade to
    an explanatory note instead of failing the failure path.
    """
    from repro.obs import diff_counters

    base_counters = baseline.get("configs", {}).get(config, {}).get("counters")
    if not base_counters:
        print(
            f"  (baseline {baseline.get('label')!r} predates stored counters; "
            "re-record the trajectory to enable counter diffs)"
        )
    else:
        # 10% threshold: replay counts are deterministic, so anything
        # moving at all is structural; 10% filters float-derived ratios.
        diff = diff_counters(base_counters, measured["counters"], rel_threshold=0.10)
        movers = [row for row in diff["changed"] if not row["counter"].startswith("device.")]
        print(f"  counters moved past 10% ({len(movers)} of {diff['compared']}):")
        for row in movers[:12]:
            rel = "new" if row["rel"] is None else f"{row['rel']:+.1%}"
            print(
                f"    {row['counter']}: {row['base']:g} -> {row['current']:g} ({rel})"
            )
        if len(movers) > 12:
            print(f"    ... {len(movers) - 12} more (see repro.obs diff)")
    base_attr = baseline.get("attribution")
    if not base_attr:
        print(
            f"  (baseline {baseline.get('label')!r} predates stored attribution; "
            "re-record the trajectory to enable component comparison)"
        )
        return
    fresh = attribution_summary(
        scale=float(base_attr.get("scale", 0.4)), seed=int(base_attr.get("seed", 1234))
    )
    print("  p99 latency attribution vs committed fingerprint:")
    for op, base_op in sorted(base_attr.get("ops", {}).items()):
        fresh_op = fresh["ops"].get(op)  # type: ignore[union-attr]
        if fresh_op is None:
            continue
        shares = dict(base_op.get("p99_shares", {}))
        components = sorted(set(shares) | set(fresh_op["p99_shares"]))
        deltas = [
            f"{component} {shares.get(component, 0.0):.1%}"
            f"->{fresh_op['p99_shares'].get(component, 0.0):.1%}"
            for component in components
        ]
        marker = (
            ""
            if fresh_op["p99_dominant"] == base_op.get("p99_dominant")
            else f"  [dominant changed: {base_op.get('p99_dominant')} -> {fresh_op['p99_dominant']}]"
        )
        print(f"    {op}: {', '.join(deltas)}{marker}")


def main(argv: list = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--config", default="qd8_events", choices=sorted(CONFIGS))
    parser.add_argument(
        "--scale", type=float, default=0.25, help="request-count scale factor"
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="fail when measured IOs/sec drops more than this fraction below baseline",
    )
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_OUTPUT, help="trajectory file"
    )
    args = parser.parse_args(argv)

    last = baseline_run(args.baseline)
    baseline = baseline_ios_per_sec(args.baseline, args.config)
    floor = baseline * (1.0 - args.max_regression)
    print(f"measuring {args.config} at scale {args.scale} ...", flush=True)
    result = CONFIGS[args.config](args.scale)
    measured = float(result["ios_per_sec"])  # type: ignore[arg-type]
    verdict = "ok" if measured >= floor else "REGRESSION"
    print(
        f"{args.config}: measured {measured:,.1f} IOs/sec vs committed baseline "
        f"{baseline:,.1f} (floor {floor:,.1f} at -{args.max_regression:.0%}): {verdict}"
    )
    if measured >= floor:
        return 0
    explain_regression(last, args.config, result)
    return 1


if __name__ == "__main__":
    sys.exit(main())
