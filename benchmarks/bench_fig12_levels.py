"""Figure 12: number of levels in the log-structured mapping table per group.

The paper reports a small average (a few levels) with a longer tail at the
99th percentile; lookups therefore stay cheap (see also Figure 23a).
"""

from __future__ import annotations

from repro.analysis.report import print_report, render_table
from repro.experiments.segments import level_distribution

from benchmarks.conftest import CORE_SIMULATOR_WORKLOADS, memory_scale, run_once


def test_fig12_levels_per_group(benchmark):
    results = run_once(
        benchmark, level_distribution, CORE_SIMULATOR_WORKLOADS, 0, memory_scale()
    )

    rows = [
        [workload, round(average, 2), round(p99, 1)]
        for workload, (average, p99) in results.items()
    ]
    print_report(render_table(
        ["workload", "average levels", "p99 levels"], rows,
        title="Figure 12: levels per LPA group"))

    for workload, (average, p99) in results.items():
        assert average >= 1.0
        assert average < 8, f"{workload}: average level count {average} unexpectedly high"
        assert p99 < 25
