# Fixture for SIM005 (no-mutable-defaults).  See sim001 fixture for the
# marker convention.  NOT imported — parsed by simlint only.
from collections import defaultdict
from typing import Optional


def bad_list(items=[]) -> list:  # expect: SIM005
    return items


def bad_dict(mapping={}) -> dict:  # expect: SIM005
    return mapping


def bad_set_call(seen=set()) -> set:  # expect: SIM005
    return seen


def bad_kwonly(*, registry={}) -> dict:  # expect: SIM005
    return registry


def bad_defaultdict(counts=defaultdict(int)):  # expect: SIM005
    return counts


bad_lambda = lambda acc=[]: acc  # expect: SIM005  # noqa: E731


def suppressed(items=[]) -> list:  # simlint: disable=SIM005
    return items


def ok_none(items: Optional[list] = None) -> list:
    return list(items or ())


def ok_immutable(span=(), name="x", count=0, scale=1.0, flag=False) -> tuple:
    return (span, name, count, scale, flag)
