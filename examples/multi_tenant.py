#!/usr/bin/env python3
"""Multi-tenant QoS: namespaces, arbitration and rate limits in action.

Run with::

    python examples/multi_tenant.py

One device, two namespaces:

* **reader** — a latency-sensitive tenant issuing steady Zipf-skewed
  open-loop reads (16-page requests every 150 us) with a 1 ms read SLO;
* **writer** — a noisy neighbor streaming bursts of 32-page sequential
  writes whose flushes keep the flash channels busy.

Three views of the same contention:

1. **Arbitration sweep** — the reader's latency under every submission-
   queue arbiter, against its solo run.  FIFO (one shared queue — the
   no-QoS baseline) lets the writer's bursts queue ahead of the reader's
   arrivals and its p99 explodes; weighted-round-robin (reader weight 8)
   and strict-priority admission keep it within a small factor of solo.
2. **Isolation factors** — the same numbers as multiples of the solo p99,
   the form the acceptance test pins (QoS arbiters <= 3x, FIFO far beyond).
3. **Rate limiting** — arbitration shares admission but cannot shrink an
   admitted burst; a token-bucket bandwidth cap on the writer namespace
   throttles the burst at the source and buys the reader's tail back.
"""

from __future__ import annotations

from repro.experiments.multi_tenant import (
    NoisyNeighborScenario,
    noisy_neighbor_sweep,
    rate_limit_comparison,
)

ARBITERS = ("fifo", "round_robin", "weighted_round_robin", "strict_priority")

READER_COLUMNS = (
    ("read_p50_us", "p50 us"),
    ("read_p95_us", "p95 us"),
    ("read_p99_us", "p99 us"),
    ("queue_wait_us", "SQ wait us"),
    ("slo_violations", "SLO viol"),
)


def print_arbitration_sweep(table) -> None:
    print("=== reader latency by submission-queue arbiter ===")
    header = f"{'arbiter':>22} " + " ".join(f"{label:>12}" for _, label in READER_COLUMNS)
    print(header)
    for arbiter in ("solo",) + ARBITERS:
        reader = table[arbiter]["reader"]
        cells = " ".join(f"{reader[key]:12.1f}" for key, _ in READER_COLUMNS)
        print(f"{arbiter:>22} {cells}")
    print()


def print_isolation_factors(table) -> None:
    solo_p99 = table["solo"]["reader"]["read_p99_us"]
    print("=== isolation: contended reader p99 as a multiple of solo ===")
    for arbiter in ARBITERS:
        factor = table[arbiter]["reader"]["read_p99_us"] / solo_p99
        verdict = "isolated (<= 3x)" if factor <= 3.0 else "NOT isolated"
        print(f"{arbiter:>22}  {factor:7.2f}x   {verdict}")
    print()


def print_rate_limit_comparison() -> None:
    print("=== token-bucket QoS: bandwidth-capping the writer (round-robin) ===")
    table = rate_limit_comparison()
    for label in ("uncapped", "capped"):
        reader = table[label]["reader"]
        writer = table[label]["writer"]
        print(
            f"{label:>10}  reader p99 {reader['read_p99_us']:9.1f} us"
            f"  (SLO violations {reader['slo_violations']:4.0f})"
            f" | writer p99 {writer['write_p99_us']:10.1f} us"
            f"  deferrals {writer['rate_limit_deferrals']:6.0f}"
        )
    print()


def main() -> None:
    scenario = NoisyNeighborScenario()
    print(
        f"device: {scenario.capacity_bytes // (1024 * 1024)} MB, "
        f"{scenario.channels} channels, queue depth {scenario.queue_depth}; "
        f"reader weight {scenario.reader_weight}, "
        f"SLO {scenario.reader_slo_us:.0f} us\n"
    )
    table = noisy_neighbor_sweep(arbiters=ARBITERS, scenario=scenario)
    print_arbitration_sweep(table)
    print_isolation_factors(table)
    print_rate_limit_comparison()


if __name__ == "__main__":
    main()
