"""Double-run determinism: the dynamic witness behind the simlint rules.

Runs a mixed read/write two-tenant workload — Zipf reader plus bursty
sequential writer — with background GC and weighted-round-robin
arbitration, twice from the same seed, and asserts the full event-trace
digests and stats summaries are identical.  This is the property the
static rules in ``tools/simlint`` exist to protect; a regression that
reintroduces wall-clock reads, unseeded randomness or set-order
iteration on a scheduling path fails here even if it dodges the linter.
"""

import json
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

from repro.verify import VERIFY_ARBITER, run_once, verify, verify_scenario


class TestScenarioShape:
    """The scenario must actually exercise what it claims to cover."""

    def test_uses_background_gc_and_wrr(self):
        scenario = verify_scenario()
        assert scenario.gc_mode == "background"
        assert VERIFY_ARBITER == "weighted_round_robin"

    def test_tenants_mix_reads_and_writes(self):
        from repro.experiments.multi_tenant import reader_tenant, writer_tenant

        scenario = verify_scenario()
        reader = reader_tenant(scenario).trace
        writer = writer_tenant(scenario).trace
        assert reader.read_requests > 0 and reader.write_requests == 0
        assert writer.write_requests > 0 and writer.read_requests == 0


class TestDoubleRun:
    def test_same_seed_identical_trace_and_stats(self):
        result = verify(seed=77, scale=1.0, runs=2)
        first, second = result.reports
        assert result.identical
        assert first.event_digest == second.event_digest
        assert first.stats_digest == second.stats_digest
        assert first.summary == second.summary
        # The runs must be substantive: the event engine processed a real
        # interleaving and background GC actually reclaimed blocks.
        assert first.events_observed > 1000
        assert first.summary["gc_background_runs"] > 0
        assert first.summary["host_reads"] > 0
        assert first.summary["host_writes"] > 0

    def test_different_seed_changes_the_trace(self):
        # The digest is sensitive to the workload, not a constant.
        a = run_once(seed=1, scale=0.25)
        b = run_once(seed=2, scale=0.25)
        assert a.event_digest != b.event_digest


class TestCLI:
    def _run(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro.verify", *args],
            cwd=REPO,
            env={"PYTHONPATH": str(REPO / "src")},
            capture_output=True,
            text=True,
        )

    def test_exit_zero_and_json_payload(self):
        result = self._run("--scale", "0.25", "--json")
        assert result.returncode == 0, result.stdout + result.stderr
        payload = json.loads(result.stdout)
        assert payload["identical"] is True
        # Both scenarios run by default: the multi-tenant base run and the
        # crash-and-recover run, each compared across two executions.
        assert set(payload["scenarios"]) == {"base", "recovery"}
        for scenario in payload["scenarios"].values():
            assert scenario["identical"] is True
            assert len(scenario["runs"]) == 2
            digests = {run["event_digest"] for run in scenario["runs"]}
            assert len(digests) == 1

    def test_text_verdict(self):
        result = self._run("--scale", "0.25")
        assert result.returncode == 0
        assert "identical" in result.stdout

    def test_single_scenario_selection(self):
        result = self._run("--scale", "0.25", "--scenario", "recovery", "--json")
        assert result.returncode == 0, result.stdout + result.stderr
        payload = json.loads(result.stdout)
        assert set(payload["scenarios"]) == {"recovery"}
