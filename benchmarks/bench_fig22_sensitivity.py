"""Figure 22: sensitivity to DRAM capacity (a) and flash page size (b).

The paper varies the SSD DRAM from 256 MB to 1 GB and the flash page size
from 4 KB to 16 KB (fixing the number of pages); LeaFTL outperforms DFTL and
SFTL at every point.
"""

from __future__ import annotations

from repro.analysis.report import print_report, render_series
from repro.experiments.performance import dram_size_sensitivity, page_size_sensitivity

from benchmarks.conftest import perf_setup, run_once

WORKLOADS = ("TPCC", "FIU-mail")
#: Scaled-down equivalents of the paper's 256 MB / 512 MB / 1 GB sweep.
DRAM_SIZES = (128 * 1024, 256 * 1024, 512 * 1024)
PAGE_SIZES = (4096, 8192, 16384)


def test_fig22a_dram_size_sensitivity(benchmark):
    setup = perf_setup(dram_policy="cache_reserved")
    table = run_once(benchmark, dram_size_sensitivity, WORKLOADS, DRAM_SIZES, setup)

    print_report(render_series(
        "Figure 22(a): normalized read latency vs DRAM size (lower is better)",
        {f"{dram // 1024} KB DRAM": {s: round(v, 3) for s, v in row.items()}
         for dram, row in table.items()},
        column_order=("DFTL", "SFTL", "LeaFTL"),
    ))
    for dram, row in table.items():
        assert row["LeaFTL"] <= 1.02, f"LeaFTL slower than DFTL at {dram} bytes DRAM"


def test_fig22b_page_size_sensitivity(benchmark):
    setup = perf_setup(dram_policy="cache_reserved")
    table = run_once(benchmark, page_size_sensitivity, WORKLOADS, PAGE_SIZES, setup)

    print_report(render_series(
        "Figure 22(b): normalized read latency vs flash page size (lower is better)",
        {f"{page // 1024} KB pages": {s: round(v, 3) for s, v in row.items()}
         for page, row in table.items()},
        column_order=("DFTL", "SFTL", "LeaFTL"),
    ))
    for page, row in table.items():
        assert row["LeaFTL"] <= 1.05, f"LeaFTL slower than DFTL at page size {page}"
