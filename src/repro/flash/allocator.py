"""Flash block allocation.

The allocator owns the free-block pool and hands out *active* blocks that the
write path programs sequentially.  Two properties matter for LeaFTL:

* a flush of the LPA-sorted write buffer receives **consecutive PPAs** inside
  one (or a few) freshly allocated blocks, which is what lets the piecewise
  linear regression learn long segments (Section 3.3 of the paper);
* allocation is wear-aware: among free blocks of the chosen channel the one
  with the lowest erase count is preferred, supporting wear leveling.

The allocator also tracks which blocks are candidates for garbage collection
(fully programmed, not free, not currently active).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.flash.flash_array import FlashArray


class OutOfSpaceError(RuntimeError):
    """Raised when no free block can satisfy an allocation request."""


@dataclass
class AllocationStats:
    """Counters describing allocator activity."""

    blocks_allocated: int = 0
    blocks_reclaimed: int = 0


class BlockAllocator:
    """Round-robin, wear-aware free block allocator."""

    def __init__(self, flash: FlashArray) -> None:
        self._flash = flash
        self._geometry = flash.geometry
        channels = self._geometry.channels
        self._free_blocks: List[Set[int]] = [set() for _ in range(channels)]
        self._active_blocks: Set[int] = set()
        self._next_channel = 0
        self.stats = AllocationStats()

        for block in range(self._geometry.total_blocks):
            channel = self._geometry.block_to_channel(block)
            self._free_blocks[channel].add(block)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def total_blocks(self) -> int:
        return self._geometry.total_blocks

    def free_block_count(self) -> int:
        """Number of blocks currently in the free pool."""
        return sum(len(pool) for pool in self._free_blocks)

    def free_ratio(self) -> float:
        """Fraction of all blocks that are free."""
        return self.free_block_count() / self._geometry.total_blocks

    def is_active(self, block: int) -> bool:
        return block in self._active_blocks

    def gc_candidates(self) -> List[int]:
        """Blocks eligible for garbage collection.

        A block is a candidate when it has been (fully or partially)
        programmed, is not in the free pool and is not an active block that
        the write path is still filling.
        """
        free: Set[int] = set()
        for pool in self._free_blocks:
            free |= pool
        candidates = []
        for block in range(self._geometry.total_blocks):
            if block in free or block in self._active_blocks:
                continue
            if self._flash.write_pointer(block) == 0:
                continue
            candidates.append(block)
        return candidates

    # ------------------------------------------------------------------ #
    # Allocation / reclamation
    # ------------------------------------------------------------------ #
    def allocate_block(self, channel: Optional[int] = None) -> int:
        """Take a block out of the free pool and mark it active.

        When ``channel`` is ``None`` the allocator rotates across channels to
        spread programs (and therefore later reads) over the whole array.
        Within the chosen channel the least-worn free block is returned.
        """
        channels = self._geometry.channels
        order: List[int]
        if channel is not None:
            order = [channel]
        else:
            order = [(self._next_channel + i) % channels for i in range(channels)]
            self._next_channel = (self._next_channel + 1) % channels

        for ch in order:
            pool = self._free_blocks[ch]
            if not pool:
                continue
            block = min(pool, key=self._flash.erase_count)
            pool.remove(block)
            self._active_blocks.add(block)
            self.stats.blocks_allocated += 1
            return block
        raise OutOfSpaceError("no free flash block available")

    def seal_block(self, block: int) -> None:
        """Mark an active block as fully written (no longer active)."""
        self._active_blocks.discard(block)

    def release_block(self, block: int) -> None:
        """Return an erased block to the free pool (after GC erase)."""
        if not self._flash.block_is_free(block):
            raise ValueError(f"block {block} is not erased; cannot release")
        channel = self._geometry.block_to_channel(block)
        self._active_blocks.discard(block)
        self._free_blocks[channel].add(block)
        self.stats.blocks_reclaimed += 1

    # ------------------------------------------------------------------ #
    # Wear statistics
    # ------------------------------------------------------------------ #
    def wear_imbalance(self) -> float:
        """Max-minus-min erase count across all blocks (0 = perfectly even)."""
        counts = self._flash.erase_counts()
        return float(max(counts) - min(counts)) if counts else 0.0
