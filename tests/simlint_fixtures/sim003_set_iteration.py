# Fixture for SIM003 (no-set-iteration).  See sim001 fixture for the
# marker convention.  NOT imported — parsed by simlint only.
from typing import Dict, List, Set

#: Module-level set: iteration from inside functions must still be caught.
KNOWN: Set[int] = {1, 2, 3}


def bad_literal_iteration() -> None:
    for item in {1, 2, 3}:  # expect: SIM003
        print(item)


def bad_constructor_iteration(values) -> list:
    return list(set(values))  # expect: SIM003


def bad_tracked_local(values) -> None:
    pending = set(values)
    for item in pending:  # expect: SIM003
        print(item)


def bad_module_global() -> list:
    return [x for x in KNOWN]  # expect: SIM003


def bad_min_tiebreak(pool: Set[int], wear) -> int:
    return min(pool, key=wear)  # expect: SIM003


def bad_union(a, b) -> None:
    merged = set(a) | set(b)
    for item in merged:  # expect: SIM003
        print(item)


def bad_dict_from_set(values) -> None:
    source = frozenset(values)
    ordered = dict.fromkeys(source)  # order inherited from the set
    for key in ordered.keys():  # expect: SIM003
        print(key)


class Allocator:
    def __init__(self, channels: int) -> None:
        self._pools: List[Set[int]] = [set() for _ in range(channels)]
        self._active: Set[int] = set()

    def bad_subscript_of_container(self, channel: int, wear) -> int:
        pool = self._pools[channel]
        return min(pool, key=wear)  # expect: SIM003

    def bad_attribute_iteration(self) -> list:
        return sorted(tuple(self._active))  # expect: SIM003

    def ok_membership(self, block: int) -> bool:
        return block in self._active

    def ok_len(self) -> int:
        return sum(len(pool) for pool in self._pools)


def suppressed(pool: Set[int]) -> list:
    return list(pool)  # simlint: disable=SIM003


def ok_sorted(pool: Set[int]) -> list:
    # sorted() imposes a total order — the sanctioned escape hatch.
    return sorted(pool)


def ok_list_iteration(items: List[int]) -> None:
    for item in items:
        print(item)
