"""The trace-driven SSD model that ties flash, FTL, cache, buffer and GC together.

This is the WiscSim-equivalent substrate of the reproduction.  It models an
SSD controller at the level of detail the LeaFTL evaluation depends on:

* a write buffer that batches host writes and programs them one flash block
  at a time, with LPA-sorted flushes (Section 3.3);
* an LRU read/write data cache whose capacity is whatever DRAM the mapping
  table leaves free — this is the mechanism that converts LeaFTL's memory
  savings into performance (Figure 16);
* per-channel latency accounting: every flash read/program/erase occupies
  its channel, so background flushes and GC delay later reads that land on
  the same channel;
* greedy garbage collection and throttled wear leveling that relearn the
  mappings of migrated pages (Section 3.6);
* OOB reverse mappings written with every page, including the
  ``[-gamma, +gamma]`` neighbour window LeaFTL needs to correct
  mispredictions with a single extra flash read (Section 3.5);
* verification of every translated read against the reverse mapping, which
  is how mispredictions are detected and accounted (Figure 24).

The simulator keeps a ground-truth ``LPA -> PPA`` map (the role the page
validity table plays in real firmware) that is used **only** to maintain
flash page validity for GC — never to answer host reads; reads always go
through the FTL under test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.config import DRAMBudget, SSDConfig
from repro.flash.allocator import BlockAllocator
from repro.flash.flash_array import FlashArray, PageState
from repro.flash.oob import OOBArea, validate_gamma_fits_oob
from repro.ftl.base import FTL
from repro.ssd.cache import LRUDataCache
from repro.ssd.gc import GCPolicyConfig, GreedyGCPolicy
from repro.ssd.stats import SSDStats
from repro.ssd.wear_leveling import WearLeveler, WearLevelingConfig
from repro.ssd.write_buffer import WriteBuffer


class SimulationError(RuntimeError):
    """Raised when the simulated device reaches an inconsistent state."""


@dataclass
class SSDOptions:
    """Behavioural switches of the simulator (ablation knobs)."""

    #: Sort the write buffer by LPA before flushing (Section 3.3).
    sort_buffer_on_flush: bool = True
    #: Enable static wear leveling.
    wear_leveling: bool = True
    #: Raise on unrecoverable translation errors instead of falling back.
    strict: bool = True


class SimulatedSSD:
    """A trace-driven SSD with a pluggable flash translation layer."""

    def __init__(
        self,
        config: SSDConfig,
        ftl: FTL,
        dram_budget: Optional[DRAMBudget] = None,
        options: Optional[SSDOptions] = None,
        gc_config: Optional[GCPolicyConfig] = None,
        wear_config: Optional[WearLevelingConfig] = None,
    ) -> None:
        self.config = config
        self.ftl = ftl
        self.options = options or SSDOptions()
        self.dram_budget = dram_budget or DRAMBudget(dram_bytes=config.dram_size)

        gamma = self._ftl_oob_window()
        validate_gamma_fits_oob(gamma, config.oob_size)

        self.flash = FlashArray(config)
        self.allocator = BlockAllocator(self.flash)
        self.write_buffer = WriteBuffer(
            capacity_pages=config.write_buffer_pages,
            sort_on_flush=self.options.sort_buffer_on_flush,
        )
        self.cache = LRUDataCache(capacity_pages=self._cache_capacity_pages())
        self.gc_policy = GreedyGCPolicy(
            gc_config
            or GCPolicyConfig(threshold=config.gc_threshold, restore=config.gc_restore)
        )
        self.wear_leveler = (
            WearLeveler(wear_config) if self.options.wear_leveling else None
        )
        self.stats = SSDStats()

        #: Ground truth of the live flash page of every LPA (page validity).
        self._current_ppa: Dict[int, int] = {}
        self._now_us = 0.0
        self._prev_flush_finish_us = 0.0
        self._translation_reads_seen = 0
        self._translation_writes_seen = 0
        self._background_channel = 0
        self._in_gc = False

    # ------------------------------------------------------------------ #
    # Small helpers
    # ------------------------------------------------------------------ #
    def _ftl_oob_window(self) -> int:
        window = getattr(self.ftl, "oob_window", None)
        return int(window()) if callable(window) else 0

    def _cache_capacity_pages(self) -> int:
        cache_bytes = self.dram_budget.cache_bytes(self.ftl.resident_bytes())
        return max(1, cache_bytes // self.config.page_size)

    @property
    def now_us(self) -> float:
        """Current simulated time in microseconds."""
        return self._now_us

    @property
    def logical_pages(self) -> int:
        return self.config.logical_pages

    def _check_lpa(self, lpa: int) -> None:
        if not 0 <= lpa < self.config.logical_pages:
            raise ValueError(f"LPA {lpa} outside the device ({self.config.logical_pages} pages)")

    def _next_background_channel(self) -> int:
        self._background_channel = (self._background_channel + 1) % self.config.channels
        return self._background_channel

    # ------------------------------------------------------------------ #
    # Translation-page traffic accounting (DFTL / SFTL)
    # ------------------------------------------------------------------ #
    def _sync_translation_counters(self, start_us: float, foreground: bool) -> float:
        """Charge flash time for translation-page I/O the FTL just performed.

        Returns the completion time of that I/O; ``start_us`` when none
        happened.  Foreground charges (read path) are serial with the host
        request; background charges only occupy a channel.
        """
        reads = self.ftl.stats.translation_page_reads - self._translation_reads_seen
        writes = self.ftl.stats.translation_page_writes - self._translation_writes_seen
        self._translation_reads_seen = self.ftl.stats.translation_page_reads
        self._translation_writes_seen = self.ftl.stats.translation_page_writes
        if reads == 0 and writes == 0:
            return start_us
        self.stats.translation_page_reads += reads
        self.stats.translation_page_writes += writes
        finish = start_us
        for _ in range(reads):
            channel = self._next_background_channel()
            done = self.flash.occupy_channel(channel, start_us, self.config.read_latency_us)
            finish = max(finish, done) if foreground else finish
        for _ in range(writes):
            channel = self._next_background_channel()
            done = self.flash.occupy_channel(channel, start_us, self.config.write_latency_us)
            finish = max(finish, done) if foreground else finish
        return finish

    # ------------------------------------------------------------------ #
    # Host write path
    # ------------------------------------------------------------------ #
    def write(self, lpa: int) -> float:
        """Write one logical page; returns the request latency in microseconds."""
        self._check_lpa(lpa)
        start = self._now_us
        self.stats.host_writes += 1
        self.stats.host_write_pages += 1

        self.cache.insert(lpa, dirty=True)
        self.write_buffer.add(lpa)

        latency = self.config.dram_latency_us
        if self.write_buffer.is_full:
            # Double-buffering backpressure: if the previous flush is still
            # draining to flash, this write waits for it.
            wait = max(0.0, self._prev_flush_finish_us - self._now_us)
            latency += wait
            self._now_us = start + latency
            self._flush_buffer()
        else:
            self._now_us = start + latency
        self.stats.write_latency.record(latency)
        return latency

    def flush(self) -> None:
        """Drain the write buffer (e.g. at the end of a trace replay)."""
        if len(self.write_buffer):
            self._flush_buffer()

    def _flush_buffer(self) -> None:
        lpas = self.write_buffer.drain()
        if not lpas:
            return
        self.stats.buffer_flushes += 1
        finish = self._program_batch(lpas, purpose="host")
        self._prev_flush_finish_us = max(self._prev_flush_finish_us, finish)
        self.stats.mapping_bytes_samples.append(self.ftl.resident_bytes())
        self.cache.resize(self._cache_capacity_pages())
        self._maybe_collect_garbage()
        self._maybe_level_wear()

    # ------------------------------------------------------------------ #
    # Programming batches (host flush, GC migration, wear leveling)
    # ------------------------------------------------------------------ #
    def _program_batch(self, lpas: Sequence[int], purpose: str) -> float:
        """Program ``lpas`` block by block, learn mappings, invalidate old pages.

        Returns the completion time of the last program operation.
        """
        finish = self._now_us
        pages_per_block = self.config.pages_per_block
        for start in range(0, len(lpas), pages_per_block):
            chunk = lpas[start : start + pages_per_block]
            finish = max(finish, self._program_block_chunk(chunk, purpose))
        return finish

    def _program_block_chunk(self, chunk: Sequence[int], purpose: str) -> float:
        block = self.allocator.allocate_block()
        first_ppa = self.flash.geometry.first_ppa_of_block(block)
        mappings: List[Tuple[int, int]] = [
            (lpa, first_ppa + offset) for offset, lpa in enumerate(chunk)
        ]
        gamma = self._ftl_oob_window()
        ppa_to_lpa = {ppa: lpa for lpa, ppa in mappings}

        finish = self._now_us
        for lpa, ppa in mappings:
            oob = self._build_oob(lpa, ppa, gamma, ppa_to_lpa)
            done = self.flash.program_page(ppa, lpa, oob, now_us=self._now_us)
            finish = max(finish, done)
            self._record_program(purpose)
            old_ppa = self._current_ppa.get(lpa)
            if old_ppa is not None:
                self.flash.invalidate_page(old_ppa)
            self._current_ppa[lpa] = ppa
            if purpose == "host":
                self.cache.mark_clean(lpa)
        self.allocator.seal_block(block)

        self.ftl.update_batch(mappings)
        self._sync_translation_counters(self._now_us, foreground=False)
        return finish

    def _record_program(self, purpose: str) -> None:
        if purpose == "host":
            self.stats.data_page_writes += 1
        elif purpose == "gc":
            self.stats.gc_page_writes += 1
        elif purpose == "wear":
            self.stats.wl_page_moves += 1
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown program purpose {purpose!r}")

    def _build_oob(
        self, lpa: int, ppa: int, gamma: int, ppa_to_lpa: Dict[int, int]
    ) -> OOBArea:
        """OOB contents: own reverse mapping + the ±gamma neighbour window."""
        if gamma == 0:
            return OOBArea(lpa=lpa, neighbor_lpas=[lpa])
        neighbors: List[Optional[int]] = []
        for neighbor_ppa in range(ppa - gamma, ppa + gamma + 1):
            if neighbor_ppa == ppa:
                neighbors.append(lpa)
            elif neighbor_ppa in ppa_to_lpa:
                neighbors.append(ppa_to_lpa[neighbor_ppa])
            else:
                stored = None
                if 0 <= neighbor_ppa < self.flash.geometry.total_pages:
                    stored = self.flash.lpa_of(neighbor_ppa)
                neighbors.append(stored)
        return OOBArea(lpa=lpa, neighbor_lpas=neighbors)

    # ------------------------------------------------------------------ #
    # Host read path
    # ------------------------------------------------------------------ #
    def read(self, lpa: int) -> float:
        """Read one logical page; returns the request latency in microseconds."""
        self._check_lpa(lpa)
        start = self._now_us
        self.stats.host_reads += 1
        self.stats.host_read_pages += 1

        if lpa in self.write_buffer:
            self.stats.buffer_hits += 1
            latency = self.config.dram_latency_us
        elif self.cache.lookup(lpa):
            self.stats.cache_hits += 1
            latency = self.config.dram_latency_us
        else:
            latency = self._read_from_flash(lpa, start)
        self._now_us = start + latency
        self.stats.read_latency.record(latency)
        return latency

    def _read_from_flash(self, lpa: int, start: float) -> float:
        translation = self.ftl.translate(lpa)
        clock = self._sync_translation_counters(start, foreground=True)

        if translation.ppa is None:
            # Reading unwritten space: served as zeroes from the controller.
            self.stats.unmapped_reads += 1
            return max(clock - start, 0.0) + self.config.dram_latency_us

        self.stats.translation_lookups += 1
        ppa = translation.ppa
        if self.flash.page_state(ppa) is PageState.FREE:
            # The learned model pointed past the programmed region of a block
            # (possible at block boundaries with gamma > 0): read the nearest
            # programmed page of the error window instead and correct from
            # its OOB, which keeps the cost at the same two flash reads.
            fallback = self._nearest_programmed_page(lpa, ppa)
            if fallback is None:
                finish = self._fail_translation(lpa, ppa, clock)
            else:
                finish = self.flash.read_page(fallback, now_us=clock)
                if self.flash.lpa_of(fallback) != lpa:
                    finish = self._correct_misprediction(lpa, ppa, fallback, finish)
        else:
            finish = self.flash.read_page(ppa, now_us=clock)
            if self.flash.lpa_of(ppa) != lpa:
                finish = self._correct_misprediction(lpa, ppa, ppa, finish)
        self.stats.flash_reads_for_host += 1
        self.cache.insert(lpa, dirty=False)
        return finish - start

    def _nearest_programmed_page(self, lpa: int, predicted_ppa: int) -> Optional[int]:
        """The programmed page of the ±gamma window closest to the prediction."""
        gamma = max(self._ftl_oob_window(), 1)
        total = self.flash.geometry.total_pages
        for distance in range(0, gamma + 1):
            for candidate in (predicted_ppa - distance, predicted_ppa + distance):
                if 0 <= candidate < total and self.flash.page_state(candidate) is not PageState.FREE:
                    return candidate
        return None

    def _correct_misprediction(
        self, lpa: int, predicted_ppa: int, read_ppa: int, clock: float
    ) -> float:
        """Recover the true PPA after a misprediction (Section 3.5).

        ``read_ppa`` is the page whose data and OOB were just fetched; its
        OOB stores the reverse mappings of its ±gamma neighbourhood, so the
        correction normally costs exactly one more flash read.  If the OOB
        cannot resolve the LPA (the window crossed a block boundary when the
        page was written), the simulator falls back to scanning the error
        window page by page, which is the paper's baseline log(gamma)
        strategy.
        """
        self.stats.mispredictions += 1
        oob = self.flash.oob_of(read_ppa)
        resolver = getattr(self.ftl, "resolve_misprediction", None)
        correct_ppa: Optional[int] = None
        if oob is not None and callable(resolver):
            correct_ppa = resolver(lpa, read_ppa, oob)

        if correct_ppa is not None and self.flash.lpa_of(correct_ppa) == lpa:
            finish = self.flash.read_page(correct_ppa, now_us=clock)
            self.stats.misprediction_extra_reads += 1
            return finish

        # OOB could not resolve: scan the error window around the prediction.
        gamma = max(self._ftl_oob_window(), 1)
        total = self.flash.geometry.total_pages
        finish = clock
        for candidate in range(predicted_ppa - gamma, predicted_ppa + gamma + 1):
            if candidate == read_ppa or not 0 <= candidate < total:
                continue
            if self.flash.page_state(candidate) is PageState.FREE:
                continue
            finish = self.flash.read_page(candidate, now_us=finish)
            self.stats.misprediction_extra_reads += 1
            if self.flash.lpa_of(candidate) == lpa:
                return finish
        return self._fail_translation(lpa, predicted_ppa, finish)

    def _fail_translation(
        self, lpa: int, predicted_ppa: Optional[int], clock: float
    ) -> float:
        """Last-resort handling of an unrecoverable translation."""
        if self.options.strict:
            raise SimulationError(
                f"unrecoverable misprediction for LPA {lpa}: predicted PPA {predicted_ppa}"
            )
        correct_ppa = self._current_ppa.get(lpa)
        if correct_ppa is None:
            raise SimulationError(f"LPA {lpa} has no live flash page")
        finish = self.flash.read_page(correct_ppa, now_us=clock)
        self.stats.misprediction_extra_reads += 1
        return finish

    # ------------------------------------------------------------------ #
    # Garbage collection
    # ------------------------------------------------------------------ #
    def _maybe_collect_garbage(self) -> None:
        if self._in_gc or not self.gc_policy.should_collect(self.allocator):
            return
        self._in_gc = True
        try:
            self.stats.gc_invocations += 1
            while not self.gc_policy.should_stop(self.allocator):
                free_before = self.allocator.free_block_count()
                victims = self.gc_policy.select_victims(self.flash, self.allocator)
                if not victims:
                    break
                self._collect_blocks(victims, purpose="gc")
                if self.allocator.free_block_count() <= free_before:
                    # No net space reclaimed (victims were fully valid):
                    # stop rather than amplify writes indefinitely.
                    break
        finally:
            self._in_gc = False

    def _collect_blocks(self, blocks: Sequence[int], purpose: str) -> None:
        """Migrate the valid pages of several victims, then erase them.

        Valid pages from all victims are packed into shared destination
        blocks (one migration batch), which is what lets GC reclaim space
        even when every victim still holds some valid data.
        """
        lpas: List[int] = []
        for block in blocks:
            for ppa in self.flash.valid_ppas_of_block(block):
                self.flash.read_page(ppa, now_us=self._now_us)
                self.stats.gc_page_reads += 1
                lpa = self.flash.lpa_of(ppa)
                if lpa is None:  # pragma: no cover - defensive
                    raise SimulationError(f"valid page {ppa} without reverse mapping")
                lpas.append(lpa)
        if lpas:
            # Section 3.6: migrated pages are sorted by LPA and relearned,
            # exactly like a regular buffer flush.
            self._program_batch(sorted(set(lpas)), purpose=purpose)
        for block in blocks:
            if self.flash.valid_page_count(block):
                # A migrated LPA was overwritten concurrently; skip for now.
                continue
            self.flash.erase_block(block, now_us=self._now_us)
            if purpose == "gc":
                self.stats.gc_block_erases += 1
            self.allocator.release_block(block)

    def _collect_block(self, block: int, purpose: str) -> None:
        """Migrate and erase a single block (wear-leveling path)."""
        self._collect_blocks([block], purpose=purpose)

    # ------------------------------------------------------------------ #
    # Wear leveling
    # ------------------------------------------------------------------ #
    def _maybe_level_wear(self) -> None:
        leveler = self.wear_leveler
        if leveler is None or not leveler.due(self.flash):
            return
        if not leveler.imbalanced(self.flash):
            return
        for block in leveler.select_cold_blocks(self.flash, self.allocator):
            self._collect_block(block, purpose="wear")

    # ------------------------------------------------------------------ #
    # Trace replay
    # ------------------------------------------------------------------ #
    def process(self, op: str, lpa: int, npages: int = 1) -> None:
        """Apply one host request (``op`` is 'R' or 'W') spanning ``npages``."""
        if npages <= 0:
            raise ValueError("npages must be positive")
        if op not in ("R", "W"):
            raise ValueError(f"unknown operation {op!r}")
        for offset in range(npages):
            page = lpa + offset
            if page >= self.config.logical_pages:
                break
            if op == "R":
                self.read(page)
            else:
                self.write(page)

    def run(self, requests: Iterable[Tuple[str, int, int]], drain: bool = True) -> SSDStats:
        """Replay an iterable of ``(op, lpa, npages)`` requests."""
        for op, lpa, npages in requests:
            self.process(op, lpa, npages)
        if drain:
            self.flush()
        self.stats.simulated_time_us = max(
            self._now_us,
            max(
                (self.flash.channel_busy_until(c) for c in range(self.config.channels)),
                default=0.0,
            ),
        )
        return self.stats

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def mapping_table_bytes(self) -> int:
        """Current DRAM footprint of the FTL's mapping structures."""
        return self.ftl.resident_bytes()

    def describe(self) -> Dict[str, float]:
        """Flat summary used by the experiment harness."""
        summary = self.stats.summary()
        summary.update(
            {
                "cache_capacity_pages": float(self.cache.capacity_pages),
                "free_block_ratio": self.allocator.free_ratio(),
                "wear_imbalance": self.allocator.wear_imbalance(),
            }
        )
        return summary
