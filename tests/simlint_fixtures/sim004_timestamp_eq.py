# Fixture for SIM004 (no-float-timestamp-equality).  See sim001 fixture for
# the marker convention.  NOT imported — parsed by simlint only.


def bad_name_equality(start_us: float, finish_us: float) -> bool:
    return start_us == finish_us  # expect: SIM004


def bad_not_equal(timestamp_us: float) -> bool:
    return timestamp_us != 0.0  # expect: SIM004


def bad_seconds_suffix(elapsed_s: float, budget_s: float) -> bool:
    return elapsed_s == budget_s  # expect: SIM004


def bad_attribute(event, other) -> bool:
    return event.time_us == other.time_us  # expect: SIM004


def bad_call_result(loop) -> bool:
    return loop.horizon_us() == 0.0  # expect: SIM004


def bad_chained(a_us, b_us, c_us) -> bool:
    return a_us < b_us == c_us  # expect: SIM004


def suppressed(start_us: float) -> bool:
    return start_us == 0.0  # simlint: disable=SIM004


def ok_ordering(start_us: float, finish_us: float) -> bool:
    return start_us <= finish_us


def ok_none_check(deadline_us) -> bool:
    return deadline_us == None  # noqa: E711 — None compares are not SIM004's business


def ok_unrelated_names(op: str, pages: int) -> bool:
    return op == "R" and pages != 0


def ok_integer_ticks(start_tick: int, finish_tick: int) -> bool:
    # Integer tick counters are the sanctioned representation.
    return start_tick == finish_tick
