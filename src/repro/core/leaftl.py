"""LeaFTL: the learning-based flash translation layer (the paper's system).

LeaFTL plugs the log-structured learned mapping table into the generic FTL
interface used by the SSD model:

* ``update_batch`` learns new segments from every write-buffer flush or GC
  migration batch and triggers periodic segment compaction;
* ``translate`` resolves reads through the learned table, reporting how many
  levels were searched (Figure 23a) and whether the result may be
  approximate;
* ``resolve_misprediction`` implements the OOB-based correction of
  Section 3.5: given the OOB of the mispredicted page (which the read path
  already fetched), it locates the correct PPA among the stored reverse
  mappings of the ``[-gamma, +gamma]`` neighbourhood, so a misprediction
  costs exactly one extra flash read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import LeaFTLConfig
from repro.core.mapping_table import (
    LogStructuredMappingTable,
    LookupResult,
    iter_resolution_runs,
)
from repro.core.plr import LearnedSegment
from repro.flash.oob import OOBArea
from repro.ftl.base import FTL, TranslationResult


@dataclass
class LeaFTLStats:
    """LeaFTL-specific counters (on top of the generic FTL stats)."""

    lookups_resolved: int = 0
    approximate_lookups: int = 0
    mispredictions: int = 0
    oob_corrections: int = 0
    oob_correction_failures: int = 0
    compactions: int = 0
    #: histogram: levels searched -> number of lookups (Figure 23a).
    levels_histogram: Dict[int, int] = field(default_factory=dict)

    def record_levels(self, levels: int) -> None:
        self.levels_histogram[levels] = self.levels_histogram.get(levels, 0) + 1


class LeaFTL(FTL):
    """Learning-based FTL built on piecewise linear regression."""

    name = "LeaFTL"

    def __init__(
        self,
        config: Optional[LeaFTLConfig] = None,
        mapping_budget_bytes: Optional[int] = None,
    ) -> None:
        super().__init__(mapping_budget_bytes=mapping_budget_bytes)
        self.config = config or LeaFTLConfig()
        self.table = LogStructuredMappingTable(self.config)
        self.lea_stats = LeaFTLStats()
        self._writes_since_compaction = 0

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def gamma(self) -> int:
        return self.config.gamma

    def oob_window(self) -> int:
        """Reverse-mapping window the write path must store in each OOB."""
        return self.config.gamma

    # ------------------------------------------------------------------ #
    # FTL interface: translation
    # ------------------------------------------------------------------ #
    def translate(self, lpa: int) -> TranslationResult:
        self.stats.lookups += 1
        result: LookupResult = self.table.lookup(lpa)
        if not result.found:
            return TranslationResult(ppa=None, levels_searched=result.levels_searched)
        self.lea_stats.lookups_resolved += 1
        self.lea_stats.record_levels(max(result.levels_searched, 1))
        if result.approximate:
            self.lea_stats.approximate_lookups += 1
        return TranslationResult(
            ppa=result.ppa,
            levels_searched=result.levels_searched,
        )

    def translate_range(self, lpa: int, npages: int) -> List[TranslationResult]:
        """Resolve a contiguous run of LPAs with one segment walk per run.

        This is where the learned table's batching advantage materialises:
        a multi-page host command whose span is covered by one learned
        segment costs a *single* level walk and a single lookup charge, not
        one per page (see :meth:`LogStructuredMappingTable.lookup_range`).
        ``stats.lookups`` and the Figure 23a level histogram are charged per
        segment resolution, mirroring the mapping table's accounting.
        """
        if npages <= 0:
            raise ValueError("npages must be positive")
        lookups = self.table.lookup_range(lpa, npages)
        for _start, _stop, segment, depth in iter_resolution_runs(
            lookups, lpa, self.config.group_size
        ):
            self.stats.lookups += 1
            if segment is not None:
                self.lea_stats.lookups_resolved += 1
                self.lea_stats.record_levels(max(depth, 1))
                if not segment.accurate:
                    self.lea_stats.approximate_lookups += 1
        return [
            TranslationResult(ppa=found.ppa, levels_searched=found.levels_searched)
            for found in lookups
        ]

    def resolve_misprediction(
        self, lpa: int, predicted_ppa: int, oob: OOBArea
    ) -> Optional[int]:
        """Find the correct PPA from the OOB of the mispredicted page.

        The OOB stores the reverse mappings (LPAs) of the flash pages in
        ``[predicted_ppa - gamma, predicted_ppa + gamma]``.  The error bound
        of approximate segments guarantees the true PPA lies in that window,
        so scanning the (at most ``2 * gamma + 1``) entries yields the answer
        without any additional flash access beyond the read that fetched the
        OOB itself.
        """
        self.lea_stats.mispredictions += 1
        self.stats.mispredictions += 1
        gamma = self.config.gamma
        for index, neighbor_lpa in enumerate(oob.neighbor_lpas):
            if neighbor_lpa == lpa:
                self.lea_stats.oob_corrections += 1
                return predicted_ppa - gamma + index
        self.lea_stats.oob_correction_failures += 1
        return None

    # ------------------------------------------------------------------ #
    # FTL interface: updates
    # ------------------------------------------------------------------ #
    def update_batch(self, mappings: Sequence[Tuple[int, int]]) -> List[LearnedSegment]:
        learned = self.table.update(mappings)
        self.stats.updates += len(mappings)
        self._writes_since_compaction += len(mappings)
        if self._writes_since_compaction >= self.config.compaction_interval_writes:
            self.maintenance()
        return learned

    def maintenance(self) -> None:
        """Compact the learned table (Section 3.7, once per ~1M writes)."""
        self.table.compact()
        self.lea_stats.compactions += 1
        self._writes_since_compaction = 0

    def exists(self, lpa: int) -> bool:
        return self.table.exists(lpa)

    # ------------------------------------------------------------------ #
    # Power-fail recovery
    # ------------------------------------------------------------------ #
    def rebuild_from_oob(self, mappings: Sequence[Tuple[int, int]]) -> None:
        """Relearn the whole table from an OOB scan of valid flash pages.

        The old table is DRAM and died with the power; the scan's
        ``(lpa, ppa)`` pairs are re-learned batch-by-batch exactly like the
        original flushes were, producing a table that resolves every live
        LPA (possibly through different segments than before the crash —
        only translation *results* must match).  Charge-free by the
        recovery contract: the driver accounts the scan reads.
        """
        self.table = LogStructuredMappingTable(self.config)
        self._writes_since_compaction = 0
        if mappings:
            self.table.update(mappings)

    def serialize_checkpoint(self) -> bytes:
        """Lossless encoding of the learned table for a flash checkpoint."""
        return self.table.serialize_checkpoint()

    def restore_checkpoint(self, payload: bytes) -> None:
        """Replace the table with the checkpointed one (bit-exact lookups)."""
        self.table = LogStructuredMappingTable.from_checkpoint(payload, self.config)
        self._writes_since_compaction = 0

    def replay_mappings(self, mappings: Sequence[Tuple[int, int]]) -> None:
        """Re-learn mappings programmed after the checkpoint was taken.

        Replayed batches insert at level 0 and therefore shadow whatever
        stale mappings the checkpoint still holds for those LPAs — the same
        shadowing the live update path relies on.  Charge-free like
        :meth:`rebuild_from_oob`.
        """
        if mappings:
            self.table.update(mappings)

    # ------------------------------------------------------------------ #
    # Memory accounting
    # ------------------------------------------------------------------ #
    def resident_bytes(self) -> int:
        return self.table.memory_bytes()

    def full_mapping_bytes(self) -> int:
        return self.table.memory_bytes()

    def mapped_lpa_count(self) -> Optional[int]:
        return None

    # ------------------------------------------------------------------ #
    # Reporting helpers
    # ------------------------------------------------------------------ #
    def describe(self) -> Dict[str, float]:
        info = super().describe()
        accurate, approximate = self.table.segment_type_counts()
        info.update(
            {
                "gamma": float(self.config.gamma),
                "segments": float(self.table.segment_count()),
                "accurate_segments": float(accurate),
                "approximate_segments": float(approximate),
                "groups": float(self.table.group_count()),
                "crb_bytes": float(self.table.crb_bytes()),
                "compactions": float(self.lea_stats.compactions),
                "oob_corrections": float(self.lea_stats.oob_corrections),
            }
        )
        return info
