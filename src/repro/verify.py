"""Double-run determinism harness: ``python -m repro.verify``.

The static rules in ``tools/simlint`` forbid the constructs that make a
simulation depend on process state — wall-clock reads, unseeded RNGs,
set-iteration order, float-equality on timestamps.  This module is the
dynamic witness that those rules actually protect the property they
claim: it builds a scenario that exercises the event engine end to end
(mixed read/write tenants, background garbage collection, weighted-
round-robin arbitration), runs it twice from the same configuration and
seed, and compares a SHA-256 digest of the full processed-event trace
plus the device statistics.  Any nondeterminism that slips past the
linter — a new set iteration on a scheduling path, an unkeyed tie-break,
a clock read — shows up here as a digest mismatch.

The event digest hashes ``(time_us, kind, priority, seq)`` of every
event the loop processes, in processing order, with times rendered via
``float.hex()`` so the comparison is bit-exact.  The observer attaches
through :attr:`repro.ssd.ssd.SimulatedSSD.event_observer`, which covers
closed-loop, open-loop and multi-queue replays alike.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.multi_tenant import (
    NoisyNeighborScenario,
    build_tenant_host,
    reader_tenant,
    writer_tenant,
)
from repro.sim.events import Event

#: Arbiter exercised by the harness: weighted round-robin is the policy
#: with the most ordering-sensitive state (per-queue deficit counters).
VERIFY_ARBITER = "weighted_round_robin"


class EventTraceDigest:
    """Streaming SHA-256 over the processed-event sequence.

    Attach :meth:`observe` as an event-loop observer; the digest then
    commits to the exact interleaving the simulation executed — two runs
    with the same digest processed the same events, at the same times,
    in the same order.
    """

    def __init__(self) -> None:
        self._sha = hashlib.sha256()
        self.events_observed = 0

    def observe(self, event: Event) -> None:
        record = "|".join(
            (
                event.time_us.hex(),
                event.kind,
                str(event.priority),
                str(event.seq),
            )
        )
        self._sha.update(record.encode("utf-8"))
        self._sha.update(b"\n")
        self.events_observed += 1

    def hexdigest(self) -> str:
        return self._sha.hexdigest()


def stats_digest(summary: Dict[str, float]) -> str:
    """SHA-256 of a stats summary (sorted keys, exact float reprs)."""
    payload = json.dumps(summary, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class RunReport:
    """Everything one verification run commits to."""

    event_digest: str
    events_observed: int
    stats_digest: str
    summary: Dict[str, float]

    def matches(self, other: "RunReport") -> bool:
        return (
            self.event_digest == other.event_digest
            and self.events_observed == other.events_observed
            and self.stats_digest == other.stats_digest
        )


def verify_scenario(seed: int = 1234, scale: float = 1.0) -> NoisyNeighborScenario:
    """The canonical verification scenario.

    A small two-tenant device: a Zipf reader and a bursty sequential
    writer sharing channels under WRR arbitration, with background GC
    enabled and the writer namespace pre-filled far enough that reclaim
    actually runs during the measured phase.  ``seed`` perturbs the
    reader's Zipf stream; ``scale`` shrinks request counts for quick
    smoke runs.
    """
    return NoisyNeighborScenario(
        capacity_bytes=64 * 1024 * 1024,
        channels=4,
        dies_per_channel=4,
        pages_per_block=64,
        gc_mode="background",
        reader_pages=4096,
        reader_requests=max(16, int(1200 * scale)),
        reader_seed=seed,
        writer_requests=max(16, int(480 * scale)),
        writer_burst_length=16,
        writer_burst_gap_us=4_000.0,
        writer_prefill_fraction=0.75,
    )


def run_once(seed: int = 1234, scale: float = 1.0) -> RunReport:
    """One full run of the verification scenario; returns its report.

    The trace digest covers the measured phase only (warm-up fills run
    before the observer attaches), so reports are comparable even if the
    warm-up machinery changes shape.
    """
    scenario = verify_scenario(seed=seed, scale=scale)
    ssd, host = build_tenant_host(scenario, VERIFY_ARBITER)
    trace = EventTraceDigest()
    ssd.event_observer = trace.observe
    host.run([reader_tenant(scenario), writer_tenant(scenario)])
    summary = ssd.stats.summary()
    return RunReport(
        event_digest=trace.hexdigest(),
        events_observed=trace.events_observed,
        stats_digest=stats_digest(summary),
        summary=summary,
    )


def run_recovery_once(seed: int = 1234, scale: float = 1.0) -> RunReport:
    """One crash-and-recover run of the recovery determinism scenario.

    A small LeaFTL device under an overwrite-skewed burst with background
    GC and periodic mapping checkpoints is power-failed mid-burst (the
    crash timer chains behind the digest observer, so the crashing event
    itself is digested before it raises), then recovered via checkpoint +
    replay.  The event digest commits to the exact pre-crash interleaving;
    the stats digest commits to the post-recovery device state, including
    a full read-back of every acked LPA — so a nondeterministic recovery
    path (an unordered scan, an unstable replay order) shows up as a
    digest mismatch exactly like a nondeterministic scheduler would.
    """
    from repro.config import DRAMBudget, LeaFTLConfig, SSDConfig
    from repro.core.leaftl import LeaFTL
    from repro.ssd.recovery import (
        CrashTimer,
        PowerFailure,
        attach_checkpointer,
        recover,
    )
    from repro.ssd.ssd import SimulatedSSD, SSDOptions
    import random

    config = SSDConfig.tiny(
        capacity_bytes=24 * 1024 * 1024, overprovisioning=0.10
    )
    ssd = SimulatedSSD(
        config,
        LeaFTL(LeaFTLConfig(gamma=4, compaction_interval_writes=20_000)),
        dram_budget=DRAMBudget(dram_bytes=config.dram_size),
        options=SSDOptions(queue_depth=8, gc_mode="background", engine="events"),
    )
    attach_checkpointer(ssd, interval_pages=512)

    rng = random.Random(seed)
    footprint = int(config.logical_pages * 0.9)
    requests = [("W", lpa, 8) for lpa in range(0, footprint - 8, 8)]
    for _ in range(max(64, int(2200 * scale))):
        span = rng.randint(1, 8)
        lpa = int((rng.random() ** 4) * (footprint - span))
        requests.append(("W", lpa, span))

    trace = EventTraceDigest()
    timer = CrashTimer(
        after_kind="request_issue",
        kind_count=max(32, min(len(requests) - 64, 2600)),
    )

    def observer(event: Event) -> None:
        trace.observe(event)
        timer(event)

    ssd.event_observer = observer
    try:
        ssd.run(requests)
    except PowerFailure:
        pass
    if not timer.fired:
        raise RuntimeError("recovery scenario finished before the injected crash")
    oracle = ssd.power_fail()
    recover(ssd, mode="checkpoint_replay")
    if ssd._current_ppa != oracle:
        raise RuntimeError("recovery lost acked pages")
    # Read back every acked LPA: folds the whole recovered translation
    # path (table, cache, OOB corrections) into the stats digest.
    for lpa in sorted(oracle):
        ssd.read(lpa)
    summary = ssd.stats.summary()
    return RunReport(
        event_digest=trace.hexdigest(),
        events_observed=trace.events_observed,
        stats_digest=stats_digest(summary),
        summary=summary,
    )


@dataclass(frozen=True)
class VerifyResult:
    """Outcome of an N-run comparison."""

    identical: bool
    reports: Sequence[RunReport]

    @property
    def first(self) -> RunReport:
        return self.reports[0]


#: Scenario name -> single-run driver.  ``base`` is the multi-tenant WRR
#: scenario; ``recovery`` crashes and recovers a LeaFTL device.
SCENARIOS = {
    "base": run_once,
    "recovery": run_recovery_once,
}


def verify(
    seed: int = 1234, scale: float = 1.0, runs: int = 2, scenario: str = "base"
) -> VerifyResult:
    """Run a scenario ``runs`` times and compare every report."""
    if runs < 2:
        raise ValueError("verification needs at least two runs to compare")
    driver = SCENARIOS[scenario]
    reports: List[RunReport] = [driver(seed=seed, scale=scale) for _ in range(runs)]
    identical = all(report.matches(reports[0]) for report in reports[1:])
    return VerifyResult(identical=identical, reports=tuple(reports))


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description=(
            "Run the determinism scenario twice from the same seed and "
            "compare event-trace and stats digests; exit 1 on mismatch."
        ),
    )
    parser.add_argument("--seed", type=int, default=1234, help="workload seed")
    parser.add_argument(
        "--runs", type=int, default=2, help="number of runs to compare (default 2)"
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="request-count scale factor (smaller = faster smoke run)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the reports as JSON"
    )
    parser.add_argument(
        "--scenario",
        choices=sorted(SCENARIOS) + ["all"],
        default="all",
        help="which determinism scenario(s) to run (default: all)",
    )
    args = parser.parse_args(argv)

    names = sorted(SCENARIOS) if args.scenario == "all" else [args.scenario]
    results = {
        name: verify(seed=args.seed, scale=args.scale, runs=args.runs, scenario=name)
        for name in names
    }
    all_identical = all(result.identical for result in results.values())
    if args.json:
        payload = {
            "identical": all_identical,
            "scenarios": {
                name: {
                    "identical": result.identical,
                    "runs": [
                        {
                            "event_digest": report.event_digest,
                            "events_observed": report.events_observed,
                            "stats_digest": report.stats_digest,
                        }
                        for report in result.reports
                    ],
                }
                for name, result in results.items()
            },
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for name, result in results.items():
            for index, report in enumerate(result.reports):
                print(
                    f"{name} run {index}: events={report.events_observed} "
                    f"trace={report.event_digest[:16]}… "
                    f"stats={report.stats_digest[:16]}…"
                )
            verdict = "identical" if result.identical else "MISMATCH"
            print(f"{name}: {len(result.reports)} runs {verdict}")
    return 0 if all_identical else 1


if __name__ == "__main__":
    sys.exit(main())
