"""Statistics collected by the SSD simulator.

The benchmarks derive every paper figure from this single statistics object:

* request latencies  → Figure 16/17/21/22 (average, normalized) and
  Figure 18 (latency CDF);
* flash operation counters → Figure 25 (write amplification factor);
* translation counters → DFTL/SFTL translation-page overhead;
* misprediction counters → Figure 24;
* mapping-table footprint samples → Figure 15/19.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


class LatencyRecorder:
    """Records per-request latencies with a bounded-memory reservoir.

    All latencies contribute to the running sum/count (exact mean), while a
    reservoir of at most ``reservoir_size`` samples supports percentile and
    CDF queries without storing millions of floats.  Once the reservoir is
    full, uniform reservoir sampling (Vitter's algorithm R) keeps every
    recorded latency equally likely to be retained — unlike every-k-th
    striding, which systematically misses periodic tail events.  The
    sampling RNG is a fixed per-instance seed, so percentile results are
    reproducible run-to-run even past the reservoir bound (golden pins no
    longer depend on the sample count staying under ``reservoir_size``).
    """

    def __init__(self, reservoir_size: int = 100_000, seed: int = 0x1A7E) -> None:
        if reservoir_size <= 0:
            raise ValueError("reservoir_size must be positive")
        self._reservoir_size = reservoir_size
        self._rng = random.Random(seed)
        self._samples: List[float] = []
        #: Sorted view of the reservoir, rebuilt lazily on the first
        #: percentile query after a record (summaries ask for several
        #: percentiles back to back; one sort serves them all).
        self._sorted: Optional[List[float]] = None
        self._count = 0
        self._sum = 0.0
        self._max = 0.0
        self._min = math.inf

    def record(self, latency_us: float) -> None:
        self._count += 1
        self._sum += latency_us
        if latency_us > self._max:
            self._max = latency_us
        if latency_us < self._min:
            self._min = latency_us
        self._sorted = None
        if len(self._samples) < self._reservoir_size:
            self._samples.append(latency_us)
        else:
            # Algorithm R: replace a random slot with probability size/count.
            slot = self._rng.randrange(self._count)
            if slot < self._reservoir_size:
                self._samples[slot] = latency_us

    @property
    def count(self) -> int:
        return self._count

    @property
    def total_us(self) -> float:
        return self._sum

    @property
    def mean_us(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def max_us(self) -> float:
        return self._max if self._count else 0.0

    @property
    def min_us(self) -> float:
        return self._min if self._count else 0.0

    def percentile(self, pct: float) -> float:
        """Latency at percentile ``pct`` (0-100), from the reservoir."""
        if not self._samples:
            return 0.0
        if not 0.0 <= pct <= 100.0:
            raise ValueError("pct must be in [0, 100]")
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        ordered = self._sorted
        rank = min(len(ordered) - 1, int(round(pct / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def cdf(self, points: Sequence[float] = (0, 30, 60, 90, 99, 99.9)) -> Dict[float, float]:
        """Latency at the given CDF points (mirrors Figure 18's x-axis)."""
        return {p: self.percentile(p) for p in points}

    def samples(self) -> List[float]:
        """A copy of the sampled latencies (for plotting/analysis)."""
        return list(self._samples)


@dataclass
class SSDStats:
    """All counters exposed by :class:`repro.ssd.ssd.SimulatedSSD`."""

    # Host-visible traffic.
    host_reads: int = 0
    host_writes: int = 0
    host_read_pages: int = 0
    host_write_pages: int = 0
    unmapped_reads: int = 0
    #: Pages of host requests that ran past the end of the logical space and
    #: were clipped (not served).  Non-zero means the trace was not scaled
    #: to the device — silently invisible before this counter existed.
    clipped_pages: int = 0

    # Where reads were served from.
    buffer_hits: int = 0
    cache_hits: int = 0
    flash_reads_for_host: int = 0

    # Flash traffic breakdown (pages).
    data_page_writes: int = 0
    gc_page_reads: int = 0
    gc_page_writes: int = 0
    gc_block_erases: int = 0
    wl_page_moves: int = 0
    translation_page_reads: int = 0
    translation_page_writes: int = 0
    #: Pages programmed to persist mapping checkpoints (zero unless a
    #: :class:`repro.ssd.recovery.MappingCheckpointer` is attached).  These
    #: count toward :attr:`total_flash_page_writes`, so enabling periodic
    #: checkpoints shows up in the write-amplification factor.
    checkpoint_page_writes: int = 0

    # Durability events (power-fail injection, :mod:`repro.ssd.recovery`).
    #: Injected power failures survived by this device.
    power_failures: int = 0
    #: Buffered (unflushed, never host-durable) pages discarded at power
    #: failure.  These writes were acknowledged from DRAM only; losing them
    #: is within the crash contract, but the count makes the loss visible.
    buffered_pages_lost: int = 0
    #: Flash pages whose OOB was read by recovery scans.
    oob_scan_reads: int = 0

    # Address translation behaviour.
    translation_lookups: int = 0
    mispredictions: int = 0
    misprediction_extra_reads: int = 0

    # Background activity.
    buffer_flushes: int = 0
    gc_invocations: int = 0
    #: GC activations that ran as a background event pipeline (a subset of
    #: ``gc_invocations``; the remainder ran synchronously).
    gc_background_runs: int = 0
    #: Victim blocks accepted for migration by GC (background or sync).
    gc_victim_blocks: int = 0
    #: Urgent (hard-watermark) synchronous reclaims that throttled writes.
    gc_urgent_collections: int = 0
    #: Total time host writes were stalled behind urgent reclaims (us).
    gc_write_throttle_us: float = 0.0
    compactions: int = 0

    # Concurrency (event-driven engine).
    #: Host requests admitted by the replay frontend (commands, not pages;
    #: the serial fast path counts each replayed request as one command).
    requests_submitted: int = 0
    #: Host requests whose completion the frontend observed.
    requests_completed: int = 0
    #: Time foreground data reads spent queued behind busy channels (us) —
    #: the direct measure of reads delayed by flush/GC/other-request traffic.
    read_stall_us: float = 0.0
    #: Events processed by the event loop (0 for the synchronous fast path).
    events_processed: int = 0
    #: Background flash completions (flush programs, GC migrations, erases)
    #: observed by the event loop while host requests were in flight.
    background_completions: int = 0
    #: Largest number of host requests simultaneously outstanding.
    max_outstanding_requests: int = 0

    # Timing.
    #: Absolute device clock at the end of the replay (includes warm-up).
    simulated_time_us: float = 0.0
    #: Replay makespan since the last ``SimulatedSSD.begin_measurement()``
    #: (equals ``simulated_time_us`` when no measurement anchor was set).
    measured_time_us: float = 0.0

    read_latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    write_latency: LatencyRecorder = field(default_factory=LatencyRecorder)

    # Mapping-table footprint samples (bytes), recorded at every flush.
    mapping_bytes_samples: List[int] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Derived metrics
    # ------------------------------------------------------------------ #
    @property
    def total_requests(self) -> int:
        return self.host_reads + self.host_writes

    @property
    def cache_hit_ratio(self) -> float:
        served = self.buffer_hits + self.cache_hits + self.flash_reads_for_host
        if served == 0:
            return 0.0
        return (self.buffer_hits + self.cache_hits) / served

    @property
    def total_flash_page_writes(self) -> int:
        """Every flash page program issued, regardless of purpose."""
        return (
            self.data_page_writes
            + self.gc_page_writes
            + self.wl_page_moves
            + self.translation_page_writes
            + self.checkpoint_page_writes
        )

    @property
    def write_amplification(self) -> float:
        """WAF = physical flash writes / host page writes (Figure 25)."""
        if self.host_write_pages == 0:
            return 0.0
        return self.total_flash_page_writes / self.host_write_pages

    @property
    def misprediction_ratio(self) -> float:
        """Fraction of translated flash-page accesses that mispredicted (Fig. 24)."""
        if self.translation_lookups == 0:
            return 0.0
        return self.mispredictions / self.translation_lookups

    @property
    def mean_latency_us(self) -> float:
        """Mean latency over reads and writes combined."""
        total = self.read_latency.count + self.write_latency.count
        if total == 0:
            return 0.0
        return (self.read_latency.total_us + self.write_latency.total_us) / total

    @property
    def mean_mapping_bytes(self) -> float:
        if not self.mapping_bytes_samples:
            return 0.0
        return sum(self.mapping_bytes_samples) / len(self.mapping_bytes_samples)

    @property
    def peak_mapping_bytes(self) -> int:
        return max(self.mapping_bytes_samples) if self.mapping_bytes_samples else 0

    def summary(self) -> Dict[str, float]:
        """A flat dictionary convenient for table printing.

        Every WAF input is a first-class key here — ``data_page_writes``
        through ``checkpoint_page_writes`` — not just the final ratio, so
        a report can show *where* the amplification came from.  Adding a
        key changes the determinism harness's stats digest (its goldens
        in ``tests/test_layout_bitexact.py`` are re-pinned deliberately);
        the event digests are unaffected.
        """
        return {
            "host_reads": float(self.host_reads),
            "host_writes": float(self.host_writes),
            "host_read_pages": float(self.host_read_pages),
            "host_write_pages": float(self.host_write_pages),
            "unmapped_reads": float(self.unmapped_reads),
            "buffer_hits": float(self.buffer_hits),
            "cache_hits": float(self.cache_hits),
            "flash_reads_for_host": float(self.flash_reads_for_host),
            "cache_hit_ratio": self.cache_hit_ratio,
            "mean_latency_us": self.mean_latency_us,
            "read_p50_us": self.read_latency.percentile(50),
            "read_p95_us": self.read_latency.percentile(95),
            "read_p99_us": self.read_latency.percentile(99),
            "write_p95_us": self.write_latency.percentile(95),
            "write_p99_us": self.write_latency.percentile(99),
            # WAF and each flash-write class feeding it.
            "write_amplification": self.write_amplification,
            "data_page_writes": float(self.data_page_writes),
            "gc_page_reads": float(self.gc_page_reads),
            "gc_page_writes": float(self.gc_page_writes),
            "gc_block_erases": float(self.gc_block_erases),
            "wl_page_moves": float(self.wl_page_moves),
            "translation_page_reads": float(self.translation_page_reads),
            "translation_page_writes": float(self.translation_page_writes),
            "checkpoint_page_writes": float(self.checkpoint_page_writes),
            "total_flash_page_writes": float(self.total_flash_page_writes),
            "translation_lookups": float(self.translation_lookups),
            "mispredictions": float(self.mispredictions),
            "misprediction_extra_reads": float(self.misprediction_extra_reads),
            "misprediction_ratio": self.misprediction_ratio,
            "compactions": float(self.compactions),
            "simulated_time_us": self.simulated_time_us,
            "measured_time_us": self.measured_time_us,
            "mean_mapping_bytes": self.mean_mapping_bytes,
            "peak_mapping_bytes": float(self.peak_mapping_bytes),
            "buffer_flushes": float(self.buffer_flushes),
            "gc_invocations": float(self.gc_invocations),
            "gc_background_runs": float(self.gc_background_runs),
            "gc_victim_blocks": float(self.gc_victim_blocks),
            "gc_urgent_collections": float(self.gc_urgent_collections),
            "gc_write_throttle_us": self.gc_write_throttle_us,
            "read_stall_us": self.read_stall_us,
            "requests_submitted": float(self.requests_submitted),
            "requests_completed": float(self.requests_completed),
            "max_outstanding_requests": float(self.max_outstanding_requests),
            "events_processed": float(self.events_processed),
            "background_completions": float(self.background_completions),
            "clipped_pages": float(self.clipped_pages),
            # Durability counters (power-fail injection + recovery).
            "power_failures": float(self.power_failures),
            "buffered_pages_lost": float(self.buffered_pages_lost),
            "oob_scan_reads": float(self.oob_scan_reads),
        }
