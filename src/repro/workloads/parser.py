"""Parser for MSR-Cambridge-format block traces.

The MSR Cambridge traces (and the FIU traces re-published in the same
format) are CSV files with one request per line::

    Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime

where ``Timestamp`` is in Windows filetime units (100 ns ticks),
``Type`` is ``Read`` or ``Write``, ``Offset`` and ``Size`` are in bytes.
If you have access to the original traces, this parser converts them into
the page-granular :class:`repro.workloads.trace.Trace` the simulator
replays, so the synthetic stand-ins can be swapped for the real inputs
without touching the rest of the pipeline.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.workloads.trace import IORequest, READ, Trace, WRITE

#: Windows filetime ticks per microsecond.
_TICKS_PER_US = 10


class TraceParseError(ValueError):
    """Raised when a trace line cannot be interpreted."""


def _parse_ticks(timestamp_raw: str) -> float:
    """Filetime ticks of one line, kept exact (int) whenever possible."""
    if not timestamp_raw:
        return 0
    try:
        return int(timestamp_raw)
    except ValueError:
        return float(timestamp_raw)


def parse_msr_line(
    line: str, page_size: int, base_ticks: float = 0
) -> Optional[IORequest]:
    """Parse one CSV line; returns ``None`` for empty/comment lines.

    ``base_ticks`` (filetime ticks) is subtracted from the timestamp
    *before* the tick-to-microsecond conversion.  Absolute filetimes are
    ~1.3e17 ticks, where a float64 only resolves ~3 us — rebasing against
    the trace's first arrival in exact integer arithmetic preserves the
    trace's full 100 ns arrival resolution for open-loop replay.
    """
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    fields = stripped.split(",")
    if len(fields) < 6:
        raise TraceParseError(f"expected at least 6 CSV fields, got {len(fields)}: {line!r}")
    timestamp_raw, _host, _disk, op_raw, offset_raw, size_raw = fields[:6]
    op_name = op_raw.strip().lower()
    if op_name in ("read", "r"):
        op = READ
    elif op_name in ("write", "w"):
        op = WRITE
    else:
        raise TraceParseError(f"unknown operation {op_raw!r} in line {line!r}")
    try:
        offset = int(offset_raw)
        size = int(size_raw)
        timestamp = (_parse_ticks(timestamp_raw) - base_ticks) / _TICKS_PER_US
    except ValueError as exc:
        raise TraceParseError(f"non-numeric field in line {line!r}") from exc
    if size <= 0:
        size = page_size
    # Page span from the first and last byte touched: a request whose byte
    # range crosses a page boundary touches one more page than size alone
    # suggests (e.g. 4 KB starting at offset 2 KB spans two 4 KB pages).
    lpa = offset // page_size
    last_page = (offset + size - 1) // page_size
    npages = last_page - lpa + 1
    return IORequest(op, lpa, npages, timestamp_us=timestamp)


def parse_msr_trace(
    source: Union[str, Path, io.TextIOBase, Iterable[str]],
    name: str = "msr-trace",
    page_size: int = 4096,
    max_requests: Optional[int] = None,
) -> Trace:
    """Parse an MSR-format CSV trace from a path, file object or line iterable.

    Timestamps are rebased so the first request arrives at 0 us; only the
    inter-arrival structure matters for replay, and the rebase keeps the
    100 ns trace resolution that absolute filetimes would lose to float64
    rounding.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return parse_msr_trace(handle, name=name, page_size=page_size, max_requests=max_requests)

    requests: List[IORequest] = []
    base_ticks: Optional[float] = None
    for line in source:
        if base_ticks is None:
            stripped = line.strip()
            if stripped and not stripped.startswith("#"):
                try:
                    base_ticks = _parse_ticks(stripped.split(",", 1)[0])
                except ValueError:
                    base_ticks = None  # parse_msr_line reports the bad line

        request = parse_msr_line(line, page_size, base_ticks=base_ticks or 0)
        if request is None:
            continue
        requests.append(request)
        if max_requests is not None and len(requests) >= max_requests:
            break
    return Trace(name, requests)


def write_msr_trace(trace: Trace, destination: Union[str, Path, io.TextIOBase], page_size: int = 4096) -> None:
    """Write a trace back out in MSR CSV format (inverse of the parser)."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8", newline="") as handle:
            write_msr_trace(trace, handle, page_size=page_size)
            return
    writer = csv.writer(destination)
    for request in trace:
        writer.writerow(
            [
                int(request.timestamp_us * _TICKS_PER_US),
                "host0",
                0,
                "Read" if request.is_read else "Write",
                request.lpa * page_size,
                request.npages * page_size,
                0,
            ]
        )
