"""Figure 20: accurate vs approximate segment mix as gamma grows.

With gamma = 0 every learned segment is accurate; the paper reports ~26.5%
approximate segments at gamma = 16.
"""

from __future__ import annotations

from repro.analysis.report import print_report, render_table
from repro.experiments.segments import segment_type_shares

from benchmarks.conftest import CORE_SIMULATOR_WORKLOADS, memory_scale, run_once

GAMMAS = (0, 1, 4, 16)


def test_fig20_segment_type_distribution(benchmark):
    shares = run_once(
        benchmark, segment_type_shares, CORE_SIMULATOR_WORKLOADS, GAMMAS, memory_scale()
    )

    rows = [[f"gamma={gamma}", round(acc, 1), round(apx, 1)] for gamma, (acc, apx) in shares.items()]
    print_report(render_table(
        ["configuration", "accurate %", "approximate %"], rows,
        title="Figure 20: learned segment types"))

    assert shares[0][1] == 0.0, "gamma=0 must produce only accurate segments"
    assert shares[16][1] > shares[1][1], "approximate share must grow with gamma"
    assert shares[16][1] > 5.0
