"""Figure 15: mapping-table size reduction of LeaFTL vs DFTL and SFTL.

The paper reports a 7.5-37.7x reduction over DFTL and up to 5.3x (2.9x on
average) over SFTL with gamma = 0.  The synthetic workload stand-ins give
smaller absolute factors (see EXPERIMENTS.md) but the same ordering:
LeaFTL < SFTL < DFTL for every workload.
"""

from __future__ import annotations

from repro.analysis.memory import format_bytes
from repro.analysis.report import print_report, render_table
from repro.experiments.memory import average_reduction, mapping_footprints

from benchmarks.conftest import CORE_SIMULATOR_WORKLOADS, memory_scale, run_once


def test_fig15_mapping_table_reduction(benchmark):
    footprints = run_once(
        benchmark,
        mapping_footprints,
        CORE_SIMULATOR_WORKLOADS,
        ("DFTL", "SFTL", "LeaFTL"),
        0,
        memory_scale(),
    )

    rows = []
    for workload, by_scheme in footprints.items():
        rows.append([
            workload,
            format_bytes(by_scheme["DFTL"]),
            format_bytes(by_scheme["SFTL"]),
            format_bytes(by_scheme["LeaFTL"]),
            round(by_scheme["DFTL"] / by_scheme["LeaFTL"], 1),
            round(by_scheme["SFTL"] / by_scheme["LeaFTL"], 1),
        ])
    print_report(render_table(
        ["workload", "DFTL", "SFTL", "LeaFTL", "reduction vs DFTL", "reduction vs SFTL"],
        rows, title="Figure 15: mapping table footprint (gamma = 0)"))

    print(f"average reduction vs DFTL: {average_reduction(footprints, 'DFTL'):.1f}x "
          f"(paper: 7.5-37.7x)")
    print(f"average reduction vs SFTL: {average_reduction(footprints, 'SFTL'):.1f}x "
          f"(paper: 2.9x average)")

    for workload, by_scheme in footprints.items():
        assert by_scheme["LeaFTL"] < by_scheme["SFTL"] < by_scheme["DFTL"], workload
    assert average_reduction(footprints, "DFTL") > 3.0
    assert average_reduction(footprints, "SFTL") > 1.3
