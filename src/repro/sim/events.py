"""A deterministic time-ordered event loop (the heart of the sim engine).

The loop owns the simulated clock.  Components schedule :class:`Event`
objects at absolute times; the loop pops them in ``(time, priority,
schedule-order)`` order and invokes their callbacks.  Two events with the
same timestamp and priority always fire in the order they were scheduled,
which makes every simulation run bit-reproducible — a property the
regression tests rely on when comparing the event-driven engine against the
synchronous fast path.

The design follows the classic discrete-event simulator split used by
WiscSee and FTL-SIM: an ``EventLoop`` plus a host frontend
(:mod:`repro.sim.frontend`) that admits requests at a configurable queue
depth, and resource schedulers (:mod:`repro.sim.nand`) that serialize
operations on shared hardware.

Queue layout
------------

Most events in a replay are fixed-latency NAND completions, so many share
the exact same timestamp.  Instead of one global heap entry per event, the
loop keeps a *calendar* of per-timestamp buckets: a small heap of distinct
fire times plus, for each time, a slot holding that instant's events ordered
by ``(priority, seq)``.  A full trace replay then pays one time-heap
operation per distinct timestamp rather than per event, and ``run()``
dispatches a whole same-timestamp batch without re-consulting the time
heap.  Events scheduled *at the current instant* by a firing callback land
in the live bucket and are interleaved by ``(priority, seq)`` exactly as
the single-heap implementation interleaved them, so the processed-event
order — and therefore every digest — is unchanged.

``Event`` is a plain ``__slots__`` class, and events that fire inside
``run()`` are recycled through a free list: production code never retains
an event past its callback (``schedule()``'s return value is only used by
tests, pre-fire), so recycling is invisible outside the loop.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Tuple

#: Canonical event priorities.  Same-timestamp events fire in ascending
#: priority order, so foreground request handling always precedes background
#: completion bookkeeping, which precedes garbage-collection pipeline steps.
#: Keeping the ordering in one place makes the interleaving semantics of the
#: whole simulator auditable (and deterministic by construction).
PRIORITY_FOREGROUND = 0
PRIORITY_BACKGROUND = 1
PRIORITY_GC = 2


class SimulationLimitError(RuntimeError):
    """``EventLoop.run()`` hit its ``max_events`` backstop mid-simulation.

    A silent stop would truncate the replay and corrupt every derived
    statistic, so the loop fails loudly instead.  ``events_processed``
    carries how many events the interrupted ``run()`` call had dispatched.
    """

    def __init__(self, max_events: int, events_processed: int) -> None:
        super().__init__(
            f"event loop exceeded {max_events} events "
            f"({events_processed} processed in this run); the simulation is "
            "incomplete — raise max_events or shorten the trace"
        )
        self.max_events = max_events
        self.events_processed = events_processed


class Event:
    """One scheduled occurrence in simulated time.

    Attributes
    ----------
    time_us:
        Absolute simulated time at which the event fires.
    kind:
        Free-form tag (``"request_issue"``, ``"gc_program_done"``, ...)
        used by tests and tracing.
    callback:
        Invoked as ``callback(event)`` when the event fires; ``None`` makes
        the event a pure timestamp marker.
    payload:
        Arbitrary data carried to the callback.
    priority:
        Tie-breaker for same-timestamp events; lower fires first.
    seq:
        Monotonic schedule order, assigned by the loop (final tie-breaker).
    """

    __slots__ = ("time_us", "kind", "callback", "payload", "priority", "seq", "cancelled")

    def __init__(
        self,
        time_us: float,
        kind: str,
        callback: Optional[Callable[["Event"], None]] = None,
        payload: object = None,
        priority: int = 0,
        seq: int = -1,
        cancelled: bool = False,
    ) -> None:
        self.time_us = time_us
        self.kind = kind
        self.callback = callback
        self.payload = payload
        self.priority = priority
        self.seq = seq
        self.cancelled = cancelled

    def cancel(self) -> None:
        """Prevent the callback from running when the event fires."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Event(time_us={self.time_us!r}, kind={self.kind!r}, "
            f"priority={self.priority!r}, seq={self.seq!r})"
        )


class EventLoop:
    """A time-ordered event queue with a monotonic simulated clock."""

    def __init__(self, start_us: float = 0.0) -> None:
        self._now_us = start_us
        #: Heap of distinct fire times; one entry per live bucket.
        self._times: List[float] = []
        #: fire time -> heap of (priority, seq, event) slots.
        self._buckets: Dict[float, List[Tuple[int, int, Event]]] = {}
        self._pending = 0
        self._seq = 0
        #: Recycled Event objects (filled by ``run()``, drained by ``schedule``).
        self._pool: List[Event] = []
        self.events_processed = 0
        #: Called with every processed event, before its callback runs.
        #: The determinism harness (:mod:`repro.verify`) hangs a trace
        #: digest here; ``None`` keeps the hot path branch-only.
        self.observer: Optional[Callable[[Event], None]] = None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def now_us(self) -> float:
        """Current simulated time (time of the last processed event)."""
        return self._now_us

    @property
    def pending(self) -> int:
        """Number of events still scheduled (cancelled ones included)."""
        return self._pending

    def __len__(self) -> int:
        return self._pending

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next event, or ``None`` when the queue is empty."""
        times = self._times
        buckets = self._buckets
        while times:
            time_us = times[0]
            bucket = buckets.get(time_us)
            if bucket:
                return time_us
            # Stale calendar slot (its events were all consumed); drop it.
            heapq.heappop(times)
            if bucket is not None:
                del buckets[time_us]
        return None

    def chain_observer(self, fn: Callable[[Event], None]) -> None:
        """Attach ``fn`` as an observer without displacing the current one.

        The determinism harness installs a digest observer and the
        power-fail injector installs a crash timer; chaining lets both see
        every event (existing observer first, then ``fn``) so crash points
        land at identical event indices with or without digesting.
        """
        current = self.observer
        if current is None:
            self.observer = fn
            return

        def chained(event: Event, _first: Callable[[Event], None] = current) -> None:
            _first(event)
            fn(event)

        self.observer = chained

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def schedule(
        self,
        time_us: float,
        kind: str,
        callback: Optional[Callable[[Event], None]] = None,
        payload: object = None,
        priority: int = 0,
    ) -> Event:
        """Schedule an event at ``time_us`` (clamped to the present).

        Scheduling in the past would make the clock run backwards, so such
        requests are clamped to ``now_us`` — they fire "immediately", after
        any event already scheduled for the current instant.
        """
        now = self._now_us
        fire_at = time_us if time_us >= now else now
        seq = self._seq
        self._seq = seq + 1
        pool = self._pool
        if pool:
            event = pool.pop()
            event.time_us = fire_at
            event.kind = kind
            event.callback = callback
            event.payload = payload
            event.priority = priority
            event.seq = seq
            event.cancelled = False
        else:
            event = Event(
                time_us=fire_at,
                kind=kind,
                callback=callback,
                payload=payload,
                priority=priority,
                seq=seq,
            )
        bucket = self._buckets.get(fire_at)
        if bucket is None:
            self._buckets[fire_at] = [(priority, seq, event)]
            heapq.heappush(self._times, fire_at)
        else:
            heapq.heappush(bucket, (priority, seq, event))
        self._pending += 1
        return event

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def step(self) -> Optional[Event]:
        """Process the next event; returns it, or ``None`` if queue is empty.

        Events returned here are never recycled — callers (tests, mostly)
        may keep them.
        """
        times = self._times
        buckets = self._buckets
        while times:
            time_us = times[0]
            bucket = buckets.get(time_us)
            if not bucket:
                heapq.heappop(times)
                if bucket is not None:
                    del buckets[time_us]
                continue
            _, _, event = heapq.heappop(bucket)
            self._pending -= 1
            if event.cancelled:
                continue
            self._now_us = time_us
            self.events_processed += 1
            if self.observer is not None:
                self.observer(event)
            if event.callback is not None:
                event.callback(event)
            return event
        return None

    def run(self, until_us: Optional[float] = None, max_events: int = 50_000_000) -> int:
        """Drain the queue (optionally only up to ``until_us``); returns count.

        Dispatches bucket-at-a-time: all events sharing a timestamp fire in
        one inner loop without touching the time heap.  ``max_events`` is a
        runaway-loop backstop, far above anything a real trace replay
        schedules; hitting it raises :class:`SimulationLimitError` rather
        than silently returning a truncated simulation.
        """
        processed = 0
        times = self._times
        buckets = self._buckets
        pool = self._pool
        while times and processed < max_events:
            time_us = times[0]
            bucket = buckets.get(time_us)
            if not bucket:
                heapq.heappop(times)
                if bucket is not None:
                    del buckets[time_us]
                continue
            if bucket[0][2].cancelled:
                # Drop cancelled entries first so the time bound is checked
                # against the next event that would actually fire.
                heapq.heappop(bucket)
                self._pending -= 1
                continue
            if until_us is not None and time_us > until_us:
                break
            # Batched dispatch: drain this instant's bucket.  Callbacks may
            # schedule more events at the current time; they join this same
            # bucket and are interleaved by (priority, seq) as always.
            self._now_us = time_us
            while bucket and processed < max_events:
                _, _, event = heapq.heappop(bucket)
                self._pending -= 1
                if event.cancelled:
                    continue
                self.events_processed += 1
                processed += 1
                if self.observer is not None:
                    self.observer(event)
                callback = event.callback
                if callback is not None:
                    callback(event)
                # The event is dead; recycle it (nothing outside the loop
                # holds events fired by run()).
                event.callback = None
                event.payload = None
                pool.append(event)
            if not bucket:
                del buckets[time_us]
                heapq.heappop(times)
        if processed >= max_events:
            raise SimulationLimitError(max_events, processed)
        return processed
