"""Shared pytest fixtures."""

from __future__ import annotations

import random

import pytest

from repro.config import DRAMBudget, LeaFTLConfig, SSDConfig
from repro.core.leaftl import LeaFTL
from repro.ssd.ssd import SimulatedSSD


@pytest.fixture
def tiny_config() -> SSDConfig:
    """A small device that keeps unit tests fast."""
    return SSDConfig.tiny()


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)


def make_ssd(
    ftl=None,
    config: SSDConfig | None = None,
    gamma: int = 0,
    dram_bytes: int | None = None,
    **ssd_kwargs,
) -> SimulatedSSD:
    """Build a small SSD with the given FTL (LeaFTL by default)."""
    config = config or SSDConfig.tiny()
    if ftl is None:
        ftl = LeaFTL(LeaFTLConfig(gamma=gamma, compaction_interval_writes=10_000))
    budget = DRAMBudget(dram_bytes=dram_bytes or config.dram_size)
    return SimulatedSSD(config=config, ftl=ftl, dram_budget=budget, **ssd_kwargs)


@pytest.fixture
def tiny_leaftl_ssd() -> SimulatedSSD:
    return make_ssd()
