#!/usr/bin/env python3
"""Compare DFTL, SFTL and LeaFTL on database-style workloads (paper Figure 17).

Run with::

    python examples/database_workload.py [--workloads TPCC SEATS] [--scale 0.1]

This mirrors the paper's real-SSD evaluation: TPC-C / AuctionMark / SEATS /
OLTP / CompFlow-shaped block traffic is replayed against the simulator with
each FTL scheme, and the normalized read performance, mapping-table footprint
and write amplification are printed side by side.
"""

from __future__ import annotations

import argparse

from repro.analysis.memory import format_bytes
from repro.analysis.report import print_report, render_table
from repro.experiments.common import ExperimentSetup, REAL_SSD_WORKLOADS, run_schemes


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workloads", nargs="+", default=["TPCC", "SEATS", "OLTP"],
        choices=REAL_SSD_WORKLOADS, help="database workloads to replay",
    )
    parser.add_argument(
        "--scale", type=float, default=0.1,
        help="fraction of each workload's requests to replay (default 0.1)",
    )
    parser.add_argument("--gamma", type=int, default=0, help="LeaFTL error bound")
    args = parser.parse_args()

    setup = ExperimentSetup(request_scale=args.scale, gamma=args.gamma)

    rows = []
    for workload in args.workloads:
        print(f"running {workload} (DFTL, SFTL, LeaFTL) ...")
        results = run_schemes(workload, setup)
        baseline = results["DFTL"].read_mean_latency_us or 1.0
        for scheme, result in results.items():
            rows.append(
                [
                    workload,
                    scheme,
                    round(result.read_mean_latency_us / baseline, 3),
                    round(result.cache_hit_ratio, 3),
                    format_bytes(result.mapping_full_bytes),
                    round(result.write_amplification, 3),
                    round(100 * result.misprediction_ratio, 2),
                ]
            )

    print_report(
        render_table(
            ["workload", "scheme", "norm. read latency", "cache hit",
             "mapping table", "WAF", "mispredict %"],
            rows,
            title="Database workloads: DFTL vs SFTL vs LeaFTL (lower latency is better)",
        )
    )


if __name__ == "__main__":
    main()
