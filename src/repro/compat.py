"""Optional-dependency shims.

The simulator's hot paths use numpy for vectorized page-state scans and
batch segment evaluation, but every numpy call site keeps a pure-Python
fallback so the package stays importable — and the full test suite runnable
— on an interpreter without numpy.  Import ``np``/``HAVE_NUMPY`` from here
instead of importing numpy directly; fallback paths are selected on
``HAVE_NUMPY`` and must produce bit-identical results (the vectorized code
performs the same IEEE-754 double operations as the scalar code, and the
differential digest tests hold on both paths).
"""

from __future__ import annotations

from typing import Any

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - numpy is present in CI
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

__all__ = ["np", "HAVE_NUMPY"]


def require_numpy(feature: str) -> Any:
    """Return ``np`` or raise a clear error naming the feature that needs it."""
    if not HAVE_NUMPY:
        raise RuntimeError(f"{feature} requires numpy, which is not installed")
    return np
