"""Controller write buffer.

Modern SSD controllers buffer incoming writes and program them to flash a
whole block at a time, both to exploit internal parallelism and to avoid the
open-block problem.  LeaFTL piggybacks on this buffer (Section 3.3): before a
flush, the buffered pages are **sorted by LPA** so that ascending LPAs are
mapped to the ascending PPAs of the freshly allocated block, which produces
monotonic, easily-learnable LPA→PPA patterns.

The ``sort_on_flush`` switch exists so the ablation benchmark can measure how
much of LeaFTL's memory saving comes from this co-design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass
class WriteBufferStats:
    """Counters describing buffer behaviour."""

    writes: int = 0
    overwrites: int = 0
    flushes: int = 0
    pages_flushed: int = 0
    #: Buffered pages lost to power failure (never reached flash).
    discarded: int = 0


class WriteBuffer:
    """Accumulates dirty LPAs until a flash block worth of pages is ready."""

    def __init__(self, capacity_pages: int, sort_on_flush: bool = True) -> None:
        if capacity_pages <= 0:
            raise ValueError("capacity_pages must be positive")
        self._capacity = capacity_pages
        self._sort_on_flush = sort_on_flush
        #: Insertion-ordered map of buffered LPAs (value unused, kept for order).
        self._pages: Dict[int, None] = {}
        self.stats = WriteBufferStats()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def capacity_pages(self) -> int:
        return self._capacity

    @property
    def sort_on_flush(self) -> bool:
        return self._sort_on_flush

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, lpa: int) -> bool:
        return lpa in self._pages

    @property
    def is_full(self) -> bool:
        return len(self._pages) >= self._capacity

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #
    def add(self, lpa: int) -> None:
        """Buffer a host write to ``lpa``.

        Rewriting an LPA that is already buffered is absorbed in place — no
        flash write will ever be issued for the earlier version.
        """
        self.stats.writes += 1
        if lpa in self._pages:
            self.stats.overwrites += 1
            return
        self._pages[lpa] = None

    def drain(self, max_pages: int = 0) -> List[int]:
        """Remove and return buffered LPAs for a flush.

        Parameters
        ----------
        max_pages:
            Maximum number of pages to drain (0 means drain everything).
            The SSD drains one flash block worth of pages per flush.

        Returns
        -------
        list of int
            LPAs in flush order: ascending LPA order when ``sort_on_flush``
            is enabled, otherwise the original arrival order.
        """
        if not self._pages:
            return []
        lpas = list(self._pages.keys())
        if self._sort_on_flush:
            lpas.sort()
        if max_pages > 0:
            lpas = lpas[:max_pages]
        for lpa in lpas:
            del self._pages[lpa]
        self.stats.flushes += 1
        self.stats.pages_flushed += len(lpas)
        return lpas

    def clear(self) -> None:
        self._pages.clear()

    def discard(self) -> int:
        """Drop all buffered pages (power failure); returns how many were lost.

        The buffer is DRAM — a crash destroys it.  The count feeds the
        device's ``buffered_pages_lost`` statistic so the crash contract
        ("unflushed writes may be lost, never torn") stays observable.
        """
        lost = len(self._pages)
        self._pages.clear()
        self.stats.discarded += lost
        return lost
