"""Conflict Resolution Buffer (CRB) — Section 3.4, Figures 9 and 10.

Approximate segments are learned from irregular access patterns, so the LPAs
they encode cannot be reconstructed from their ``(S_LPA, L, K, I)`` metadata.
When approximate segments with overlapping LPA ranges coexist in the mapping
table, a lookup could pick the wrong one.  The CRB resolves this: per LPA
group, it remembers which LPAs belong to which approximate segment.

The paper stores the CRB as a nearly-sorted byte array of group-relative LPA
offsets where the LPAs of one segment are contiguous, segments are separated
by a null byte, and no LPA appears twice (newer segments steal LPAs from
older ones).  This implementation keeps one sorted LPA list per approximate
segment keyed by segment identity, which preserves all of those invariants —
uniqueness, per-segment contiguity, sorted order — while avoiding the
paper's S_LPA-collision renaming rule (object identity already disambiguates
two segments that start at the same LPA).  The byte accounting matches the
paper: one byte per stored LPA offset plus one separator byte per segment.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.segment import Segment


class ConflictResolutionBuffer:
    """Per-group registry of the LPAs owned by each approximate segment."""

    def __init__(self) -> None:
        #: segment -> sorted list of LPAs it currently owns.
        self._lpas_of: Dict[Segment, List[int]] = {}
        #: lpa -> owning segment (the inverse index; keeps lookups O(1)).
        self._owner_of: Dict[int, Segment] = {}

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        """Number of LPA entries stored (excludes separators)."""
        return len(self._owner_of)

    def segment_count(self) -> int:
        return len(self._lpas_of)

    def size_bytes(self) -> int:
        """DRAM bytes: one byte per LPA offset plus a null byte per segment."""
        return len(self._owner_of) + len(self._lpas_of)

    def owner(self, lpa: int) -> Optional[Segment]:
        """The approximate segment that currently owns ``lpa`` (if any)."""
        return self._owner_of.get(lpa)

    def lpas_of(self, segment: Segment) -> List[int]:
        """The LPAs currently owned by ``segment`` (sorted, possibly empty)."""
        return list(self._lpas_of.get(segment, []))

    def contains_segment(self, segment: Segment) -> bool:
        return segment in self._lpas_of

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def insert_segment(self, segment: Segment, lpas: Iterable[int]) -> None:
        """Register a new approximate segment and the LPAs it owns.

        Any of those LPAs previously owned by another segment are removed
        from that segment's entry first (the paper's "no redundant LPAs"
        invariant): the newest segment always wins ownership.
        """
        owned = sorted(set(lpas))
        if not owned:
            return
        for lpa in owned:
            previous = self._owner_of.get(lpa)
            if previous is not None and previous is not segment:
                self._discard_lpa(previous, lpa)
            self._owner_of[lpa] = segment
        self._lpas_of[segment] = owned

    def remove_segment(self, segment: Segment) -> None:
        """Drop a segment and all LPAs it owns (segment removed from the table)."""
        owned = self._lpas_of.pop(segment, None)
        if not owned:
            return
        for lpa in owned:
            if self._owner_of.get(lpa) is segment:
                del self._owner_of[lpa]

    def retain_lpas(self, segment: Segment, keep: Iterable[int]) -> None:
        """Restrict ``segment``'s entry to ``keep`` (outdated LPAs dropped).

        Used by the merge procedure (Algorithm 2, line 25) after a victim
        segment has been trimmed: only the still-valid LPAs remain owned.
        """
        if segment not in self._lpas_of:
            return
        keep_set = set(keep)
        current = self._lpas_of[segment]
        remaining = [lpa for lpa in current if lpa in keep_set]
        for lpa in current:
            if lpa not in keep_set and self._owner_of.get(lpa) is segment:
                del self._owner_of[lpa]
        if remaining:
            self._lpas_of[segment] = remaining
        else:
            del self._lpas_of[segment]

    def _discard_lpa(self, segment: Segment, lpa: int) -> None:
        entry = self._lpas_of.get(segment)
        if entry is None:
            return
        try:
            entry.remove(lpa)
        except ValueError:
            return
        if not entry:
            del self._lpas_of[segment]

    def clear(self) -> None:
        self._lpas_of.clear()
        self._owner_of.clear()
