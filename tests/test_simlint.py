"""Unit tests for simlint (tools/simlint): every rule, suppressions, CLI.

Each rule has a fixture file in ``tests/simlint_fixtures/`` containing known
violations marked with ``# expect: SIMxxx`` on the offending line, plus
clean counterparts and a ``# simlint: disable=...`` suppression case.  The
tests assert the reported ``(line, code)`` pairs equal the markers exactly —
so a missed violation, a false positive on the clean code, or a broken
suppression all fail.
"""

import json
import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
if str(REPO) not in sys.path:
    sys.path.insert(0, str(REPO))

from tools.simlint import (  # noqa: E402
    RULES,
    Finding,
    SimlintConfig,
    lint_file,
    lint_paths,
)
from tools.simlint.config import _parse_minimal_toml  # noqa: E402

FIXTURES = REPO / "tests" / "simlint_fixtures"

_EXPECT_RE = re.compile(r"#\s*expect:\s*(SIM\d+)")

FIXTURE_OF_RULE = {
    "SIM001": "sim001_wall_clock.py",
    "SIM002": "sim002_random.py",
    "SIM003": "sim003_set_iteration.py",
    "SIM004": "sim004_timestamp_eq.py",
    "SIM005": "sim005_mutable_defaults.py",
    "SIM006": "sim006_stats_counters.py",
    "SIM007": "sim007_registry_coverage.py",
    "SIM008": "sim008_observer_purity.py",
}


def expected_markers(path: Path) -> set:
    expected = set()
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        for code in _EXPECT_RE.findall(line):
            expected.add((lineno, code))
    return expected


def reported(path: Path, code: str) -> set:
    rule = RULES[code]()
    findings = lint_file(path, str(path), [rule])
    return {(f.line, f.code) for f in findings}


class TestRegistry:
    def test_at_least_six_rules(self):
        assert len(RULES) >= 6
        assert set(FIXTURE_OF_RULE) <= set(RULES)

    def test_rules_are_documented(self):
        for code, cls in RULES.items():
            rule = cls()
            assert rule.code == code
            assert rule.name, code
            assert rule.rationale, code
            assert rule.default_paths, code


class TestRuleFixtures:
    @pytest.mark.parametrize("code", sorted(FIXTURE_OF_RULE))
    def test_fixture_matches_markers(self, code):
        path = FIXTURES / FIXTURE_OF_RULE[code]
        expected = expected_markers(path)
        assert expected, f"fixture {path.name} has no expect markers"
        assert reported(path, code) == expected

    @pytest.mark.parametrize("code", sorted(FIXTURE_OF_RULE))
    def test_fixture_exercises_suppression(self, code):
        # Every fixture must contain at least one suppressed violation line;
        # the exact-match test above proves it was not reported.
        path = FIXTURES / FIXTURE_OF_RULE[code]
        assert f"simlint: disable={code}" in path.read_text()

    def test_bare_disable_suppresses_all_codes(self, tmp_path):
        source = "import time\nnow = time.time()  # simlint: disable\n"
        path = tmp_path / "snippet.py"
        path.write_text(source)
        assert reported(path, "SIM001") == set()

    def test_unrelated_disable_does_not_suppress(self, tmp_path):
        source = "import time\nnow = time.time()  # simlint: disable=SIM999\n"
        path = tmp_path / "snippet.py"
        path.write_text(source)
        assert reported(path, "SIM001") == {(2, "SIM001")}


class TestFindingOrdering:
    def test_findings_sort_by_location(self):
        a = Finding("x.py", 3, 1, "SIM001", "m")
        b = Finding("x.py", 10, 1, "SIM002", "m")
        assert sorted([b, a]) == [a, b]


class TestConfig:
    def test_repo_config_loads(self):
        config = SimlintConfig.load(REPO / "simlint.toml")
        assert config.root == REPO
        assert "src" in config.include
        assert any("tests" in entry for entry in config.exclude)
        # Every rule scoped in the file exists in the registry.
        assert set(config.rules) <= set(RULES)

    def test_minimal_toml_parser_agrees_with_tomllib(self):
        # The py3.10 fallback parser must produce the same structure
        # tomllib does for the repo's own config file.
        tomllib = pytest.importorskip("tomllib")
        text = (REPO / "simlint.toml").read_text()
        with open(REPO / "simlint.toml", "rb") as handle:
            reference = tomllib.load(handle)
        flat = _parse_minimal_toml(text)
        nested = dict(flat.get("", {}))
        for section, values in flat.items():
            if not section:
                continue
            cursor = nested
            for part in section.split("."):
                cursor = cursor.setdefault(part, {})
            cursor.update(values)
        assert nested == reference

    def test_unknown_rule_rejected(self, tmp_path):
        bad = tmp_path / "simlint.toml"
        bad.write_text('[rules.SIM999]\npaths = ["src"]\n')
        with pytest.raises(ValueError, match="SIM999"):
            SimlintConfig.load(bad)

    def test_path_scoping(self, tmp_path):
        config_file = tmp_path / "simlint.toml"
        config_file.write_text(
            "[simlint]\n"
            'include = ["pkg"]\n'
            'exclude = ["pkg/generated"]\n'
            "[rules.SIM001]\n"
            'paths = ["pkg/sim"]\n'
        )
        config = SimlintConfig.load(config_file)
        rule = RULES["SIM001"]()
        assert config.rule_applies(rule, tmp_path / "pkg" / "sim" / "a.py")
        assert not config.rule_applies(rule, tmp_path / "pkg" / "host" / "a.py")
        assert config.is_excluded(tmp_path / "pkg" / "generated" / "a.py")
        assert not config.is_excluded(tmp_path / "pkg" / "sim" / "a.py")


class TestTreeIsClean:
    def test_simulator_tree_has_no_findings(self):
        # The acceptance criterion of the linter PR: the shipped tree lints
        # clean, so CI can fail on any *new* finding.
        config = SimlintConfig.load(REPO / "simlint.toml")
        findings = lint_paths([REPO / "src", REPO / "tools"], config=config)
        assert findings == [], "\n".join(f.render() for f in findings)


class TestCLI:
    def _run(self, *args, cwd=REPO):
        return subprocess.run(
            [sys.executable, "-m", "tools.simlint", *args],
            cwd=cwd,
            capture_output=True,
            text=True,
        )

    def test_exit_zero_on_clean_tree(self):
        result = self._run("src")
        assert result.returncode == 0, result.stdout + result.stderr

    def test_exit_one_and_json_on_findings(self, tmp_path):
        config_file = tmp_path / "simlint.toml"
        config_file.write_text("[rules.SIM005]\npaths = [\"\"]\n")
        bad = tmp_path / "bad.py"
        bad.write_text("def f(x=[]):\n    return x\n")
        result = self._run(
            "--config", str(config_file), "--format", "json",
            "--select", "SIM005", str(bad),
        )
        assert result.returncode == 1
        payload = json.loads(result.stdout)
        assert payload["files_checked"] == 1
        assert [f["code"] for f in payload["findings"]] == ["SIM005"]
        assert payload["findings"][0]["line"] == 1

    def test_exit_two_on_unknown_rule(self):
        result = self._run("--select", "SIM999", "src")
        assert result.returncode == 2
        assert "unknown rule" in result.stderr

    def test_exit_two_on_missing_path(self):
        result = self._run("no/such/dir")
        assert result.returncode == 2

    def test_list_rules(self):
        result = self._run("--list-rules")
        assert result.returncode == 0
        for code in FIXTURE_OF_RULE:
            assert code in result.stdout
