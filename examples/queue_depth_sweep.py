#!/usr/bin/env python3
"""Queue-depth sweep: how NCQ concurrency reshapes latency and throughput.

Run with::

    python examples/queue_depth_sweep.py

The example builds a small LeaFTL device, fills it so garbage collection is
active, and then replays the same read/write mix at increasing host queue
depths through the event-driven engine.  Two opposing effects appear:

* **throughput rises** — the makespan of the replay shrinks because up to
  ``queue_depth`` requests are serviced concurrently across channels;
* **per-request latency rises** — foreground reads queue behind the buffer
  flushes and GC migrations of concurrently outstanding writes (the
  ``read stall`` column measures exactly that wait).

Depth 1 reproduces the classic synchronous simulation, so the first row is
the baseline every other row contends against.

A second table replays a multi-tenant mix (an OLTP-style tenant interleaved
with a sequential-scan tenant) to show how a noisy neighbour inflates the
latency of small reads.
"""

from __future__ import annotations

import random

from repro import DRAMBudget, LeaFTL, LeaFTLConfig, SSDConfig, SimulatedSSD
from repro.sim.frontend import interleave_streams
from repro.ssd.ssd import SSDOptions

DEPTHS = (1, 2, 4, 8, 16, 32)


def build_ssd(queue_depth: int) -> SimulatedSSD:
    config = SSDConfig.tiny()
    ftl = LeaFTL(LeaFTLConfig(gamma=4, compaction_interval_writes=50_000))
    return SimulatedSSD(
        config,
        ftl,
        dram_budget=DRAMBudget(dram_bytes=config.dram_size),
        options=SSDOptions(queue_depth=queue_depth),
    )


def fill(ssd: SimulatedSSD, footprint: int) -> None:
    """Serial warm-up: identical device state for every depth."""
    for lpa in range(0, footprint, 64):
        ssd.process("W", lpa, 64)
    ssd.flush()


def mixed_requests(seed: int, count: int, footprint: int):
    rng = random.Random(seed)
    requests = []
    for _ in range(count):
        start = rng.randrange(footprint)
        if rng.random() < 0.4:
            requests.append(("W", start, rng.randint(1, 32)))
        else:
            requests.append(("R", start, rng.randint(1, 8)))
    return requests


def tenant_streams(footprint: int):
    """An OLTP-style tenant (small random I/O) + a scan tenant (large reads)."""
    rng = random.Random(3)
    oltp = [("R" if rng.random() < 0.7 else "W", rng.randrange(footprint), 1)
            for _ in range(3000)]
    scans = [("R", lpa, 64) for lpa in range(0, footprint - 64, 256)]
    return oltp, scans


def sweep(title: str, make_requests) -> None:
    print(f"\n=== {title} ===")
    header = f"{'depth':>5} {'read mean us':>13} {'read p99 us':>12} " \
             f"{'read stall ms':>14} {'makespan ms':>12} {'page kIOPS':>11}"
    print(header)
    print("-" * len(header))
    for depth in DEPTHS:
        ssd = build_ssd(depth)
        fill(ssd, footprint=50_000)
        ssd.begin_measurement()  # measure only the contended phase
        stats = ssd.run(make_requests())
        elapsed_ms = max(stats.measured_time_us / 1000.0, 1e-9)
        # host_reads/host_writes count pages, so this is page operations
        # per millisecond, not command IOPS.
        page_kiops = stats.total_requests / elapsed_ms
        print(
            f"{depth:>5} {stats.read_latency.mean_us:>13.1f} "
            f"{stats.read_latency.percentile(99):>12.1f} "
            f"{stats.read_stall_us / 1000.0:>14.1f} "
            f"{elapsed_ms:>12.1f} {page_kiops:>11.1f}"
        )


def main() -> None:
    footprint = 50_000
    sweep(
        "single tenant: 40% writes / 60% reads",
        lambda: mixed_requests(7, 4000, footprint),
    )
    sweep(
        "two tenants: OLTP reads + sequential scans (round-robin)",
        lambda: list(interleave_streams(*tenant_streams(footprint))),
    )


if __name__ == "__main__":
    main()
