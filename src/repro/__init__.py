"""repro — a from-scratch reproduction of LeaFTL (ASPLOS 2023).

LeaFTL is a learning-based flash translation layer that replaces the
page-level address mapping table of an SSD with error-bounded learned linear
segments, shrinking the table's DRAM footprint and giving the saved memory
back to the data cache.

Public API overview
-------------------
``repro.core``
    The learned mapping table: PLR learner, segments, CRB, log-structured
    groups and the :class:`repro.core.LeaFTL` translation layer.
``repro.ftl``
    The FTL interface and the baselines (DFTL, SFTL, ideal page map).
``repro.flash`` / ``repro.ssd``
    The SSD simulator substrate (flash array, OOB, allocator, cache, write
    buffer, GC, wear leveling, the trace-driven device model).
``repro.sim``
    The event-driven engine: deterministic event loop, per-channel/per-die
    NAND scheduling and the NCQ-style host frontend used when replays run
    at ``queue_depth > 1``.
``repro.host``
    The NVMe-style multi-queue host interface above the device: namespaces
    (disjoint LPA regions with per-tenant stats/SLOs), submission queues
    with pluggable arbitration (round-robin, weighted round-robin, strict
    priority, FIFO baseline) and token-bucket QoS rate limits.
``repro.workloads``
    Trace representation, MSR/FIU-like and database-style generators, and a
    parser for original MSR-format traces.
``repro.experiments`` / ``repro.analysis``
    The harness that regenerates every figure and table of the paper.

Quick start
-----------
>>> from repro import LeaFTL, LeaFTLConfig, SSDConfig, SimulatedSSD
>>> ssd = SimulatedSSD(SSDConfig.tiny(), LeaFTL(LeaFTLConfig(gamma=4)))
>>> ssd.write(100); ssd.flush(); ssd.read(100)  # doctest: +SKIP
"""

from repro.config import (
    DFTLConfig,
    DRAMBudget,
    LeaFTLConfig,
    SFTLConfig,
    SSDConfig,
)
from repro.core import (
    LeaFTL,
    LogStructuredMappingTable,
    PLRLearner,
    Segment,
    learn_segments,
)
from repro.ftl import DFTL, FTL, PageLevelFTL, SFTL, TranslationResult
from repro.host import (
    ARBITERS,
    HostInterface,
    Namespace,
    TokenBucket,
    make_arbiter,
)
from repro.sim import EventLoop, HostFrontend, NANDScheduler, interleave_streams
from repro.ssd import (
    GCPolicy,
    GCPolicyConfig,
    SimulatedSSD,
    SSDOptions,
    SSDStats,
    make_gc_policy,
)
from repro.workloads import IORequest, Trace

__version__ = "1.0.0"

__all__ = [
    "DFTLConfig",
    "DRAMBudget",
    "LeaFTLConfig",
    "SFTLConfig",
    "SSDConfig",
    "LeaFTL",
    "LogStructuredMappingTable",
    "PLRLearner",
    "Segment",
    "learn_segments",
    "DFTL",
    "FTL",
    "PageLevelFTL",
    "SFTL",
    "TranslationResult",
    "ARBITERS",
    "HostInterface",
    "Namespace",
    "TokenBucket",
    "make_arbiter",
    "EventLoop",
    "HostFrontend",
    "NANDScheduler",
    "interleave_streams",
    "GCPolicy",
    "GCPolicyConfig",
    "make_gc_policy",
    "SimulatedSSD",
    "SSDOptions",
    "SSDStats",
    "IORequest",
    "Trace",
    "__version__",
]
