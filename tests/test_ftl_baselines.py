"""Tests for the baseline FTLs: ideal page map, DFTL and SFTL."""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.ftl.dftl import DFTL
from repro.ftl.pagemap import PageLevelFTL
from repro.ftl.sftl import SFTL


class TestPageLevelFTL:
    def test_translate_and_update(self):
        ftl = PageLevelFTL()
        ftl.update(5, 100)
        assert ftl.translate(5).ppa == 100
        assert ftl.translate(6).ppa is None
        assert ftl.exists(5)

    def test_memory_is_eight_bytes_per_entry(self):
        ftl = PageLevelFTL()
        ftl.update_batch([(lpa, lpa) for lpa in range(100)])
        assert ftl.full_mapping_bytes() == 800

    def test_invalidate(self):
        ftl = PageLevelFTL()
        ftl.update(1, 2)
        ftl.invalidate(1)
        assert not ftl.exists(1)


class TestDFTL:
    def test_basic_translation(self):
        ftl = DFTL(mapping_budget_bytes=None)
        ftl.update_batch([(lpa, 100 + lpa) for lpa in range(50)])
        for lpa in range(50):
            assert ftl.translate(lpa).ppa == 100 + lpa

    def test_cmt_miss_costs_translation_read(self):
        ftl = DFTL(mapping_budget_bytes=8 * 8)  # room for only 8 entries
        ftl.update_batch([(lpa, lpa) for lpa in range(64)])
        # The oldest entries were evicted; translating one costs a flash read.
        result = ftl.translate(0)
        assert result.ppa == 0
        assert result.translation_flash_reads >= 1
        assert ftl.stats.translation_page_reads >= 1

    def test_dirty_eviction_writes_translation_page(self):
        ftl = DFTL(mapping_budget_bytes=8 * 8)
        ftl.update_batch([(lpa, lpa) for lpa in range(256)])
        assert ftl.stats.translation_page_writes > 0

    def test_dirty_eviction_flushes_whole_translation_page_batch(self):
        """Evicting one dirty entry write-backs every dirty sibling of its
        translation page and charges exactly one read-modify-write."""
        from repro.config import DFTLConfig

        config = DFTLConfig(entries_per_translation_page=4)
        ftl = DFTL(mapping_budget_bytes=8 * 8, config=config)  # 8 entries fit
        # Fill the CMT with 8 dirty entries: TP 0 holds LPAs 0-3, TP 1 holds 4-7.
        ftl.update_batch([(lpa, 100 + lpa) for lpa in range(8)])
        reads_before = ftl.stats.translation_page_reads
        writes_before = ftl.stats.translation_page_writes
        # One more insert overflows the CMT; the LRU victim (LPA 0) is dirty.
        ftl.update_batch([(100, 999)])
        assert ftl.stats.translation_page_reads - reads_before == 1
        assert ftl.stats.translation_page_writes - writes_before == 1
        # LPAs 1-3 (same translation page) were written back alongside the
        # victim: evicting them now must not charge another write.
        ftl.update_batch([(101, 1), (102, 2), (103, 3)])
        assert ftl.stats.translation_page_writes - writes_before == 1
        # The batched write-back persisted the sibling mappings correctly.
        assert ftl.translate(1).ppa == 101
        assert ftl.translate(3).ppa == 103

    def test_budget_respected(self):
        budget = 16 * 8
        ftl = DFTL(mapping_budget_bytes=budget)
        ftl.update_batch([(lpa, lpa) for lpa in range(500)])
        assert ftl.resident_bytes() <= budget
        assert ftl.cmt_entry_count() <= 16

    def test_full_mapping_counts_all_live_lpas(self):
        ftl = DFTL(mapping_budget_bytes=8 * 8)
        ftl.update_batch([(lpa, lpa) for lpa in range(100)])
        assert ftl.full_mapping_bytes() == 100 * 8
        assert ftl.mapped_lpa_count() == 100

    def test_unmapped_lookup(self):
        ftl = DFTL()
        assert ftl.translate(999).ppa is None

    def test_eviction_correctness_random_history(self):
        rng = random.Random(2)
        ftl = DFTL(mapping_budget_bytes=32 * 8)
        truth = {}
        for _ in range(2000):
            lpa = rng.randrange(300)
            ppa = rng.randrange(10**6)
            ftl.update(lpa, ppa)
            truth[lpa] = ppa
        for lpa, ppa in truth.items():
            assert ftl.translate(lpa).ppa == ppa


class TestSFTL:
    def test_sequential_run_condensed_to_one_descriptor(self):
        ftl = SFTL()
        ftl.update_batch([(lpa, 1000 + lpa) for lpa in range(100)])
        assert ftl.run_count() == 1
        assert ftl.full_mapping_bytes() < 100 * 8

    def test_strided_mappings_not_condensed(self):
        ftl = SFTL()
        ftl.update_batch([(2 * i, 1000 + i) for i in range(50)])
        assert ftl.run_count() == 50

    def test_translation_correct_after_fragmentation(self):
        rng = random.Random(4)
        ftl = SFTL()
        truth = {}
        for _ in range(1500):
            lpa = rng.randrange(600)
            ppa = rng.randrange(10**6)
            ftl.update(lpa, ppa)
            truth[lpa] = ppa
        for lpa, ppa in truth.items():
            assert ftl.translate(lpa).ppa == ppa

    def test_run_accounting_incremental_matches_rescan(self):
        rng = random.Random(6)
        ftl = SFTL(entries_per_translation_page=128)
        for _ in range(3000):
            ftl.update(rng.randrange(512), rng.randrange(4096))
        # Recompute runs from scratch and compare with the incremental count.
        expected_runs = 0
        for page in ftl._pages.values():
            entries = page.entries
            expected_runs += sum(
                1
                for lpa in entries
                if not (lpa - 1 in entries and entries[lpa - 1] + 1 == entries[lpa])
            )
        assert ftl.run_count() == expected_runs

    def test_budget_limits_cached_runs(self):
        ftl = SFTL(mapping_budget_bytes=64)
        ftl.update_batch([(lpa * 3, lpa) for lpa in range(2000)])
        # The tiny budget forces evictions: only a fraction stays resident.
        assert ftl.resident_bytes() < ftl.full_mapping_bytes()
        assert ftl.stats.translation_page_writes > 0

    def test_miss_costs_translation_read(self):
        ftl = SFTL(mapping_budget_bytes=64)
        ftl.update_batch([(lpa * 3, lpa) for lpa in range(200)])
        before = ftl.stats.translation_page_reads
        ftl.translate(0)
        assert ftl.stats.translation_page_reads >= before

    def test_invalidate_removes_entry(self):
        ftl = SFTL()
        ftl.update(10, 20)
        ftl.invalidate(10)
        assert ftl.translate(10).ppa is None
        assert ftl.mapped_lpa_count() == 0

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_sftl_never_larger_than_page_level(self, seed):
        rng = random.Random(seed)
        ftl = SFTL()
        lpas = set()
        for _ in range(rng.randint(1, 400)):
            lpa = rng.randrange(2000)
            lpas.add(lpa)
            ftl.update(lpa, rng.randrange(10**5))
        page_level = len(lpas) * 8
        # Allow the per-translation-page header overhead.
        headers = len(ftl._pages) * ftl.config.page_header_bytes
        assert ftl.full_mapping_bytes() <= page_level + headers
