"""Host frontends: how trace requests are admitted into the device.

Two admission policies are modelled on top of the event loop, both
consuming :class:`repro.workloads.trace.IORequest` objects (bare
``(op, lpa, npages)`` tuples are coerced for backward compatibility):

**Closed loop** (:class:`HostFrontend`) — NCQ-style depth-bounded
admission.  Real hosts do not wait for a request to complete before
sending the next one; they keep up to ``queue_depth`` commands outstanding
(SATA NCQ: 32, NVMe: far more):

1. the first ``queue_depth`` trace requests are admitted immediately;
2. each admitted request is issued to the device at its admission time; the
   device reserves channel time and reports the completion time;
3. a completion frees one slot, admitting the next trace request *at the
   completion time* — so with depth 1 the replay degenerates to the classic
   synchronous simulation, and with depth N foreground requests genuinely
   overlap each other and the background flush/GC traffic their
   predecessors triggered.

**Open loop** (:class:`OpenLoopFrontend`) — timestamped arrival-driven
admission, the trace-replay methodology WiscSee-style simulators use.
Each request is admitted at its recorded arrival time (relative to the
trace's first timestamp, scaled by ``time_scale``) *whether or not* earlier
requests have completed, so the number outstanding is a measurement — how
far the device falls behind the arrival process — rather than a knob, and
request latency is measured against arrival times.

The device is duck-typed: anything with
``submit(op, lpa, npages, at_us) -> finish_us`` works.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Protocol, Tuple

from repro.sim.events import Event, EventLoop, PRIORITY_FOREGROUND
from repro.workloads.trace import IORequest, ReplayItem, as_request


class SubmitTarget(Protocol):
    """The duck-typed device contract: anything with this ``submit`` works."""

    def submit(
        self, op: str, lpa: int, npages: int = 1, at_us: Optional[float] = None
    ) -> float: ...

#: Legacy alias: one host request as a bare tuple.
Request = Tuple[str, int, int]


@dataclass
class FrontendStats:
    """Counters describing one frontend run."""

    submitted: int = 0
    completed: int = 0
    max_outstanding: int = 0
    #: Completion time of the last request (us).
    finished_at_us: float = 0.0


class HostFrontend:
    """Admits trace requests into the device at a bounded queue depth."""

    def __init__(
        self, device: SubmitTarget, loop: EventLoop, queue_depth: int = 1
    ) -> None:
        if queue_depth < 1:
            raise ValueError("queue_depth must be at least 1")
        self._device = device
        self._loop = loop
        self._queue_depth = queue_depth
        self._source: Optional[Iterator[ReplayItem]] = None
        self._outstanding = 0
        self.stats = FrontendStats()

    @property
    def queue_depth(self) -> int:
        return self._queue_depth

    @property
    def outstanding(self) -> int:
        return self._outstanding

    # ------------------------------------------------------------------ #
    # Replay
    # ------------------------------------------------------------------ #
    def run(self, requests: Iterable[ReplayItem]) -> FrontendStats:
        """Replay ``requests`` to completion; returns the frontend stats."""
        self._source = iter(requests)
        for _ in range(self._queue_depth):
            if not self._admit(self._loop.now_us):
                break
        self._loop.run()
        return self.stats

    # ------------------------------------------------------------------ #
    # Event handlers
    # ------------------------------------------------------------------ #
    def _admit(self, at_us: float) -> bool:
        assert self._source is not None
        item = next(self._source, None)
        if item is None:
            return False
        self._loop.schedule(
            at_us,
            "request_issue",
            self._issue,
            payload=as_request(item),
            priority=PRIORITY_FOREGROUND,
        )
        return True

    def _issue(self, event: Event) -> None:
        request: IORequest = event.payload  # type: ignore[assignment]
        self._outstanding += 1
        self.stats.submitted += 1
        if self._outstanding > self.stats.max_outstanding:
            self.stats.max_outstanding = self._outstanding
        finish = self._device.submit(
            request.op, request.lpa, request.npages, at_us=event.time_us
        )
        # Completions fire at foreground priority so a freed NCQ slot admits
        # the next request before any same-timestamp background GC step runs.
        # The request rides along as the payload so observers can pair the
        # completion with its issue (payloads are not digested).
        self._loop.schedule(
            finish,
            "request_complete",
            self._complete,
            priority=PRIORITY_FOREGROUND,
            payload=request,
        )

    def _complete(self, event: Event) -> None:
        self._outstanding -= 1
        self.stats.completed += 1
        if event.time_us > self.stats.finished_at_us:
            self.stats.finished_at_us = event.time_us
        self._admit(event.time_us)


class OpenLoopFrontend:
    """Admits each trace request at its (scaled) arrival timestamp.

    Arrival times are taken relative to the trace's first timestamp and
    anchored at the loop's current time, so a replay that follows a warm-up
    phase starts its arrival process at the present.  Requests whose
    timestamps are all zero (synthetic traces, bare tuples) degenerate to
    simultaneous arrival — stamp them first with
    :meth:`repro.workloads.trace.Trace.with_interarrival`.

    Same-timestamp arrivals are issued in trace order (the event loop is
    schedule-order stable), which keeps open-loop replay deterministic.
    Timestamps must be non-decreasing: a trace with out-of-order arrival
    times raises ``ValueError`` instead of silently distorting the offered
    load — sort it first with
    :meth:`repro.workloads.trace.Trace.sorted_by_timestamp`.
    """

    def __init__(
        self, device: SubmitTarget, loop: EventLoop, time_scale: float = 1.0
    ) -> None:
        if time_scale <= 0.0:
            raise ValueError("time_scale must be positive")
        self._device = device
        self._loop = loop
        self._time_scale = time_scale
        self._source: Optional[Iterator[ReplayItem]] = None
        self._origin_us = 0.0
        self._first_timestamp: Optional[float] = None
        self._last_timestamp: Optional[float] = None
        self._outstanding = 0
        self.stats = FrontendStats()

    @property
    def time_scale(self) -> float:
        return self._time_scale

    @property
    def outstanding(self) -> int:
        return self._outstanding

    def run(self, requests: Iterable[ReplayItem]) -> FrontendStats:
        """Replay ``requests`` to completion; returns the frontend stats.

        Admission streams from the iterator: each arrival event schedules
        the next one, so only one pending arrival lives in the heap at a
        time — a full-trace replay does not materialise millions of events
        up front.  Arrivals must carry non-decreasing timestamps; an
        out-of-order timestamp raises ``ValueError`` rather than silently
        misrepresenting the arrival process.
        """
        self._source = iter(requests)
        self._origin_us = self._loop.now_us
        self._schedule_next_arrival()
        self._loop.run()
        return self.stats

    def _schedule_next_arrival(self) -> None:
        assert self._source is not None
        item = next(self._source, None)
        if item is None:
            return
        request = as_request(item)
        if self._first_timestamp is None:
            self._first_timestamp = request.timestamp_us
        if (
            self._last_timestamp is not None
            and request.timestamp_us < self._last_timestamp
        ):
            raise ValueError(
                f"open-loop replay requires non-decreasing timestamps: "
                f"{request.timestamp_us} follows {self._last_timestamp}; "
                "sort the trace (Trace.sorted_by_timestamp()) before replay"
            )
        self._last_timestamp = request.timestamp_us
        offset = max(0.0, request.timestamp_us - self._first_timestamp)
        self._loop.schedule(
            self._origin_us + offset * self._time_scale,
            "request_arrival",
            self._issue,
            payload=request,
            priority=PRIORITY_FOREGROUND,
        )

    def _issue(self, event: Event) -> None:
        request: IORequest = event.payload  # type: ignore[assignment]
        self._outstanding += 1
        self.stats.submitted += 1
        if self._outstanding > self.stats.max_outstanding:
            self.stats.max_outstanding = self._outstanding
        finish = self._device.submit(
            request.op, request.lpa, request.npages, at_us=event.time_us
        )
        self._loop.schedule(
            finish,
            "request_complete",
            self._complete,
            priority=PRIORITY_FOREGROUND,
            payload=request,
        )
        self._schedule_next_arrival()

    def _complete(self, event: Event) -> None:
        self._outstanding -= 1
        self.stats.completed += 1
        if event.time_us > self.stats.finished_at_us:
            self.stats.finished_at_us = event.time_us


def interleave_streams(*streams: Iterable[Request]) -> Iterator[Request]:
    """Round-robin merge of several request streams (multi-tenant mixes).

    Each tenant's stream keeps its internal order; exhausted streams drop
    out.  Combined with ``queue_depth > 1`` this is how a shared device
    serving several workloads at once is simulated.
    """
    iterators: List[Iterator[Request]] = [iter(stream) for stream in streams]
    while iterators:
        still_live: List[Iterator[Request]] = []
        for iterator in iterators:
            item = next(iterator, None)
            if item is None:
                continue
            yield item
            still_live.append(iterator)
        iterators = still_live
