"""Tests for GC policies, background GC invariants and wear leveling.

Layered coverage:

* victim policies in isolation (greedy / cost-benefit / d-choices, the
  fully-valid-victim exclusion, the hard-watermark fallback);
* allocator write-stream separation (hot host data vs cold migrations);
* background-GC end-to-end invariants: after every drained replay no LPA
  maps to an erased page, flash validity accounting equals the ground-truth
  reverse map, and per-block erase counts never regress;
* the hard watermark throttling host writes when the pipeline lags;
* the tail-latency acceptance property: background GC beats synchronous GC
  at p99 on a contended aged device without amplifying writes;
* a golden accounting pin so policy refactors can't silently change the
  ``gc_page_reads`` / ``gc_page_writes`` / WAF bookkeeping.
"""

from __future__ import annotations

import pytest

from repro.config import SSDConfig
from repro.experiments.common import precondition, steady_state_workload
from repro.flash.allocator import BlockAllocator
from repro.flash.flash_array import FlashArray, PageState
from repro.ssd.gc import (
    CostBenefitGCPolicy,
    DChoicesGCPolicy,
    GCPolicyConfig,
    GreedyGCPolicy,
    make_gc_policy,
)
from repro.ssd.ssd import SSDOptions
from repro.ssd.wear_leveling import WearLeveler, WearLevelingConfig
from tests.conftest import make_ssd


@pytest.fixture
def flash():
    return FlashArray(SSDConfig.tiny())


def _sealed_block(flash, allocator, valid, invalid=0, lpa_base=0):
    """Program a block with ``valid + invalid`` pages, invalidate ``invalid``."""
    block = allocator.allocate_block()
    base = flash.geometry.first_ppa_of_block(block)
    for offset in range(valid + invalid):
        flash.program_page(base + offset, lpa=lpa_base + offset)
    for offset in range(invalid):
        flash.invalidate_page(base + offset)
    allocator.seal_block(block)
    return block


class TestGCPolicy:
    def test_thresholds_validated(self):
        with pytest.raises(ValueError):
            GCPolicyConfig(threshold=0.5, restore=0.4)
        with pytest.raises(ValueError):
            GCPolicyConfig(max_victims_per_invocation=0)
        with pytest.raises(ValueError):
            GCPolicyConfig(hard_watermark=0.2)  # >= threshold
        with pytest.raises(ValueError):
            GCPolicyConfig(hard_watermark=0.0)

    def test_should_collect_tracks_free_ratio(self, flash):
        allocator = BlockAllocator(flash)
        policy = GreedyGCPolicy(GCPolicyConfig(threshold=0.5, restore=0.6))
        assert not policy.should_collect(allocator)
        total = allocator.total_blocks
        for _ in range(int(total * 0.6)):
            allocator.allocate_block()
        assert policy.should_collect(allocator)
        assert not policy.should_stop(allocator)

    def test_greedy_victim_order(self, flash):
        allocator = BlockAllocator(flash)
        policy = GreedyGCPolicy()
        for valid in (5, 1, 3):
            _sealed_block(flash, allocator, valid=valid, invalid=2)
        victims = policy.select_victims(flash, allocator)
        ordered_valid = [flash.valid_page_count(b) for b in victims]
        assert ordered_valid == sorted(ordered_valid)

    def test_victim_limit(self, flash):
        allocator = BlockAllocator(flash)
        policy = GreedyGCPolicy(GCPolicyConfig(max_victims_per_invocation=2))
        for index in range(5):
            _sealed_block(flash, allocator, valid=1, lpa_base=index * 10)
        assert len(policy.select_victims(flash, allocator)) == 2

    def test_fully_valid_victims_skipped_unless_urgent(self, flash):
        """The zero-progress fix: migrating a fully valid block consumes
        exactly the pages its erase frees, so such victims burn migration
        bandwidth for nothing — they are only eligible below the hard
        watermark, and even then only when nothing better exists."""
        allocator = BlockAllocator(flash)
        policy = GreedyGCPolicy()
        pages = flash.geometry.pages_per_block
        full = _sealed_block(flash, allocator, valid=pages)
        assert policy.select_victims(flash, allocator) == []
        assert policy.select_victims(flash, allocator, urgent=True) == [full]
        # Once a reclaimable block exists it wins even under urgency.
        partial = _sealed_block(flash, allocator, valid=1, invalid=1, lpa_base=5000)
        assert policy.select_victims(flash, allocator) == [partial]
        assert policy.select_victims(flash, allocator, urgent=True) == [partial]

    def test_cost_benefit_prefers_old_sparse_blocks(self, flash):
        allocator = BlockAllocator(flash)
        policy = CostBenefitGCPolicy()
        # Same utilization, different age: the earlier-touched block wins.
        old = _sealed_block(flash, allocator, valid=2, invalid=2, lpa_base=0)
        young = _sealed_block(flash, allocator, valid=2, invalid=2, lpa_base=100)
        assert flash.block_age(old) > flash.block_age(young)
        assert policy.select_victims(flash, allocator)[0] == old
        # The distinction from greedy: a freshly-modified (hot) block is
        # deferred even when it is the sparsest — its age is ~0, so it gets
        # time to shed more valid pages before being collected.
        sparse = _sealed_block(flash, allocator, valid=1, invalid=7, lpa_base=200)
        assert GreedyGCPolicy().select_victims(flash, allocator)[0] == sparse
        assert policy.select_victims(flash, allocator)[0] == old

    def test_d_choices_deterministic_and_bounded(self, flash):
        allocator = BlockAllocator(flash)
        for index, valid in enumerate((6, 2, 4, 1, 5, 3)):
            _sealed_block(flash, allocator, valid=valid, invalid=1, lpa_base=index * 50)
        config = GCPolicyConfig(max_victims_per_invocation=3)
        first = DChoicesGCPolicy(config, d=2, seed=5).select_victims(flash, allocator)
        second = DChoicesGCPolicy(config, d=2, seed=5).select_victims(flash, allocator)
        assert first == second
        assert len(first) == 3
        assert set(first) <= set(allocator.gc_candidates())
        # With d covering the whole pool it degenerates to exact greedy.
        exhaustive = DChoicesGCPolicy(config, d=100, seed=1).select_victims(
            flash, allocator
        )
        assert exhaustive == GreedyGCPolicy(config).select_victims(flash, allocator)

    def test_make_gc_policy_registry(self):
        assert isinstance(make_gc_policy("greedy"), GreedyGCPolicy)
        assert isinstance(make_gc_policy("cost_benefit"), CostBenefitGCPolicy)
        assert isinstance(make_gc_policy("cost-benefit"), CostBenefitGCPolicy)
        assert isinstance(make_gc_policy("d_choices"), DChoicesGCPolicy)
        config = GCPolicyConfig(threshold=0.3, restore=0.4)
        assert make_gc_policy("greedy", config).config is config
        with pytest.raises(ValueError):
            make_gc_policy("round_robin")


class TestStreamSeparation:
    def test_streams_use_disjoint_open_blocks(self, flash):
        allocator = BlockAllocator(flash)
        hot_block, hot_ppa, hot_room = allocator.frontier("hot")
        cold_block, cold_ppa, cold_room = allocator.frontier("cold")
        assert hot_block != cold_block
        assert hot_room == cold_room == flash.geometry.pages_per_block
        with pytest.raises(ValueError):
            allocator.frontier("lukewarm")

    def test_frontier_continues_partial_block(self, flash):
        allocator = BlockAllocator(flash)
        block, first_ppa, _ = allocator.frontier("hot")
        for offset in range(3):
            flash.program_page(first_ppa + offset, lpa=offset)
        again, next_ppa, room = allocator.frontier("hot")
        assert again == block
        assert next_ppa == first_ppa + 3
        assert room == flash.geometry.pages_per_block - 3
        # The open block is active, hence never a GC candidate.
        assert allocator.is_active(block)
        assert block not in allocator.gc_candidates()

    def test_full_block_is_sealed_and_replaced(self, flash):
        allocator = BlockAllocator(flash)
        pages = flash.geometry.pages_per_block
        block, first_ppa, room = allocator.frontier("cold")
        for offset in range(pages):
            flash.program_page(first_ppa + offset, lpa=offset)
        allocator.seal_if_full(block)
        assert not allocator.is_active(block)
        replacement, _, _ = allocator.frontier("cold")
        assert replacement != block

    def test_host_and_gc_data_never_share_a_block(self):
        """End to end: after a GC-heavy replay, every block holds pages of
        a single write stream (host flush vs migration)."""
        config = SSDConfig.tiny(capacity_bytes=24 * 1024 * 1024, overprovisioning=0.10)
        ssd = make_ssd(config=config)
        footprint = precondition(ssd, seed=11)
        ssd.run(steady_state_workload(footprint, 1000, seed=40))
        assert ssd.stats.gc_page_writes > 0
        hot = ssd.allocator.stream_block("hot")
        cold = ssd.allocator.stream_block("cold")
        assert hot is not None and cold is not None and hot != cold


def assert_gc_invariants(ssd):
    """No LPA maps to an erased page; validity equals the reverse-map size."""
    flash = ssd.flash
    for lpa, ppa in ssd._current_ppa.items():
        assert flash.page_state(ppa) is PageState.VALID, (lpa, ppa)
        assert flash.lpa_of(ppa) == lpa
    total_valid = sum(
        flash.valid_page_count(block) for block in range(flash.geometry.total_blocks)
    )
    assert total_valid == len(ssd._current_ppa)


class TestBackgroundGC:
    def _aged_ssd(self, gc_mode, queue_depth=8):
        config = SSDConfig.tiny(capacity_bytes=24 * 1024 * 1024, overprovisioning=0.10)
        ssd = make_ssd(
            gamma=4,
            config=config,
            options=SSDOptions(queue_depth=queue_depth, gc_mode=gc_mode),
        )
        footprint = precondition(ssd, seed=11)
        return ssd, footprint

    def test_invariants_hold_after_every_drain(self):
        ssd, footprint = self._aged_ssd("background")
        erase_before = ssd.flash.erase_counts()
        for phase in range(4):
            ssd.run(steady_state_workload(footprint, 700, seed=30 + phase))
            # run() drained the event loop, so the pipeline is quiescent.
            assert not ssd._bg_gc.running
            assert_gc_invariants(ssd)
            erase_now = ssd.flash.erase_counts()
            assert all(
                now >= before for now, before in zip(erase_now, erase_before)
            ), "erase counts regressed"
            erase_before = erase_now
        assert ssd.stats.gc_background_runs > 0
        assert ssd.stats.gc_victim_blocks > 0

    def test_background_gc_flattens_tail_at_equal_waf(self):
        """Acceptance: at queue depth 8 on an aged device, background GC
        yields a measurably lower p99 read latency than synchronous GC
        without amplifying writes more."""
        stats = {}
        for mode in ("sync", "background"):
            ssd, footprint = self._aged_ssd(mode)
            stats[mode] = ssd.run(steady_state_workload(footprint, 3000, seed=23))
        sync, background = stats["sync"], stats["background"]
        assert background.gc_background_runs > 0
        assert sync.gc_background_runs == 0
        # Same logical work...
        assert background.host_write_pages == sync.host_write_pages
        # ...much flatter read tail...
        assert (
            background.read_latency.percentile(99)
            < sync.read_latency.percentile(99) * 0.8
        )
        # ...at equal-or-better write amplification.
        assert background.write_amplification <= sync.write_amplification * 1.1

    def test_hard_watermark_throttles_host_writes(self):
        """A write-only burst outruns the pipeline: the hard watermark must
        engage, reclaim synchronously and charge the stall to the host."""
        ssd, footprint = self._aged_ssd("background")
        burst = steady_state_workload(footprint, 2500, seed=77, read_ratio=0.0)
        stats = ssd.run(burst)
        assert stats.gc_urgent_collections > 0
        assert stats.gc_write_throttle_us > 0.0
        assert_gc_invariants(ssd)

    def test_serial_path_falls_back_to_sync_gc(self):
        """Background mode without an event loop (direct writes, drain
        flushes) must still reclaim space synchronously."""
        config = SSDConfig.tiny(capacity_bytes=24 * 1024 * 1024, overprovisioning=0.10)
        ssd = make_ssd(config=config, options=SSDOptions(gc_mode="background"))
        footprint = int(ssd.config.logical_pages * 0.9)
        for lpa in range(0, footprint, 64):
            ssd.process("W", lpa, 64)
        for lpa in range(0, footprint, 128):
            ssd.process("W", lpa, 32)
        ssd.flush()
        assert ssd.stats.gc_invocations > 0
        assert ssd.stats.gc_background_runs == 0
        assert ssd.allocator.free_ratio() > ssd.gc_policy.config.hard_watermark


class TestGoldenAccounting:
    """Golden regression: pin the GC accounting of a fixed-seed workload.

    If a refactor of the policies, the allocator streams or the background
    pipeline changes these numbers, it changed the *accounting semantics*
    (or the default sync behaviour) and must be reviewed — update the pins
    deliberately, never incidentally.
    """

    def test_golden_gc_accounting(self):
        config = SSDConfig.tiny(capacity_bytes=24 * 1024 * 1024, overprovisioning=0.10)
        ssd = make_ssd(config=config)
        footprint = precondition(ssd, seed=11)
        stats = ssd.run(steady_state_workload(footprint, 2000, seed=23))
        assert stats.gc_page_reads == GOLDEN_GC_PAGE_READS
        assert stats.gc_page_writes == GOLDEN_GC_PAGE_WRITES
        assert stats.gc_block_erases == GOLDEN_GC_BLOCK_ERASES
        assert stats.write_amplification == pytest.approx(GOLDEN_WAF, abs=1e-9)


#: Pinned by running the fixed-seed workload above; see TestGoldenAccounting.
#: Re-pinned when the block allocator moved from hash-ordered sets to
#: insertion-ordered pools with an explicit (erase count, block id) tie-break
#: (simlint SIM003): victim cascades shifted slightly, WAF improved ~2%.
GOLDEN_GC_PAGE_READS = 35387
GOLDEN_GC_PAGE_WRITES = 35003
GOLDEN_GC_BLOCK_ERASES = 606
GOLDEN_WAF = 7.2907020164301715


class TestWearLeveler:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            WearLevelingConfig(imbalance_threshold=0)

    def test_due_throttling(self, flash):
        leveler = WearLeveler(WearLevelingConfig(check_interval_erases=4))
        assert not leveler.due(flash)
        flash.counters.block_erases = 10
        # due() is a pure probe: it stays due until a pass is acknowledged.
        assert leveler.due(flash)
        assert leveler.due(flash)
        # Only an acknowledged leveling pass restarts the throttle window.
        leveler.acknowledge(flash)
        assert not leveler.due(flash)

    def test_imbalance_detection(self, flash):
        leveler = WearLeveler(WearLevelingConfig(imbalance_threshold=2))
        assert not leveler.imbalanced(flash)
        # Erase one block many times to create imbalance.
        block = 0
        for _ in range(4):
            flash.erase_block(block)
        assert leveler.imbalanced(flash)

    def test_cold_block_selection_prefers_low_erase_counts(self, flash):
        allocator = BlockAllocator(flash)
        leveler = WearLeveler()
        for index in range(3):
            _sealed_block(flash, allocator, valid=1, lpa_base=index * 10)
        cold = leveler.select_cold_blocks(flash, allocator)
        assert cold
        assert flash.valid_page_count(cold[0]) > 0
