"""Per-tenant workload streams for multi-namespace replays.

The multi-queue host interface (:mod:`repro.host`) replays one stream per
tenant; this module builds those streams.  Two canonical tenants cover the
noisy-neighbor scenario the QoS experiments study:

* :func:`latency_sensitive_reader` — an open-loop stream of small,
  Zipf-skewed reads arriving at a steady pace (a key-value / OLTP front
  end).  Its p99-versus-arrival latency is the quantity QoS arbitration
  protects.
* :func:`sequential_writer` — the noisy neighbor: large sequential write
  bursts (a backup, compaction or analytics ingest job) whose buffered
  flushes and GC fallout monopolise flash channels and, without
  arbitration, the shared submission queue.

Arbitrary mixes are composed from the existing generators:
:func:`tenant_trace` stamps any synthetic :class:`WorkloadProfile` (or an
already built :class:`Trace`) with open-loop arrival times, so every
workload in the repertoire can play the tenant role.

All generators are deterministic given their seeds, and every stream
addresses *namespace-relative* LPAs starting at 0 — the host interface
relocates them into the tenant's region of the device.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Union

from repro.workloads.synthetic import SyntheticWorkload, WorkloadProfile, zipf_lpa
from repro.workloads.trace import IORequest, READ, Trace, WRITE


@dataclass(frozen=True)
class TenantWorkload:
    """One tenant's stream bound to a namespace.

    ``mode`` selects the admission semantics of the tenant's submission
    queue: ``"open"`` (requests arrive at their trace timestamps — latency
    is measured against arrival), ``"closed"`` (the stream is backlogged;
    a completion admits the next request) or ``"auto"`` (open when the
    trace carries timestamps).
    """

    namespace: str
    trace: Trace
    mode: str = "auto"
    #: Multiplier on inter-arrival times in open-loop admission.
    time_scale: float = 1.0
    #: Display name of the submission queue (defaults to the namespace).
    name: Optional[str] = None


def latency_sensitive_reader(
    footprint_pages: int,
    num_requests: int,
    interarrival_us: float = 200.0,
    zipf_alpha: float = 0.9,
    npages: int = 8,
    seed: int = 101,
    name: str = "reader",
) -> Trace:
    """Steady Zipf-skewed reads over an (already written) working set."""
    if footprint_pages <= npages:
        raise ValueError("footprint_pages must exceed npages")
    rng = random.Random(seed)
    requests: List[IORequest] = []
    upper = max(1, footprint_pages - npages)
    for index in range(num_requests):
        lpa = zipf_lpa(rng, upper, zipf_alpha)
        requests.append(
            IORequest(READ, lpa, npages, timestamp_us=index * interarrival_us)
        )
    return Trace(name, requests)


def sequential_writer(
    footprint_pages: int,
    num_requests: int,
    npages: int = 32,
    interarrival_us: float = 20.0,
    burst_length: int = 0,
    burst_gap_us: float = 0.0,
    seed: int = 202,
    name: str = "writer",
) -> Trace:
    """Large sequential writes cycling over the namespace (noisy neighbor).

    With ``burst_length == 0`` the commands arrive uniformly every
    ``interarrival_us``.  Otherwise they arrive in bursts of
    ``burst_length`` commands spaced ``interarrival_us`` apart, separated
    by ``burst_gap_us`` of silence — the bursty ingest pattern that makes
    shared-queue head-of-line blocking visible without permanently
    saturating the device.
    """
    if footprint_pages < npages:
        raise ValueError("footprint_pages must be at least npages")
    del seed  # Reserved for future jittered variants; kept for API symmetry.
    requests: List[IORequest] = []
    lpa = 0
    clock = 0.0
    in_burst = 0
    for _ in range(num_requests):
        requests.append(IORequest(WRITE, lpa, npages, timestamp_us=clock))
        lpa += npages
        if lpa + npages > footprint_pages:
            lpa = 0
        in_burst += 1
        if burst_length > 0 and in_burst >= burst_length:
            in_burst = 0
            clock += burst_gap_us
        else:
            clock += interarrival_us
    return Trace(name, requests)


def tenant_trace(
    workload: Union[Trace, WorkloadProfile],
    interarrival_us: Optional[float] = None,
) -> Trace:
    """Adapt any synthetic profile or existing trace into a tenant stream.

    Profiles are generated with the standard synthetic machinery; when
    ``interarrival_us`` is given, timestamp-less traces are stamped for
    open-loop admission (traces already carrying timestamps keep them).
    """
    trace = (
        SyntheticWorkload(workload).generate()
        if isinstance(workload, WorkloadProfile)
        else workload
    )
    if interarrival_us is not None:
        trace = trace.with_interarrival(interarrival_us)
    return trace


def fill_namespace(size_pages: int, extent: int = 64, name: str = "fill") -> Trace:
    """A closed-loop sequential fill of a namespace (warm-up phase).

    Writes the whole region once in ``extent``-page commands so subsequent
    reads hit programmed flash instead of being served as zeroes.
    """
    if size_pages <= 0:
        raise ValueError("size_pages must be positive")
    extent = max(1, min(extent, size_pages))
    requests = [
        IORequest(WRITE, lpa, min(extent, size_pages - lpa))
        for lpa in range(0, size_pages, extent)
    ]
    return Trace(name, requests)
