"""Out-of-band (OOB) metadata model.

Every flash page carries a small spare area (128-256 bytes in modern SSDs).
LeaFTL uses it for two purposes (Section 3.5, Figure 11):

* the *reverse mapping* of the page itself (``lpa``), used by any FTL to
  verify translations and to rebuild the mapping table after a crash, and
* the reverse mappings of the page's *neighbour* PPAs within the error bound
  ``[-gamma, +gamma]``, so that a mispredicted lookup can be corrected with
  the single flash read it already performed instead of up to ``log(gamma)``
  additional reads.

The simulator stores OOB contents as plain Python integers; the byte budget
is enforced so that a configuration whose ``gamma`` does not fit in the OOB
is rejected, exactly like real hardware would force.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

#: Bytes used to store one reverse-mapping entry (a 4-byte LPA).
LPA_ENTRY_BYTES = 4


@dataclass
class OOBArea:
    """The OOB contents of a single flash page.

    Attributes
    ----------
    lpa:
        Reverse mapping of the page itself (``None`` for an unwritten page).
    neighbor_lpas:
        ``2 * gamma + 1`` entries holding the LPAs of the PPAs in
        ``[ppa - gamma, ppa + gamma]`` at the time the page was written.
        Index ``gamma`` corresponds to the page itself.  Entries that fall
        outside the flash block are ``None`` (the paper stores null bytes).
    """

    lpa: Optional[int] = None
    neighbor_lpas: List[Optional[int]] = field(default_factory=list)


def max_neighbor_entries(oob_size: int) -> int:
    """How many reverse-mapping entries fit in an OOB area of ``oob_size``."""
    return oob_size // LPA_ENTRY_BYTES


def required_oob_bytes(gamma: int) -> int:
    """OOB bytes needed for the reverse-mapping window of ``gamma``.

    The page's own reverse mapping is always stored (4 bytes); the window
    adds the ``2 * gamma`` neighbours, so the total is
    ``(2 * gamma + 1) * 4`` bytes.  With a 128-byte OOB this admits
    ``gamma`` up to 15 (124 bytes); ``gamma = 16`` needs 132 bytes and
    requires a 256-byte spare area.
    """
    return (2 * gamma + 1) * LPA_ENTRY_BYTES


def validate_gamma_fits_oob(gamma: int, oob_size: int) -> None:
    """Raise ``ValueError`` if the neighbour window cannot fit in the OOB."""
    if required_oob_bytes(gamma) > oob_size:
        raise ValueError(
            f"gamma={gamma} needs {required_oob_bytes(gamma)} OOB bytes for the "
            f"reverse-mapping window but only {oob_size} are available"
        )
