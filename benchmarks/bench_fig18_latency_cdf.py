"""Figure 18: latency distribution of storage accesses for the OLTP workload.

The paper shows that LeaFTL does not increase the tail latency while the
higher cache hit ratio reduces the latency of many accesses.

The contended variant replays the same workload at queue depth 8 through
the event-driven engine, so the CDF includes the channel contention between
outstanding foreground reads and the background flush/GC traffic — the
regime real tail latencies come from.
"""

from __future__ import annotations

from repro.analysis.report import print_report, render_series
from repro.experiments.performance import gc_mode_comparison, latency_distribution

from benchmarks.conftest import bench_scale, perf_setup, run_once


def _render_cdf(title, cdf):
    print_report(render_series(
        title,
        {scheme: {f"{p:g}%": round(v, 1) for p, v in points.items()}
         for scheme, points in cdf.items()},
    ))


def test_fig18_oltp_latency_cdf(benchmark):
    setup = perf_setup(dram_policy="cache_reserved")
    cdf = run_once(benchmark, latency_distribution, "OLTP", setup)

    _render_cdf("Figure 18: OLTP read latency (us) at CDF points", cdf)

    # LeaFTL's tail (99.9th percentile) stays within 1.5x of the baselines.
    assert cdf["LeaFTL"][99.9] <= 1.5 * max(cdf["DFTL"][99.9], cdf["SFTL"][99.9], 1.0)
    # And the median-ish latency is no worse than DFTL's.
    assert cdf["LeaFTL"][60.0] <= cdf["DFTL"][60.0] + 1.0


def test_fig18_oltp_latency_cdf_contended(benchmark):
    """The queue-depth-8 CDF: reads contend with background flush/GC."""
    setup = perf_setup(dram_policy="cache_reserved")
    cdf = run_once(
        benchmark,
        latency_distribution,
        "OLTP",
        setup,
        schemes=("DFTL", "LeaFTL"),
        queue_depth=8,
    )

    _render_cdf("Figure 18 (queue depth 8): OLTP read latency (us)", cdf)

    # Under contention tails are dominated by queueing, which is common to
    # every scheme — LeaFTL's stays within 2x of DFTL's at every scale.
    assert cdf["LeaFTL"][99.9] <= 2.0 * max(cdf["DFTL"][99.9], 1.0)
    # The median-ish latency advantage (bigger cache) survives contention.
    assert cdf["LeaFTL"][60.0] <= cdf["DFTL"][60.0] + 1.0


def test_fig18_oltp_latency_cdf_open_loop(benchmark):
    """Open-loop replay: requests arrive on the trace clock, not on
    completions, so the CDF measures latency against arrival times — the
    regime where a slow scheme falls behind its arrival process and the
    backlog inflates every subsequent request's latency."""
    setup = perf_setup(dram_policy="cache_reserved")
    cdf = run_once(
        benchmark,
        latency_distribution,
        "OLTP",
        setup,
        schemes=("DFTL", "LeaFTL"),
        replay_mode="open",
    )

    _render_cdf("Figure 18 (open loop): OLTP read latency vs arrival (us)", cdf)

    # Sanity: the CDF is monotone and the tail includes arrival queueing.
    for scheme in ("DFTL", "LeaFTL"):
        assert cdf[scheme][99.9] >= cdf[scheme][60.0]
    # LeaFTL keeps up with the arrival process at least as well as DFTL
    # does at the median (its larger data cache absorbs more reads).
    assert cdf["LeaFTL"][60.0] <= cdf["DFTL"][60.0] + 1.0


def test_fig18_contended_background_gc_tail(benchmark):
    """Background GC flattens the contended tail at equal-or-better WAF.

    The aged, over-committed device replays the same skewed mix at queue
    depth 8 under both GC modes.  The synchronous reclaim loop reserves a
    whole multi-victim migration burst at one instant, so reads landing
    mid-reclaim queue behind all of it; the background pipeline issues one
    victim stage at a time between host requests, bounding each read's wait
    — p99 drops sharply while collection is deferred, not skipped.
    """
    num_requests = max(500, int(5000 * bench_scale()))
    table = run_once(benchmark, gc_mode_comparison, num_requests=num_requests)

    print_report(render_series(
        "Figure 18 (aged device, QD 8): GC interference by scheduling mode",
        {mode: {key: round(value, 1) for key, value in metrics.items()}
         for mode, metrics in table.items()},
    ))

    sync, background = table["sync"], table["background"]
    # Acceptance: measurably lower read tail under background GC...
    assert background["read_p99_us"] < sync["read_p99_us"] * 0.8
    assert background["read_mean_us"] < sync["read_mean_us"]
    # ...without paying for it in write amplification.
    assert background["waf"] <= sync["waf"] * 1.1
    assert background["gc_background_runs"] >= 1.0
