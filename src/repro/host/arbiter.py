"""Submission-queue arbitration policies and token-bucket rate limiting.

When a device slot frees, the host interface must decide *which* submission
queue's head request is admitted next.  NVMe calls this step arbitration and
specifies round-robin and weighted-round-robin burst arbitration as the two
standard mechanisms, with vendor-specific strict-priority variants; the same
three policies are modelled here, plus a FIFO policy that reproduces the
"one anonymous shared queue" admission the simulator had before namespaces
existed (and therefore serves as the no-isolation baseline in the
noisy-neighbor experiments).

All arbiters are deterministic: given the same sequence of ``select()``
calls over the same queues they make the same decisions, which keeps
multi-tenant replays bit-reproducible.

Rate limiting is orthogonal to arbitration: a namespace may carry one or
more :class:`TokenBucket` limiters (IOPS and/or bandwidth caps).  A queue
whose namespace is out of tokens is simply not offered to the arbiter until
the bucket refills — the host interface schedules a retry event at the
bucket's earliest-available time, so throttling costs no busy-waiting.
"""

from __future__ import annotations

from typing import Dict, List, Protocol, Sequence

#: Names accepted by :func:`make_arbiter` (and ``SSDOptions.arbiter``).
ARBITERS = ("fifo", "round_robin", "weighted_round_robin", "strict_priority")


class ArbitratedQueue(Protocol):
    """What an arbiter needs to know about a submission queue."""

    @property
    def weight(self) -> int:  # pragma: no cover - protocol
        ...

    @property
    def priority(self) -> int:  # pragma: no cover - protocol
        ...

    def head_key(self) -> tuple:  # pragma: no cover - protocol
        """(ready_time_us, enqueue_seq) of the head request."""
        ...


class Arbiter:
    """Base class: picks one of the candidate queues each admission slot.

    ``bind()`` is called once with the full queue list (in registration
    order) before the replay starts; ``select()`` is then called with the
    *eligible* subset — queues that are non-empty and not token-throttled.
    """

    name = "arbiter"

    def bind(self, queues: Sequence[ArbitratedQueue]) -> None:
        self._queues: List[ArbitratedQueue] = list(queues)

    def select(self, candidates: Sequence[ArbitratedQueue]) -> ArbitratedQueue:
        raise NotImplementedError


class FifoArbiter(Arbiter):
    """Global arrival order — equivalent to one shared submission queue.

    The head that has waited longest (earliest ready time, then enqueue
    order) wins, regardless of which namespace it belongs to.  This is the
    no-QoS baseline: a burst from one tenant queues ahead of everyone else.
    """

    name = "fifo"

    def select(self, candidates: Sequence[ArbitratedQueue]) -> ArbitratedQueue:
        return min(candidates, key=lambda queue: queue.head_key())


class RoundRobinArbiter(Arbiter):
    """Cycle over the queues, one grant each (NVMe's default arbitration)."""

    name = "round_robin"

    def bind(self, queues: Sequence[ArbitratedQueue]) -> None:
        super().bind(queues)
        self._cursor = 0

    def select(self, candidates: Sequence[ArbitratedQueue]) -> ArbitratedQueue:
        eligible = set(id(queue) for queue in candidates)
        for _ in range(len(self._queues)):
            queue = self._queues[self._cursor]
            self._cursor = (self._cursor + 1) % len(self._queues)
            if id(queue) in eligible:
                return queue
        raise ValueError("select() called with no eligible queue")


class WeightedRoundRobinArbiter(Arbiter):
    """Grants proportional to namespace weights (NVMe WRR burst arbitration).

    Each queue holds a credit refilled to its namespace ``weight``; the
    rotation pointer stays on a queue until its credit is spent (a burst of
    up to ``weight`` grants), then refills it and advances.  Queues that are
    not eligible are skipped without losing credit, so the scheme is
    work-conserving: an idle tenant's share is redistributed instead of
    leaving the device idle.
    """

    name = "weighted_round_robin"

    def bind(self, queues: Sequence[ArbitratedQueue]) -> None:
        super().bind(queues)
        self._cursor = 0
        self._credit: Dict[int, int] = {
            id(queue): max(1, queue.weight) for queue in queues
        }

    def select(self, candidates: Sequence[ArbitratedQueue]) -> ArbitratedQueue:
        eligible = set(id(queue) for queue in candidates)
        # Two sweeps bound the search: the first may spend leftover credits,
        # the second is guaranteed to hit a freshly refilled eligible queue.
        for _ in range(2 * len(self._queues) + 1):
            queue = self._queues[self._cursor]
            key = id(queue)
            if key in eligible and self._credit[key] > 0:
                self._credit[key] -= 1
                return queue
            self._credit[key] = max(1, queue.weight)
            self._cursor = (self._cursor + 1) % len(self._queues)
        raise ValueError("select() called with no eligible queue")


class StrictPriorityArbiter(Arbiter):
    """Lowest ``priority`` value always wins; FIFO within a priority class.

    An urgent namespace (priority 0) is never delayed by lower classes —
    the strongest isolation, at the cost of potential starvation of the
    background tenants (use WRR when those still need guaranteed progress).
    """

    name = "strict_priority"

    def select(self, candidates: Sequence[ArbitratedQueue]) -> ArbitratedQueue:
        return min(candidates, key=lambda queue: (queue.priority, queue.head_key()))


def make_arbiter(name: str) -> Arbiter:
    """Instantiate an arbitration policy by name (see :data:`ARBITERS`)."""
    if name == "fifo":
        return FifoArbiter()
    if name == "round_robin":
        return RoundRobinArbiter()
    if name == "weighted_round_robin":
        return WeightedRoundRobinArbiter()
    if name == "strict_priority":
        return StrictPriorityArbiter()
    raise ValueError(f"unknown arbiter {name!r}; known: {ARBITERS}")


class TokenBucket:
    """A classic token bucket enforcing an IOPS or bandwidth cap.

    Tokens accrue at ``rate_per_s`` per second of *simulated* time up to
    ``burst``; each admitted request consumes its cost (1 token in
    ``"requests"`` mode, ``npages`` tokens in ``"pages"`` mode).  Costs
    larger than the burst capacity are clamped to it, so a single huge
    request is admitted whenever the bucket is full rather than never.
    """

    #: Valid values of the ``unit`` argument.
    UNITS = ("requests", "pages")

    def __init__(self, rate_per_s: float, burst: float, unit: str = "requests") -> None:
        if rate_per_s <= 0.0:
            raise ValueError("rate_per_s must be positive")
        if burst < 1.0:
            raise ValueError("burst must be at least 1")
        if unit not in self.UNITS:
            raise ValueError(f"unit must be one of {self.UNITS}")
        self.rate_per_s = rate_per_s
        self.burst = float(burst)
        self.unit = unit
        self._tokens = float(burst)
        self._last_us = 0.0

    def cost_of(self, npages: int) -> float:
        """Token cost of admitting a request spanning ``npages`` pages."""
        cost = 1.0 if self.unit == "requests" else float(npages)
        return min(cost, self.burst)

    def _refill(self, now_us: float) -> None:
        if now_us > self._last_us:
            self._tokens = min(
                self.burst,
                self._tokens + (now_us - self._last_us) * self.rate_per_s / 1e6,
            )
            self._last_us = now_us

    #: Comparison slack absorbing float rounding in refill arithmetic.
    EPSILON = 1e-9

    def tokens(self, now_us: float) -> float:
        """Tokens available at ``now_us`` (refills as a side effect)."""
        self._refill(now_us)
        return self._tokens

    def can_admit(self, cost: float, now_us: float) -> bool:
        """True when ``cost`` tokens are available right now."""
        self._refill(now_us)
        return self._tokens + self.EPSILON >= cost

    def try_consume(self, cost: float, now_us: float) -> bool:
        """Consume ``cost`` tokens if available; False leaves the bucket as is."""
        if not self.can_admit(cost, now_us):
            return False
        self._tokens = max(0.0, self._tokens - cost)
        return True

    def available_at(self, cost: float, now_us: float) -> float:
        """Absolute time at which ``cost`` tokens will be available.

        Padded by a sliver of simulated time so that a retry scheduled at
        the returned instant is guaranteed to find the tokens there (float
        refill arithmetic can otherwise land an epsilon short and respin
        the retry at the same timestamp forever).
        """
        self._refill(now_us)
        deficit = max(0.0, cost - self._tokens)
        return now_us + deficit * 1e6 / self.rate_per_s + 1e-6
