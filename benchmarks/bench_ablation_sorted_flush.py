"""Ablation: LPA-sorted buffer flush (Section 3.3, Figure 7).

LeaFTL sorts the write buffer by LPA before programming so that ascending
LPAs receive ascending PPAs.  Disabling the sort should noticeably increase
the number of learned segments (and therefore the mapping-table size).
"""

from __future__ import annotations

from repro.analysis.memory import format_bytes
from repro.analysis.report import print_report, render_table
from repro.experiments.common import run_experiment, workload_for_setup
from repro.experiments.memory import memory_setup

from benchmarks.conftest import memory_scale, run_once

WORKLOADS = ("MSR-hm", "FIU-mail")


def test_ablation_sorted_flush(benchmark):
    def run_both():
        results = {}
        for workload in WORKLOADS:
            per_mode = {}
            for sorted_flush in (True, False):
                setup = memory_setup(gamma=0, request_scale=memory_scale()).scaled(
                    sort_buffer_on_flush=sorted_flush
                )
                trace = workload_for_setup(workload, setup)
                outcome = run_experiment(workload, "LeaFTL", setup, trace=trace)
                per_mode[sorted_flush] = outcome
            results[workload] = per_mode
        return results

    results = run_once(benchmark, run_both)

    rows = []
    for workload, per_mode in results.items():
        sorted_bytes = per_mode[True].mapping_full_bytes
        unsorted_bytes = per_mode[False].mapping_full_bytes
        rows.append([
            workload,
            format_bytes(sorted_bytes),
            format_bytes(unsorted_bytes),
            round(unsorted_bytes / max(1, sorted_bytes), 2),
        ])
    print_report(render_table(
        ["workload", "sorted flush", "unsorted flush", "growth without sorting"],
        rows, title="Ablation: LPA-sorted write-buffer flush (Section 3.3)"))

    for workload, per_mode in results.items():
        assert per_mode[True].mapping_full_bytes < per_mode[False].mapping_full_bytes, workload
